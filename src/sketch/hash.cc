#include "sketch/hash.h"

#include "common/check.h"
#include "common/rng.h"

namespace nmc::sketch {

namespace {

constexpr uint64_t kMersennePrime = (1ULL << 61) - 1;

// x mod 2^61-1 for x < 2^122, using the Mersenne structure.
uint64_t ModPrime(unsigned __int128 x) {
  uint64_t lo = static_cast<uint64_t>(x & kMersennePrime);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersennePrime) r -= kMersennePrime;
  return r;
}

uint64_t MulMod(uint64_t a, uint64_t b) {
  return ModPrime(static_cast<unsigned __int128>(a) * b);
}

}  // namespace

KWiseHash::KWiseHash(int independence, uint64_t seed) {
  NMC_CHECK_GE(independence, 2);
  common::Rng rng(seed);
  coefficients_.resize(static_cast<size_t>(independence));
  for (uint64_t& c : coefficients_) {
    c = static_cast<uint64_t>(rng.NextU64()) % kMersennePrime;
  }
  // The leading coefficient must be nonzero for full independence.
  while (coefficients_.back() == 0) {
    coefficients_.back() = rng.NextU64() % kMersennePrime;
  }
}

uint64_t KWiseHash::Hash(uint64_t x) const {
  const uint64_t xm = x % kMersennePrime;
  // Horner evaluation: c_{d-1} x^{d-1} + ... + c_0.
  uint64_t acc = 0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    acc = MulMod(acc, xm);
    acc += coefficients_[i];
    if (acc >= kMersennePrime) acc -= kMersennePrime;
  }
  return acc;
}

int64_t KWiseHash::Bucket(uint64_t x, int64_t range) const {
  NMC_CHECK_GE(range, 1);
  return static_cast<int64_t>(Hash(x) % static_cast<uint64_t>(range));
}

int KWiseHash::Sign(uint64_t x) const {
  return (Hash(x) & 1ULL) != 0 ? 1 : -1;
}

}  // namespace nmc::sketch
