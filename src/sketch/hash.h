#pragma once

#include <cstdint>
#include <vector>

namespace nmc::sketch {

/// k-wise independent hash family via degree-(k-1) polynomials over the
/// Mersenne prime field GF(2^61 - 1). The fast AMS sketch needs 4-wise
/// independence for both its bucket and sign hashes (that is exactly what
/// the F2 variance analysis consumes), which a random cubic provides.
class KWiseHash {
 public:
  /// `independence` >= 2 coefficients drawn uniformly from the field.
  KWiseHash(int independence, uint64_t seed);

  /// Polynomial evaluation; the result is uniform in [0, 2^61 - 1).
  uint64_t Hash(uint64_t x) const;

  /// Hash reduced to [0, range).
  int64_t Bucket(uint64_t x, int64_t range) const;

  /// ±1-valued hash (low bit of Hash).
  int Sign(uint64_t x) const;

  int independence() const { return static_cast<int>(coefficients_.size()); }

 private:
  std::vector<uint64_t> coefficients_;
};

}  // namespace nmc::sketch

