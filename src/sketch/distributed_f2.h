#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/nonmonotonic_counter.h"
#include "sim/message.h"
#include "sketch/ams_sketch.h"
#include "streams/items.h"

namespace nmc::sketch {

/// Parameters of the distributed F2 tracker.
struct DistributedF2Options {
  /// Sketch shape: rows ~ O(log 1/delta), cols ~ O(1/eps_sketch^2).
  int rows = 5;
  int cols = 64;
  /// Per-cell relative tracking accuracy (Corollary 5.1 takes Theta(eps)).
  double counter_epsilon = 0.1;
  /// Stream horizon (shared by all cell counters' sampling laws).
  int64_t horizon_n = 1;
  /// Eq. (1) constants forwarded to the cell counters.
  double alpha = 2.0;
  double beta = 2.0;
  uint64_t seed = 1;
};

/// Continuous distributed tracking of the second frequency moment with
/// decrements (Section 5.1): each of the rows x cols fast-AMS cells is a
/// non-monotonic ±1 stream over the k sites, tracked by one Non-monotonic
/// Counter; the coordinator's F2 estimate is the median over rows of the
/// sum of squared tracked cell values. Under randomly ordered input each
/// cell stream is randomly ordered, so the total communication is
/// Õ(sqrt(k n)/eps^2) (Jensen over cells), against the Omega(sqrt(k n)/eps)
/// lower bound inherited from the counter.
class DistributedF2Tracker {
 public:
  DistributedF2Tracker(int num_sites, const DistributedF2Options& options);

  int num_sites() const { return num_sites_; }

  /// Feeds one turnstile update arriving at `site_id`.
  void ProcessUpdate(int site_id, const streams::ItemUpdate& update);

  /// The coordinator's current F2 estimate.
  double EstimateF2() const;

  /// Point query: the coordinator's estimate of the current count m_i(t)
  /// of `item` (median over rows of g_j(item) * tracked cell value — the
  /// CountSketch estimator, valid under deletions). Error is
  /// O(sqrt(F2/cols)) w.h.p. plus the cells' tracking error, so the same
  /// state that answers F2 also answers continuous distributed frequency
  /// queries.
  double EstimateFrequency(int64_t item) const;

  /// All items in [0, universe) whose estimated count is at least
  /// `min_count` (coordinator-side scan over the candidate universe using
  /// EstimateFrequency; no communication). With min_count >=
  /// Theta(sqrt(F2/cols)) the CountSketch guarantee makes this a
  /// heavy-hitters query that survives deletions.
  std::vector<int64_t> HeavyItems(int64_t universe, double min_count) const;

  /// Aggregate communication across all cell counters.
  sim::MessageStats stats() const;

  int64_t updates_processed() const { return updates_processed_; }

 private:
  core::NonMonotonicCounter* CellCounter(int row, int64_t col);
  const core::NonMonotonicCounter* CellCounter(int row, int64_t col) const;

  int num_sites_;
  DistributedF2Options options_;
  /// Used purely for its per-row 4-wise hash functions (its cells stay
  /// zero); the tracked state lives in the cell counters below.
  AmsSketch hashes_;
  std::vector<std::unique_ptr<core::NonMonotonicCounter>> cells_;
  int64_t updates_processed_ = 0;
};

}  // namespace nmc::sketch

