#include "sketch/distributed_f2.h"

#include "common/check.h"
#include "common/rng.h"

namespace nmc::sketch {

DistributedF2Tracker::DistributedF2Tracker(
    int num_sites, const DistributedF2Options& options)
    : num_sites_(num_sites),
      options_(options),
      hashes_(options.rows, options.cols, options.seed) {
  NMC_CHECK_GE(num_sites, 1);
  NMC_CHECK_GE(options.horizon_n, 1);
  common::Rng seeder(options.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  core::CounterOptions counter_options;
  counter_options.epsilon = options.counter_epsilon;
  counter_options.horizon_n = options.horizon_n;
  counter_options.alpha = options.alpha;
  counter_options.beta = options.beta;
  counter_options.drift_mode = core::DriftMode::kZeroDrift;
  cells_.reserve(static_cast<size_t>(options.rows) *
                 static_cast<size_t>(options.cols));
  for (int j = 0; j < options.rows; ++j) {
    for (int c = 0; c < options.cols; ++c) {
      counter_options.seed = seeder.NextU64();
      cells_.push_back(std::make_unique<core::NonMonotonicCounter>(
          num_sites, counter_options));
    }
  }
}

core::NonMonotonicCounter* DistributedF2Tracker::CellCounter(int row,
                                                             int64_t col) {
  return cells_[static_cast<size_t>(row) * static_cast<size_t>(options_.cols) +
                static_cast<size_t>(col)]
      .get();
}

const core::NonMonotonicCounter* DistributedF2Tracker::CellCounter(
    int row, int64_t col) const {
  return cells_[static_cast<size_t>(row) * static_cast<size_t>(options_.cols) +
                static_cast<size_t>(col)]
      .get();
}

void DistributedF2Tracker::ProcessUpdate(int site_id,
                                         const streams::ItemUpdate& update) {
  NMC_CHECK(update.sign == 1 || update.sign == -1);
  const uint64_t item = static_cast<uint64_t>(update.item);
  for (int j = 0; j < options_.rows; ++j) {
    const int64_t c = hashes_.BucketOf(j, item);
    const double value =
        static_cast<double>(update.sign * hashes_.SignOf(j, item));
    CellCounter(j, c)->ProcessUpdate(site_id, value);
  }
  ++updates_processed_;
}

double DistributedF2Tracker::EstimateF2() const {
  std::vector<double> row_estimates(static_cast<size_t>(options_.rows), 0.0);
  for (int j = 0; j < options_.rows; ++j) {
    double sum_sq = 0.0;
    for (int c = 0; c < options_.cols; ++c) {
      const double v = CellCounter(j, c)->Estimate();
      sum_sq += v * v;
    }
    row_estimates[static_cast<size_t>(j)] = sum_sq;
  }
  return Median(std::move(row_estimates));
}

double DistributedF2Tracker::EstimateFrequency(int64_t item) const {
  NMC_CHECK_GE(item, 0);
  const uint64_t key = static_cast<uint64_t>(item);
  std::vector<double> row_estimates(static_cast<size_t>(options_.rows), 0.0);
  for (int j = 0; j < options_.rows; ++j) {
    const int64_t c = hashes_.BucketOf(j, key);
    row_estimates[static_cast<size_t>(j)] =
        static_cast<double>(hashes_.SignOf(j, key)) *
        CellCounter(j, c)->Estimate();
  }
  return Median(std::move(row_estimates));
}

std::vector<int64_t> DistributedF2Tracker::HeavyItems(int64_t universe,
                                                      double min_count) const {
  NMC_CHECK_GE(universe, 0);
  NMC_CHECK_GE(min_count, 0.0);
  std::vector<int64_t> heavy;
  for (int64_t item = 0; item < universe; ++item) {
    if (EstimateFrequency(item) >= min_count) heavy.push_back(item);
  }
  return heavy;
}

sim::MessageStats DistributedF2Tracker::stats() const {
  sim::MessageStats total;
  for (const auto& cell : cells_) total += cell->stats();
  return total;
}

}  // namespace nmc::sketch
