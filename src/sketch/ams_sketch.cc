#include "sketch/ams_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::sketch {

AmsSketch::AmsSketch(int rows, int cols, uint64_t seed)
    : rows_(rows), cols_(cols) {
  NMC_CHECK_GE(rows, 1);
  NMC_CHECK_GE(cols, 1);
  common::Rng seeder(seed);
  bucket_hashes_.reserve(static_cast<size_t>(rows));
  sign_hashes_.reserve(static_cast<size_t>(rows));
  for (int j = 0; j < rows; ++j) {
    bucket_hashes_.emplace_back(4, seeder.NextU64());
    sign_hashes_.emplace_back(4, seeder.NextU64());
  }
  cells_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
}

void AmsSketch::Update(uint64_t item, int sign) {
  NMC_CHECK(sign == 1 || sign == -1);
  for (int j = 0; j < rows_; ++j) {
    const int64_t c = BucketOf(j, item);
    cells_[static_cast<size_t>(j) * static_cast<size_t>(cols_) +
           static_cast<size_t>(c)] +=
        static_cast<double>(sign * SignOf(j, item));
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_estimates(static_cast<size_t>(rows_), 0.0);
  for (int j = 0; j < rows_; ++j) {
    double sum_sq = 0.0;
    for (int c = 0; c < cols_; ++c) {
      const double v = Cell(j, c);
      sum_sq += v * v;
    }
    row_estimates[static_cast<size_t>(j)] = sum_sq;
  }
  return Median(std::move(row_estimates));
}

int64_t AmsSketch::BucketOf(int row, uint64_t item) const {
  NMC_CHECK_GE(row, 0);
  NMC_CHECK_LT(row, rows_);
  return bucket_hashes_[static_cast<size_t>(row)].Bucket(item, cols_);
}

int AmsSketch::SignOf(int row, uint64_t item) const {
  NMC_CHECK_GE(row, 0);
  NMC_CHECK_LT(row, rows_);
  return sign_hashes_[static_cast<size_t>(row)].Sign(item);
}

double AmsSketch::Cell(int row, int col) const {
  NMC_CHECK_GE(row, 0);
  NMC_CHECK_LT(row, rows_);
  NMC_CHECK_GE(col, 0);
  NMC_CHECK_LT(col, cols_);
  return cells_[static_cast<size_t>(row) * static_cast<size_t>(cols_) +
                static_cast<size_t>(col)];
}

double Median(std::vector<double> values) {
  NMC_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return (values[mid - 1] + values[mid]) / 2.0;
}

}  // namespace nmc::sketch
