#pragma once

#include <cstdint>
#include <vector>

#include "sketch/hash.h"

namespace nmc::sketch {

/// The fast AMS sketch of Section 5.1 (a.k.a. CountSketch-based F2
/// estimator): I x J counters S_{j,c}; the t-th update (alpha, z) adds
/// z * g_j(alpha) to S_{j, h_j(alpha)} in each row j, with g_j, h_j drawn
/// from 4-wise independent families. Each row's sum of squared counters
/// is an unbiased F2 estimate with variance 2 F2^2 / J; the median over
/// I = O(log 1/delta) rows boosts the confidence. Fully supports
/// deletions (z = -1): the estimator is oblivious to the sign pattern.
class AmsSketch {
 public:
  /// rows >= 1 (confidence), cols >= 1 (J ~ 1/eps^2 for eps accuracy).
  AmsSketch(int rows, int cols, uint64_t seed);

  /// Applies one turnstile update.
  void Update(uint64_t item, int sign);

  /// Median-of-row-sums F2 estimate.
  double EstimateF2() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Row j's bucket / sign hash for `item` (exposed so the distributed
  /// tracker can route updates to per-cell counters using the exact same
  /// hash functions).
  int64_t BucketOf(int row, uint64_t item) const;
  int SignOf(int row, uint64_t item) const;

  /// Raw cell value (row-major), for tests.
  double Cell(int row, int col) const;

 private:
  int rows_;
  int cols_;
  std::vector<KWiseHash> bucket_hashes_;
  std::vector<KWiseHash> sign_hashes_;
  std::vector<double> cells_;  // row-major
};

/// Median of a non-empty vector (average of middle two for even sizes).
double Median(std::vector<double> values);

}  // namespace nmc::sketch

