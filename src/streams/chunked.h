#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/stream_source.h"

namespace nmc::streams {

/// Chunked stream generators (see sim::StreamSource): each source produces
/// exactly the same value sequence as its vector-returning counterpart in
/// the sibling headers — the vector functions are now thin wrappers that
/// drain a source — but generates on demand into a caller buffer, so the
/// harness can track an n-item stream with O(batch_size) memory.
///
/// Inherently whole-stream inputs (random permutations, Davies-Harte fGn)
/// cannot stream; wrap their materialized vectors in MaterializedSource to
/// pass them through the same chunked interface.

/// I.i.d. ±1 with drift mu (chunked form of BernoulliStream).
class BernoulliSource final : public sim::StreamSource {
 public:
  BernoulliSource(int64_t n, double mu, uint64_t seed);

  int64_t length() const override { return n_; }
  int64_t FillChunk(std::span<double> out) override;

 private:
  int64_t n_;
  int64_t produced_ = 0;
  double p_plus_;
  common::Rng rng_;
};

/// I.i.d. bounded fractional updates (chunked form of FractionalIidStream).
class FractionalIidSource final : public sim::StreamSource {
 public:
  FractionalIidSource(int64_t n, double mu, double amplitude, uint64_t seed);

  int64_t length() const override { return n_; }
  int64_t FillChunk(std::span<double> out) override;

 private:
  int64_t n_;
  int64_t produced_ = 0;
  double mu_;
  double a_;
  common::Rng rng_;
};

/// +1, -1, +1, -1, ... (chunked form of AlternatingStream).
class AlternatingSource final : public sim::StreamSource {
 public:
  explicit AlternatingSource(int64_t n);

  int64_t length() const override { return n_; }
  int64_t FillChunk(std::span<double> out) override;

 private:
  int64_t n_;
  int64_t produced_ = 0;
};

/// Zero-crossing ±1 sawtooth (chunked form of SawtoothStream).
class SawtoothSource final : public sim::StreamSource {
 public:
  SawtoothSource(int64_t n, int64_t peak);

  int64_t length() const override { return n_; }
  int64_t FillChunk(std::span<double> out) override;

 private:
  int64_t n_;
  int64_t peak_;
  int64_t produced_ = 0;
  int64_t level_ = 0;
  int direction_ = 1;
};

/// Owns a fully materialized stream and serves it chunk by chunk — the
/// adapter for generators that need the whole series up front (random
/// permutations, fGn via circulant embedding).
class MaterializedSource final : public sim::StreamSource {
 public:
  explicit MaterializedSource(std::vector<double> values)
      : values_(std::move(values)) {}

  int64_t length() const override {
    return static_cast<int64_t>(values_.size());
  }

  int64_t FillChunk(std::span<double> out) override {
    sim::SpanSource span_source(
        std::span<const double>(values_).subspan(offset_));
    const int64_t filled = span_source.FillChunk(out);
    offset_ += static_cast<size_t>(filled);
    return filled;
  }

 private:
  std::vector<double> values_;
  size_t offset_ = 0;
};

/// Drains `source` into a vector (the bridge back from chunked sources to
/// the vector-returning stream API; also used by tests to compare a
/// source against its reference sequence).
std::vector<double> Materialize(sim::StreamSource* source);

}  // namespace nmc::streams
