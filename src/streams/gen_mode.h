#pragma once

namespace nmc::streams {

/// Which RNG machinery a randomized stream generator draws from.
enum class GenMode {
  /// Vectorized generation via common::BatchRng, writing straight into the
  /// caller's chunk buffer (the generator/pump fusion path). A different —
  /// still i.i.d., same law — fixed-seed sequence than the historic scalar
  /// draws.
  kBatch,
  /// Replays the original per-item common::Rng sequence bit-identically.
  /// The --legacy_pump benches and the golden-pinning tests run in this
  /// mode; it is the stream-generation analogue of SamplerMode::kLegacyCoins.
  kLegacyScalar,
};

}  // namespace nmc::streams
