#pragma once

#include <cstdint>
#include <vector>

#include "streams/gen_mode.h"

namespace nmc::streams {

/// I.i.d. ±1 updates with drift mu in [-1, 1]: P[X = +1] = (1 + mu)/2,
/// P[X = -1] = (1 - mu)/2, so E[X] = mu. mu = 0 is the driftless random
/// walk of Theorem 3.1/3.2, mu = 1 the monotonic counter of [12].
std::vector<double> BernoulliStream(int64_t n, double mu, uint64_t seed,
                                    GenMode mode = GenMode::kBatch);

/// I.i.d. bounded fractional updates: X = mu + noise, where noise is
/// uniform on [-a, a] with a = min(1 - |mu|, amplitude), clamped so that
/// X stays in [-1, 1]. Exercises the paper's remark that updates need not
/// be in {-1, +1}.
std::vector<double> FractionalIidStream(int64_t n, double mu, double amplitude,
                                        uint64_t seed,
                                        GenMode mode = GenMode::kBatch);

}  // namespace nmc::streams

