#include "streams/adversarial.h"

#include "common/check.h"

namespace nmc::streams {

std::vector<double> AlternatingStream(int64_t n) {
  NMC_CHECK_GE(n, 0);
  std::vector<double> stream(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    stream[static_cast<size_t>(t)] = (t % 2 == 0) ? 1.0 : -1.0;
  }
  return stream;
}

std::vector<double> SawtoothStream(int64_t n, int64_t peak) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(peak, 1);
  std::vector<double> stream(static_cast<size_t>(n));
  int64_t level = 0;
  int direction = 1;
  for (int64_t t = 0; t < n; ++t) {
    stream[static_cast<size_t>(t)] = static_cast<double>(direction);
    level += direction;
    if (level >= peak) direction = -1;
    if (level <= -peak) direction = 1;
  }
  return stream;
}

}  // namespace nmc::streams
