#include "streams/adversarial.h"

#include "streams/chunked.h"

namespace nmc::streams {

std::vector<double> AlternatingStream(int64_t n) {
  AlternatingSource source(n);
  return Materialize(&source);
}

std::vector<double> SawtoothStream(int64_t n, int64_t peak) {
  SawtoothSource source(n, peak);
  return Materialize(&source);
}

}  // namespace nmc::streams
