#include "streams/bernoulli.h"

#include "streams/chunked.h"

namespace nmc::streams {

std::vector<double> BernoulliStream(int64_t n, double mu, uint64_t seed,
                                    GenMode mode) {
  BernoulliSource source(n, mu, seed, mode);
  return Materialize(&source);
}

std::vector<double> FractionalIidStream(int64_t n, double mu, double amplitude,
                                        uint64_t seed, GenMode mode) {
  FractionalIidSource source(n, mu, amplitude, seed, mode);
  return Materialize(&source);
}

}  // namespace nmc::streams
