#include "streams/bernoulli.h"

#include "streams/chunked.h"

namespace nmc::streams {

std::vector<double> BernoulliStream(int64_t n, double mu, uint64_t seed) {
  BernoulliSource source(n, mu, seed);
  return Materialize(&source);
}

std::vector<double> FractionalIidStream(int64_t n, double mu, double amplitude,
                                        uint64_t seed) {
  FractionalIidSource source(n, mu, amplitude, seed);
  return Materialize(&source);
}

}  // namespace nmc::streams
