#include "streams/bernoulli.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::streams {

std::vector<double> BernoulliStream(int64_t n, double mu, uint64_t seed) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(mu, -1.0);
  NMC_CHECK_LE(mu, 1.0);
  common::Rng rng(seed);
  const double p_plus = (1.0 + mu) / 2.0;
  std::vector<double> stream(static_cast<size_t>(n));
  for (double& x : stream) x = rng.Bernoulli(p_plus) ? 1.0 : -1.0;
  return stream;
}

std::vector<double> FractionalIidStream(int64_t n, double mu, double amplitude,
                                        uint64_t seed) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(mu, -1.0);
  NMC_CHECK_LE(mu, 1.0);
  NMC_CHECK_GE(amplitude, 0.0);
  common::Rng rng(seed);
  const double a = std::min(1.0 - std::fabs(mu), amplitude);
  std::vector<double> stream(static_cast<size_t>(n));
  for (double& x : stream) {
    x = mu + a * (2.0 * rng.UniformDouble() - 1.0);
  }
  return stream;
}

}  // namespace nmc::streams
