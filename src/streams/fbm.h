#pragma once

#include <cstdint>
#include <vector>

namespace nmc::streams {

/// Fractional Gaussian noise (fGn): the stationary increment process of
/// fractional Brownian motion with Hurst parameter H in (0, 1) and unit
/// scale (sigma^2 = 1, as the paper assumes w.l.o.g.). Feeding fGn
/// increments to a counter makes the tracked sum S_t an fBm path sampled at
/// integer times — the Section 3.4 input model for long-range dependent
/// phenomena such as network traffic.

/// Exact autocovariance of unit-scale fGn at lag h:
/// gamma(h) = (|h+1|^{2H} - 2|h|^{2H} + |h-1|^{2H}) / 2.
double FgnAutocovariance(double hurst, int64_t lag);

/// Exact-covariance fGn sample of length n via Davies-Harte circulant
/// embedding (O(n log n), from-scratch FFT). The embedding is
/// non-negative-definite for all H in (0, 1), so the sample distribution is
/// exact up to floating point.
std::vector<double> FgnDaviesHarte(int64_t n, double hurst, uint64_t seed);

/// O(n^2) Hosking (Durbin-Levinson) reference generator; used by tests to
/// cross-validate Davies-Harte on small n.
std::vector<double> FgnHosking(int64_t n, double hurst, uint64_t seed);

/// Cumulative sums of the given increments: an fBm path at t = 1..n.
std::vector<double> CumulativeSum(const std::vector<double>& increments);

}  // namespace nmc::streams

