#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace nmc::streams {

/// In-place iterative radix-2 Cooley-Tukey FFT. data->size() must be a
/// power of two. Computes the unnormalized forward transform
/// X_k = sum_j x_j exp(-2*pi*i*j*k/N); Inverse applies the conjugate
/// transform and divides by N, so Inverse(Forward(x)) == x.
void Fft(std::vector<std::complex<double>>* data);
void InverseFft(std::vector<std::complex<double>>* data);

/// O(n^2) reference DFT used to validate Fft() in tests.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& data);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

}  // namespace nmc::streams

