#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nmc::streams {

/// The random-permutation input model of Theorem 3.4: an adversary fixes
/// an arbitrary bounded multiset of values; nature then presents it in a
/// uniformly random order. The functions below are canonical adversary
/// choices; compose them with RandomlyPermuted().

/// Uniform random permutation of `values` (the original is not modified).
std::vector<double> RandomlyPermuted(std::vector<double> values,
                                     uint64_t seed);

/// floor(n * fraction_positive) values of +1 and the rest -1. With
/// fraction 0.5 the final sum is ~0, the hardest case for relative error.
std::vector<double> SignMultiset(int64_t n, double fraction_positive);

/// Deterministic bounded reals v_t = sin(0.37 t) * cos(0.011 t^2): an
/// arbitrary-looking adversarial multiset exercising fractional updates.
std::vector<double> OscillatingMultiset(int64_t n);

/// A few "heavy" ±1 values among many tiny ±delta values; the tiny values
/// dominate the count of updates while the heavy ones dominate the sum.
std::vector<double> SkewedMultiset(int64_t n, int64_t num_heavy, double delta);

/// All +1 followed by all -1 before permutation (the permutation destroys
/// the block structure; included to show the multiset alone determines the
/// behavior under the permutation model).
std::vector<double> BlockMultiset(int64_t n);

/// Named adversary multisets used by the benches: "balanced", "biased",
/// "oscillating", "skewed", "blocks". Aborts on an unknown name.
std::vector<double> MakeAdversaryMultiset(const std::string& name, int64_t n);

}  // namespace nmc::streams

