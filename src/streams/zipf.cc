#include "streams/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmc::streams {

ZipfSampler::ZipfSampler(int64_t universe, double exponent) {
  NMC_CHECK_GE(universe, 1);
  NMC_CHECK_GE(exponent, 0.0);
  cdf_.resize(static_cast<size_t>(universe));
  double total = 0.0;
  for (int64_t i = 0; i < universe; ++i) {
    total += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[static_cast<size_t>(i)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int64_t ZipfSampler::Sample(common::Rng* rng) const {
  NMC_CHECK(rng != nullptr);
  const double u = rng->UniformDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(int64_t item) const {
  NMC_CHECK_GE(item, 0);
  NMC_CHECK_LT(item, universe());
  const size_t i = static_cast<size_t>(item);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace nmc::streams
