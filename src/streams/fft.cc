#include "streams/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace nmc::streams {

namespace {

bool IsPowerOfTwo(size_t n) { return n > 0 && (n & (n - 1)) == 0; }

// Core transform; sign = -1 for forward, +1 for inverse (unnormalized).
void Transform(std::vector<std::complex<double>>* data, double sign) {
  std::vector<std::complex<double>>& a = *data;
  const size_t n = a.size();
  NMC_CHECK(IsPowerOfTwo(n));

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void Fft(std::vector<std::complex<double>>* data) { Transform(data, -1.0); }

void InverseFft(std::vector<std::complex<double>>* data) {
  Transform(data, 1.0);
  const double inv_n = 1.0 / static_cast<double>(data->size());
  for (auto& x : *data) x *= inv_n;
}

std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& data) {
  const size_t n = data.size();
  std::vector<std::complex<double>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) *
                           static_cast<double>(k) / static_cast<double>(n);
      acc += data[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

size_t NextPowerOfTwo(size_t n) {
  NMC_CHECK_GE(n, 1u);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace nmc::streams
