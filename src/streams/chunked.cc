#include "streams/chunked.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmc::streams {

namespace {

/// Clamps a chunk request to the items the source still owes.
size_t ChunkCount(std::span<double> out, int64_t n, int64_t produced) {
  return std::min(out.size(), static_cast<size_t>(n - produced));
}

}  // namespace

BernoulliSource::BernoulliSource(int64_t n, double mu, uint64_t seed,
                                 GenMode mode)
    : n_(n), p_plus_((1.0 + mu) / 2.0), mode_(mode), rng_(seed), batch_(seed) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(mu, -1.0);
  NMC_CHECK_LE(mu, 1.0);
}

int64_t BernoulliSource::FillChunk(std::span<double> out) {
  const size_t count = ChunkCount(out, n_, produced_);
  if (mode_ == GenMode::kBatch) {
    batch_.FillSigns(out.first(count), p_plus_);
  } else {
    for (size_t i = 0; i < count; ++i) {
      out[i] = rng_.Bernoulli(p_plus_) ? 1.0 : -1.0;
    }
  }
  produced_ += static_cast<int64_t>(count);
  return static_cast<int64_t>(count);
}

FractionalIidSource::FractionalIidSource(int64_t n, double mu,
                                         double amplitude, uint64_t seed,
                                         GenMode mode)
    : n_(n), mu_(mu), a_(std::min(1.0 - std::fabs(mu), amplitude)),
      mode_(mode), rng_(seed), batch_(seed) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(mu, -1.0);
  NMC_CHECK_LE(mu, 1.0);
  NMC_CHECK_GE(amplitude, 0.0);
}

int64_t FractionalIidSource::FillChunk(std::span<double> out) {
  const size_t count = ChunkCount(out, n_, produced_);
  if (mode_ == GenMode::kBatch) {
    // Bulk uniforms into the caller's buffer, then an in-place affine map
    // (elementwise, so order-independent and auto-vectorizable).
    batch_.FillUniform(out.first(count));
    for (size_t i = 0; i < count; ++i) {
      out[i] = mu_ + a_ * (2.0 * out[i] - 1.0);
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      out[i] = mu_ + a_ * (2.0 * rng_.UniformDouble() - 1.0);
    }
  }
  produced_ += static_cast<int64_t>(count);
  return static_cast<int64_t>(count);
}

AlternatingSource::AlternatingSource(int64_t n) : n_(n) {
  NMC_CHECK_GE(n, 0);
}

int64_t AlternatingSource::FillChunk(std::span<double> out) {
  const size_t count = ChunkCount(out, n_, produced_);
  for (size_t i = 0; i < count; ++i) {
    const int64_t t = produced_ + static_cast<int64_t>(i);
    out[i] = (t % 2 == 0) ? 1.0 : -1.0;
  }
  produced_ += static_cast<int64_t>(count);
  return static_cast<int64_t>(count);
}

SawtoothSource::SawtoothSource(int64_t n, int64_t peak) : n_(n), peak_(peak) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(peak, 1);
}

int64_t SawtoothSource::FillChunk(std::span<double> out) {
  const size_t count = ChunkCount(out, n_, produced_);
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<double>(direction_);
    level_ += direction_;
    if (level_ >= peak_) direction_ = -1;
    if (level_ <= -peak_) direction_ = 1;
  }
  produced_ += static_cast<int64_t>(count);
  return static_cast<int64_t>(count);
}

std::vector<double> Materialize(sim::StreamSource* source) {
  NMC_CHECK(source != nullptr);
  std::vector<double> values(static_cast<size_t>(source->length()));
  std::span<double> remaining(values);
  int64_t filled;
  while (!remaining.empty() &&
         (filled = source->FillChunk(remaining)) > 0) {
    remaining = remaining.subspan(static_cast<size_t>(filled));
  }
  NMC_CHECK(remaining.empty());
  return values;
}

}  // namespace nmc::streams
