#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace nmc::streams {

/// Zipf-distributed sampler over the universe {0, ..., m-1}:
/// P[i] proportional to (i + 1)^{-s}. s = 0 is uniform. Skewed item
/// frequencies are the standard workload for frequency-moment sketches
/// (F2's value is dominated by heavy items under skew).
class ZipfSampler {
 public:
  /// Precomputes the CDF in O(m). Requires m >= 1 and s >= 0.
  ZipfSampler(int64_t universe, double exponent);

  /// Draws one item in O(log m).
  int64_t Sample(common::Rng* rng) const;

  int64_t universe() const { return static_cast<int64_t>(cdf_.size()); }

  /// Exact probability of item i.
  double Probability(int64_t item) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace nmc::streams

