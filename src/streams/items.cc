#include "streams/items.h"

#include "common/check.h"
#include "common/rng.h"
#include "streams/zipf.h"

namespace nmc::streams {

std::vector<ItemUpdate> ZipfInsertStream(int64_t n, int64_t universe,
                                         double zipf_exponent, uint64_t seed) {
  NMC_CHECK_GE(n, 0);
  common::Rng rng(seed);
  ZipfSampler zipf(universe, zipf_exponent);
  std::vector<ItemUpdate> updates(static_cast<size_t>(n));
  for (auto& u : updates) {
    u.item = zipf.Sample(&rng);
    u.sign = 1;
  }
  return updates;
}

std::vector<ItemUpdate> ZipfTurnstileStream(int64_t n, int64_t universe,
                                            double zipf_exponent,
                                            double delete_fraction,
                                            uint64_t seed) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(delete_fraction, 0.0);
  NMC_CHECK_LT(delete_fraction, 1.0);
  common::Rng rng(seed);
  ZipfSampler zipf(universe, zipf_exponent);
  std::vector<ItemUpdate> updates;
  updates.reserve(static_cast<size_t>(n));
  std::vector<int64_t> live;  // multiset of inserted-but-not-deleted items
  for (int64_t t = 0; t < n; ++t) {
    if (!live.empty() && rng.Bernoulli(delete_fraction)) {
      const size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      updates.push_back(ItemUpdate{live[idx], -1});
      live[idx] = live.back();
      live.pop_back();
    } else {
      const int64_t item = zipf.Sample(&rng);
      updates.push_back(ItemUpdate{item, 1});
      live.push_back(item);
    }
  }
  return updates;
}

std::vector<ItemUpdate> PermutedItemStream(std::vector<ItemUpdate> updates,
                                           uint64_t seed) {
  common::Rng rng(seed);
  rng.Shuffle(&updates);
  return updates;
}

int64_t ExactF2(const std::vector<ItemUpdate>& updates, int64_t universe) {
  std::vector<int64_t> counts(static_cast<size_t>(universe), 0);
  for (const auto& u : updates) {
    NMC_CHECK_GE(u.item, 0);
    NMC_CHECK_LT(u.item, universe);
    counts[static_cast<size_t>(u.item)] += u.sign;
  }
  int64_t f2 = 0;
  for (int64_t c : counts) f2 += c * c;
  return f2;
}

std::vector<int64_t> ExactF2Prefix(const std::vector<ItemUpdate>& updates,
                                   int64_t universe) {
  std::vector<int64_t> counts(static_cast<size_t>(universe), 0);
  std::vector<int64_t> prefix(updates.size());
  int64_t f2 = 0;
  for (size_t t = 0; t < updates.size(); ++t) {
    const auto& u = updates[t];
    NMC_CHECK_GE(u.item, 0);
    NMC_CHECK_LT(u.item, universe);
    int64_t& c = counts[static_cast<size_t>(u.item)];
    // (c + s)^2 - c^2 = 2*c*s + 1 for s in {-1, +1}.
    f2 += 2 * c * u.sign + 1;
    c += u.sign;
    prefix[t] = f2;
  }
  return prefix;
}

}  // namespace nmc::streams
