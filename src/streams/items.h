#pragma once

#include <cstdint>
#include <vector>

namespace nmc::streams {

/// One turnstile update for the F2 application (Section 5.1): item id
/// alpha_t from the universe [m] and z_t in {-1, +1} (insert/delete).
struct ItemUpdate {
  int64_t item = 0;
  int sign = 1;
};

/// Insert-only Zipf stream: n insertions of Zipf(s)-distributed items.
std::vector<ItemUpdate> ZipfInsertStream(int64_t n, int64_t universe,
                                         double zipf_exponent, uint64_t seed);

/// Turnstile stream with deletions: each update is an insertion with
/// probability (1 - delete_fraction); otherwise it deletes one previously
/// inserted (and not yet deleted) occurrence, chosen uniformly. The
/// per-item counts m_i(t) are therefore non-monotonic but never negative.
std::vector<ItemUpdate> ZipfTurnstileStream(int64_t n, int64_t universe,
                                            double zipf_exponent,
                                            double delete_fraction,
                                            uint64_t seed);

/// Randomly permutes an item stream (the random-permutation model applied
/// to turnstile updates, as required by Corollary 5.1).
std::vector<ItemUpdate> PermutedItemStream(std::vector<ItemUpdate> updates,
                                           uint64_t seed);

/// Exact F2 of the stream prefix counts after all updates:
/// sum_i m_i(n)^2. Used as ground truth in tests and benches.
int64_t ExactF2(const std::vector<ItemUpdate>& updates, int64_t universe);

/// Exact per-prefix F2 values (F2 after each update), computed
/// incrementally in O(n).
std::vector<int64_t> ExactF2Prefix(const std::vector<ItemUpdate>& updates,
                                   int64_t universe);

}  // namespace nmc::streams

