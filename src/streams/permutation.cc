#include "streams/permutation.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::streams {

std::vector<double> RandomlyPermuted(std::vector<double> values,
                                     uint64_t seed) {
  common::Rng rng(seed);
  rng.Shuffle(&values);
  return values;
}

std::vector<double> SignMultiset(int64_t n, double fraction_positive) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(fraction_positive, 0.0);
  NMC_CHECK_LE(fraction_positive, 1.0);
  const int64_t positives =
      static_cast<int64_t>(fraction_positive * static_cast<double>(n));
  std::vector<double> values(static_cast<size_t>(n), -1.0);
  for (int64_t i = 0; i < positives; ++i) values[static_cast<size_t>(i)] = 1.0;
  return values;
}

std::vector<double> OscillatingMultiset(int64_t n) {
  NMC_CHECK_GE(n, 0);
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    values[static_cast<size_t>(t)] = std::sin(0.37 * td) * std::cos(0.011 * td * td);
  }
  return values;
}

std::vector<double> SkewedMultiset(int64_t n, int64_t num_heavy,
                                   double delta) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(num_heavy, 0);
  NMC_CHECK_LE(num_heavy, n);
  NMC_CHECK_GE(delta, 0.0);
  NMC_CHECK_LE(delta, 1.0);
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (i < num_heavy) {
      values[static_cast<size_t>(i)] = (i % 2 == 0) ? 1.0 : -1.0;
    } else {
      values[static_cast<size_t>(i)] = (i % 2 == 0) ? delta : -delta;
    }
  }
  return values;
}

std::vector<double> BlockMultiset(int64_t n) {
  NMC_CHECK_GE(n, 0);
  std::vector<double> values(static_cast<size_t>(n), -1.0);
  for (int64_t i = 0; i < n / 2; ++i) values[static_cast<size_t>(i)] = 1.0;
  return values;
}

std::vector<double> MakeAdversaryMultiset(const std::string& name, int64_t n) {
  if (name == "balanced") return SignMultiset(n, 0.5);
  if (name == "biased") return SignMultiset(n, 0.7);
  if (name == "oscillating") return OscillatingMultiset(n);
  if (name == "skewed") return SkewedMultiset(n, n / 100, 0.01);
  if (name == "blocks") return BlockMultiset(n);
  NMC_CHECK(false);
  return {};
}

}  // namespace nmc::streams
