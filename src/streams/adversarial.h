#pragma once

#include <cstdint>
#include <vector>

namespace nmc::streams {

/// Fully adversarial (ordered) streams: the inputs behind the Omega(n)
/// lower bound of Arackaparambil et al. discussed in Section 1.1. No
/// sublinear protocol can track these in order; the benches contrast them
/// with random permutations of the same multiset.

/// +1, -1, +1, -1, ...: the canonical worst case — the true count
/// alternates 1, 0, 1, 0 and every missed update makes the relative error
/// unbounded.
std::vector<double> AlternatingStream(int64_t n);

/// Climbs to `peak` (+1 steps), then repeatedly crosses zero with ±1 swings
/// of width 2*peak. Between crossings the counter looks well-behaved, so
/// protocols that only adapt to |S| are repeatedly lured into undersampling.
std::vector<double> SawtoothStream(int64_t n, int64_t peak);

}  // namespace nmc::streams

