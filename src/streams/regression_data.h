#pragma once

#include <cstdint>
#include <vector>

namespace nmc::streams {

/// One training example for the Bayesian linear regression application
/// (Section 5.2): row vector x in R^d and response y.
struct RegressionSample {
  std::vector<double> x;
  double y = 0.0;
};

/// Parameters of the synthetic regression workload.
struct RegressionDataOptions {
  int dim = 4;
  /// Noise precision beta: y = w* . x + N(0, 1/beta).
  double noise_precision = 25.0;
  /// Features are uniform in [-feature_scale, feature_scale] (bounded, as
  /// the permutation model requires).
  double feature_scale = 1.0;
  uint64_t seed = 1;
};

/// The generated dataset plus the ground-truth weights behind it.
struct RegressionData {
  std::vector<RegressionSample> samples;
  std::vector<double> true_weights;
};

/// Draws w* from N(0, I_d) and n bounded samples, then randomly permutes
/// the samples (the model of Theorem 3.4, which Section 5.2 assumes).
RegressionData GenerateRegressionData(int64_t n,
                                      const RegressionDataOptions& options);

}  // namespace nmc::streams

