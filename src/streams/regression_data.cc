#include "streams/regression_data.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::streams {

RegressionData GenerateRegressionData(int64_t n,
                                      const RegressionDataOptions& options) {
  NMC_CHECK_GE(n, 0);
  NMC_CHECK_GE(options.dim, 1);
  NMC_CHECK_GT(options.noise_precision, 0.0);
  NMC_CHECK_GT(options.feature_scale, 0.0);

  common::Rng rng(options.seed);
  RegressionData data;
  data.true_weights.resize(static_cast<size_t>(options.dim));
  for (double& w : data.true_weights) w = rng.Gaussian();

  const double noise_stddev = 1.0 / std::sqrt(options.noise_precision);
  data.samples.resize(static_cast<size_t>(n));
  for (auto& sample : data.samples) {
    sample.x.resize(static_cast<size_t>(options.dim));
    double dot = 0.0;
    for (int j = 0; j < options.dim; ++j) {
      const double xj =
          options.feature_scale * (2.0 * rng.UniformDouble() - 1.0);
      sample.x[static_cast<size_t>(j)] = xj;
      dot += xj * data.true_weights[static_cast<size_t>(j)];
    }
    sample.y = dot + rng.Gaussian(0.0, noise_stddev);
  }
  rng.Shuffle(&data.samples);
  return data;
}

}  // namespace nmc::streams
