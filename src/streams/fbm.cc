#include "streams/fbm.h"

#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/rng.h"
#include "streams/fft.h"

namespace nmc::streams {

double FgnAutocovariance(double hurst, int64_t lag) {
  NMC_CHECK_GT(hurst, 0.0);
  NMC_CHECK_LT(hurst, 1.0);
  const double h = std::fabs(static_cast<double>(lag));
  const double two_h = 2.0 * hurst;
  return 0.5 * (std::pow(h + 1.0, two_h) - 2.0 * std::pow(h, two_h) +
                std::pow(std::fabs(h - 1.0), two_h));
}

std::vector<double> FgnDaviesHarte(int64_t n, double hurst, uint64_t seed) {
  NMC_CHECK_GE(n, 1);
  NMC_CHECK_GT(hurst, 0.0);
  NMC_CHECK_LT(hurst, 1.0);

  // Circulant embedding of the (N+1)-point covariance, N a power of two
  // >= n, into a circulant of size m = 2N whose eigenvalues are the FFT of
  // its first row.
  const size_t big_n = NextPowerOfTwo(static_cast<size_t>(n));
  const size_t m = 2 * big_n;

  std::vector<std::complex<double>> row(m);
  for (size_t j = 0; j <= big_n; ++j) {
    row[j] = FgnAutocovariance(hurst, static_cast<int64_t>(j));
  }
  for (size_t j = 1; j < big_n; ++j) row[m - j] = row[j];

  Fft(&row);
  std::vector<double> lambda(m);
  for (size_t j = 0; j < m; ++j) {
    double eig = row[j].real();
    // The fGn embedding is provably non-negative definite; tolerate only
    // floating-point dust below zero.
    NMC_CHECK_GT(eig, -1e-8);
    lambda[j] = std::max(eig, 0.0);
  }

  common::Rng rng(seed);
  std::vector<std::complex<double>> z(m);
  const double md = static_cast<double>(m);
  z[0] = std::sqrt(lambda[0] / md) * rng.Gaussian();
  z[big_n] = std::sqrt(lambda[big_n] / md) * rng.Gaussian();
  for (size_t j = 1; j < big_n; ++j) {
    const double scale = std::sqrt(lambda[j] / (2.0 * md));
    const std::complex<double> g(rng.Gaussian(), rng.Gaussian());
    z[j] = scale * g;
    z[m - j] = std::conj(z[j]);
  }

  Fft(&z);
  std::vector<double> fgn(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    fgn[static_cast<size_t>(t)] = z[static_cast<size_t>(t)].real();
  }
  return fgn;
}

std::vector<double> FgnHosking(int64_t n, double hurst, uint64_t seed) {
  NMC_CHECK_GE(n, 1);
  NMC_CHECK_GT(hurst, 0.0);
  NMC_CHECK_LT(hurst, 1.0);

  common::Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(n));
  x[0] = rng.Gaussian();  // gamma(0) = 1
  if (n == 1) return x;

  // Durbin-Levinson recursion for the conditional mean/variance of the
  // next value given the past.
  std::vector<double> phi(static_cast<size_t>(n), 0.0);
  std::vector<double> phi_prev(static_cast<size_t>(n), 0.0);
  double v = 1.0;

  for (int64_t t = 1; t < n; ++t) {
    double numerator = FgnAutocovariance(hurst, t);
    for (int64_t j = 1; j < t; ++j) {
      numerator -= phi_prev[static_cast<size_t>(j)] *
                   FgnAutocovariance(hurst, t - j);
    }
    const double reflection = numerator / v;
    phi[static_cast<size_t>(t)] = reflection;
    for (int64_t j = 1; j < t; ++j) {
      phi[static_cast<size_t>(j)] =
          phi_prev[static_cast<size_t>(j)] -
          reflection * phi_prev[static_cast<size_t>(t - j)];
    }
    v *= (1.0 - reflection * reflection);
    NMC_CHECK_GT(v, 0.0);

    double mean = 0.0;
    for (int64_t j = 1; j <= t; ++j) {
      mean += phi[static_cast<size_t>(j)] * x[static_cast<size_t>(t - j)];
    }
    x[static_cast<size_t>(t)] = mean + std::sqrt(v) * rng.Gaussian();
    std::swap(phi, phi_prev);
    std::fill(phi.begin(), phi.end(), 0.0);
  }
  return x;
}

std::vector<double> CumulativeSum(const std::vector<double>& increments) {
  std::vector<double> path(increments.size());
  double sum = 0.0;
  for (size_t t = 0; t < increments.size(); ++t) {
    sum += increments[t];
    path[t] = sum;
  }
  return path;
}

}  // namespace nmc::streams
