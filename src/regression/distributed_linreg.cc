#include "regression/distributed_linreg.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::regression {

namespace {

// Index of (i, j), i <= j, in a row-major upper triangle of a d x d matrix.
size_t TriangleIndex(int i, int j, int d) {
  NMC_CHECK_LE(i, j);
  return static_cast<size_t>(i) * static_cast<size_t>(d) -
         static_cast<size_t>(i) * static_cast<size_t>(i + 1) / 2 +
         static_cast<size_t>(j);
}

}  // namespace

DistributedLinRegTracker::DistributedLinRegTracker(
    int num_sites, const DistributedLinRegOptions& options)
    : num_sites_(num_sites), options_(options) {
  NMC_CHECK_GE(num_sites, 1);
  NMC_CHECK_GT(options.feature_bound, 0.0);
  NMC_CHECK_GT(options.response_bound, 0.0);
  const double beta = options.model.noise_precision;
  xx_scale_ = beta * options.feature_bound * options.feature_bound;
  xy_scale_ = beta * options.feature_bound * options.response_bound;

  common::Rng seeder(options.seed ^ 0x5bd1e995cc9e2d51ULL);
  core::CounterOptions counter_options;
  counter_options.epsilon = options.counter_epsilon;
  counter_options.horizon_n = options.horizon_n;
  counter_options.alpha = options.alpha;
  counter_options.beta = options.beta;
  counter_options.drift_mode = core::DriftMode::kZeroDrift;

  const int d = options.model.dim;
  xx_counters_.reserve(static_cast<size_t>(d) * static_cast<size_t>(d + 1) / 2);
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      counter_options.seed = seeder.NextU64();
      xx_counters_.push_back(std::make_unique<core::NonMonotonicCounter>(
          num_sites, counter_options));
    }
  }
  xy_counters_.reserve(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    counter_options.seed = seeder.NextU64();
    xy_counters_.push_back(std::make_unique<core::NonMonotonicCounter>(
        num_sites, counter_options));
  }
}

core::NonMonotonicCounter* DistributedLinRegTracker::XxCounter(int i, int j) {
  return xx_counters_[TriangleIndex(i, j, options_.model.dim)].get();
}

const core::NonMonotonicCounter* DistributedLinRegTracker::XxCounter(
    int i, int j) const {
  return xx_counters_[TriangleIndex(i, j, options_.model.dim)].get();
}

void DistributedLinRegTracker::ProcessUpdate(int site_id, const Vector& x,
                                             double y) {
  const int d = options_.model.dim;
  NMC_CHECK_EQ(x.size(), static_cast<size_t>(d));
  NMC_CHECK_LE(std::fabs(y), options_.response_bound);
  const double beta = options_.model.noise_precision;
  for (int i = 0; i < d; ++i) {
    NMC_CHECK_LE(std::fabs(x[static_cast<size_t>(i)]),
                 options_.feature_bound);
    for (int j = i; j < d; ++j) {
      const double value = beta * x[static_cast<size_t>(i)] *
                           x[static_cast<size_t>(j)] / xx_scale_;
      XxCounter(i, j)->ProcessUpdate(site_id, value);
    }
    const double value = beta * y * x[static_cast<size_t>(i)] / xy_scale_;
    xy_counters_[static_cast<size_t>(i)]->ProcessUpdate(site_id, value);
  }
  ++updates_processed_;
}

Matrix DistributedLinRegTracker::TrackedPrecision() const {
  const int d = options_.model.dim;
  Matrix precision(d, d);
  for (int i = 0; i < d; ++i) {
    precision.At(i, i) = 1.0 / options_.model.prior_variance;
  }
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      const double tracked = XxCounter(i, j)->Estimate() * xx_scale_;
      precision.At(i, j) += tracked;
      if (i != j) precision.At(j, i) += tracked;
    }
  }
  return precision;
}

Vector DistributedLinRegTracker::TrackedMoment() const {
  const int d = options_.model.dim;
  Vector moment(static_cast<size_t>(d), 0.0);
  for (int i = 0; i < d; ++i) {
    moment[static_cast<size_t>(i)] =
        xy_counters_[static_cast<size_t>(i)]->Estimate() * xy_scale_;
  }
  return moment;
}

bool DistributedLinRegTracker::PosteriorMean(Vector* mean) const {
  return SolveSpd(TrackedPrecision(), TrackedMoment(), mean);
}

bool DistributedLinRegTracker::Predict(const Vector& x,
                                       PredictiveDistribution* out) const {
  return regression::Predict(TrackedPrecision(), TrackedMoment(),
                             options_.model.noise_precision, x, out);
}

sim::MessageStats DistributedLinRegTracker::stats() const {
  sim::MessageStats total;
  for (const auto& c : xx_counters_) total += c->stats();
  for (const auto& c : xy_counters_) total += c->stats();
  return total;
}

}  // namespace nmc::regression
