#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/nonmonotonic_counter.h"
#include "regression/bayes_linreg.h"
#include "regression/matrix.h"
#include "sim/message.h"

namespace nmc::regression {

/// Parameters of the distributed posterior tracker.
struct DistributedLinRegOptions {
  BayesLinRegOptions model;
  /// Per-entry relative tracking accuracy.
  double counter_epsilon = 0.05;
  int64_t horizon_n = 1;
  /// A priori bounds on |x_j| and |y| (the permutation model assumes
  /// bounded data); counter updates are rescaled into [-1, 1] with them.
  double feature_bound = 1.0;
  double response_bound = 8.0;
  /// Eq. (1) constants forwarded to the entry counters.
  double alpha = 2.0;
  double beta = 2.0;
  uint64_t seed = 1;
};

/// Section 5.2: continuous distributed tracking of the Bayesian linear
/// regression posterior. The precision matrix's data part beta*A^T A is
/// symmetric, so d(d+1)/2 Non-monotonic Counters track its upper triangle
/// and d more track beta*A^T y; every entry stream is a bounded sequence
/// that is randomly permuted along with the training data, so Theorem 3.4
/// applies per counter and the total cost is Õ(sqrt(k n) d^2 / eps).
/// The posterior is recovered as N(Lambda^{-1} b, Lambda^{-1}) from the
/// tracked entries plus the (known) prior; as the paper notes, the
/// recovered mean's accuracy additionally depends on the conditioning of
/// Lambda.
class DistributedLinRegTracker {
 public:
  DistributedLinRegTracker(int num_sites,
                           const DistributedLinRegOptions& options);

  int num_sites() const { return num_sites_; }

  /// Feeds one training example arriving at `site_id`.
  void ProcessUpdate(int site_id, const Vector& x, double y);

  /// Assembles the tracked precision matrix Lambda_hat (prior + tracked
  /// data part).
  Matrix TrackedPrecision() const;

  /// Assembles the tracked moment vector b_hat.
  Vector TrackedMoment() const;

  /// Posterior mean from the tracked quantities; false if Lambda_hat lost
  /// positive definiteness (possible only through tracking error).
  bool PosteriorMean(Vector* mean) const;

  /// Posterior predictive distribution at a query point, from the tracked
  /// posterior (coordinator-side; costs no communication).
  bool Predict(const Vector& x, PredictiveDistribution* out) const;

  /// Aggregate communication across all entry counters.
  sim::MessageStats stats() const;

  int64_t updates_processed() const { return updates_processed_; }

 private:
  core::NonMonotonicCounter* XxCounter(int i, int j);
  const core::NonMonotonicCounter* XxCounter(int i, int j) const;

  int num_sites_;
  DistributedLinRegOptions options_;
  double xx_scale_;  // counter update = beta x_i x_j / xx_scale_
  double xy_scale_;  // counter update = beta y x_i / xy_scale_
  /// Upper triangle, row-major: (i, j) for i <= j.
  std::vector<std::unique_ptr<core::NonMonotonicCounter>> xx_counters_;
  std::vector<std::unique_ptr<core::NonMonotonicCounter>> xy_counters_;
  int64_t updates_processed_ = 0;
};

}  // namespace nmc::regression

