#pragma once

#include <cstdint>

#include "regression/matrix.h"

namespace nmc::regression {

/// Prior and noise model of the Bayesian linear regression (Section 5.2,
/// following Bishop): w ~ N(m0, S0) with S0 = prior_variance * I and
/// m0 = 0; observation noise precision beta.
struct BayesLinRegOptions {
  int dim = 4;
  double prior_variance = 10.0;
  double noise_precision = 25.0;
};

/// Exact streaming posterior: maintains the precision matrix
/// Lambda_t = S0^{-1} + beta A_t^T A_t and b_t = S0^{-1} m0 + beta A_t^T y_t
/// (eq. (3) of the paper); the posterior over w is N(Lambda^{-1} b,
/// Lambda^{-1}). O(d^2) per update. This is both the centralized reference
/// and the recovery formula the distributed tracker applies to its tracked
/// entries.
class ExactBayesLinReg {
 public:
  explicit ExactBayesLinReg(const BayesLinRegOptions& options);

  /// Incorporates one training example (x has size dim).
  void Update(const Vector& x, double y);

  /// Lambda_t (precision of the posterior).
  const Matrix& precision() const { return precision_; }

  /// b_t.
  const Vector& moment() const { return moment_; }

  /// Posterior mean Lambda^{-1} b. Returns false if the precision matrix
  /// is not positive definite (cannot happen for the exact recursion; the
  /// signature matches the tracked variant).
  bool PosteriorMean(Vector* mean) const;

  int64_t updates() const { return updates_; }

 private:
  BayesLinRegOptions options_;
  Matrix precision_;
  Vector moment_;
  int64_t updates_ = 0;
};

/// The posterior predictive distribution at a query point (Bishop §3.3.2):
/// y* | x* ~ N(m^T x*, 1/beta + x*^T Lambda^{-1} x*). Shared by the exact
/// model and the distributed tracker (both expose Lambda and b).
struct PredictiveDistribution {
  double mean = 0.0;
  double variance = 0.0;
};

/// Computes the predictive distribution from a precision matrix and moment
/// vector. Returns false if `precision` is not positive definite.
bool Predict(const Matrix& precision, const Vector& moment,
             double noise_precision, const Vector& x,
             PredictiveDistribution* out);

}  // namespace nmc::regression

