#include "regression/matrix.h"

#include <cmath>

#include "common/check.h"

namespace nmc::regression {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0) {
  NMC_CHECK_GE(rows, 0);
  NMC_CHECK_GE(cols, 0);
}

Matrix Matrix::Identity(int dim) {
  Matrix m(dim, dim);
  for (int i = 0; i < dim; ++i) m.At(i, i) = 1.0;
  return m;
}

double& Matrix::At(int r, int c) {
  NMC_CHECK_GE(r, 0);
  NMC_CHECK_LT(r, rows_);
  NMC_CHECK_GE(c, 0);
  NMC_CHECK_LT(c, cols_);
  return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
               static_cast<size_t>(c)];
}

double Matrix::At(int r, int c) const {
  return const_cast<Matrix*>(this)->At(r, c);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  NMC_CHECK_EQ(rows_, other.rows_);
  NMC_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix Matrix::operator*(const Matrix& other) const {
  NMC_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      const double a = At(i, j);
      if (a == 0.0) continue;
      for (int c = 0; c < other.cols_; ++c) {
        out.At(i, c) += a * other.At(j, c);
      }
    }
  }
  return out;
}

void Matrix::AddOuterProduct(const Vector& x, double scale) {
  NMC_CHECK_EQ(rows_, cols_);
  NMC_CHECK_EQ(static_cast<size_t>(rows_), x.size());
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) {
      At(i, j) += scale * x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
    }
  }
}

Vector Matrix::MatVec(const Vector& v) const {
  NMC_CHECK_EQ(static_cast<size_t>(cols_), v.size());
  Vector out(static_cast<size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < cols_; ++j) acc += At(i, j) * v[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = acc;
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  NMC_CHECK_EQ(a.rows_, b.rows_);
  NMC_CHECK_EQ(a.cols_, b.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data_[i] - b.data_[i]));
  }
  return max_diff;
}

bool CholeskyFactor(const Matrix& a, Matrix* lower) {
  NMC_CHECK(lower != nullptr);
  NMC_CHECK_EQ(a.rows(), a.cols());
  const int d = a.rows();
  *lower = Matrix(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j <= i; ++j) {
      double acc = a.At(i, j);
      for (int k = 0; k < j; ++k) acc -= lower->At(i, k) * lower->At(j, k);
      if (i == j) {
        if (acc <= 0.0) return false;
        lower->At(i, i) = std::sqrt(acc);
      } else {
        lower->At(i, j) = acc / lower->At(j, j);
      }
    }
  }
  return true;
}

Vector CholeskySolve(const Matrix& lower, const Vector& b) {
  const int d = lower.rows();
  NMC_CHECK_EQ(lower.cols(), d);
  NMC_CHECK_EQ(b.size(), static_cast<size_t>(d));
  // Forward substitution: L y = b.
  Vector y(static_cast<size_t>(d), 0.0);
  for (int i = 0; i < d; ++i) {
    double acc = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) acc -= lower.At(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = acc / lower.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(static_cast<size_t>(d), 0.0);
  for (int i = d - 1; i >= 0; --i) {
    double acc = y[static_cast<size_t>(i)];
    for (int k = i + 1; k < d; ++k) {
      acc -= lower.At(k, i) * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = acc / lower.At(i, i);
  }
  return x;
}

bool SolveSpd(const Matrix& a, const Vector& b, Vector* x) {
  NMC_CHECK(x != nullptr);
  Matrix lower;
  if (!CholeskyFactor(a, &lower)) return false;
  *x = CholeskySolve(lower, b);
  return true;
}

double Norm(const Vector& v) {
  double acc = 0.0;
  for (double value : v) acc += value * value;
  return std::sqrt(acc);
}

double NormDiff(const Vector& a, const Vector& b) {
  NMC_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace nmc::regression
