#pragma once

#include <cstdint>
#include <vector>

namespace nmc::regression {

using Vector = std::vector<double>;

/// Small dense row-major matrix — just enough linear algebra for the
/// Bayesian posterior updates of Section 5.2 (d is a handful, so no
/// blocking or pivoting heroics are warranted).
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  static Matrix Identity(int dim);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& At(int r, int c);
  double At(int r, int c) const;

  Matrix& operator+=(const Matrix& other);
  Matrix operator*(const Matrix& other) const;

  /// A += scale * x x^T (x must have size rows == cols).
  void AddOuterProduct(const Vector& x, double scale);

  /// A * v.
  Vector MatVec(const Vector& v) const;

  /// Max |a_ij - b_ij|.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix. Returns false (leaving `lower` unspecified) if a non-positive
/// pivot shows A is not PD — for the tracked precision matrix this can
/// happen only if the counters' errors were large enough to destroy
/// definiteness, which the caller reports rather than aborts on.
bool CholeskyFactor(const Matrix& a, Matrix* lower);

/// Solves L L^T x = b given the Cholesky factor L.
Vector CholeskySolve(const Matrix& lower, const Vector& b);

/// Solves A x = b for symmetric positive-definite A; returns false if A is
/// not PD.
bool SolveSpd(const Matrix& a, const Vector& b, Vector* x);

/// Euclidean norm and norm of difference, for error reporting.
double Norm(const Vector& v);
double NormDiff(const Vector& a, const Vector& b);

}  // namespace nmc::regression

