#include "regression/bayes_linreg.h"

#include "common/check.h"

namespace nmc::regression {

ExactBayesLinReg::ExactBayesLinReg(const BayesLinRegOptions& options)
    : options_(options),
      precision_(options.dim, options.dim),
      moment_(static_cast<size_t>(options.dim), 0.0) {
  NMC_CHECK_GE(options.dim, 1);
  NMC_CHECK_GT(options.prior_variance, 0.0);
  NMC_CHECK_GT(options.noise_precision, 0.0);
  // S0^{-1} = (1/prior_variance) I; m0 = 0 so b starts at 0.
  for (int i = 0; i < options.dim; ++i) {
    precision_.At(i, i) = 1.0 / options.prior_variance;
  }
}

void ExactBayesLinReg::Update(const Vector& x, double y) {
  NMC_CHECK_EQ(x.size(), static_cast<size_t>(options_.dim));
  precision_.AddOuterProduct(x, options_.noise_precision);
  for (int i = 0; i < options_.dim; ++i) {
    moment_[static_cast<size_t>(i)] +=
        options_.noise_precision * y * x[static_cast<size_t>(i)];
  }
  ++updates_;
}

bool ExactBayesLinReg::PosteriorMean(Vector* mean) const {
  return SolveSpd(precision_, moment_, mean);
}

bool Predict(const Matrix& precision, const Vector& moment,
             double noise_precision, const Vector& x,
             PredictiveDistribution* out) {
  NMC_CHECK(out != nullptr);
  NMC_CHECK_GT(noise_precision, 0.0);
  NMC_CHECK_EQ(x.size(), static_cast<size_t>(precision.rows()));
  Matrix lower;
  if (!CholeskyFactor(precision, &lower)) return false;
  const Vector mean = CholeskySolve(lower, moment);
  const Vector lambda_inv_x = CholeskySolve(lower, x);
  double dot_mean = 0.0, quad = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    dot_mean += mean[j] * x[j];
    quad += x[j] * lambda_inv_x[j];
  }
  out->mean = dot_mean;
  out->variance = 1.0 / noise_precision + quad;
  return true;
}

}  // namespace nmc::regression
