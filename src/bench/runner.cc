#include "bench/runner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <future>

#include "common/check.h"
#include "common/thread_pool.h"
#include "runtime/run.h"
#include "sim/assignment.h"

namespace nmc::bench {

namespace {

/// The deterministic per-trial scalars; everything the fold needs, nothing
/// that depends on scheduling.
struct TrialOutcome {
  int64_t n = 0;
  int64_t messages = 0;
  int64_t violation_steps = 0;
  double max_rel_error = 0.0;
};

TrialOutcome RunTrial(const RepeatSpec& spec, int trial) {
  const auto stream = spec.make_stream(trial);
  auto protocol = spec.make_protocol(trial);
  auto psi = sim::MakeAssignment(spec.psi_name, spec.num_sites,
                                 1000 + static_cast<uint64_t>(trial));
  sim::TrackingOptions tracking;
  tracking.epsilon = spec.epsilon;
  if (spec.legacy_pump) {
    tracking.batch_size = 1;
  } else if (spec.batch_size > 0) {
    tracking.batch_size = spec.batch_size;
  }
  runtime::RunConfig config;
  config.protocol = protocol.get();
  config.stream = &stream;
  config.psi = psi.get();
  config.tracking = tracking;
  const auto result =
      runtime::RunWithTransport(runtime::TransportKind::kSim, config)
          .tracking;
  return TrialOutcome{result.n, result.messages, result.violation_steps,
                      result.max_rel_error};
}

}  // namespace

RunSummary RunRepeated(const RepeatSpec& spec, int threads) {
  NMC_CHECK_GT(spec.trials, 0);
  NMC_CHECK_GE(spec.num_sites, 1);
  NMC_CHECK(spec.make_stream != nullptr);
  NMC_CHECK(spec.make_protocol != nullptr);

  const auto start = std::chrono::steady_clock::now();

  std::vector<TrialOutcome> outcomes(static_cast<size_t>(spec.trials));
  const int workers = std::max(1, std::min(threads, spec.trials));
  if (workers == 1) {
    for (int trial = 0; trial < spec.trials; ++trial) {
      outcomes[static_cast<size_t>(trial)] = RunTrial(spec, trial);
    }
  } else {
    common::ThreadPool pool(workers);
    std::vector<std::future<TrialOutcome>> futures;
    futures.reserve(static_cast<size_t>(spec.trials));
    for (int trial = 0; trial < spec.trials; ++trial) {
      futures.push_back(
          pool.Submit([&spec, trial]() { return RunTrial(spec, trial); }));
    }
    for (int trial = 0; trial < spec.trials; ++trial) {
      outcomes[static_cast<size_t>(trial)] =
          futures[static_cast<size_t>(trial)].get();
    }
  }

  // Fold in trial order on this thread: the arithmetic (and therefore
  // every last bit of the aggregates) is independent of how the trials
  // were scheduled above.
  RunSummary summary;
  summary.trials = spec.trials;
  for (const TrialOutcome& outcome : outcomes) {
    summary.messages_stat.Add(static_cast<double>(outcome.messages));
    assert(outcome.n > 0 && "Repeat trial ran an empty stream");
    if (outcome.n > 0) {
      summary.violation_fraction +=
          static_cast<double>(outcome.violation_steps) /
          static_cast<double>(outcome.n);
    }
    if (outcome.violation_steps > 0) ++summary.trials_with_violation;
    summary.max_rel_error =
        std::max(summary.max_rel_error, outcome.max_rel_error);
    summary.total_updates += outcome.n;
  }
  summary.mean_messages = summary.messages_stat.mean();
  summary.stderr_messages = summary.messages_stat.stderr_mean();
  summary.violation_fraction /= spec.trials;

  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return summary;
}

}  // namespace nmc::bench
