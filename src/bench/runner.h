#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "sim/protocol.h"

namespace nmc::bench {

/// Aggregated outcome of repeated tracked runs (mean over trials).
struct RunSummary {
  double mean_messages = 0.0;
  double stderr_messages = 0.0;
  /// Fraction of steps violating the epsilon guarantee, averaged over
  /// trials. An empty-stream trial contributes exactly 0.0 (and trips an
  /// assert in debug builds: benchmarking a zero-length stream is a
  /// harness bug, not a measurement).
  double violation_fraction = 0.0;
  /// Number of trials with at least one violating step.
  int trials_with_violation = 0;
  double max_rel_error = 0.0;
  int trials = 0;
  /// Sum of stream lengths over all trials — the updates the simulator
  /// actually pumped, for throughput accounting.
  int64_t total_updates = 0;
  /// Wall-clock time of the whole batch. Unlike every field above, this is
  /// NOT deterministic across thread counts or machines.
  double wall_seconds = 0.0;
  /// Full per-trial message-count accumulator (mean_messages and
  /// stderr_messages are its projections); lets downstream consumers pool
  /// batches via RunningStat::Merge without losing moments.
  common::RunningStat messages_stat;

  double updates_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total_updates) / wall_seconds
               : 0.0;
  }
};

/// One batch of repeated tracked runs. The factories receive the trial
/// index and must derive all randomness from it, so any trial can be run
/// on any worker (or re-run) and produce the same result.
struct RepeatSpec {
  int trials = 1;
  int num_sites = 1;
  double epsilon = 0.1;
  std::string psi_name = "round_robin";
  /// Harness batch size (see TrackingOptions::batch_size); 0 keeps the
  /// harness default. legacy_pump forces batch size 1 — combined with
  /// legacy-coin protocol factories it reproduces the pre-batching pump
  /// bit for bit (the --legacy_pump bench flag).
  int batch_size = 0;
  bool legacy_pump = false;
  std::function<std::vector<double>(int)> make_stream;
  std::function<std::unique_ptr<sim::Protocol>(int)> make_protocol;
};

/// Runs the batch, fanning trials across `threads` pool workers
/// (threads <= 1 runs them inline, the legacy serial behavior). Per-trial
/// seeds depend only on the trial index and the per-trial outcomes are
/// folded in trial order on the calling thread, so every statistical field
/// of the result is bit-identical for every thread count.
RunSummary RunRepeated(const RepeatSpec& spec, int threads);

}  // namespace nmc::bench

