#pragma once

#include <string>
#include <vector>

#include "bench/runner.h"
#include "runtime/transport.h"
#include "sim/channel.h"

namespace nmc::bench {

/// One recorded batch of tracked runs, with the configuration that
/// produced it.
struct RunRecord {
  std::string label;
  int trials = 0;
  int num_sites = 0;
  double epsilon = 0.0;
  std::string psi_name;
  RunSummary summary;
};

/// One named scalar a bench records outside the RunRecord vocabulary —
/// throughput-style results (reader queries/sec, update rates, scaling
/// ratios) that have no accuracy/message-count axes. compare_bench.py
/// tracks them as bench/<bench>/<name>.
struct BenchMetric {
  std::string name;
  double value = 0.0;
};

/// Machine-readable record of one bench binary's execution — the unit the
/// perf trajectory is built from (one BENCH_*.json per binary per run).
struct BenchReport {
  std::string bench;
  int threads = 1;
  /// Pump configuration the batches ran under (see --batch/--legacy_pump).
  int batch = 0;
  bool legacy_pump = false;
  std::vector<RunRecord> runs;
  /// Free-form named scalars (see RecordMetric); empty for most benches.
  std::vector<BenchMetric> metrics;
  /// Wall time of the whole binary, not just the recorded batches.
  double wall_seconds = 0.0;

  int64_t total_updates() const;
  double updates_per_sec() const;
  /// Message counts pooled over every trial of every run, combined with
  /// RunningStat::Merge (exact pooled moments, not an average of means).
  common::RunningStat pooled_messages() const;
};

/// Serializes the report as indented JSON (stable key order).
std::string BenchReportToJson(const BenchReport& report);

/// Writes the serialized report to `path`. Returns false and prints to
/// stderr on I/O failure.
bool WriteBenchReport(const std::string& path, const BenchReport& report);

/// ---- Per-binary bench session -------------------------------------------
///
/// The bench_e* binaries are single-threaded at top level, so the session
/// is a plain global: InitBench parses the shared flags, Repeat batches
/// record themselves, FinishBench writes the JSON report if requested.

/// Resolved values of the shared bench flag vocabulary (one declaration,
/// in bench_json.cc's flag table, consumed by every bench binary):
///   --threads=N       worker threads for Repeat batches (0/absent =
///                     hardware concurrency, 1 = legacy serial)
///   --json_out=P      write a BENCH_*.json report to P on FinishBench()
///   --batch=N         harness batch size for Repeat batches (0/absent =
///                     harness default)
///   --legacy_pump     per-update pump + per-coin samplers: reproduces the
///                     pre-batching execution bit for bit
///   --channel=K       fault model: perfect (default) | loss | delay
///   --loss=P          drop probability per hop (with --channel=loss)
///   --dup=P           duplicate probability per hop (with --channel=loss)
///   --delay_prob=P    delay probability per hop (with --channel=delay)
///   --delay_max=T     max delay in ticks (with --channel=delay)
///   --channel_seed=S  channel RNG seed (base; offset per trial)
///   --transport=K     runtime backend: sim (deterministic simulator,
///                     default) | threads (concurrent runtime)
/// Crash schedules need interval lists and stay config-driven (see
/// bench_e14_fault_tolerance), not flag-driven.
struct BenchFlagValues {
  int threads = 1;
  std::string json_out;
  int batch = 0;
  bool legacy_pump = false;
  sim::ChannelConfig channel;
  runtime::TransportKind transport = runtime::TransportKind::kSim;
};

/// Splits argv[1..) into the shared bench flags above and everything else.
/// Shared flags are parsed into *values; unrecognized tokens are appended
/// to *rest in order, for binaries that forward leftovers to another
/// library (bench_micro -> google-benchmark). Prints to stderr and exits 2
/// on a malformed shared-flag value, so every binary rejects bad input the
/// same way.
void PeelBenchFlags(int argc, const char* const* argv,
                    const std::string& bench_name, BenchFlagValues* values,
                    std::vector<std::string>* rest);

/// "supported: --threads=N, ..." — generated from the same table
/// PeelBenchFlags parses with, so help text can never drift from parsing.
std::string BenchFlagHelp();

/// Parses the shared bench flags from argv (see BenchFlagValues). Exits
/// with status 2 on malformed or unknown flags.
void InitBench(int argc, const char* const* argv, const std::string& bench_name);

/// InitBench for binaries with their own flags on top of the shared set:
/// shared flags initialize the session as in InitBench, everything else is
/// appended to *rest for the caller to parse (and reject leftovers from)
/// itself.
void InitBenchRest(int argc, const char* const* argv,
                   const std::string& bench_name,
                   std::vector<std::string>* rest);

/// Thread count resolved by InitBench (1 before InitBench is called).
int BenchThreads();

/// --batch value resolved by InitBench (0 = harness default).
int BenchBatch();

/// True when --legacy_pump was given: Repeat pumps one update per
/// ProcessBatch and the protocol factories in bench_util switch the
/// samplers to kLegacyCoins.
bool BenchLegacyPump();

/// Channel model requested by --channel/--loss/... (kPerfect before
/// InitBench, and by default). The protocol factories in bench_util apply
/// it when it is faulty.
const sim::ChannelConfig& BenchChannel();

/// Runtime backend requested by --transport (kSim before InitBench, and by
/// default).
runtime::TransportKind BenchTransport();

/// Appends a record to the session report (no-op before InitBench).
void RecordRun(const RunRecord& record);

/// Appends a named scalar to the session report's "metrics" array (no-op
/// before InitBench).
void RecordMetric(const std::string& name, double value);

/// Label "repeatNN" for the next auto-recorded batch.
std::string NextRunLabel();

/// Writes the JSON report when --json_out was given. Returns the process
/// exit code for main (0 on success, 1 on write failure).
int FinishBench();

}  // namespace nmc::bench

