#include "bench/bench_json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"

namespace nmc::bench {

namespace {

/// Shortest form that round-trips a double through JSON.
std::string JsonDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that still parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) return candidate;
  }
  return buffer;
}

std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendRun(const RunRecord& run, std::string* out) {
  const RunSummary& s = run.summary;
  *out += "    {\n";
  *out += "      \"label\": " + JsonString(run.label) + ",\n";
  *out += "      \"trials\": " + std::to_string(run.trials) + ",\n";
  *out += "      \"num_sites\": " + std::to_string(run.num_sites) + ",\n";
  *out += "      \"epsilon\": " + JsonDouble(run.epsilon) + ",\n";
  *out += "      \"psi\": " + JsonString(run.psi_name) + ",\n";
  *out += "      \"mean_messages\": " + JsonDouble(s.mean_messages) + ",\n";
  *out += "      \"stderr_messages\": " + JsonDouble(s.stderr_messages) + ",\n";
  *out += "      \"violation_fraction\": " + JsonDouble(s.violation_fraction) +
          ",\n";
  *out += "      \"trials_with_violation\": " +
          std::to_string(s.trials_with_violation) + ",\n";
  *out += "      \"max_rel_error\": " + JsonDouble(s.max_rel_error) + ",\n";
  *out += "      \"total_updates\": " + std::to_string(s.total_updates) + ",\n";
  *out += "      \"wall_seconds\": " + JsonDouble(s.wall_seconds) + ",\n";
  *out += "      \"updates_per_sec\": " + JsonDouble(s.updates_per_sec()) +
          "\n";
  *out += "    }";
}

}  // namespace

int64_t BenchReport::total_updates() const {
  int64_t total = 0;
  for (const RunRecord& run : runs) total += run.summary.total_updates;
  return total;
}

double BenchReport::updates_per_sec() const {
  double batch_seconds = 0.0;
  for (const RunRecord& run : runs) batch_seconds += run.summary.wall_seconds;
  return batch_seconds > 0.0
             ? static_cast<double>(total_updates()) / batch_seconds
             : 0.0;
}

common::RunningStat BenchReport::pooled_messages() const {
  common::RunningStat pooled;
  for (const RunRecord& run : runs) pooled.Merge(run.summary.messages_stat);
  return pooled;
}

std::string BenchReportToJson(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"bench\": " + JsonString(report.bench) + ",\n";
  out += "  \"threads\": " + std::to_string(report.threads) + ",\n";
  out += "  \"batch\": " + std::to_string(report.batch) + ",\n";
  out += std::string("  \"legacy_pump\": ") +
         (report.legacy_pump ? "true" : "false") + ",\n";
  out += "  \"wall_seconds\": " + JsonDouble(report.wall_seconds) + ",\n";
  out += "  \"total_updates\": " + std::to_string(report.total_updates()) +
         ",\n";
  out += "  \"updates_per_sec\": " + JsonDouble(report.updates_per_sec()) +
         ",\n";
  const common::RunningStat pooled = report.pooled_messages();
  out += "  \"pooled_messages\": {\n";
  out += "    \"trials\": " + std::to_string(pooled.count()) + ",\n";
  out += "    \"mean\": " + JsonDouble(pooled.mean()) + ",\n";
  out += "    \"stddev\": " + JsonDouble(pooled.stddev()) + ",\n";
  out += "    \"min\": " + JsonDouble(pooled.min()) + ",\n";
  out += "    \"max\": " + JsonDouble(pooled.max()) + "\n";
  out += "  },\n";
  out += "  \"metrics\": [";
  for (size_t i = 0; i < report.metrics.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"name\": " + JsonString(report.metrics[i].name) + ",\n";
    out += "      \"value\": " + JsonDouble(report.metrics[i].value) + "\n";
    out += "    }";
  }
  out += report.metrics.empty() ? "],\n" : "\n  ],\n";
  out += "  \"runs\": [";
  for (size_t i = 0; i < report.runs.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendRun(report.runs[i], &out);
  }
  out += report.runs.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool WriteBenchReport(const std::string& path, const BenchReport& report) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string json = BenchReportToJson(report);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
  return ok;
}

namespace {

struct BenchSession {
  bool initialized = false;
  BenchReport report;
  std::string json_out;
  int run_counter = 0;
  int batch = 0;
  bool legacy_pump = false;
  sim::ChannelConfig channel;
  runtime::TransportKind transport = runtime::TransportKind::kSim;
  std::chrono::steady_clock::time_point start;
};

BenchSession& Session() {
  static BenchSession session;
  return session;
}

/// The single declaration of the shared bench flag vocabulary. Adding a
/// flag here makes every bench binary (InitBench-based and bench_micro's
/// peeler alike) accept it and mention it in unknown-flag errors.
struct BenchFlagSpec {
  const char* name;   // flag key, without the leading "--"
  const char* usage;  // how it renders in the help string
};

constexpr BenchFlagSpec kBenchFlags[] = {
    {"threads", "--threads=N"},
    {"json_out", "--json_out=PATH"},
    {"batch", "--batch=N"},
    {"legacy_pump", "--legacy_pump"},
    {"channel", "--channel=perfect|loss|delay"},
    {"loss", "--loss=P"},
    {"dup", "--dup=P"},
    {"delay_prob", "--delay_prob=P"},
    {"delay_max", "--delay_max=T"},
    {"channel_seed", "--channel_seed=S"},
    {"transport", "--transport=sim|threads|sockets"},
};

bool IsSharedBenchFlag(const std::string& token) {
  for (const BenchFlagSpec& spec : kBenchFlags) {
    const std::string prefix = std::string("--") + spec.name;
    if (token == prefix) return true;
    if (token.rfind(prefix + "=", 0) == 0) return true;
  }
  return false;
}

/// Reads every shared flag out of `flags` (marking each as queried) into
/// *values. Returns false with *error set on a semantically bad value that
/// common::Flags cannot classify itself (an unknown --channel kind).
bool ConsumeBenchFlags(const common::Flags& flags, BenchFlagValues* values,
                       std::string* error) {
  values->threads = flags.Threads();
  values->json_out = flags.GetString("json_out", "");
  values->batch = static_cast<int>(flags.GetInt("batch", 0));
  values->legacy_pump = flags.GetBool("legacy_pump", false);

  sim::ChannelConfig& channel = values->channel;
  const std::string kind = flags.GetString("channel", "perfect");
  if (kind == "perfect") {
    channel.kind = sim::ChannelConfig::Kind::kPerfect;
  } else if (kind == "loss") {
    channel.kind = sim::ChannelConfig::Kind::kLoss;
  } else if (kind == "delay") {
    channel.kind = sim::ChannelConfig::Kind::kDelay;
  } else {
    *error = "--channel expects perfect|loss|delay, got '" + kind + "'";
    return false;
  }
  channel.loss = flags.GetDouble("loss", channel.loss);
  channel.duplicate = flags.GetDouble("dup", channel.duplicate);
  channel.delay_probability =
      flags.GetDouble("delay_prob", channel.delay_probability);
  channel.max_delay = flags.GetInt("delay_max", channel.max_delay);
  channel.seed = static_cast<uint64_t>(
      flags.GetInt("channel_seed", static_cast<int64_t>(channel.seed)));

  const std::string transport = flags.GetString("transport", "sim");
  if (!runtime::ParseTransportKind(transport, &values->transport)) {
    *error = "--transport expects sim|threads|sockets, got '" + transport + "'";
    return false;
  }
  return true;
}

}  // namespace

std::string BenchFlagHelp() {
  std::string help = "supported:";
  bool first = true;
  for (const BenchFlagSpec& spec : kBenchFlags) {
    help += first ? " " : ", ";
    help += spec.usage;
    first = false;
  }
  return help;
}

void PeelBenchFlags(int argc, const char* const* argv,
                    const std::string& bench_name, BenchFlagValues* values,
                    std::vector<std::string>* rest) {
  std::vector<const char*> ours;
  ours.push_back(argc > 0 ? argv[0] : "bench");
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (IsSharedBenchFlag(token)) {
      ours.push_back(argv[i]);
    } else {
      rest->push_back(token);
    }
  }
  common::Flags flags;
  const common::Status status =
      common::Flags::Parse(static_cast<int>(ours.size()), ours.data(), &flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", bench_name.c_str(),
                 status.message().c_str());
    std::exit(2);
  }
  std::string error;
  if (!ConsumeBenchFlags(flags, values, &error)) {
    std::fprintf(stderr, "%s: %s\n", bench_name.c_str(), error.c_str());
    std::exit(2);
  }
  if (!flags.Malformed().empty()) {
    std::fprintf(stderr, "%s: malformed value for --%s\n", bench_name.c_str(),
                 flags.Malformed().front().c_str());
    std::exit(2);
  }
}

void InitBenchRest(int argc, const char* const* argv,
                   const std::string& bench_name,
                   std::vector<std::string>* rest) {
  BenchSession& session = Session();
  session.initialized = true;
  session.report.bench = bench_name;
  session.start = std::chrono::steady_clock::now();

  BenchFlagValues values;
  PeelBenchFlags(argc, argv, bench_name, &values, rest);
  session.report.threads = values.threads;
  session.json_out = values.json_out;
  session.batch = values.batch;
  session.legacy_pump = values.legacy_pump;
  session.channel = values.channel;
  session.transport = values.transport;
  session.report.batch = session.batch;
  session.report.legacy_pump = session.legacy_pump;
  if (session.report.threads > 1) {
    std::printf("[bench: %d worker threads]\n", session.report.threads);
  }
  if (session.channel.faulty()) {
    const char* kind =
        session.channel.kind == sim::ChannelConfig::Kind::kLoss ? "loss"
                                                                : "delay";
    std::printf("[bench: %s channel installed]\n", kind);
  }
  if (session.transport != runtime::TransportKind::kSim) {
    std::printf("[bench: %s transport]\n",
                runtime::TransportKindName(session.transport));
  }
}

void InitBench(int argc, const char* const* argv,
               const std::string& bench_name) {
  std::vector<std::string> rest;
  InitBenchRest(argc, argv, bench_name, &rest);
  if (!rest.empty()) {
    std::fprintf(stderr, "%s: unknown flag %s (%s)\n", bench_name.c_str(),
                 rest.front().c_str(), BenchFlagHelp().c_str());
    std::exit(2);
  }
}

int BenchThreads() {
  const BenchSession& session = Session();
  return session.initialized ? session.report.threads : 1;
}

int BenchBatch() {
  const BenchSession& session = Session();
  return session.initialized ? session.batch : 0;
}

bool BenchLegacyPump() {
  const BenchSession& session = Session();
  return session.initialized && session.legacy_pump;
}

const sim::ChannelConfig& BenchChannel() {
  return Session().channel;
}

runtime::TransportKind BenchTransport() {
  return Session().transport;
}

void RecordRun(const RunRecord& record) {
  BenchSession& session = Session();
  if (!session.initialized) return;
  session.report.runs.push_back(record);
}

void RecordMetric(const std::string& name, double value) {
  BenchSession& session = Session();
  if (!session.initialized) return;
  session.report.metrics.push_back(BenchMetric{name, value});
}

std::string NextRunLabel() {
  BenchSession& session = Session();
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "repeat%02d", session.run_counter++);
  return buffer;
}

int FinishBench() {
  BenchSession& session = Session();
  if (!session.initialized) return 0;
  session.report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    session.start)
          .count();
  if (session.json_out.empty()) return 0;
  const bool ok = WriteBenchReport(session.json_out, session.report);
  if (ok) {
    std::printf("[bench: wrote %s — %lld updates in %.2fs batch time, "
                "%.0f updates/sec]\n",
                session.json_out.c_str(),
                static_cast<long long>(session.report.total_updates()),
                session.report.wall_seconds,
                session.report.updates_per_sec());
  }
  return ok ? 0 : 1;
}

}  // namespace nmc::bench
