#include "bench/bench_json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"

namespace nmc::bench {

namespace {

/// Shortest form that round-trips a double through JSON.
std::string JsonDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim to the shortest representation that still parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) return candidate;
  }
  return buffer;
}

std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendRun(const RunRecord& run, std::string* out) {
  const RunSummary& s = run.summary;
  *out += "    {\n";
  *out += "      \"label\": " + JsonString(run.label) + ",\n";
  *out += "      \"trials\": " + std::to_string(run.trials) + ",\n";
  *out += "      \"num_sites\": " + std::to_string(run.num_sites) + ",\n";
  *out += "      \"epsilon\": " + JsonDouble(run.epsilon) + ",\n";
  *out += "      \"psi\": " + JsonString(run.psi_name) + ",\n";
  *out += "      \"mean_messages\": " + JsonDouble(s.mean_messages) + ",\n";
  *out += "      \"stderr_messages\": " + JsonDouble(s.stderr_messages) + ",\n";
  *out += "      \"violation_fraction\": " + JsonDouble(s.violation_fraction) +
          ",\n";
  *out += "      \"trials_with_violation\": " +
          std::to_string(s.trials_with_violation) + ",\n";
  *out += "      \"max_rel_error\": " + JsonDouble(s.max_rel_error) + ",\n";
  *out += "      \"total_updates\": " + std::to_string(s.total_updates) + ",\n";
  *out += "      \"wall_seconds\": " + JsonDouble(s.wall_seconds) + ",\n";
  *out += "      \"updates_per_sec\": " + JsonDouble(s.updates_per_sec()) +
          "\n";
  *out += "    }";
}

}  // namespace

int64_t BenchReport::total_updates() const {
  int64_t total = 0;
  for (const RunRecord& run : runs) total += run.summary.total_updates;
  return total;
}

double BenchReport::updates_per_sec() const {
  double batch_seconds = 0.0;
  for (const RunRecord& run : runs) batch_seconds += run.summary.wall_seconds;
  return batch_seconds > 0.0
             ? static_cast<double>(total_updates()) / batch_seconds
             : 0.0;
}

common::RunningStat BenchReport::pooled_messages() const {
  common::RunningStat pooled;
  for (const RunRecord& run : runs) pooled.Merge(run.summary.messages_stat);
  return pooled;
}

std::string BenchReportToJson(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"bench\": " + JsonString(report.bench) + ",\n";
  out += "  \"threads\": " + std::to_string(report.threads) + ",\n";
  out += "  \"batch\": " + std::to_string(report.batch) + ",\n";
  out += std::string("  \"legacy_pump\": ") +
         (report.legacy_pump ? "true" : "false") + ",\n";
  out += "  \"wall_seconds\": " + JsonDouble(report.wall_seconds) + ",\n";
  out += "  \"total_updates\": " + std::to_string(report.total_updates()) +
         ",\n";
  out += "  \"updates_per_sec\": " + JsonDouble(report.updates_per_sec()) +
         ",\n";
  const common::RunningStat pooled = report.pooled_messages();
  out += "  \"pooled_messages\": {\n";
  out += "    \"trials\": " + std::to_string(pooled.count()) + ",\n";
  out += "    \"mean\": " + JsonDouble(pooled.mean()) + ",\n";
  out += "    \"stddev\": " + JsonDouble(pooled.stddev()) + ",\n";
  out += "    \"min\": " + JsonDouble(pooled.min()) + ",\n";
  out += "    \"max\": " + JsonDouble(pooled.max()) + "\n";
  out += "  },\n";
  out += "  \"runs\": [";
  for (size_t i = 0; i < report.runs.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendRun(report.runs[i], &out);
  }
  out += report.runs.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool WriteBenchReport(const std::string& path, const BenchReport& report) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string json = BenchReportToJson(report);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
  return ok;
}

namespace {

struct BenchSession {
  bool initialized = false;
  BenchReport report;
  std::string json_out;
  int run_counter = 0;
  int batch = 0;
  bool legacy_pump = false;
  std::chrono::steady_clock::time_point start;
};

BenchSession& Session() {
  static BenchSession session;
  return session;
}

}  // namespace

void InitBench(int argc, const char* const* argv,
               const std::string& bench_name) {
  BenchSession& session = Session();
  session.initialized = true;
  session.report.bench = bench_name;
  session.start = std::chrono::steady_clock::now();

  common::Flags flags;
  const common::Status status = common::Flags::Parse(argc, argv, &flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", bench_name.c_str(),
                 status.message().c_str());
    std::exit(2);
  }
  session.report.threads = flags.Threads();
  session.json_out = flags.GetString("json_out", "");
  session.batch = static_cast<int>(flags.GetInt("batch", 0));
  session.legacy_pump = flags.GetBool("legacy_pump", false);
  session.report.batch = session.batch;
  session.report.legacy_pump = session.legacy_pump;
  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::fprintf(stderr, "%s: unknown flag --%s (supported: --threads=N, "
                 "--json_out=PATH, --batch=N, --legacy_pump)\n",
                 bench_name.c_str(), unused.front().c_str());
    std::exit(2);
  }
  if (!flags.Malformed().empty()) {
    std::fprintf(stderr, "%s: malformed value for --%s\n", bench_name.c_str(),
                 flags.Malformed().front().c_str());
    std::exit(2);
  }
  if (session.report.threads > 1) {
    std::printf("[bench: %d worker threads]\n", session.report.threads);
  }
}

int BenchThreads() {
  const BenchSession& session = Session();
  return session.initialized ? session.report.threads : 1;
}

int BenchBatch() {
  const BenchSession& session = Session();
  return session.initialized ? session.batch : 0;
}

bool BenchLegacyPump() {
  const BenchSession& session = Session();
  return session.initialized && session.legacy_pump;
}

void RecordRun(const RunRecord& record) {
  BenchSession& session = Session();
  if (!session.initialized) return;
  session.report.runs.push_back(record);
}

std::string NextRunLabel() {
  BenchSession& session = Session();
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "repeat%02d", session.run_counter++);
  return buffer;
}

int FinishBench() {
  BenchSession& session = Session();
  if (!session.initialized) return 0;
  session.report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    session.start)
          .count();
  if (session.json_out.empty()) return 0;
  const bool ok = WriteBenchReport(session.json_out, session.report);
  if (ok) {
    std::printf("[bench: wrote %s — %lld updates in %.2fs batch time, "
                "%.0f updates/sec]\n",
                session.json_out.c_str(),
                static_cast<long long>(session.report.total_updates()),
                session.report.wall_seconds,
                session.report.updates_per_sec());
  }
  return ok ? 0 : 1;
}

}  // namespace nmc::bench
