#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace nmc::common {

/// Deterministic pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64). Every randomized component in the library draws from an
/// explicitly seeded Rng so that simulations and benchmarks are exactly
/// reproducible. Not cryptographic; statistical quality is validated in
/// tests/common/rng_test.cc.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give statistically independent
  /// streams (seeding runs the state through SplitMix64).
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// ±1-valued update: +1 with probability p, else -1.
  int Sign(double p) { return Bernoulli(p) ? 1 : -1; }

  /// Standard normal via the Marsaglia polar method.
  double Gaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// Geometric: number of failures before the first success of a
  /// Bernoulli(p) sequence. Requires p in (0, 1].
  int64_t Geometric(double p);

  /// Uniform random permutation in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    NMC_CHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each site or
  /// each trial its own stream without correlations.
  Rng Fork();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace nmc::common

