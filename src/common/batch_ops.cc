#include "common/batch_ops.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/batch_ops_kernels.h"
#include "common/simd_dispatch.h"

namespace nmc::common {

namespace detail = batch_ops_detail;

namespace {

// Exactness margin: |sum| stays below 2^51 throughout, far under the 2^53
// integer-exact range of a double, so any summation grouping of ±1 values
// is bit-identical to the sequential one.
constexpr double kExactLimit = 0x1.0p51;

bool IsSmallInteger(double x, double margin) {
  return x == std::floor(x) && std::fabs(x) + margin < kExactLimit;
}

// Run-level short-circuit test over an integer interval [min_sum, max_sum]
// known to contain every visited prefix sum. All inputs are exact integers
// below 2^51 and correctly-rounded ops are monotone, so with
//   a_max = max |fl(estimate - s)| over s in the interval — attained at an
//           endpoint because fl(estimate - s) is monotone in s,
//   b_min = min |s|, b_max = max |s| over the interval,
// (1) a_max <= fl(fl(epsilon * b_min) + slack) implies every item's error
//     is within its own (no smaller) threshold: zero violations;
// (2) b_max < rel_floor means no item reaches the relative floor, and
//     otherwise every item's fl(error / |s|) is at most
//     fl(a_max / max(b_min, rel_floor)), so when that bound is within
//     current_max_rel the caller's running max cannot move.
// Both tests are monotone in the interval: widening [min_sum, max_sum] can
// only turn a pass into a fail, never the reverse, so testing a superset
// interval is always sound.
bool ShortCircuitPasses(double min_sum, double max_sum, double estimate,
                        double epsilon, double slack, double rel_floor,
                        double current_max_rel) {
  const double a_max = std::max(std::fabs(estimate - min_sum),
                                std::fabs(estimate - max_sum));
  const double b_min = (min_sum <= 0.0 && max_sum >= 0.0)
                           ? 0.0
                           : std::min(std::fabs(min_sum), std::fabs(max_sum));
  const double b_max = std::max(std::fabs(min_sum), std::fabs(max_sum));
  return a_max <= epsilon * b_min + slack &&
         (b_max < rel_floor ||
          a_max / std::max(b_min, rel_floor) <= current_max_rel);
}

}  // namespace

SignTally TallySigns(std::span<const double> values) {
  switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
    case SimdLevel::kAvx2:
      return detail::TallySignsAvx2(values.data(), values.size());
#endif
    default:
      return detail::TallySignsScalar(values.data(), values.size());
  }
}

bool CheckUnitPrefix(std::span<const double> values, double sum0,
                     double estimate, double epsilon, double slack,
                     double rel_floor, double current_max_rel,
                     PrefixCheckResult* result) {
  if (!(rel_floor > 0.0)) return false;
  if (!(epsilon >= 0.0)) return false;
  if (!IsSmallInteger(sum0, static_cast<double>(values.size()))) return false;
  if (values.empty()) {
    result->violations = 0;
    result->max_rel_error = 0.0;
    result->final_sum = sum0;
    return true;
  }

  // Pass 0 — coarse interval test, no data scan at all: a ±1 walk of n
  // steps keeps every prefix sum inside [sum0 - n, sum0 + n] (both exact:
  // the IsSmallInteger margin covers them). That interval contains the
  // visited set, so evaluating the short-circuit tests at its endpoints
  // only weakens them — a_max can only grow, b_min shrink, b_max grow —
  // and a coarse pass implies the exact-bounds pass below. Then the only
  // per-item work left is the sign tally: the all-unit gate plus the
  // exact final sum, with the min/max sweep skipped entirely. In a
  // settled tracker the estimate sits deep inside the envelope and the
  // +-n slop is negligible against |sum0|, so this is the common case.
  if (ShortCircuitPasses(sum0 - static_cast<double>(values.size()),
                         sum0 + static_cast<double>(values.size()), estimate,
                         epsilon, slack, rel_floor, current_max_rel)) {
    const SignTally tally = TallySigns(values);
    if (tally.all_unit) {
      result->violations = 0;
      result->max_rel_error = 0.0;
      result->final_sum = sum0 + static_cast<double>(tally.plus - tally.minus);
      return true;
    }
    return false;
  }

  // Pass 1 — divide-free run-level sweep: the all-unit gate fused with the
  // exact integer min/max of the running sum. On a ±1 walk the prefix sums
  // visit every integer between the two bounds, so extreme-value arguments
  // over [min_sum, max_sum] bound every per-item quantity below.
  detail::BoundsState bounds{sum0, std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(), true};
  {
    const double* data = values.data();
    size_t n = values.size();
    switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
      case SimdLevel::kAvx2: {
        const size_t bulk = n & ~static_cast<size_t>(3);
        if (bulk != 0) detail::UnitRunBoundsAvx2(data, bulk, &bounds);
        data += bulk;
        n -= bulk;
        break;
      }
#endif
      default:
        break;
    }
    if (bounds.all_unit && n != 0) {
      detail::UnitRunBoundsScalar(data, n, &bounds);
    }
  }
  if (!bounds.all_unit) return false;

  // Run-level short-circuit against the exact visited bounds (see
  // ShortCircuitPasses for the argument; on a ±1 walk the prefix sums
  // visit every integer in [min_sum, max_sum], so the interval is tight).
  // When either test fails the per-item kernels below reproduce the
  // scalar loop bit for bit.
  if (ShortCircuitPasses(bounds.min_sum, bounds.max_sum, estimate, epsilon,
                         slack, rel_floor, current_max_rel)) {
    result->violations = 0;
    // Every item's relative error is provably <= current_max_rel, so 0.0
    // is exact under the documented max-fold contract.
    result->max_rel_error = 0.0;
    result->final_sum = bounds.sum;
    return true;
  }

  detail::PrefixState state{sum0, 0.0, 0};
  const double* data = values.data();
  size_t n = values.size();
  switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
    case SimdLevel::kAvx2: {
      const size_t bulk = n & ~static_cast<size_t>(3);
      if (bulk != 0) {
        detail::CheckUnitPrefixAvx2(data, bulk, estimate, epsilon, slack,
                                    rel_floor, &state);
      }
      data += bulk;
      n -= bulk;
      break;
    }
#endif
    default:
      break;
  }
  if (n != 0) {
    detail::CheckUnitPrefixScalar(data, n, estimate, epsilon, slack, rel_floor,
                                  &state);
  }
  result->violations = state.violations;
  result->max_rel_error = state.max_rel_error;
  result->final_sum = state.sum;
  return true;
}

namespace batch_ops_detail {

SignTally TallySignsScalar(const double* values, size_t n) {
  SignTally tally;
  for (size_t i = 0; i < n; ++i) {
    if (values[i] == 1.0) {
      ++tally.plus;
    } else if (values[i] == -1.0) {
      ++tally.minus;
    } else {
      return tally;  // all_unit stays false
    }
  }
  tally.all_unit = true;
  return tally;
}

void UnitRunBoundsScalar(const double* values, size_t n, BoundsState* state) {
  double sum = state->sum;
  double mn = state->min_sum;
  double mx = state->max_sum;
  for (size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (v != 1.0 && v != -1.0) {
      state->all_unit = false;
      return;
    }
    sum += v;
    mn = std::min(mn, sum);
    mx = std::max(mx, sum);
  }
  state->sum = sum;
  state->min_sum = mn;
  state->max_sum = mx;
}

void CheckUnitPrefixScalar(const double* values, size_t n, double estimate,
                           double epsilon, double slack, double rel_floor,
                           PrefixState* state) {
  double sum = state->sum;
  double max_rel = state->max_rel_error;
  int64_t violations = state->violations;
  for (size_t i = 0; i < n; ++i) {
    sum += values[i];
    const double abs_error = std::fabs(estimate - sum);
    const double abs_sum = std::fabs(sum);
    if (abs_error > epsilon * abs_sum + slack) ++violations;
    if (abs_sum >= rel_floor) {
      const double rel = abs_error / abs_sum;
      if (rel > max_rel) max_rel = rel;
    }
  }
  state->sum = sum;
  state->max_rel_error = max_rel;
  state->violations = violations;
}

}  // namespace batch_ops_detail

}  // namespace nmc::common
