#pragma once

namespace nmc::common {

/// Vector instruction sets the batch kernels (BatchRng, batch_ops) can
/// dispatch to. kScalar is always compiled in and is the correctness
/// oracle: every vector kernel must produce bit-identical output to the
/// scalar kernel for the same inputs — batch_rng_test enforces this on
/// every level the running CPU supports.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Name for logs and test output: "scalar", "avx2", "neon".
const char* SimdLevelName(SimdLevel level);

/// The level batch kernels currently dispatch to. Resolved once at startup
/// from CPUID (x86-64) or architecture (aarch64); kScalar when the build
/// disabled SIMD (-DNMC_SIMD=off) or the CPU lacks the instructions.
SimdLevel ActiveSimdLevel();

/// True iff `level`'s kernels are compiled in AND the CPU can run them.
bool SimdLevelAvailable(SimdLevel level);

/// Test hook: pin dispatch to `level`. Returns false (no change) if the
/// level is unavailable. Lets a single binary compare scalar and vector
/// kernels bit-for-bit. The dispatch global is a relaxed atomic, so a
/// Force racing concurrent Fill calls is race-free — each Fill just picks
/// the old or the new (bit-identical) kernel.
bool ForceSimdLevel(SimdLevel level);

/// Undo ForceSimdLevel: back to auto-detection.
void ResetSimdLevel();

}  // namespace nmc::common
