// AVX2 kernels for BatchRng. Compiled with -mavx2 -mfma; the whole tree
// builds with -ffp-contract=off, so nothing fuses implicitly — every
// _mm256 op below (including the explicit _mm256_fmadd_pd calls, which
// mirror std::fma in the scalar oracle) maps 1:1 onto the scalar op
// sequence in batch_rng.cc / batch_rng_kernels.h. Outputs are
// bit-identical by construction, and batch_rng_test enforces it.

#include "common/batch_rng_kernels.h"

#if NMC_SIMD_AVX2

#include <immintrin.h>

namespace nmc::common::batch_rng_detail {
namespace {

struct Regs {
  __m256i s0, s1, s2, s3;
};

inline Regs LoadState(uint64_t state[4][kLanes]) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[0])),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[1])),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[2])),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state[3]))};
}

inline void StoreState(uint64_t state[4][kLanes], const Regs& r) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[0]), r.s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[1]), r.s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[2]), r.s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state[3]), r.s3);
}

template <int K>
inline __m256i RotL64(__m256i x) {
  return _mm256_or_si256(_mm256_slli_epi64(x, K), _mm256_srli_epi64(x, 64 - K));
}

/// One xoshiro256++ step of all four lanes; returns the four outputs in
/// lane order (element i of the result is lane i — exactly the scalar
/// kernel's round-robin interleave).
inline __m256i Step(Regs* r) {
  const __m256i result =
      _mm256_add_epi64(RotL64<23>(_mm256_add_epi64(r->s0, r->s3)), r->s0);
  const __m256i t = _mm256_slli_epi64(r->s1, 17);
  r->s2 = _mm256_xor_si256(r->s2, r->s0);
  r->s3 = _mm256_xor_si256(r->s3, r->s1);
  r->s1 = _mm256_xor_si256(r->s1, r->s2);
  r->s0 = _mm256_xor_si256(r->s0, r->s3);
  r->s2 = _mm256_xor_si256(r->s2, t);
  r->s3 = RotL64<45>(r->s3);
  return result;
}

/// u64 -> [0,1): bit-exact twin of U64ToUnit. AVX2 has no u64->f64
/// convert, so the 53-bit value (x >> 11) is split into a 22-bit high and
/// 31-bit low half, each converted exactly via the 2^52 mantissa-overlay
/// trick; hi*2^31 + lo is then an exact integer sum (< 2^53) and the final
/// power-of-two scale is exact too — every step correctly rounded, so the
/// result equals the scalar static_cast path bit for bit.
inline __m256d ToUnit(__m256i x) {
  const __m256i y = _mm256_srli_epi64(x, 11);
  const __m256i hi = _mm256_srli_epi64(y, 31);
  const __m256i lo = _mm256_and_si256(y, _mm256_set1_epi64x(0x7FFFFFFF));
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const __m256d hid = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(hi, magic_bits)), magic);
  const __m256d lod = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(lo, magic_bits)), magic);
  const __m256d value =
      _mm256_add_pd(_mm256_mul_pd(hid, _mm256_set1_pd(0x1.0p31)), lod);
  return _mm256_mul_pd(value, _mm256_set1_pd(0x1.0p-53));
}

/// Four-wide twin of PolyLog — same reduction, same Estrin tree.
inline __m256d PolyLog4(__m256d u) {
  const __m256i bits = _mm256_castpd_si256(u);
  __m256i e = _mm256_sub_epi64(
      _mm256_and_si256(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7FF)),
      _mm256_set1_epi64x(1022));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0xFFFFFFFFFFFFFLL)),
      _mm256_set1_epi64x(0x3FE0000000000000LL)));
  const __m256d small = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrtHalf), _CMP_LT_OQ);
  m = _mm256_blendv_pd(m, _mm256_add_pd(m, m), small);
  e = _mm256_sub_epi64(
      e, _mm256_and_si256(_mm256_castpd_si256(small), _mm256_set1_epi64x(1)));
  const __m256d z = _mm256_div_pd(_mm256_sub_pd(m, _mm256_set1_pd(1.0)),
                                  _mm256_add_pd(m, _mm256_set1_pd(1.0)));
  const __m256d w = _mm256_mul_pd(z, z);
  const __m256d w2 = _mm256_mul_pd(w, w);
  const __m256d a = _mm256_fmadd_pd(_mm256_set1_pd(kLogCoeff[1]), w,
                                    _mm256_set1_pd(kLogCoeff[0]));
  const __m256d b = _mm256_fmadd_pd(_mm256_set1_pd(kLogCoeff[3]), w,
                                    _mm256_set1_pd(kLogCoeff[2]));
  const __m256d inner =
      _mm256_fmadd_pd(w2, _mm256_set1_pd(kLogCoeff[4]), b);
  const __m256d p = _mm256_fmadd_pd(w2, inner, a);
  // Exact small-signed-int64 -> double via the 1.5*2^52 overlay.
  const __m256d shifter = _mm256_set1_pd(0x1.8p52);
  const __m256d ed = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(e, _mm256_castpd_si256(shifter))),
      shifter);
  return _mm256_fmadd_pd(z, p, _mm256_mul_pd(ed, _mm256_set1_pd(kLn2)));
}

/// Four-wide twin of GapFromU64 (bit-overlay tail, reciprocal multiply —
/// one vector divide per four gaps left, the structural one in PolyLog4).
inline __m256i Gaps4(__m256i x, __m256d inv_log_q) {
  const __m256d tail = _mm256_sub_pd(
      _mm256_set1_pd(2.0),
      _mm256_castsi256_pd(_mm256_or_si256(
          _mm256_srli_epi64(x, 12),
          _mm256_set1_epi64x(0x3FF0000000000000LL))));
  const __m256d t = _mm256_mul_pd(PolyLog4(tail), inv_log_q);
  const __m256d g = _mm256_floor_pd(t);
  // Integer g in [0, 2^51) converts exactly through the mantissa overlay;
  // anything >= 2^51 (or inf) is clamped to kInfiniteGap, matching scalar.
  const __m256i conv = _mm256_and_si256(
      _mm256_castpd_si256(_mm256_add_pd(g, _mm256_set1_pd(0x1.0p52))),
      _mm256_set1_epi64x(0xFFFFFFFFFFFFFLL));
  const __m256d huge = _mm256_cmp_pd(g, _mm256_set1_pd(kTwo51), _CMP_GE_OQ);
  return _mm256_blendv_epi8(conv, _mm256_set1_epi64x(kInfiniteGap),
                            _mm256_castpd_si256(huge));
}

}  // namespace

void FillU64Avx2(uint64_t state[4][kLanes], uint64_t* out, size_t n) {
  Regs r = LoadState(state);
  for (size_t i = 0; i < n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Step(&r));
  }
  StoreState(state, r);
}

void FillUniformAvx2(uint64_t state[4][kLanes], double* out, size_t n) {
  Regs r = LoadState(state);
  for (size_t i = 0; i < n; i += 4) {
    _mm256_storeu_pd(out + i, ToUnit(Step(&r)));
  }
  StoreState(state, r);
}

void FillSignsAvx2(uint64_t state[4][kLanes], double* out, size_t n,
                   double p_plus) {
  Regs r = LoadState(state);
  const __m256d p = _mm256_set1_pd(p_plus);
  const __m256d plus = _mm256_set1_pd(1.0);
  const __m256d minus = _mm256_set1_pd(-1.0);
  for (size_t i = 0; i < n; i += 4) {
    const __m256d u = ToUnit(Step(&r));
    const __m256d head = _mm256_cmp_pd(u, p, _CMP_LT_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(minus, plus, head));
  }
  StoreState(state, r);
}

void FillGapsAvx2(uint64_t state[4][kLanes], int64_t* out, size_t n,
                  double inv_log_q) {
  Regs r = LoadState(state);
  const __m256d lq = _mm256_set1_pd(inv_log_q);
  // Two blocks per iteration: the state recurrence between the Step calls
  // is only a few xors deep, while each Gaps4 tree is long — interleaving
  // two independent trees keeps the divider and FP ports busy.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 = Step(&r);
    const __m256i x1 = Step(&r);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Gaps4(x0, lq));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                        Gaps4(x1, lq));
  }
  for (; i < n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        Gaps4(Step(&r), lq));
  }
  StoreState(state, r);
}

}  // namespace nmc::common::batch_rng_detail

#endif  // NMC_SIMD_AVX2
