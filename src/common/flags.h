#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace nmc::common {

/// Minimal --key=value command-line parser for the tools and benches; no
/// external dependencies, no registration — callers query by name with a
/// default. Unknown keys are detectable so tools can reject typos.
class Flags {
 public:
  /// Parses argv[1..): tokens of the form --key=value or --key (implicit
  /// "true"). Returns InvalidArgument on anything else.
  static Status Parse(int argc, const char* const* argv, Flags* flags);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  /// Returns the default when absent; aborts-free: non-numeric values
  /// return the default and mark the flag as malformed (see Malformed()).
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// Keys that failed a numeric/bool conversion in a Get* call.
  const std::vector<std::string>& Malformed() const { return malformed_; }

  /// Keys present on the command line but never queried; call after all
  /// Get* calls to reject typos.
  std::vector<std::string> UnusedKeys() const;

  /// Resolves the standard `--threads` flag shared by the bench binaries:
  /// absent, 0, or negative means hardware concurrency, 1 reproduces the
  /// legacy serial path, N uses N workers.
  int Threads() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> queried_;
  mutable std::vector<std::string> malformed_;
};

}  // namespace nmc::common

