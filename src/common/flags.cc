#include "common/flags.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/thread_pool.h"

namespace nmc::common {

Status Flags::Parse(int argc, const char* const* argv, Flags* flags) {
  if (flags == nullptr) return Status::InvalidArgument("flags is null");
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      return Status::InvalidArgument("expected --key[=value], got '" + token +
                                     "'");
    }
    const std::string body = token.substr(2);
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags->values_[body] = "true";
    } else if (eq == 0) {
      return Status::InvalidArgument("missing key in '" + token + "'");
    } else {
      flags->values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  return Status::OK();
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  queried_.push_back(key);
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  queried_.push_back(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    malformed_.push_back(key);
    return default_value;
  }
  return parsed;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  queried_.push_back(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    malformed_.push_back(key);
    return default_value;
  }
  return parsed;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  queried_.push_back(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  malformed_.push_back(key);
  return default_value;
}

int Flags::Threads() const {
  const int64_t requested = GetInt("threads", 0);
  if (requested <= 0) return ThreadPool::DefaultThreads();
  return static_cast<int>(requested);
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (std::find(queried_.begin(), queried_.end(), key) == queried_.end()) {
      unused.push_back(key);
    }
  }
  return unused;
}

}  // namespace nmc::common
