#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmc::common {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Quantile(std::vector<double> values, double q) {
  NMC_CHECK(!values.empty());
  NMC_CHECK_GE(q, 0.0);
  NMC_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  NMC_CHECK_EQ(xs.size(), ys.size());
  NMC_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  NMC_CHECK_GT(sxx, 0.0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit FitPowerLaw(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  NMC_CHECK_EQ(xs.size(), ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    NMC_CHECK_GT(xs[i], 0.0);
    NMC_CHECK_GT(ys[i], 0.0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return FitLine(lx, ly);
}

}  // namespace nmc::common
