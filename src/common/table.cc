#include "common/table.h"

#include <cstdio>

#include "common/check.h"

namespace nmc::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NMC_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  NMC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out->append("  ");
      out->append(widths[c] - row[c].size(), ' ');
      out->append(row[c]);
    }
    out->push_back('\n');
  };

  std::string out;
  append_row(&out, headers_);
  std::vector<std::string> rule(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  append_row(&out, rule);
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

namespace {

void AppendCsvField(std::string* out, const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendCsvRow(std::string* out, const std::vector<std::string>& row) {
  for (size_t c = 0; c < row.size(); ++c) {
    if (c > 0) out->push_back(',');
    AppendCsvField(out, row[c]);
  }
  out->push_back('\n');
}

}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  AppendCsvRow(&out, headers_);
  for (const auto& row : rows_) AppendCsvRow(&out, row);
  return out;
}

void Table::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string Format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSci(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

std::string Format(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace nmc::common
