#pragma once

// Internal kernel contract for batch_ops (see batch_ops.h). As with
// batch_rng_kernels.h, the scalar kernels are the oracle and the vector
// TUs must be bit-identical; include batch_ops.h instead of this.

#include <cstddef>
#include <cstdint>

#include "common/batch_ops.h"

namespace nmc::common::batch_ops_detail {

/// Running state for the prefix check; final_sum lives in result.
struct PrefixState {
  double sum;
  double max_rel_error;
  int64_t violations;
};

/// Running state for the run-level bounds sweep behind CheckUnitPrefix's
/// short-circuit. min_sum/max_sum cover the sums *after* each item (the
/// seed sum itself is excluded, matching the per-item check). When a
/// non-±1 value is hit the kernel sets all_unit = false and returns with
/// the remaining fields unspecified.
struct BoundsState {
  double sum;
  double min_sum;
  double max_sum;
  bool all_unit;
};

SignTally TallySignsScalar(const double* values, size_t n);
void CheckUnitPrefixScalar(const double* values, size_t n, double estimate,
                           double epsilon, double slack, double rel_floor,
                           PrefixState* state);
void UnitRunBoundsScalar(const double* values, size_t n, BoundsState* state);

#if NMC_SIMD_AVX2
SignTally TallySignsAvx2(const double* values, size_t n);
/// n must be a multiple of 4; the dispatcher handles the tail with the
/// scalar kernel (exactness makes the split invisible).
void CheckUnitPrefixAvx2(const double* values, size_t n, double estimate,
                         double epsilon, double slack, double rel_floor,
                         PrefixState* state);
/// n must be a multiple of 4 (same tail contract as above).
void UnitRunBoundsAvx2(const double* values, size_t n, BoundsState* state);
#endif

}  // namespace nmc::common::batch_ops_detail
