#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::common {

/// How a protocol realizes its per-update Bernoulli report coins.
enum class SamplerMode {
  /// Fast-forward: draw the gap to the next report as a geometric variate
  /// (one uniform per inter-report run) and consume the silent updates in
  /// bulk. Distribution-preserving but consumes the RNG differently from
  /// the per-coin reference, so fixed-seed transcripts differ.
  kGeometricSkip,
  /// Replay one Bernoulli coin per update, bit-identical to the historic
  /// per-update implementation (the --legacy_pump benches and the
  /// equivalence tests run in this mode).
  kLegacyCoins,
};

/// Vitter-style skip sampler: for a Bernoulli(p) coin sequence with a
/// frozen rate p, the number of tails before the next head is
/// Geometric(p), so a site can consume a whole inter-report run in O(1)
/// instead of flipping O(gap) coins. The cached gap stays valid only
/// while the rate it was drawn at still applies; the owner must call
/// Invalidate() whenever a broadcast (or any other state change) moves
/// the rate. Header-only so that nmc_hyz can use it without linking
/// nmc_core.
///
/// Rates that drift *downward* between invalidations (e.g. the decaying
/// drift-guard term) are handled by thinning: draw the gap at a
/// dominating rate `dom >= p_t`, then accept each candidate with
/// probability p_t / dom — the compound is exactly Bernoulli(p_t) per
/// update. Memorylessness makes it exact to discard a partially consumed
/// gap at any boundary that is deterministic given the coins already
/// realized (a chunk-span expiry or an incoming broadcast).
class GeometricSkip {
 public:
  /// Sentinel for "no report will ever fire at this rate" (p <= 0). Half
  /// of the int64 range so Advance() arithmetic cannot overflow.
  static constexpr int64_t kInfiniteGap =
      std::numeric_limits<int64_t>::max() / 2;

  explicit GeometricSkip(SamplerMode mode = SamplerMode::kGeometricSkip)
      : mode_(mode) {}

  SamplerMode mode() const { return mode_; }

  /// Gap to the next head of a Bernoulli(p) sequence:
  /// floor(log1p(-U)/log1p(-p)) with U uniform on [0, 1). Matches
  /// Rng::Bernoulli's clamps (p >= 1 reports immediately and p <= 0
  /// never reports, neither consuming randomness) and clamps the cast so
  /// a tiny p cannot overflow int64 (UB on the raw cast).
  static int64_t DrawGap(common::Rng* rng, double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return kInfiniteGap;
    const double u = 1.0 - rng->UniformDouble();  // in (0, 1]
    const double gap = std::floor(std::log(u) / std::log1p(-p));
    if (!(gap < static_cast<double>(kInfiniteGap))) return kInfiniteGap;
    return static_cast<int64_t>(gap);
  }

  bool valid() const { return valid_; }

  /// Discards the cached gap. Must be called whenever the (dominating)
  /// rate the gap was drawn at stops applying.
  void Invalidate() { valid_ = false; }

  /// Draws a fresh gap at `rate` unless one is already cached. Repeated
  /// draws at one rate (thinning redraws, chunked domination) reuse the
  /// memoized log1p(-rate), halving the transcendental cost per draw;
  /// the drawn value is bit-identical to DrawGap either way.
  void EnsureGap(common::Rng* rng, double rate) {
    if (valid_) return;
    if (rate >= 1.0) {
      gap_ = 0;
    } else if (rate <= 0.0) {
      gap_ = kInfiniteGap;
    } else {
      if (rate != memo_rate_) {
        memo_rate_ = rate;
        memo_log_q_ = std::log1p(-rate);
      }
      const double u = 1.0 - rng->UniformDouble();  // in (0, 1]
      const double gap = std::floor(std::log(u) / memo_log_q_);
      gap_ = gap < static_cast<double>(kInfiniteGap)
                 ? static_cast<int64_t>(gap)
                 : kInfiniteGap;
    }
    valid_ = true;
  }

  /// Updates left before the next candidate. Only meaningful while
  /// valid().
  int64_t gap() const {
    NMC_CHECK(valid_);
    return gap_;
  }

  /// Consumes `steps` candidate-free updates (steps <= gap()).
  void Advance(int64_t steps) {
    NMC_CHECK(valid_);
    NMC_CHECK_GE(steps, 0);
    NMC_CHECK_LE(steps, gap_);
    gap_ -= steps;
  }

  /// Consumes the candidate update itself (requires gap() == 0); the next
  /// EnsureGap starts a fresh inter-report run.
  void TakeCandidate() {
    NMC_CHECK(valid_);
    NMC_CHECK_EQ(gap_, 0);
    valid_ = false;
  }

  /// One-update convenience used by sites that cannot batch: in legacy
  /// mode exactly rng->Bernoulli(rate) (same draws, same result); in skip
  /// mode the cached-gap walk. The caller still owns invalidation on rate
  /// changes.
  bool Step(common::Rng* rng, double rate) {
    if (mode_ == SamplerMode::kLegacyCoins) return rng->Bernoulli(rate);
    EnsureGap(rng, rate);
    if (gap_ > 0) {
      --gap_;
      return false;
    }
    valid_ = false;
    return true;
  }

 private:
  SamplerMode mode_;
  bool valid_ = false;
  int64_t gap_ = 0;
  /// Memoized log1p(-memo_rate_) for EnsureGap (kept across Invalidate:
  /// the memo depends only on the rate value, not on gap validity).
  double memo_rate_ = -1.0;
  double memo_log_q_ = 0.0;
};

}  // namespace nmc::common
