#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>

#include "common/batch_rng.h"
#include "common/check.h"
#include "common/rng.h"

namespace nmc::common {

/// How a protocol realizes its per-update Bernoulli report coins.
enum class SamplerMode {
  /// Fast-forward: draw the gap to the next report as a geometric variate
  /// (one uniform per inter-report run) and consume the silent updates in
  /// bulk. Distribution-preserving but consumes the RNG differently from
  /// the per-coin reference, so fixed-seed transcripts differ.
  kGeometricSkip,
  /// Replay one Bernoulli coin per update, bit-identical to the historic
  /// per-update implementation (the --legacy_pump benches and the
  /// equivalence tests run in this mode).
  kLegacyCoins,
};

/// Vitter-style skip sampler: for a Bernoulli(p) coin sequence with a
/// frozen rate p, the number of tails before the next head is
/// Geometric(p), so a site can consume a whole inter-report run in O(1)
/// instead of flipping O(gap) coins. The cached gap stays valid only
/// while the rate it was drawn at still applies; the owner must call
/// Invalidate() whenever a broadcast (or any other state change) moves
/// the rate. Header-only so that nmc_hyz can use it without linking
/// nmc_core.
///
/// Rates that drift *downward* between invalidations (e.g. the decaying
/// drift-guard term) are handled by thinning: draw the gap at a
/// dominating rate `dom >= p_t`, then accept each candidate with
/// probability p_t / dom — the compound is exactly Bernoulli(p_t) per
/// update. Memorylessness makes it exact to discard a partially consumed
/// gap at any boundary that is deterministic given the coins already
/// realized (a chunk-span expiry or an incoming broadcast).
class GeometricSkip {
 public:
  /// Sentinel for "no report will ever fire at this rate" (p <= 0). Half
  /// of the int64 range so Advance() arithmetic cannot overflow.
  static constexpr int64_t kInfiniteGap =
      std::numeric_limits<int64_t>::max() / 2;

  explicit GeometricSkip(SamplerMode mode = SamplerMode::kGeometricSkip)
      : mode_(mode) {}

  SamplerMode mode() const { return mode_; }

  /// Opt-in bulk gap feed: with a BatchRng attached, skip-mode EnsureGap
  /// draws from vector-generated blocks instead of one scalar
  /// transcendental per run. The feed only pre-draws a block once the
  /// same rate is requested twice in a row, so rate ladders (the
  /// single-site chunk walk, where every draw is at a fresh rate) never
  /// waste bulk draws, while frozen-rate consumers (HYZ rounds, SBC
  /// stages) amortize one log1p over kFeedBlockGaps draws. Pre-drawn gaps
  /// are discarded on any rate change — exact by memorylessness, since
  /// the discard decision never looks at the unexamined values. Attaching
  /// a feed reorders RNG consumption, so fixed-seed skip-mode transcripts
  /// change; legacy-coins mode ignores the feed entirely and keeps its
  /// bit-exact replay promise. The pointer is non-owning and must outlive
  /// the sampler. The first attach allocates the block storage once — a
  /// setup-time allocation; the serve path itself never allocates.
  void AttachBatchRng(common::BatchRng* batch) {
    batch_ = batch;
    if (batch != nullptr && feed_store_ == nullptr) {
      feed_store_ = std::make_unique<FeedBlock>();
    }
  }

  /// Cap on gaps pre-drawn per block. Blocks start at kFeedFirstBlockGaps
  /// on the first repeat of a rate and grow by kFeedBlockGrowth per refill
  /// up to this cap: truly frozen-rate consumers reach full amortization
  /// (a small fraction of a nanosecond of fill fixed costs per gap) within
  /// three refills, while consumers whose rate drifts every few dozen
  /// draws (the single-site chunk walk between restarts) never pre-draw —
  /// and so never discard — more than they plausibly use. Discards are
  /// free in distribution by memorylessness; the growth schedule only
  /// bounds the wasted fill work.
  ///
  /// The block lives behind a pointer (one setup-time allocation at
  /// AttachBatchRng) rather than inline, deliberately: the refill hands a
  /// span over the block to the out-of-line fill, and if that span were
  /// derived from `this` the compiler would have to assume the call can
  /// touch every member, forcing the serve cursor through memory on each
  /// draw. With the storage external, a sampler that lives in a tight
  /// local loop keeps its cursor in registers between refills — worth
  /// about 2 ns/draw on the serve fast path.
  static constexpr int kFeedBlockGaps = 256;
  static constexpr int kFeedFirstBlockGaps = 8;
  static constexpr int kFeedBlockGrowth = 4;

  /// Gap to the next head of a Bernoulli(p) sequence:
  /// floor(log1p(-U)/log1p(-p)) with U uniform on [0, 1). Matches
  /// Rng::Bernoulli's clamps (p >= 1 reports immediately and p <= 0
  /// never reports, neither consuming randomness) and clamps the cast so
  /// a tiny p cannot overflow int64 (UB on the raw cast).
  // nmc: reentrant
  static int64_t DrawGap(common::Rng* rng, double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return kInfiniteGap;
    const double u = 1.0 - rng->UniformDouble();  // in (0, 1]
    const double gap = std::floor(std::log(u) / std::log1p(-p));
    if (!(gap < static_cast<double>(kInfiniteGap))) return kInfiniteGap;
    return static_cast<int64_t>(gap);
  }

  bool valid() const { return valid_; }

  /// Discards the cached gap. Must be called whenever the (dominating)
  /// rate the gap was drawn at stops applying.
  void Invalidate() { valid_ = false; }

  /// Draws a fresh gap at `rate` unless one is already cached. Repeated
  /// draws at one rate (thinning redraws, chunked domination) reuse the
  /// memoized log1p(-rate), halving the transcendental cost per draw;
  /// the drawn value is bit-identical to DrawGap either way.
  void EnsureGap(common::Rng* rng, double rate) {
    if (valid_) return;
    if (rate == feed_rate_) {
      // Hottest path — a frozen-rate feed consumer. feed_rate_ is only
      // ever set by a feed draw, so a match implies an attached BatchRng
      // and a non-degenerate rate; the degenerate checks below are
      // skipped without being weakened.
      ServeFromFeedBlock();
      valid_ = true;
      return;
    }
    if (rate >= 1.0) {
      gap_ = 0;
    } else if (rate <= 0.0) {
      gap_ = kInfiniteGap;
    } else if (batch_ != nullptr) {
      EnsureGapFromFeed(rate);
    } else {
      if (rate != memo_rate_) {
        memo_rate_ = rate;
        // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) memoized: one log1p per rate change, reused for every gap drawn at that rate
        memo_log_q_ = std::log1p(-rate);
      }
      const double u = 1.0 - rng->UniformDouble();  // in (0, 1]
      // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) one log per *drawn gap*, amortized over the gap's length — the geometric skip exists precisely to replace per-update coin flips with this single draw
      const double gap = std::floor(std::log(u) / memo_log_q_);
      gap_ = gap < static_cast<double>(kInfiniteGap)
                 ? static_cast<int64_t>(gap)
                 : kInfiniteGap;
    }
    valid_ = true;
  }

  /// Updates left before the next candidate. Only meaningful while
  /// valid().
  int64_t gap() const {
    NMC_CHECK(valid_);
    return gap_;
  }

  /// Consumes `steps` candidate-free updates (steps <= gap()).
  void Advance(int64_t steps) {
    NMC_CHECK(valid_);
    NMC_CHECK_GE(steps, 0);
    NMC_CHECK_LE(steps, gap_);
    gap_ -= steps;
  }

  /// Consumes the candidate update itself (requires gap() == 0); the next
  /// EnsureGap starts a fresh inter-report run.
  void TakeCandidate() {
    NMC_CHECK(valid_);
    NMC_CHECK_EQ(gap_, 0);
    valid_ = false;
  }

  /// Fused whole-run draw for frozen-rate consumers: draws a gap at
  /// `rate` unless one is cached, consumes the silent stretch *and* the
  /// candidate, and returns the stretch length. Exactly EnsureGap +
  /// gap() + Advance(gap()) + TakeCandidate(), minus the per-call
  /// bookkeeping — the cached-gap checks collapse after inlining, which
  /// matters at vector-feed draw rates. A kInfiniteGap return means no
  /// candidate ever fires at this rate (the caller must not treat the
  /// sentinel as a consumed candidate).
  int64_t TakeRun(common::Rng* rng, double rate) {
    // Fast path: no cached gap, the rate matches the feed, and the block
    // still has entries — serve straight from the array without touching
    // gap_/valid_ (their stores are dead here: valid_ is false before and
    // after, and gap_ is only read through the valid_-guarded accessors).
    if (!valid_ && rate == feed_rate_ && feed_pos_ != feed_len_) {
      return (*feed_store_)[static_cast<size_t>(feed_pos_++)];
    }
    EnsureGap(rng, rate);
    valid_ = false;
    return gap_;
  }

  /// One-update convenience used by sites that cannot batch: in legacy
  /// mode exactly rng->Bernoulli(rate) (same draws, same result); in skip
  /// mode the cached-gap walk. The caller still owns invalidation on rate
  /// changes.
  bool Step(common::Rng* rng, double rate) {
    if (mode_ == SamplerMode::kLegacyCoins) return rng->Bernoulli(rate);
    EnsureGap(rng, rate);
    if (gap_ > 0) {
      --gap_;
      return false;
    }
    valid_ = false;
    return true;
  }

 private:
  /// Repeat-rate feed draw: serve the next pre-drawn gap, refilling a
  /// block (at the current rung of the growth schedule) when the previous
  /// one is spent.
  void ServeFromFeedBlock() {
    if (feed_pos_ == feed_len_) {
      batch_->FillGeometricGaps(
          std::span<int64_t>(feed_store_->data(),
                             static_cast<size_t>(feed_fill_)),
          feed_rate_);
      feed_len_ = feed_fill_;
      feed_pos_ = 0;
      feed_fill_ = std::min(feed_fill_ * kFeedBlockGrowth, kFeedBlockGaps);
    }
    gap_ = (*feed_store_)[static_cast<size_t>(feed_pos_++)];
  }

  /// Feed-backed gap draw for a non-degenerate rate. The block refill
  /// fires only on the second consecutive same-rate request; a fresh rate
  /// costs one single-gap draw, exactly like the scalar path.
  void EnsureGapFromFeed(double rate) {
    if (rate == feed_rate_) {
      ServeFromFeedBlock();
      return;
    }
    feed_rate_ = rate;
    feed_pos_ = 0;
    feed_len_ = 0;
    feed_fill_ = kFeedFirstBlockGaps;
    int64_t single = 0;
    batch_->FillGeometricGaps(std::span<int64_t>(&single, 1), rate);
    gap_ = single;
  }

  SamplerMode mode_;
  bool valid_ = false;
  int64_t gap_ = 0;
  /// Memoized log1p(-memo_rate_) for EnsureGap (kept across Invalidate:
  /// the memo depends only on the rate value, not on gap validity).
  double memo_rate_ = -1.0;
  double memo_log_q_ = 0.0;
  /// Bulk feed state (see AttachBatchRng). *feed_store_ holds pre-drawn
  /// gaps at feed_rate_; entries feed_pos_..feed_len_-1 are still
  /// unconsumed. The feed paths are only reachable once a feed rate has
  /// been recorded, which implies an attached BatchRng and therefore a
  /// live feed_store_.
  using FeedBlock = std::array<int64_t, kFeedBlockGaps>;
  common::BatchRng* batch_ = nullptr;
  double feed_rate_ = -1.0;
  int feed_pos_ = 0;
  int feed_len_ = 0;
  int feed_fill_ = kFeedFirstBlockGaps;  // next refill size (growth rung)
  std::unique_ptr<FeedBlock> feed_store_;
};

}  // namespace nmc::common
