#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace nmc::common {

/// Number of independent xoshiro256++ lanes in a BatchRng. Four 64-bit
/// lanes fill one AVX2 register; NEON walks the same four lanes two at a
/// time; the scalar kernel walks them round-robin. The lane count is part
/// of the output contract (element i comes from lane i mod 4), not a
/// tuning knob.
inline constexpr int kBatchRngLanes = 4;

/// Gap value returned by FillGeometricGaps when p <= 0 or the sampled gap
/// exceeds 2^51. Equal to GeometricSkip::kInfiniteGap.
inline constexpr int64_t kBatchRngInfiniteGap =
    std::numeric_limits<int64_t>::max() / 2;

/// Multi-lane xoshiro256++ that fills spans of raw u64s, uniforms, ±1
/// signs, and geometric gaps in bulk, dispatching to AVX2/NEON kernels at
/// runtime (see simd_dispatch.h) with a scalar fallback that is the
/// correctness oracle — vector kernels are bit-identical to it.
///
/// Output contract: the generator defines ONE logical u64 stream,
/// round-robin interleaved over the lanes (element i of the stream comes
/// from lane i mod kBatchRngLanes). Every Fill* consumes stream elements
/// 1:1 in order and is slicing-invariant: filling n then m elements yields
/// exactly the values of filling n+m at once, regardless of dispatch
/// level. Incomplete lane quadruples are buffered across calls.
///
/// Not bit-compatible with scalar common::Rng sequences — callers that
/// promise legacy bit-identity (kLegacyCoins samplers, kLegacyScalar
/// stream generation) must keep drawing from Rng instead.
class BatchRng {
 public:
  /// A single SplitMix64 chain from `seed` yields one sub-seed per lane,
  /// and lane j is an ordinary common::Rng built from sub-seed j: lane j's
  /// raw output is exactly Rng(LaneSeed(seed, j)).NextU64()'s sequence.
  explicit BatchRng(uint64_t seed);

  /// The sub-seed lane `lane` is constructed from (exposed for the
  /// scalar-oracle tests).
  static uint64_t LaneSeed(uint64_t seed, int lane);

  /// Next `out.size()` raw stream elements.
  void FillU64(std::span<uint64_t> out);

  /// Uniforms in [0, 1) with 53 random bits — same u64→double mapping as
  /// Rng::UniformDouble.
  void FillUniform(std::span<double> out);

  /// ±1.0 signs: +1.0 where uniform < p_plus, else -1.0. One stream
  /// element per output.
  void FillSigns(std::span<double> out, double p_plus);

  /// Geometric gaps (failures before the first success at rate p), the
  /// bulk analogue of Rng::Geometric. One stream element per gap for
  /// p in (0, 1); p <= 0 fills kBatchRngInfiniteGap and p >= 1 fills 0,
  /// consuming no randomness (Rng::Bernoulli's clamp convention). Uses a
  /// portable polynomial log shared by all kernels, so gaps are
  /// bit-identical across SIMD levels but deliberately NOT the same
  /// sequence as scalar Rng::Geometric (see batch_rng_kernels.h).
  void FillGeometricGaps(std::span<int64_t> out, double p);

  /// One element of the logical stream.
  uint64_t NextU64();

  /// Independent child generator seeded from the next stream element.
  BatchRng Child();

 private:
  void Refill();  // one scalar quadruple step into the carry buffer

  // Structure-of-arrays state: state_[w][l] is word w of lane l, so a
  // vector kernel loads word w of all four lanes with one 256-bit load.
  alignas(32) uint64_t state_[4][kBatchRngLanes];
  // Partially consumed lane quadruple; entries carry_pos_..kLanes-1 valid.
  uint64_t carry_[kBatchRngLanes];
  int carry_pos_ = kBatchRngLanes;
  // Memoized 1/log1p(-p) for FillGeometricGaps: frozen-rate consumers
  // (GeometricSkip feed blocks) call with the same p every refill, so the
  // log1p runs once per rate change instead of once per fill. The memo is
  // pure (depends only on p), so it never affects the output stream.
  double gap_memo_p_ = -1.0;
  double gap_memo_inv_log_q_ = 0.0;
};

}  // namespace nmc::common
