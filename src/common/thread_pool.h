#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nmc::common {

/// Fixed-size worker pool for fanning independent trials across cores.
///
/// Submit() returns a std::future for the callable's result; exceptions
/// thrown by a task are captured and rethrown from future::get(), never
/// swallowed. The destructor drains all already-submitted work before
/// joining, so every future obtained from Submit() becomes ready even when
/// the pool is torn down with tasks still queued.
///
/// The pool is deliberately minimal: no work stealing, no priorities, no
/// resizing. The bench runner's unit of work (one tracked run, typically
/// millions of simulated messages) is coarse enough that a mutex-protected
/// queue is nowhere near contended.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks, then joins all workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks accepted and not yet finished (approximate; for tests
  /// and monitoring only).
  int pending() const;

  /// Enqueues `fn` and returns a future for its result. Safe to call from
  /// multiple threads. Must not be called after the destructor has begun.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task]() { (*task)(); });
      ++unfinished_;
    }
    cv_.notify_one();
    return future;
  }

  /// Default worker count: hardware concurrency, or 1 when unknown.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  int unfinished_ = 0;
  bool stopping_ = false;
};

}  // namespace nmc::common

