#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>

namespace nmc::common {

/// Every named acquire/release edge (store, load, or fence) in the
/// lock-free primitives. The names exist for the `tools/nmc_race` mutation
/// harness: it re-runs the litmus suite with exactly one site weakened to
/// relaxed and demands a violation, proving each declared order is
/// load-bearing. Production code never branches on a site —
/// StdAtomicPolicy::Order is a constexpr identity.
enum class OrderSite {
  /// Producer refreshes its cache of the consumer's head (pairs with
  /// kSpscHeadRelease): slots are never overwritten before their previous
  /// occupant's reads happened-before this load.
  kSpscHeadAcquire,
  /// Producer publishes filled slots by advancing tail (pairs with
  /// kSpscTailAcquire): slot writes happen-before the consumer's reads.
  kSpscTailRelease,
  /// Consumer refreshes its cache of the producer's tail.
  kSpscTailAcquire,
  /// Consumer retires read slots by advancing head.
  kSpscHeadRelease,
  /// Reader's first load of the seqlock sequence counter (pairs with
  /// kSeqlockWriteRelease): payload loads are ordered after it.
  kSeqlockReadAcquire,
  /// Reader's fence between the payload loads and the sequence re-read.
  kSeqlockReadFence,
  /// Writer's fence ordering the odd marker before the payload stores
  /// (pairs with kSeqlockReadFence).
  kSeqlockWriteFence,
  /// Writer's final even sequence store publishing the payload.
  kSeqlockWriteRelease,
  kCount
};

/// Production atomics policy: a zero-cost passthrough to std::atomic.
///
/// `SpscQueue` and `Seqlock` are templated over a policy so the same
/// source instantiates two ways: with this policy (the default) every
/// operation lowers to the raw std::atomic call it replaced — Order() is a
/// constexpr identity and SlotArray is a bare array, so codegen is
/// bit-identical to the pre-shim primitives — while `tools/nmc_race`
/// instantiates them with a model policy whose every atomic op yields to a
/// deterministic scheduler that enumerates interleavings under a
/// C++11-faithful visibility model.
struct StdAtomicPolicy {
  template <typename T>
  using Atomic = std::atomic<T>;

  /// The declared order IS the executed order; sites only matter to the
  /// model policy's mutation harness.
  static constexpr std::memory_order Order(OrderSite /*site*/,
                                           std::memory_order declared) {
    return declared;
  }

  static void Fence(OrderSite site, std::memory_order declared) {
    std::atomic_thread_fence(Order(site, declared));
  }

  /// Slot storage for the policy-generic ring: plain memory here (View is
  /// a borrowed zero-copy span straight into it); the model policy's
  /// SlotArray instruments every Store/View with vector-clock data-race
  /// detection, which is how a weakened publish order is caught — the
  /// consumer's slot read loses its happens-before edge to the producer's
  /// slot write.
  template <typename T>
  class SlotArray {
   public:
    explicit SlotArray(size_t size) : slots_(std::make_unique<T[]>(size)) {}

    // nmc: reentrant
    void Store(size_t index, const T& value) { slots_[index] = value; }

    // nmc: reentrant
    std::span<const T> View(size_t begin, size_t count) const {
      return {&slots_[begin], count};
    }

   private:
    std::unique_ptr<T[]> slots_;
  };
};

/// The one spelling of an atomic that src/runtime concurrency may use.
/// Routing the runtime's flags and counters through the policy keeps them
/// nominally model-checkable and lets the NO_RAW_ATOMIC_IN_RUNTIME lint
/// rule prove no raw std::atomic sneaks into the concurrent layer.
template <typename T>
using RuntimeAtomic = StdAtomicPolicy::Atomic<T>;

}  // namespace nmc::common
