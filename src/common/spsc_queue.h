#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "common/atomic_policy.h"
#include "common/check.h"

namespace nmc::common {

/// Compile-time capacity tag for SpscQueue: rejects zero and
/// non-power-of-two capacities at compile time instead of silently
/// rounding. Capacity 1 is allowed — a single-slot ring degrades to a
/// strict ping-pong hand-off — while the runtime size_t constructor keeps
/// its historical floor of 2.
template <size_t kN>
struct RingCapacity {
  static_assert(kN >= 1, "SpscQueue capacity must be at least 1");
  static_assert((kN & (kN - 1)) == 0,
                "SpscQueue capacity must be a power of two");
};

/// Bounded lock-free single-producer/single-consumer ring buffer — the
/// mailbox of the threaded transport backend (one producer thread, one
/// consumer thread, no other access).
///
/// Memory-order argument (acquire/release only, no seq_cst):
///   * The producer writes slot contents (plain, non-atomic T) and then
///     publishes them with tail_.store(release). The consumer observes the
///     new tail with tail_.load(acquire), so every slot write
///     happens-before the consumer's read of that slot.
///   * Symmetrically, the consumer retires slots with head_.store(release)
///     and the producer re-checks capacity with head_.load(acquire), so a
///     slot is never overwritten before its previous occupant has been
///     fully read.
/// Each edge is named with an OrderSite so tools/nmc_race can weaken it in
/// isolation and show a litmus test fail (see DESIGN.md §13 for the
/// site-by-site contract table).
/// head_ and tail_ live on separate cache lines (and each side keeps a
/// relaxed-read cache of the other's index) so the steady state costs one
/// uncontended atomic per side per batch, not a ping-ponging line.
///
/// Indices grow monotonically and are mapped to slots with a power-of-two
/// mask; at 2^64 pushes the counters would wrap, which at 10^9
/// updates/second is ~580 years — out of scope.
template <typename T, typename Policy = StdAtomicPolicy>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscQueue slots are copied across threads raw");

 public:
  /// Capacity is rounded up to the next power of two (>= 2).
  explicit SpscQueue(size_t min_capacity)
      : SpscQueue(Exact{}, RoundUpCapacity(min_capacity)) {}

  /// Exact compile-time capacity; rejects invalid sizes via the tag's
  /// static_asserts and permits a capacity-1 ring.
  template <size_t kN>
  explicit SpscQueue(RingCapacity<kN>) : SpscQueue(Exact{}, kN) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // nmc: reentrant
  size_t capacity() const { return mask_ + 1; }

  /// Producer: enqueues one item; false when full (nothing written).
  // nmc: reentrant
  bool TryPush(const T& item) { return TryPushSpan({&item, 1}) == 1; }

  /// Producer: enqueues as many leading items of `items` as fit and
  /// returns the count (0 when full). Never blocks.
  // nmc: reentrant
  size_t TryPushSpan(std::span<const T> items) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = capacity() - static_cast<size_t>(tail - cached_head_);
    // nmc-lint: allow(THREAD_COMPAT) span::size() is a const accessor; the call graph misresolves it to an unrelated repo class's size()
    if (free < items.size()) {
      // Refresh the consumer's progress only when the cache says "full-ish"
      // — this is the line transfer the cache exists to amortize.
      cached_head_ = head_.load(
          Policy::Order(OrderSite::kSpscHeadAcquire, std::memory_order_acquire));
      free = capacity() - static_cast<size_t>(tail - cached_head_);
      if (free == 0) return 0;
    }
    const size_t take = free < items.size() ? free : items.size();
    for (size_t i = 0; i < take; ++i) {
      slots_.Store(static_cast<size_t>(tail + i) & mask_, items[i]);
    }
    tail_.store(tail + take, Policy::Order(OrderSite::kSpscTailRelease,
                                           std::memory_order_release));
    return take;
  }

  /// Consumer: dequeues one item; false when empty.
  // nmc: reentrant
  bool TryPop(T* out) {
    const std::span<const T> view = PeekContiguous(1);
    // nmc-lint: allow(THREAD_COMPAT) span::empty() is a const accessor; the call graph misresolves it to an unrelated repo class's empty()
    if (view.empty()) return false;
    *out = view.front();
    Advance(1);
    return true;
  }

  /// Consumer: a borrowed view of up to `max_items` queued items that are
  /// contiguous in the ring (a batch ending at the wrap point may be split
  /// across two calls). The view stays valid until Advance() consumes past
  /// it. Empty span when the queue is empty.
  // nmc: reentrant
  std::span<const T> PeekContiguous(size_t max_items) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(
          Policy::Order(OrderSite::kSpscTailAcquire, std::memory_order_acquire));
      if (cached_tail_ == head) return {};
    }
    size_t avail = static_cast<size_t>(cached_tail_ - head);
    const size_t until_wrap = capacity() - static_cast<size_t>(head & mask_);
    if (avail > until_wrap) avail = until_wrap;
    if (avail > max_items) avail = max_items;
    return slots_.View(static_cast<size_t>(head & mask_), avail);
  }

  /// Consumer: retires `count` items previously observed via
  /// PeekContiguous (or TryPop), releasing their slots to the producer.
  // nmc: reentrant
  void Advance(size_t count) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    NMC_CHECK_LE(count, static_cast<size_t>(cached_tail_ - head));
    head_.store(head + count, Policy::Order(OrderSite::kSpscHeadRelease,
                                            std::memory_order_release));
  }

  /// Either side: a snapshot of the queued count (exact only from within
  /// the owning thread of one end; advisory across threads). Relaxed on
  /// purpose: no slot access is ordered against this value, so there is no
  /// pairing edge for an acquire to complete — nmc_race's mutation harness
  /// requires every non-relaxed order here to be refutable when weakened.
  // nmc: reentrant
  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_relaxed) -
                               head_.load(std::memory_order_relaxed));
  }

 private:
  static constexpr size_t kCacheLine = 64;

  struct Exact {};
  SpscQueue(Exact, size_t capacity) : mask_(capacity - 1), slots_(capacity) {}

  static size_t RoundUpCapacity(size_t min_capacity) {
    size_t capacity = 2;
    while (capacity < min_capacity) capacity <<= 1;
    return capacity;
  }

  size_t mask_ = 0;
  typename Policy::template SlotArray<T> slots_;
  /// Producer-owned line: the publish index plus the producer's cache of
  /// the consumer's progress.
  alignas(kCacheLine) typename Policy::template Atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  /// Consumer-owned line, symmetrically.
  alignas(kCacheLine) typename Policy::template Atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
};

}  // namespace nmc::common
