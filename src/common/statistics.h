#pragma once

#include <cstdint>
#include <vector>

namespace nmc::common {

/// Streaming mean/variance accumulator (Welford's algorithm); numerically
/// stable for the long sums produced by multi-million-step simulations.
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);

  /// Folds `other` into this accumulator using the pooled-moments combine
  /// (Chan et al.): the result has the count/sum/mean/m2/min/max the
  /// accumulator would hold after seeing both sample sets. Either side may
  /// be empty. Enables parallel accumulation: workers build disjoint stats
  /// and the caller merges them.
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of the values by linear
/// interpolation between order statistics. The input is copied and sorted;
/// it must be non-empty.
double Quantile(std::vector<double> values, double q);

/// Least-squares fit of y = a + b*x. r2 is the coefficient of
/// determination. Requires at least two points with distinct x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fits y = c * x^p on log-log axes and returns {log(c), p, r2}. All
/// inputs must be strictly positive. Used by benches/EXPERIMENTS.md to
/// verify the growth exponents the theorems predict (e.g. messages ~ sqrt(n)
/// means a fitted exponent near 0.5).
LinearFit FitPowerLaw(const std::vector<double>& xs,
                      const std::vector<double>& ys);

}  // namespace nmc::common

