#include "common/rng.h"

#include <cmath>

namespace nmc::common {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// nmc: reentrant
uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(&sm);
}

// nmc: reentrant
uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

// nmc: reentrant
double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  NMC_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextU64();
  while (value >= limit) value = NextU64();
  return lo + static_cast<int64_t>(value % range);
}

// nmc: reentrant
bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  NMC_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

int64_t Rng::Geometric(double p) {
  NMC_CHECK_GT(p, 0.0);
  NMC_CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  // Inverse transform: floor(log(U) / log(1 - p)).
  const double u = 1.0 - UniformDouble();  // in (0, 1]
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace nmc::common
