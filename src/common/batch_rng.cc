#include "common/batch_rng.h"

#include <cmath>
#include <cstddef>

#include "common/batch_rng_kernels.h"
#include "common/simd_dispatch.h"

namespace nmc::common {

namespace detail = batch_rng_detail;

static_assert(kBatchRngLanes == detail::kLanes);
static_assert(kBatchRngInfiniteGap == detail::kInfiniteGap);

namespace {

void DispatchU64(uint64_t state[4][detail::kLanes], uint64_t* out, size_t n) {
  switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
    case SimdLevel::kAvx2:
      detail::FillU64Avx2(state, out, n);
      return;
#endif
#if NMC_SIMD_NEON
    case SimdLevel::kNeon:
      detail::FillU64Neon(state, out, n);
      return;
#endif
    default:
      detail::FillU64Scalar(state, out, n);
      return;
  }
}

void DispatchUniform(uint64_t state[4][detail::kLanes], double* out, size_t n) {
  switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
    case SimdLevel::kAvx2:
      detail::FillUniformAvx2(state, out, n);
      return;
#endif
#if NMC_SIMD_NEON
    case SimdLevel::kNeon:
      detail::FillUniformNeon(state, out, n);
      return;
#endif
    default:
      detail::FillUniformScalar(state, out, n);
      return;
  }
}

void DispatchSigns(uint64_t state[4][detail::kLanes], double* out, size_t n,
                   double p_plus) {
  switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
    case SimdLevel::kAvx2:
      detail::FillSignsAvx2(state, out, n, p_plus);
      return;
#endif
#if NMC_SIMD_NEON
    case SimdLevel::kNeon:
      detail::FillSignsNeon(state, out, n, p_plus);
      return;
#endif
    default:
      detail::FillSignsScalar(state, out, n, p_plus);
      return;
  }
}

void DispatchGaps(uint64_t state[4][detail::kLanes], int64_t* out, size_t n,
                  double inv_log_q) {
  switch (ActiveSimdLevel()) {
#if NMC_SIMD_AVX2
    case SimdLevel::kAvx2:
      detail::FillGapsAvx2(state, out, n, inv_log_q);
      return;
#endif
#if NMC_SIMD_NEON
    case SimdLevel::kNeon:
      detail::FillGapsNeon(state, out, n, inv_log_q);
      return;
#endif
    default:
      detail::FillGapsScalar(state, out, n, inv_log_q);
      return;
  }
}

}  // namespace

BatchRng::BatchRng(uint64_t seed) {
  uint64_t chain = seed;
  for (int lane = 0; lane < kBatchRngLanes; ++lane) {
    uint64_t sub = detail::SplitMix64(&chain);
    for (int word = 0; word < 4; ++word) {
      state_[word][lane] = detail::SplitMix64(&sub);
    }
  }
}

uint64_t BatchRng::LaneSeed(uint64_t seed, int lane) {
  uint64_t chain = seed;
  uint64_t sub = 0;
  for (int j = 0; j <= lane; ++j) sub = detail::SplitMix64(&chain);
  return sub;
}

void BatchRng::Refill() {
  for (int lane = 0; lane < kBatchRngLanes; ++lane) {
    carry_[lane] = detail::StepLane(state_, lane);
  }
  carry_pos_ = 0;
}

void BatchRng::FillU64(std::span<uint64_t> out) {
  size_t i = 0;
  while (carry_pos_ < kBatchRngLanes && i < out.size()) {
    out[i++] = carry_[carry_pos_++];
  }
  const size_t bulk = (out.size() - i) & ~static_cast<size_t>(3);
  if (bulk != 0) {
    DispatchU64(state_, out.data() + i, bulk);
    i += bulk;
  }
  if (i < out.size()) {
    Refill();
    while (i < out.size()) out[i++] = carry_[carry_pos_++];
  }
}

void BatchRng::FillUniform(std::span<double> out) {
  size_t i = 0;
  while (carry_pos_ < kBatchRngLanes && i < out.size()) {
    out[i++] = detail::U64ToUnit(carry_[carry_pos_++]);
  }
  const size_t bulk = (out.size() - i) & ~static_cast<size_t>(3);
  if (bulk != 0) {
    DispatchUniform(state_, out.data() + i, bulk);
    i += bulk;
  }
  if (i < out.size()) {
    Refill();
    while (i < out.size()) out[i++] = detail::U64ToUnit(carry_[carry_pos_++]);
  }
}

void BatchRng::FillSigns(std::span<double> out, double p_plus) {
  size_t i = 0;
  while (carry_pos_ < kBatchRngLanes && i < out.size()) {
    out[i++] = detail::U64ToUnit(carry_[carry_pos_++]) < p_plus ? 1.0 : -1.0;
  }
  const size_t bulk = (out.size() - i) & ~static_cast<size_t>(3);
  if (bulk != 0) {
    DispatchSigns(state_, out.data() + i, bulk, p_plus);
    i += bulk;
  }
  if (i < out.size()) {
    Refill();
    while (i < out.size()) {
      out[i++] = detail::U64ToUnit(carry_[carry_pos_++]) < p_plus ? 1.0 : -1.0;
    }
  }
}

void BatchRng::FillGeometricGaps(std::span<int64_t> out, double p) {
  // Clamp conventions match Rng::Bernoulli: degenerate rates consume no
  // randomness at all.
  if (p <= 0.0) {
    for (int64_t& g : out) g = kBatchRngInfiniteGap;
    return;
  }
  if (p >= 1.0) {
    for (int64_t& g : out) g = 0;
    return;
  }
  // One divide per rate change (memoized); every element then multiplies
  // by the reciprocal (see GapFromU64), and all SIMD levels use the same
  // reciprocal value.
  if (p != gap_memo_p_) {
    gap_memo_p_ = p;
    // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) memoized: one log1p per rate *change*, not per update; every lane then multiplies by the cached reciprocal
    gap_memo_inv_log_q_ = 1.0 / std::log1p(-p);
  }
  const double inv_log_q = gap_memo_inv_log_q_;
  size_t i = 0;
  while (carry_pos_ < kBatchRngLanes && i < out.size()) {
    out[i++] = detail::GapFromU64(carry_[carry_pos_++], inv_log_q);
  }
  const size_t bulk = (out.size() - i) & ~static_cast<size_t>(3);
  if (bulk != 0) {
    DispatchGaps(state_, out.data() + i, bulk, inv_log_q);
    i += bulk;
  }
  if (i < out.size()) {
    Refill();
    while (i < out.size()) {
      out[i++] = detail::GapFromU64(carry_[carry_pos_++], inv_log_q);
    }
  }
}

uint64_t BatchRng::NextU64() {
  if (carry_pos_ == kBatchRngLanes) Refill();
  return carry_[carry_pos_++];
}

BatchRng BatchRng::Child() { return BatchRng(NextU64()); }

namespace batch_rng_detail {

void FillU64Scalar(uint64_t state[4][kLanes], uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; i += kLanes) {
    for (int lane = 0; lane < kLanes; ++lane) {
      out[i + static_cast<size_t>(lane)] = StepLane(state, lane);
    }
  }
}

void FillUniformScalar(uint64_t state[4][kLanes], double* out, size_t n) {
  for (size_t i = 0; i < n; i += kLanes) {
    for (int lane = 0; lane < kLanes; ++lane) {
      out[i + static_cast<size_t>(lane)] = U64ToUnit(StepLane(state, lane));
    }
  }
}

void FillSignsScalar(uint64_t state[4][kLanes], double* out, size_t n,
                     double p_plus) {
  for (size_t i = 0; i < n; i += kLanes) {
    for (int lane = 0; lane < kLanes; ++lane) {
      out[i + static_cast<size_t>(lane)] =
          U64ToUnit(StepLane(state, lane)) < p_plus ? 1.0 : -1.0;
    }
  }
}

void FillGapsScalar(uint64_t state[4][kLanes], int64_t* out, size_t n,
                    double inv_log_q) {
  for (size_t i = 0; i < n; i += kLanes) {
    for (int lane = 0; lane < kLanes; ++lane) {
      out[i + static_cast<size_t>(lane)] =
          GapFromU64(StepLane(state, lane), inv_log_q);
    }
  }
}

}  // namespace batch_rng_detail

}  // namespace nmc::common
