#pragma once

#include <string>
#include <utility>

namespace nmc::common {

/// Error categories used across the library. The set is intentionally
/// small: most failures in a simulation library are either caller mistakes
/// (InvalidArgument) or impossible-by-construction states caught by
/// NMC_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kInternal = 4,
};

/// A lightweight success-or-error result, in the style of Arrow/RocksDB.
/// Functions whose failure is a legitimate runtime outcome (bad user
/// parameters, numerically infeasible requests) return Status; functions
/// whose failure would indicate a bug use NMC_CHECK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable form, e.g. "InvalidArgument: epsilon must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace nmc::common

