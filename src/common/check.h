#pragma once

#include <cstdio>
#include <cstdlib>

/// \file
/// Always-on invariant checking. The library does not use exceptions
/// (contract violations are programming errors, not recoverable states), so
/// a failed check prints the failing expression with its location and
/// aborts. Unlike assert(), these checks are active in release builds: the
/// protocols are randomized and a silently corrupted invariant would
/// invalidate every measured communication bound.

#define NMC_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "NMC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define NMC_CHECK_OP(op, a, b)                                               \
  do {                                                                       \
    if (!((a)op(b))) {                                                       \
      std::fprintf(stderr, "NMC_CHECK failed at %s:%d: %s %s %s\n",          \
                   __FILE__, __LINE__, #a, #op, #b);                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define NMC_CHECK_EQ(a, b) NMC_CHECK_OP(==, a, b)
#define NMC_CHECK_NE(a, b) NMC_CHECK_OP(!=, a, b)
#define NMC_CHECK_LT(a, b) NMC_CHECK_OP(<, a, b)
#define NMC_CHECK_LE(a, b) NMC_CHECK_OP(<=, a, b)
#define NMC_CHECK_GT(a, b) NMC_CHECK_OP(>, a, b)
#define NMC_CHECK_GE(a, b) NMC_CHECK_OP(>=, a, b)

