// AVX2 kernels for batch_ops. The prefix sums regroup additions, which is
// legal here only because the dispatcher guarantees every value is ±1.0
// and the running sum stays an exactly-representable integer — under that
// precondition every grouping yields identical bits, so these kernels
// match the scalar oracle exactly.

#include "common/batch_ops_kernels.h"

#if NMC_SIMD_AVX2

#include <immintrin.h>

namespace nmc::common::batch_ops_detail {
namespace {

// [a0 a1 a2 a3] -> [0 a0 a1 a2]
inline __m256d ShiftIn1(__m256d a) {
  const __m256d z = _mm256_permute2f128_pd(a, a, 0x08);  // [0 0 a0 a1]
  return _mm256_shuffle_pd(z, a, 0x4);
}

// [a0 a1 a2 a3] -> [0 0 a0 a1]
inline __m256d ShiftIn2(__m256d a) { return _mm256_permute2f128_pd(a, a, 0x08); }

inline double HorizontalMax(__m256d x) {
  const __m128d lo = _mm256_castpd256_pd128(x);
  const __m128d hi = _mm256_extractf128_pd(x, 1);
  const __m128d m2 = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(m2, _mm_unpackhi_pd(m2, m2)));
}

inline double HorizontalMin(__m256d x) {
  const __m128d lo = _mm256_castpd256_pd128(x);
  const __m128d hi = _mm256_extractf128_pd(x, 1);
  const __m128d m2 = _mm_min_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_min_sd(m2, _mm_unpackhi_pd(m2, m2)));
}

}  // namespace

SignTally TallySignsAvx2(const double* values, size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d one = _mm256_set1_pd(1.0);
  int64_t plus = 0;
  size_t i = 0;
  // Two vectors per iteration: one fused movemask test gates both, so the
  // loop-carried branch fires half as often as a 4-wide walk. The order
  // of popcount accumulation is irrelevant — the tally is integer-exact.
  const size_t bulk8 = n & ~static_cast<size_t>(7);
  for (; i < bulk8; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(values + i);
    const __m256d v1 = _mm256_loadu_pd(values + i + 4);
    const int unit0 = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_and_pd(v0, abs_mask), one, _CMP_EQ_OQ));
    const int unit1 = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_and_pd(v1, abs_mask), one, _CMP_EQ_OQ));
    if ((unit0 & unit1) != 0xF) return SignTally{};
    const int head =
        _mm256_movemask_pd(_mm256_cmp_pd(v0, one, _CMP_EQ_OQ)) |
        (_mm256_movemask_pd(_mm256_cmp_pd(v1, one, _CMP_EQ_OQ)) << 4);
    plus += __builtin_popcount(static_cast<unsigned>(head));
  }
  const size_t bulk = n & ~static_cast<size_t>(3);
  for (; i < bulk; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d unit =
        _mm256_cmp_pd(_mm256_and_pd(v, abs_mask), one, _CMP_EQ_OQ);
    if (_mm256_movemask_pd(unit) != 0xF) return SignTally{};
    const int head = _mm256_movemask_pd(_mm256_cmp_pd(v, one, _CMP_EQ_OQ));
    plus += __builtin_popcount(static_cast<unsigned>(head));
  }
  const SignTally tail = TallySignsScalar(values + bulk, n - bulk);
  if (!tail.all_unit) return SignTally{};
  return SignTally{plus + tail.plus,
                   static_cast<int64_t>(bulk) - plus + tail.minus, true};
}

void UnitRunBoundsAvx2(const double* values, size_t n, BoundsState* state) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d carry = _mm256_set1_pd(state->sum);
  __m256d mn = _mm256_set1_pd(state->min_sum);
  __m256d mx = _mm256_set1_pd(state->max_sum);
  for (size_t i = 0; i < n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d unit =
        _mm256_cmp_pd(_mm256_and_pd(v, abs_mask), one, _CMP_EQ_OQ);
    if (_mm256_movemask_pd(unit) != 0xF) {
      state->all_unit = false;
      return;
    }
    // Same carry-free in-register prefix sum as CheckUnitPrefixAvx2 —
    // exact on ±1 integers, so min/max over lanes match the scalar walk.
    const __m256d t1 = _mm256_add_pd(v, ShiftIn1(v));
    const __m256d local = _mm256_add_pd(t1, ShiftIn2(t1));
    const __m256d sum = _mm256_add_pd(local, carry);
    carry = _mm256_add_pd(carry, _mm256_permute4x64_pd(local, 0xFF));
    mn = _mm256_min_pd(mn, sum);
    mx = _mm256_max_pd(mx, sum);
  }
  state->sum = _mm_cvtsd_f64(_mm256_castpd256_pd128(carry));
  state->min_sum = HorizontalMin(mn);
  state->max_sum = HorizontalMax(mx);
}

void CheckUnitPrefixAvx2(const double* values, size_t n, double estimate,
                         double epsilon, double slack, double rel_floor,
                         PrefixState* state) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  const __m256d est = _mm256_set1_pd(estimate);
  const __m256d eps = _mm256_set1_pd(epsilon);
  const __m256d slk = _mm256_set1_pd(slack);
  const __m256d floor_v = _mm256_set1_pd(rel_floor);
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d carry = _mm256_set1_pd(state->sum);
  __m256d max_rel = _mm256_setzero_pd();
  int64_t violations = state->violations;
  for (size_t i = 0; i < n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // In-register inclusive prefix sum (exact: ±1 integers). The local
    // prefix and its block total are computed carry-free so the only
    // loop-carried dependency is the single carry add below.
    const __m256d t1 = _mm256_add_pd(v, ShiftIn1(v));
    const __m256d local = _mm256_add_pd(t1, ShiftIn2(t1));
    const __m256d block_total = _mm256_permute4x64_pd(local, 0xFF);
    const __m256d sum = _mm256_add_pd(local, carry);
    carry = _mm256_add_pd(carry, block_total);
    const __m256d abs_err = _mm256_and_pd(_mm256_sub_pd(est, sum), abs_mask);
    const __m256d abs_sum = _mm256_and_pd(sum, abs_mask);
    const __m256d threshold = _mm256_add_pd(_mm256_mul_pd(eps, abs_sum), slk);
    const int viol =
        _mm256_movemask_pd(_mm256_cmp_pd(abs_err, threshold, _CMP_GT_OQ));
    violations += __builtin_popcount(static_cast<unsigned>(viol));
    const __m256d in_floor = _mm256_cmp_pd(abs_sum, floor_v, _CMP_GE_OQ);
    // Lanes below the floor divide by 1.0 instead (then mask to zero), so
    // no 0/0 NaN is ever manufactured.
    const __m256d denom = _mm256_blendv_pd(one, abs_sum, in_floor);
    const __m256d rel =
        _mm256_and_pd(_mm256_div_pd(abs_err, denom), in_floor);
    max_rel = _mm256_max_pd(max_rel, rel);
  }
  state->sum = _mm_cvtsd_f64(_mm256_castpd256_pd128(carry));
  state->violations = violations;
  const double mr = HorizontalMax(max_rel);
  if (mr > state->max_rel_error) state->max_rel_error = mr;
}

}  // namespace nmc::common::batch_ops_detail

#endif  // NMC_SIMD_AVX2
