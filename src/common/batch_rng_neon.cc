// NEON (aarch64) kernels for BatchRng: the four xoshiro lanes are walked as
// two 128-bit pairs. aarch64 has exact u64->f64 and s64->f64 converts, so
// the uniform mapping needs no mantissa tricks; the log polynomial fuses
// exactly where the scalar oracle calls std::fma (vfmaq_f64 is the same
// single-rounded op) and nowhere else (-ffp-contract=off), so results
// match the scalar oracle bit for bit.

#include "common/batch_rng_kernels.h"

#if NMC_SIMD_NEON

#include <arm_neon.h>

namespace nmc::common::batch_rng_detail {
namespace {

struct Pair {
  uint64x2_t s0, s1, s2, s3;
};

inline Pair LoadPair(uint64_t state[4][kLanes], int base) {
  return {vld1q_u64(&state[0][base]), vld1q_u64(&state[1][base]),
          vld1q_u64(&state[2][base]), vld1q_u64(&state[3][base])};
}

inline void StorePair(uint64_t state[4][kLanes], int base, const Pair& r) {
  vst1q_u64(&state[0][base], r.s0);
  vst1q_u64(&state[1][base], r.s1);
  vst1q_u64(&state[2][base], r.s2);
  vst1q_u64(&state[3][base], r.s3);
}

template <int K>
inline uint64x2_t RotL64(uint64x2_t x) {
  return vorrq_u64(vshlq_n_u64(x, K), vshrq_n_u64(x, 64 - K));
}

inline uint64x2_t Step(Pair* r) {
  const uint64x2_t result =
      vaddq_u64(RotL64<23>(vaddq_u64(r->s0, r->s3)), r->s0);
  const uint64x2_t t = vshlq_n_u64(r->s1, 17);
  r->s2 = veorq_u64(r->s2, r->s0);
  r->s3 = veorq_u64(r->s3, r->s1);
  r->s1 = veorq_u64(r->s1, r->s2);
  r->s0 = veorq_u64(r->s0, r->s3);
  r->s2 = veorq_u64(r->s2, t);
  r->s3 = RotL64<45>(r->s3);
  return result;
}

inline float64x2_t ToUnit(uint64x2_t x) {
  const float64x2_t value = vcvtq_f64_u64(vshrq_n_u64(x, 11));  // exact
  return vmulq_f64(value, vdupq_n_f64(0x1.0p-53));
}

inline float64x2_t PolyLog2(float64x2_t u) {
  const uint64x2_t bits = vreinterpretq_u64_f64(u);
  int64x2_t e = vsubq_s64(
      vreinterpretq_s64_u64(
          vandq_u64(vshrq_n_u64(bits, 52), vdupq_n_u64(0x7FF))),
      vdupq_n_s64(1022));
  float64x2_t m = vreinterpretq_f64_u64(
      vorrq_u64(vandq_u64(bits, vdupq_n_u64(0xFFFFFFFFFFFFFULL)),
                vdupq_n_u64(0x3FE0000000000000ULL)));
  const uint64x2_t small = vcltq_f64(m, vdupq_n_f64(kSqrtHalf));
  m = vbslq_f64(small, vaddq_f64(m, m), m);
  e = vsubq_s64(e, vreinterpretq_s64_u64(vandq_u64(small, vdupq_n_u64(1))));
  const float64x2_t z = vdivq_f64(vsubq_f64(m, vdupq_n_f64(1.0)),
                                  vaddq_f64(m, vdupq_n_f64(1.0)));
  const float64x2_t w = vmulq_f64(z, z);
  const float64x2_t w2 = vmulq_f64(w, w);
  const float64x2_t a =
      vfmaq_f64(vdupq_n_f64(kLogCoeff[0]), vdupq_n_f64(kLogCoeff[1]), w);
  const float64x2_t b =
      vfmaq_f64(vdupq_n_f64(kLogCoeff[2]), vdupq_n_f64(kLogCoeff[3]), w);
  const float64x2_t inner = vfmaq_f64(b, w2, vdupq_n_f64(kLogCoeff[4]));
  const float64x2_t p = vfmaq_f64(a, w2, inner);
  const float64x2_t ed = vcvtq_f64_s64(e);  // exact for |e| <= 53
  return vfmaq_f64(vmulq_f64(ed, vdupq_n_f64(kLn2)), z, p);
}

inline int64x2_t Gaps2(uint64x2_t x, float64x2_t inv_log_q) {
  const float64x2_t tail = vsubq_f64(
      vdupq_n_f64(2.0),
      vreinterpretq_f64_u64(vorrq_u64(vshrq_n_u64(x, 12),
                                      vdupq_n_u64(0x3FF0000000000000ULL))));
  const float64x2_t t = vmulq_f64(PolyLog2(tail), inv_log_q);
  const float64x2_t g = vrndmq_f64(t);  // floor
  const uint64x2_t huge = vcgeq_f64(g, vdupq_n_f64(kTwo51));
  // vcvtq_s64_f64 truncates; g is a non-negative integer < 2^51 on the
  // non-clamped lanes, so the conversion is exact (== scalar static_cast).
  const int64x2_t conv = vcvtq_s64_f64(vbslq_f64(huge, vdupq_n_f64(0.0), g));
  return vbslq_s64(huge, vdupq_n_s64(kInfiniteGap), conv);
}

}  // namespace

void FillU64Neon(uint64_t state[4][kLanes], uint64_t* out, size_t n) {
  Pair a = LoadPair(state, 0);
  Pair b = LoadPair(state, 2);
  for (size_t i = 0; i < n; i += 4) {
    vst1q_u64(out + i, Step(&a));
    vst1q_u64(out + i + 2, Step(&b));
  }
  StorePair(state, 0, a);
  StorePair(state, 2, b);
}

void FillUniformNeon(uint64_t state[4][kLanes], double* out, size_t n) {
  Pair a = LoadPair(state, 0);
  Pair b = LoadPair(state, 2);
  for (size_t i = 0; i < n; i += 4) {
    vst1q_f64(out + i, ToUnit(Step(&a)));
    vst1q_f64(out + i + 2, ToUnit(Step(&b)));
  }
  StorePair(state, 0, a);
  StorePair(state, 2, b);
}

void FillSignsNeon(uint64_t state[4][kLanes], double* out, size_t n,
                   double p_plus) {
  Pair a = LoadPair(state, 0);
  Pair b = LoadPair(state, 2);
  const float64x2_t p = vdupq_n_f64(p_plus);
  const float64x2_t plus = vdupq_n_f64(1.0);
  const float64x2_t minus = vdupq_n_f64(-1.0);
  for (size_t i = 0; i < n; i += 4) {
    const float64x2_t ua = ToUnit(Step(&a));
    const float64x2_t ub = ToUnit(Step(&b));
    vst1q_f64(out + i, vbslq_f64(vcltq_f64(ua, p), plus, minus));
    vst1q_f64(out + i + 2, vbslq_f64(vcltq_f64(ub, p), plus, minus));
  }
  StorePair(state, 0, a);
  StorePair(state, 2, b);
}

void FillGapsNeon(uint64_t state[4][kLanes], int64_t* out, size_t n,
                  double inv_log_q) {
  Pair a = LoadPair(state, 0);
  Pair b = LoadPair(state, 2);
  const float64x2_t lq = vdupq_n_f64(inv_log_q);
  for (size_t i = 0; i < n; i += 4) {
    vst1q_s64(out + i, Gaps2(Step(&a), lq));
    vst1q_s64(out + i + 2, Gaps2(Step(&b), lq));
  }
  StorePair(state, 0, a);
  StorePair(state, 2, b);
}

}  // namespace nmc::common::batch_rng_detail

#endif  // NMC_SIMD_NEON
