#include "common/thread_pool.h"

#include <algorithm>

namespace nmc::common {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unfinished_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping: futures handed out by
      // Submit() must always become ready.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
  }
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace nmc::common
