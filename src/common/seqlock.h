#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/atomic_policy.h"

namespace nmc::common {

/// Single-writer seqlock slot: the coordinator's continuously published
/// value (Ŝ_t plus its generation), readable wait-free by any number of
/// threads — readers never write shared state, so a reader can neither
/// block the writer nor other readers.
///
/// Memory-order argument (Boehm, "Can seqlocks get along with programming
/// language memory models?"; acquire/release only):
///   * Writer: seq_ is bumped to odd with a relaxed store, a release fence
///     orders that store before the payload word stores (relaxed), and the
///     final even seq_.store(release) orders the payload stores before the
///     generation readers trust.
///   * Reader: seq_.load(acquire) orders the payload loads after it, an
///     acquire fence orders them before the re-read of seq_; equal even
///     values on both sides prove no writer was active in between, so the
///     copied words are a consistent snapshot.
/// The payload is stored as relaxed atomic<uint64_t> words, not plain
/// memory: a torn read is *detected and discarded* by the protocol above,
/// but the racing accesses themselves must still be data-race-free for the
/// language (and TSan) — relaxed atomics make them so at zero fence cost.
/// Each of the four ordering edges is named with an OrderSite so
/// tools/nmc_race can weaken it in isolation and show the no-torn-read
/// litmus test fail (DESIGN.md §13 has the contract table).
///
/// TryRead / the manual WriteBegin-StoreWord-WriteEnd steps are exposed
/// (rather than just Read/Publish loops) so tests can drive every
/// interleaving of a write deterministically and assert a concurrent read
/// refuses the torn intermediate states.
template <typename T, typename Policy = StdAtomicPolicy>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>,
                "Seqlock snapshots are copied word by word");
  static_assert(sizeof(T) % sizeof(uint64_t) == 0,
                "pad T to a multiple of 8 bytes so word copies cover it");

 public:
  static constexpr size_t kWords = sizeof(T) / sizeof(uint64_t);

  /// Readable immediately: generation 0 holds a default-constructed T.
  Seqlock() {
    const T initial{};
    uint64_t words[kWords];
    std::memcpy(words, &initial, sizeof(T));
    for (size_t i = 0; i < kWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
  }

  Seqlock(const Seqlock&) = delete;
  Seqlock& operator=(const Seqlock&) = delete;

  /// Writer (single thread): publishes `value` as the next generation.
  // nmc: reentrant
  void Publish(const T& value) {
    WriteBegin();
    uint64_t words[kWords];
    std::memcpy(words, &value, sizeof(T));
    for (size_t i = 0; i < kWords; ++i) StoreWord(i, words[i]);
    WriteEnd();
  }

  /// Reader (any thread): one snapshot attempt. False when a write was in
  /// flight or completed mid-copy — the copy is torn and *out is untouched.
  // nmc: reentrant
  bool TryRead(T* out) const {
    const uint64_t before = seq_.load(Policy::Order(
        OrderSite::kSeqlockReadAcquire, std::memory_order_acquire));
    if ((before & 1) != 0) return false;
    uint64_t words[kWords];
    for (size_t i = 0; i < kWords; ++i) {
      words[i] = words_[i].load(std::memory_order_relaxed);
    }
    Policy::Fence(OrderSite::kSeqlockReadFence, std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != before) return false;
    std::memcpy(out, words, sizeof(T));
    return true;
  }

  /// Reader (any thread): retries TryRead until a consistent snapshot
  /// lands. Wait-free in the serving sense: a reader is only ever retried
  /// past by a *completing* writer, never blocked by one.
  // nmc: reentrant
  T Read() const {
    T out;
    while (!TryRead(&out)) {
    }
    return out;
  }

  /// Generations published so far (the sequence counter is 2x that, odd
  /// exactly while a write is in flight). Relaxed on purpose: the count is
  /// advisory — consistency of any snapshot comes from TryRead's own
  /// acquire protocol, never from ordering against this load — and
  /// nmc_race's mutation harness requires every non-relaxed order here to
  /// be refutable when weakened.
  // nmc: reentrant
  uint64_t generation() const {
    return seq_.load(std::memory_order_relaxed) / 2;
  }

  // ---- Manual write steps (single writer; exposed for interleaving
  // tests — production writers use Publish) ------------------------------

  /// Marks a write in flight: seq_ becomes odd, readers refuse.
  // nmc: reentrant
  void WriteBegin() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    // Order the odd marker before every payload store below: a reader that
    // observes any new word also observes the odd sequence (or the final
    // even one, which postdates all words).
    Policy::Fence(OrderSite::kSeqlockWriteFence, std::memory_order_release);
  }

  /// Stores payload word `index` of the in-flight write.
  // nmc: reentrant
  void StoreWord(size_t index, uint64_t word) {
    words_[index].store(word, std::memory_order_relaxed);
  }

  /// Completes the in-flight write: seq_ returns to even, one generation
  /// later; the release store publishes every StoreWord before it.
  // nmc: reentrant
  void WriteEnd() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               Policy::Order(OrderSite::kSeqlockWriteRelease,
                             std::memory_order_release));
  }

 private:
  static constexpr size_t kCacheLine = 64;

  /// The sequence counter and payload share one line on purpose: readers
  /// always touch both, and the single writer owns the line between
  /// publishes.
  alignas(kCacheLine) typename Policy::template Atomic<uint64_t> seq_{0};
  typename Policy::template Atomic<uint64_t> words_[kWords];
};

}  // namespace nmc::common
