#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nmc::common {

/// Right-aligned ASCII table used by the benchmark harness to print the
/// rows/series the paper's theorems predict. Cells are preformatted
/// strings; see the Format* helpers below.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a header rule, e.g.
  ///   n        messages   max_rel_err
  ///   -------- ---------- -----------
  ///   1024     312        0.041
  std::string ToString() const;

  /// Writes ToString() to stdout.
  void Print() const;

  /// Renders as RFC-4180-ish CSV (fields with commas, quotes or newlines
  /// are quoted, quotes doubled) for downstream plotting pipelines.
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal, e.g. Format(3.14159, 2) == "3.14".
std::string Format(double value, int precision);

/// Scientific notation with 3 significant digits, e.g. "1.23e+04".
std::string FormatSci(double value);

std::string Format(int64_t value);

}  // namespace nmc::common

