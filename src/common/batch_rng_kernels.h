#pragma once

// Internal kernel contract for BatchRng (see batch_rng.h). Each SIMD level
// implements the same four bulk fills over the shared SoA lane state; the
// scalar versions below are the oracle, and every vector TU must follow the
// exact same floating-point op sequence so outputs are bit-identical.
// Nothing here is public API — include batch_rng.h instead.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace nmc::common::batch_rng_detail {

inline constexpr int kLanes = 4;

/// Same SplitMix64 as common::Rng's seeder — the lane-decomposition
/// guarantee in batch_rng.h depends on these constants matching rng.cc.
inline uint64_t SplitMix64(uint64_t* x) {
  *x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t RotL(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// One xoshiro256++ step of lane `lane` — identical recurrence to
/// Rng::NextU64 over the strided SoA state.
inline uint64_t StepLane(uint64_t state[4][kLanes], int lane) {
  uint64_t s0 = state[0][lane];
  uint64_t s1 = state[1][lane];
  uint64_t s2 = state[2][lane];
  uint64_t s3 = state[3][lane];
  const uint64_t result = RotL(s0 + s3, 23) + s0;
  const uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = RotL(s3, 45);
  state[0][lane] = s0;
  state[1][lane] = s1;
  state[2][lane] = s2;
  state[3][lane] = s3;
  return result;
}

/// Same mapping as Rng::UniformDouble: top 53 bits to [0, 1).
inline double U64ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// --- Portable log for bulk geometric sampling -------------------------------
//
// Vector ISAs have no correctly-rounded log, and mixing std::log (scalar)
// with a vendor vector log would break scalar/SIMD bit-identity. Instead all
// levels use this shared atanh-series polynomial, evaluated with the exact
// same op sequence: -ffp-contract=off forbids *hidden* contraction, and
// where the sequence says "fused" it uses explicit fma (std::fma here,
// the hardware fused op in the vector TUs) — single-rounded and therefore
// identical everywhere IEEE-754 holds.
// After reducing the mantissa to [sqrt(1/2), sqrt(2)) the series argument
// z = (m-1)/(m+1) satisfies z^2 <= 0.0295; five terms leave an absolute
// error below 7e-10 in the log, which perturbs a geometric gap's floor()
// boundary with probability < 1e-6 per draw even at p ~ 2^-10 — utterly
// invisible to sampling, but NOT bit-identical to std::log, which is why
// batch-mode gap draws are a different (still geometric) sequence than
// scalar Rng::Geometric. Estrin evaluation keeps the dependency chain
// short enough for out-of-order cores to overlap adjacent gap blocks —
// with the old 9-term Horner the fill was latency-bound, not port-bound.

inline constexpr double kLogCoeff[5] = {2.0, 2.0 / 3.0, 2.0 / 5.0, 2.0 / 7.0,
                                        2.0 / 9.0};
inline constexpr double kSqrtHalf = 0.70710678118654752440;
inline constexpr double kLn2 = 0.69314718055994530942;
inline constexpr double kTwo51 = 0x1.0p51;
inline constexpr double kTwo52 = 0x1.0p52;
inline constexpr int64_t kInfiniteGap = 0x3FFFFFFFFFFFFFFF;  // int64 max / 2

/// log(u) for normal u in (0, 1]; the scalar oracle for the vector twins.
inline double PolyLog(double u) {
  const uint64_t bits = std::bit_cast<uint64_t>(u);
  int64_t e = static_cast<int64_t>((bits >> 52) & 0x7FFULL) - 1022;
  double m =
      std::bit_cast<double>((bits & 0xFFFFFFFFFFFFFULL) | 0x3FE0000000000000ULL);
  if (m < kSqrtHalf) {
    m = m + m;
    e -= 1;
  }
  const double z = (m - 1.0) / (m + 1.0);
  const double w = z * z;
  // Estrin with explicit fma: a fixed op tree shared with the vector
  // twins, and a short dependency chain so adjacent gap blocks overlap.
  const double w2 = w * w;
  const double a = std::fma(kLogCoeff[1], w, kLogCoeff[0]);
  const double b = std::fma(kLogCoeff[3], w, kLogCoeff[2]);
  const double p = std::fma(w2, std::fma(w2, kLogCoeff[4], b), a);
  return std::fma(z, p, static_cast<double>(e) * kLn2);
}

/// Uniform (0, 1] tail straight from 52 random bits: overlay them onto
/// [1, 2) and reflect around 2. Skips the exact u64->double conversion the
/// uniform/sign fills need — a gap draw only cares about the tail's
/// distribution, and 2^-52 granularity is far below anything the
/// geometric floor() can resolve. Never 0, never denormal.
inline double TailFromU64(uint64_t x) {
  return 2.0 - std::bit_cast<double>((x >> 12) | 0x3FF0000000000000ULL);
}

/// Geometric gap from one raw xoshiro output. Takes the *reciprocal*
/// inv_log_q = 1 / log1p(-p) < 0, computed once per fill: a multiply here
/// replaces a divide, which halves the vector kernels' division-port
/// pressure (the other divide, inside PolyLog, is structural). Gaps at or
/// above 2^51 (possible only for astronomically small p) clamp to
/// kInfiniteGap so the int64 conversion below stays exact.
inline int64_t GapFromU64(uint64_t x, double inv_log_q) {
  const double t = PolyLog(TailFromU64(x)) * inv_log_q;
  const double g = std::floor(t);
  return g >= kTwo51 ? kInfiniteGap : static_cast<int64_t>(g);
}

// --- Bulk kernels (n must be a multiple of kLanes) --------------------------
// Element i of `out` comes from lane i % kLanes; each kernel advances every
// lane by n / kLanes steps.

void FillU64Scalar(uint64_t state[4][kLanes], uint64_t* out, size_t n);
void FillUniformScalar(uint64_t state[4][kLanes], double* out, size_t n);
void FillSignsScalar(uint64_t state[4][kLanes], double* out, size_t n,
                     double p_plus);
void FillGapsScalar(uint64_t state[4][kLanes], int64_t* out, size_t n,
                    double inv_log_q);

#if NMC_SIMD_AVX2
void FillU64Avx2(uint64_t state[4][kLanes], uint64_t* out, size_t n);
void FillUniformAvx2(uint64_t state[4][kLanes], double* out, size_t n);
void FillSignsAvx2(uint64_t state[4][kLanes], double* out, size_t n,
                   double p_plus);
void FillGapsAvx2(uint64_t state[4][kLanes], int64_t* out, size_t n,
                  double inv_log_q);
#endif

#if NMC_SIMD_NEON
void FillU64Neon(uint64_t state[4][kLanes], uint64_t* out, size_t n);
void FillUniformNeon(uint64_t state[4][kLanes], double* out, size_t n);
void FillSignsNeon(uint64_t state[4][kLanes], double* out, size_t n,
                   double p_plus);
void FillGapsNeon(uint64_t state[4][kLanes], int64_t* out, size_t n,
                  double inv_log_q);
#endif

}  // namespace nmc::common::batch_rng_detail
