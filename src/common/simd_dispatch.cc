#include "common/simd_dispatch.h"

#include <atomic>

namespace nmc::common {
namespace {

SimdLevel Detect() {
#if NMC_SIMD_AVX2
  // The AVX2 TUs are compiled -mavx2 -mfma (the gap kernel fuses), so
  // dispatch requires both bits even though FMA ships on every AVX2 part
  // in practice — a VM masking FMA must fall back to scalar, not fault.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
#if NMC_SIMD_NEON
  return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
}

// Relaxed ordering is all dispatch needs: every level's kernel is
// bit-identical on the same inputs, so a thread racing a Force/Reset only
// ever picks one of two correct kernels.
// nmc-lint: allow(NO_MUTABLE_GLOBAL_STATE) the dispatch level is inherently process-wide; reads and the test-hook writes are relaxed atomics, so any interleaving is race-free
std::atomic<SimdLevel> g_active{Detect()};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

// nmc: reentrant
SimdLevel ActiveSimdLevel() {
  return g_active.load(std::memory_order_relaxed);
}

bool SimdLevelAvailable(SimdLevel level) {
  if (level == SimdLevel::kScalar) return true;
#if NMC_SIMD_AVX2
  if (level == SimdLevel::kAvx2) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
#endif
#if NMC_SIMD_NEON
  if (level == SimdLevel::kNeon) return true;
#endif
  return false;
}

bool ForceSimdLevel(SimdLevel level) {
  if (!SimdLevelAvailable(level)) return false;
  g_active.store(level, std::memory_order_relaxed);
  return true;
}

void ResetSimdLevel() {
  g_active.store(Detect(), std::memory_order_relaxed);
}

}  // namespace nmc::common
