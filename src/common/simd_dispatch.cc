#include "common/simd_dispatch.h"

namespace nmc::common {
namespace {

SimdLevel Detect() {
#if NMC_SIMD_AVX2
  // The AVX2 TUs are compiled -mavx2 -mfma (the gap kernel fuses), so
  // dispatch requires both bits even though FMA ships on every AVX2 part
  // in practice — a VM masking FMA must fall back to scalar, not fault.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
#if NMC_SIMD_NEON
  return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
}

// Plain global, not atomic: ForceSimdLevel is a single-threaded test hook,
// and in production the value never changes after static init.
// nmc-lint: allow(NO_MUTABLE_GLOBAL_STATE) set once at static init; the only writers are the single-threaded test hooks below, annotated not-thread-safe
SimdLevel g_active = Detect();

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() { return g_active; }

bool SimdLevelAvailable(SimdLevel level) {
  if (level == SimdLevel::kScalar) return true;
#if NMC_SIMD_AVX2
  if (level == SimdLevel::kAvx2) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
#endif
#if NMC_SIMD_NEON
  if (level == SimdLevel::kNeon) return true;
#endif
  return false;
}

// nmc: not-thread-safe(test hook; writes the g_active dispatch global with no synchronization)
bool ForceSimdLevel(SimdLevel level) {
  if (!SimdLevelAvailable(level)) return false;
  g_active = level;
  return true;
}

// nmc: not-thread-safe(test hook; writes the g_active dispatch global with no synchronization)
void ResetSimdLevel() { g_active = Detect(); }

}  // namespace nmc::common
