#pragma once

#include <cstdint>
#include <span>

namespace nmc::common {

/// Tally of a ±1 span. `all_unit` is the gate: when false (some element is
/// not exactly +1.0 or -1.0) the counts are meaningless and callers must
/// take their scalar path.
struct SignTally {
  int64_t plus = 0;
  int64_t minus = 0;
  bool all_unit = false;
};

/// Counts exact +1.0 / -1.0 elements (SIMD-dispatched). The hot-path
/// enabler for ±1 streams: when all_unit holds and the consumer's
/// accumulators are small integers, sums over the span are exact in any
/// grouping, so bulk absorption is bit-identical to per-item absorption.
SignTally TallySigns(std::span<const double> values);

/// Outcome of CheckUnitPrefix over a whole span.
struct PrefixCheckResult {
  int64_t violations = 0;      ///< items outside the (epsilon, slack) envelope
  double max_rel_error = 0.0;  ///< max error/|sum| over items with |sum| >= floor
  double final_sum = 0.0;      ///< running sum after the last item
};

/// Bulk twin of the tracking harness's per-item invariant check over a
/// run's silent prefix: for each item, sum += v, then
///   error = |estimate - sum|,  violation iff error > epsilon*|sum| + slack,
///   and error/|sum| feeds max_rel_error when |sum| >= rel_floor.
/// Returns false — touching nothing — unless the exactness precondition
/// holds: every value is exactly ±1.0, sum0 is an integer with
/// |sum0| + n < 2^51, and rel_floor > 0. Under that precondition every
/// intermediate sum is an exactly-representable integer, so the
/// vectorized evaluation is bit-identical to the sequential scalar loop
/// (and the scalar kernel is the dispatch oracle, as in BatchRng).
///
/// `current_max_rel` is the caller's running max-relative-error fold
/// value. It enables a run-level short-circuit: a cheap divide-free sweep
/// computes the exact min/max of the prefix walk, and when those bounds
/// prove that no item violates its envelope *and* no item's relative
/// error can exceed current_max_rel, the per-item kernels are skipped and
/// the result reports violations == 0 with max_rel_error == 0.0. That
/// report is only exact for callers that fold the field with
/// std::max(current_max_rel, result.max_rel_error) — which is the
/// harness's (and the per-item loop's) semantics. Pass 0.0 to force the
/// exact per-item maximum.
bool CheckUnitPrefix(std::span<const double> values, double sum0,
                     double estimate, double epsilon, double slack,
                     double rel_floor, double current_max_rel,
                     PrefixCheckResult* result);

}  // namespace nmc::common
