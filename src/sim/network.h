#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/message.h"
#include "sim/node.h"

namespace nmc::sim {

/// The star network connecting k sites to one coordinator. It is the only
/// channel protocols may use, and it charges every transmission to
/// MessageStats: one unit per unicast, k units per broadcast.
///
/// Delivery is synchronous-in-order: sends enqueue, and DeliverAll() pumps
/// the queue to quiescence. This models the paper's setting, where message
/// exchange triggered by one update completes before the adversary injects
/// the next update (communication is only initiated by a site receiving an
/// update, and arrival times are under adversary control).
///
/// The Network does not own the nodes; protocols own their nodes and attach
/// them before use.
///
/// Per-message work is allocation-free in the steady state: the delivery
/// queue is a flat vector whose storage is reused across DeliverAll()
/// calls, the per-type accounting is a dense array indexed by message type
/// (protocol type discriminators are small non-negative enums), and the
/// observer hook costs one branch on a plain bool when no observer is
/// installed.
class Network {
 public:
  explicit Network(int num_sites);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_sites() const { return num_sites_; }

  void AttachCoordinator(CoordinatorNode* coordinator);
  void AttachSite(int site_id, SiteNode* site);

  /// Site -> coordinator unicast (1 message).
  void SendToCoordinator(int from_site, const Message& message);

  /// Coordinator -> site unicast (1 message).
  void SendToSite(int site_id, const Message& message);

  /// Coordinator -> all sites (k messages).
  void Broadcast(const Message& message);

  /// Delivers queued messages (and any messages their handlers send) until
  /// the network is quiescent. Called by the harness after each update.
  void DeliverAll();

  const MessageStats& stats() const { return stats_; }

  /// Total messages transmitted so far.
  int64_t total_messages() const { return stats_.total(); }

  /// Per-direction message counts keyed by the protocol's message type
  /// discriminator — a debugging/analysis view (e.g. how much of a
  /// counter's cost is collect traffic vs state broadcasts).
  struct TypeBreakdown {
    int64_t to_coordinator = 0;
    int64_t to_sites = 0;
  };

  /// Snapshot of the per-type counts, keyed by type, with untouched types
  /// omitted. Built on demand from the internal dense array — call off the
  /// hot path (the accounting itself is always on).
  // nmc-lint: allow(NO_MAP_IN_HOT_PATH) cold-path diagnostic snapshot, built on demand; delivery accounting stays in the dense array
  std::map<int, TypeBreakdown> type_breakdown() const;

  /// One transmitted message, as seen by the observer below.
  struct SentMessage {
    bool to_coordinator = false;
    /// Source site for site->coordinator; destination site otherwise
    /// (a broadcast reports one entry per recipient).
    int site_id = 0;
    Message message;
  };

  /// Installs a tap that sees every transmission at send time (before
  /// delivery), in order. For tracing, golden-transcript tests, and
  /// debugging; pass nullptr to remove. Observation does not affect
  /// accounting or delivery.
  void SetObserver(std::function<void(const SentMessage&)> observer) {
    observer_ = std::move(observer);
    has_observer_ = static_cast<bool>(observer_);
  }

 private:
  struct Envelope {
    bool to_coordinator = false;
    int site_id = 0;  // destination site, or source site when to_coordinator
    Message message;
  };

  TypeBreakdown& BreakdownSlot(int type) {
    const size_t index = static_cast<size_t>(type);
    if (index >= breakdown_by_type_.size()) GrowBreakdown(index);
    return breakdown_by_type_[index];
  }

  void GrowBreakdown(size_t index);

  int num_sites_;
  CoordinatorNode* coordinator_ = nullptr;
  std::vector<SiteNode*> sites_;
  /// FIFO queue as (vector, head index): push_back to enqueue, advance
  /// head_ to dequeue; storage is kept across DeliverAll() calls so the
  /// steady state never reallocates.
  std::vector<Envelope> queue_;
  size_t head_ = 0;
  MessageStats stats_;
  /// Dense per-type counters; index = message type. Types are expected to
  /// be small non-negative ints (protocol enums); negative types abort.
  std::vector<TypeBreakdown> breakdown_by_type_;
  std::function<void(const SentMessage&)> observer_;
  bool has_observer_ = false;
  bool delivering_ = false;
};

}  // namespace nmc::sim

