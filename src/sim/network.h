#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/arena.h"
#include "sim/message.h"
#include "sim/node.h"

namespace nmc::sim {

// Defined in sim/channel.h; only a pointer is held here, so the heavy
// header (which pulls in the RNG) stays out of every protocol's include
// chain.
class ChannelModel;

/// The star network connecting k sites to one coordinator. It is the only
/// channel protocols may use, and it charges every transmission to
/// MessageStats: one unit per unicast, k units per broadcast.
///
/// Delivery is synchronous-in-order: sends enqueue, and DeliverAll() pumps
/// the queue to quiescence. This models the paper's setting, where message
/// exchange triggered by one update completes before the adversary injects
/// the next update (communication is only initiated by a site receiving an
/// update, and arrival times are under adversary control).
///
/// A pluggable ChannelModel relaxes that model: when one is installed (see
/// SetChannel), every hop is adjudicated at send time and may be dropped,
/// delayed by d simulated ticks, or duplicated. Simulated time advances via
/// BeginTick(), called by protocols once per stream update; messages
/// delayed to tick t are delivered at the start of tick t, before the
/// update is processed, in their original send order. With no channel (the
/// default) the fault machinery costs one branch per send and the behavior
/// is bit-identical to the historical perfectly-reliable network.
///
/// The Network does not own the nodes; protocols own their nodes and attach
/// them before use.
///
/// Per-message work is allocation-free in the steady state: the delivery
/// queue and the delayed-delivery queue live in a per-network bump arena
/// (see sim::Arena) whose blocks are retained forever — the arena is
/// rewound at quiescence boundaries whenever growth abandoned storage and
/// nothing is in flight, so after warm-up no send or delivery touches the
/// heap (MessageStats reports the arena's high-water footprint). The
/// per-type accounting is a dense array indexed by message type (protocol
/// type discriminators are small non-negative enums), and the observer
/// hook costs one branch on a plain bool when no observer is installed.
class Network {
 public:
  explicit Network(int num_sites);
  ~Network();  // out-of-line: ChannelModel is incomplete here

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_sites() const { return num_sites_; }

  void AttachCoordinator(CoordinatorNode* coordinator);
  void AttachSite(int site_id, SiteNode* site);

  /// Installs the channel model adjudicating every subsequent hop; nullptr
  /// (the default) is the perfect channel. Install before the first send —
  /// swapping models mid-run is not supported (delayed messages in flight
  /// would straddle two fault regimes).
  void SetChannel(std::unique_ptr<ChannelModel> channel);

  /// True when a channel model is installed. Protocols use this to pick the
  /// per-update processing path under faults (batch fast-forwarding assumes
  /// silent prefixes stay silent, which delayed delivery breaks).
  bool channeled() const { return channel_ != nullptr; }

  /// Current simulated time: the number of BeginTick() calls so far.
  int64_t now() const { return tick_; }

  /// Advances simulated time by one stream update and delivers any delayed
  /// messages that have come due (in send order). No-op without a channel.
  void BeginTick() {
    if (channel_ != nullptr) BeginTickSlow();
  }

  /// Messages currently held in the delayed queue.
  int64_t pending_delayed() const {
    return static_cast<int64_t>(delayed_.size());
  }

  /// Site -> coordinator unicast (1 message).
  void SendToCoordinator(int from_site, const Message& message);

  /// Coordinator -> site unicast (1 message).
  void SendToSite(int site_id, const Message& message);

  /// Coordinator -> all sites (k messages). Under a channel model each
  /// recipient's copy is adjudicated independently (the fault unit is the
  /// point-to-point link), so a broadcast can partially fail.
  void Broadcast(const Message& message);

  /// Delivers queued messages (and any messages their handlers send) until
  /// the network is quiescent. Called by the harness after each update.
  /// The empty-queue test lives here so the (dominant) silent-pump case
  /// costs one load instead of an out-of-line call: outside a delivery
  /// head_ is always 0, so an empty queue means the body is a no-op.
  void DeliverAll() {
    if (delivering_ || queue_.empty()) return;
    DeliverQueued();
  }

  const MessageStats& stats() const {
    stats_.arena_high_water_bytes =
        static_cast<int64_t>(arena_.high_water_bytes());
    stats_.arena_reserved_bytes = static_cast<int64_t>(arena_.reserved_bytes());
    return stats_;
  }

  /// Total messages transmitted so far.
  int64_t total_messages() const { return stats_.total(); }

  /// Per-direction message counts for one protocol message type — a
  /// debugging/analysis view (e.g. how much of a counter's cost is collect
  /// traffic vs state broadcasts).
  struct TypeCount {
    int type = 0;
    int64_t to_coordinator = 0;
    int64_t to_sites = 0;
  };

  /// Snapshot of the per-type counts in ascending type order, with
  /// untouched types omitted. Built on demand from the internal dense
  /// array — call off the hot path (the accounting itself is always on).
  std::vector<TypeCount> type_breakdown() const;

  /// One transmitted message, as seen by the observer below.
  struct SentMessage {
    bool to_coordinator = false;
    /// Source site for site->coordinator; destination site otherwise
    /// (a broadcast reports one entry per recipient).
    int site_id = 0;
    Message message;
  };

  /// Installs a tap that sees every transmission at send time (before
  /// channel adjudication), in order. For tracing, golden-transcript tests,
  /// and debugging; pass nullptr to remove. Observation does not affect
  /// accounting or delivery.
  void SetObserver(std::function<void(const SentMessage&)> observer) {
    observer_ = std::move(observer);
    has_observer_ = static_cast<bool>(observer_);
  }

 private:
  struct Envelope {
    bool to_coordinator = false;
    int site_id = 0;  // destination site, or source site when to_coordinator
    Message message;
  };

  struct DelayedEnvelope {
    int64_t due = 0;  // tick at whose start the envelope is delivered
    Envelope envelope;
  };

  struct DirectionCount {
    int64_t to_coordinator = 0;
    int64_t to_sites = 0;
  };

  DirectionCount& BreakdownSlot(int type) {
    const size_t index = static_cast<size_t>(type);
    if (index >= breakdown_by_type_.size()) GrowBreakdown(index);
    return breakdown_by_type_[index];
  }

  void GrowBreakdown(size_t index);

  /// Channel adjudication path for one hop (only reached when a channel is
  /// installed).
  void Route(const Envelope& envelope);

  void BeginTickSlow();

  /// Out-of-line body of DeliverAll for a non-empty queue.
  void DeliverQueued();

  /// Rewinds the arena when nothing is in flight and vector growth has
  /// abandoned storage to it; a no-op (one compare) in the steady state.
  void MaybeResetArena();

  int num_sites_;
  CoordinatorNode* coordinator_ = nullptr;
  std::vector<SiteNode*> sites_;
  /// Backing store for the message queues below; declared first so the
  /// vectors can borrow it at construction.
  Arena arena_;
  /// FIFO queue as (vector, head index): push_back to enqueue, advance
  /// head_ to dequeue; storage is kept across DeliverAll() calls so the
  /// steady state never reallocates.
  ArenaVector<Envelope> queue_;
  size_t head_ = 0;
  /// Messages a channel delayed, in send order; flushed (stably, in place)
  /// into queue_ as their due ticks arrive.
  ArenaVector<DelayedEnvelope> delayed_;
  std::unique_ptr<ChannelModel> channel_;
  int64_t tick_ = 0;
  /// mutable: stats() stamps the arena footprint fields on read.
  mutable MessageStats stats_;
  /// Dense per-type counters; index = message type. Types are expected to
  /// be small non-negative ints (protocol enums); negative types abort.
  std::vector<DirectionCount> breakdown_by_type_;
  std::function<void(const SentMessage&)> observer_;
  bool has_observer_ = false;
  bool delivering_ = false;
};

}  // namespace nmc::sim
