#pragma once

#include <algorithm>
#include <cstdint>

namespace nmc::sim {

/// A protocol message. The continuous-monitoring literature counts
/// messages of O(log n) bits; accordingly a Message carries a small fixed
/// payload (two doubles, two integers) and protocols define their own
/// meaning for the fields via `type`. Anything larger would be cheating the
/// communication model, so there is deliberately no variable-size payload.
struct Message {
  /// Protocol-defined discriminator (each protocol defines an enum).
  int type = 0;
  double a = 0.0;
  double b = 0.0;
  int64_t u = 0;
  int64_t v = 0;
};

/// Message accounting for one star network. Broadcasts are charged k
/// messages (Section 1.1 of the paper: "a broadcast message counts as k
/// messages").
struct MessageStats {
  int64_t site_to_coordinator = 0;
  int64_t coordinator_to_site = 0;
  /// Number of Broadcast() calls (already included in coordinator_to_site
  /// at cost k each); kept separately so benches can report sync counts.
  int64_t broadcasts = 0;
  /// Channel-model fault counters (all zero under the perfect channel).
  /// Every adjudicated hop is still charged to the directional counters
  /// above — the transmission happened; the fault describes its fate — so
  /// total() is the communication cost whatever the channel did.
  int64_t dropped = 0;
  int64_t delayed = 0;
  int64_t duplicated = 0;
  /// Peak bytes of in-flight message state held by the network's bump
  /// arena (see sim::Arena), and the block bytes the arena reserved from
  /// the system. Max-merged rather than summed in operator+= — footprint
  /// peaks of independent networks do not coincide in time, so the max is
  /// the honest aggregate.
  int64_t arena_high_water_bytes = 0;
  int64_t arena_reserved_bytes = 0;

  int64_t total() const { return site_to_coordinator + coordinator_to_site; }

  MessageStats& operator+=(const MessageStats& other) {
    site_to_coordinator += other.site_to_coordinator;
    coordinator_to_site += other.coordinator_to_site;
    broadcasts += other.broadcasts;
    dropped += other.dropped;
    delayed += other.delayed;
    duplicated += other.duplicated;
    arena_high_water_bytes =
        std::max(arena_high_water_bytes, other.arena_high_water_bytes);
    arena_reserved_bytes =
        std::max(arena_reserved_bytes, other.arena_reserved_bytes);
    return *this;
  }
};

}  // namespace nmc::sim

