#include "sim/registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace nmc::sim {

// nmc: not-thread-safe(leaked singleton is initialized lazily; first call must happen before any threads spawn)
ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = new ProtocolRegistry();
  return *registry;
}

const ProtocolRegistry::Entry* ProtocolRegistry::Find(
    std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& entry, std::string_view key) { return entry.name < key; });
  if (it == entries_.end() || it->name != name) return nullptr;
  return &*it;
}

// nmc: not-thread-safe(mutates the shared entry vector; registration happens at static init and from main, both single-threaded)
bool ProtocolRegistry::Register(std::string name, const ProtocolTraits& traits,
                                Builder builder) {
  NMC_CHECK(!name.empty());
  NMC_CHECK(builder != nullptr);
  if (Find(name) != nullptr) return false;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& entry, const std::string& key) {
        return entry.name < key;
      });
  entries_.insert(it, Entry{std::move(name), traits, std::move(builder)});
  return true;
}

bool ProtocolRegistry::Contains(std::string_view name) const {
  return Find(name) != nullptr;
}

const ProtocolTraits* ProtocolRegistry::Traits(std::string_view name) const {
  const Entry* entry = Find(name);
  return entry != nullptr ? &entry->traits : nullptr;
}

std::unique_ptr<Protocol> ProtocolRegistry::Create(
    std::string_view name, int num_sites, const ProtocolParams& params) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "ProtocolRegistry: unknown protocol \"%.*s\"; known:",
                 static_cast<int>(name.size()), name.data());
    for (const Entry& known : entries_) {
      std::fprintf(stderr, " %s", known.name.c_str());
    }
    std::fprintf(stderr, "\n");
    NMC_CHECK(entry != nullptr);
  }
  std::unique_ptr<Protocol> protocol = entry->builder(num_sites, params);
  NMC_CHECK(protocol != nullptr);
  NMC_CHECK_EQ(protocol->num_sites(), num_sites);
  return protocol;
}

std::vector<std::string> ProtocolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace nmc::sim
