#include "sim/registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace nmc::sim {

ProtocolRegistry& ProtocolRegistry::Global() {
  // Magic-static init is itself thread-safe (C++11 [stmt.dcl]); the leaked
  // singleton then serializes its own accesses on mutex_, so first call may
  // come from any thread.
  static ProtocolRegistry* registry = new ProtocolRegistry();
  return *registry;
}

const ProtocolRegistry::Entry* ProtocolRegistry::Find(
    std::string_view name) const {
  // Callers hold mutex_, which serializes every entries_ access.
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& entry, std::string_view key) { return entry.name < key; });
  if (it == entries_.end() || it->name != name) return nullptr;
  return &*it;
}

bool ProtocolRegistry::Register(std::string name, const ProtocolTraits& traits,
                                Builder builder) {
  NMC_CHECK(!name.empty());
  NMC_CHECK(builder != nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Find(name) != nullptr) return false;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& entry, const std::string& key) {
        return entry.name < key;
      });
  entries_.insert(it, Entry{std::move(name), traits, std::move(builder)});
  return true;
}

bool ProtocolRegistry::Contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Find(name) != nullptr;
}

const ProtocolTraits* ProtocolRegistry::Traits(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = Find(name);
  return entry != nullptr ? &entry->traits : nullptr;
}

std::unique_ptr<Protocol> ProtocolRegistry::Create(
    std::string_view name, int num_sites, const ProtocolParams& params) const {
  // Copy the builder out so an arbitrarily slow (or recursively
  // registering) builder never runs under the table lock.
  Builder builder;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* entry = Find(name);
    if (entry == nullptr) {
      std::fprintf(stderr,
                   "ProtocolRegistry: unknown protocol \"%.*s\"; known:",
                   static_cast<int>(name.size()), name.data());
      for (const Entry& known : entries_) {
        std::fprintf(stderr, " %s", known.name.c_str());
      }
      std::fprintf(stderr, "\n");
      NMC_CHECK(entry != nullptr);
    }
    builder = entry->builder;
  }
  std::unique_ptr<Protocol> protocol = builder(num_sites, params);
  NMC_CHECK(protocol != nullptr);
  NMC_CHECK_EQ(protocol->num_sites(), num_sites);
  return protocol;
}

std::vector<std::string> ProtocolRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace nmc::sim
