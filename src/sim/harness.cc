#include "sim/harness.h"

#include <cmath>

#include "common/check.h"

namespace nmc::sim {

TrackingResult RunTracking(const std::vector<double>& stream,
                           AssignmentPolicy* psi, Protocol* protocol,
                           const TrackingOptions& options) {
  NMC_CHECK(psi != nullptr);
  NMC_CHECK(protocol != nullptr);
  NMC_CHECK_GT(options.epsilon, 0.0);

  TrackingResult result;
  result.n = static_cast<int64_t>(stream.size());

  const int64_t curve_stride =
      options.curve_points > 0
          ? std::max<int64_t>(1, result.n / options.curve_points)
          : 0;
  if (curve_stride > 0) {
    // One point per stride plus the forced final point; +2 absorbs the
    // rounding so the push_back loop below never reallocates.
    result.curve.reserve(
        static_cast<size_t>(result.n / curve_stride + 2));
  }

  double sum = 0.0;
  for (int64_t t = 0; t < result.n; ++t) {
    const double value = stream[static_cast<size_t>(t)];
    const int site = psi->NextSite(t, value);
    NMC_CHECK_GE(site, 0);
    NMC_CHECK_LT(site, protocol->num_sites());
    protocol->ProcessUpdate(site, value);
    sum += value;

    const double estimate = protocol->Estimate();
    const double abs_error = std::fabs(estimate - sum);
    const double abs_sum = std::fabs(sum);
    if (abs_error > options.epsilon * abs_sum + options.absolute_slack) {
      result.violation_steps += 1;
    }
    if (abs_sum >= options.rel_error_floor) {
      result.max_rel_error = std::max(result.max_rel_error, abs_error / abs_sum);
    }
    if (curve_stride > 0 && ((t + 1) % curve_stride == 0 || t + 1 == result.n)) {
      result.curve.push_back(CurvePoint{t + 1, protocol->stats().total(), sum,
                                        estimate});
    }
  }

  result.messages = protocol->stats().total();
  result.broadcasts = protocol->stats().broadcasts;
  result.final_sum = sum;
  result.final_estimate = protocol->Estimate();
  return result;
}

}  // namespace nmc::sim
