#include "sim/harness.h"

#include <algorithm>
#include <cmath>

#include "common/batch_ops.h"
#include "common/check.h"

namespace nmc::sim {

namespace {

/// Loop state threaded through PumpChunk so the two RunTracking overloads
/// share one hot loop.
struct PumpState {
  TrackingResult result;
  double sum = 0.0;
  int64_t t = 0;               // items consumed so far
  int64_t curve_stride = 0;    // 0 = no curve
  double estimate = 0.0;       // protocol estimate after the last update
};

/// Pumps one contiguous chunk of the stream. Same-site runs go through
/// Protocol::ProcessBatch; the tracking invariant for a run's silent
/// prefix is checked against the cached estimate (the ProcessBatch
/// contract guarantees it cannot have changed), so the virtual Estimate()
/// call is paid once per run, not once per item.
/// `num_sites` is protocol->num_sites(), hoisted by the callers: the
/// virtual call is loop-invariant but the compiler cannot prove it, and
/// PumpChunk runs once per batch.
void PumpChunk(std::span<const double> chunk, AssignmentPolicy* psi,
               Protocol* protocol, int num_sites,
               const TrackingOptions& options, PumpState* state) {
  const int64_t len = static_cast<int64_t>(chunk.size());
  const bool record_curve = state->curve_stride > 0;

  // The assignment policies are stateful (and may consume their own RNG),
  // so NextSite must be called exactly once per t, in order. Run detection
  // uses a one-step lookahead rather than buffering the chunk's
  // assignments: the site that terminates a run is carried over as the
  // next run's site.
  const auto fetch_site = [&](int64_t idx) {
    const int s =
        psi->NextSite(state->t + idx, chunk[static_cast<size_t>(idx)]);
    NMC_CHECK_GE(s, 0);
    NMC_CHECK_LT(s, num_sites);
    return s;
  };

  int64_t i = 0;
  int site = num_sites > 1 ? fetch_site(0) : 0;
  while (i < len) {
    int64_t run = len - i;
    int next_site = site;
    if (num_sites > 1) {
      run = 1;
      while (i + run < len) {
        next_site = fetch_site(i + run);
        if (next_site != site) break;
        ++run;
      }
    }

    if (run == 1) {
      // Single-update run (k > 1 under an alternating assignment): the
      // batch wrapper buys nothing here, and its bookkeeping is
      // comparable to a cheap protocol's own per-update cost — call the
      // per-update entry point directly. Semantically identical to
      // ProcessBatch on a one-element span by the Protocol contract.
      const double value = chunk[static_cast<size_t>(i)];
      protocol->ProcessUpdate(site, value);
      state->sum += value;
      state->estimate = protocol->Estimate();
      const double abs_error = std::fabs(state->estimate - state->sum);
      const double abs_sum = std::fabs(state->sum);
      if (abs_error > options.epsilon * abs_sum + options.absolute_slack) {
        state->result.violation_steps += 1;
      }
      if (abs_sum >= options.rel_error_floor) {
        state->result.max_rel_error =
            std::max(state->result.max_rel_error, abs_error / abs_sum);
      }
      if (record_curve) {
        const int64_t done = state->t + i + 1;
        if (done % state->curve_stride == 0 || done == state->result.n) {
          state->result.curve.push_back(
              CurvePoint{done, protocol->stats().total(), state->sum,
                         state->estimate});
        }
      }
      ++i;
      site = next_site;
      continue;
    }

    int64_t pos = i;
    while (pos < i + run) {
      // Messages before the run: a curve point landing in the run's silent
      // prefix must not count the message its final update sends (the
      // per-update pump would not have sent it yet at that step). Probed
      // only when a curve is recorded — it is the sole consumer, and the
      // stats() call is not free for protocols that aggregate.
      const int64_t messages_before =
          record_curve ? protocol->stats().total() : 0;
      const int64_t consumed =
          protocol->ProcessBatch(site, chunk.subspan(static_cast<size_t>(pos),
                                                     static_cast<size_t>(
                                                         i + run - pos)));
      NMC_CHECK_GE(consumed, 1);
      NMC_CHECK_LE(consumed, i + run - pos);
      if (!record_curve && consumed >= 8) {
        // Vectorized invariant check over the run's silent prefix: the
        // estimate is frozen there (ProcessBatch contract), so the j-loop
        // below degenerates to a prefix-sum scan against a constant —
        // exactly CheckUnitPrefix. The kernel only accepts ±1 runs with
        // an integer running sum (where its regrouped additions are
        // bit-exact), and mirrors the loop's violation / max-rel-error
        // updates operation for operation, so TrackingResult is
        // bit-identical whether or not this path fires.
        common::PrefixCheckResult prefix;
        if (common::CheckUnitPrefix(
                chunk.subspan(static_cast<size_t>(pos),
                              static_cast<size_t>(consumed - 1)),
                state->sum, state->estimate, options.epsilon,
                options.absolute_slack, options.rel_error_floor,
                state->result.max_rel_error, &prefix)) {
          state->sum = prefix.final_sum;
          state->result.violation_steps += prefix.violations;
          state->result.max_rel_error =
              std::max(state->result.max_rel_error, prefix.max_rel_error);
          // The run's final update is the one that may have messaged:
          // refresh the estimate and check it the scalar way.
          state->sum += chunk[static_cast<size_t>(pos + consumed - 1)];
          state->estimate = protocol->Estimate();
          const double abs_error = std::fabs(state->estimate - state->sum);
          const double abs_sum = std::fabs(state->sum);
          if (abs_error >
              options.epsilon * abs_sum + options.absolute_slack) {
            state->result.violation_steps += 1;
          }
          if (abs_sum >= options.rel_error_floor) {
            state->result.max_rel_error =
                std::max(state->result.max_rel_error, abs_error / abs_sum);
          }
          pos += consumed;
          continue;
        }
      }
      for (int64_t j = 0; j < consumed; ++j) {
        state->sum += chunk[static_cast<size_t>(pos + j)];
        if (j == consumed - 1) state->estimate = protocol->Estimate();
        const double abs_error = std::fabs(state->estimate - state->sum);
        const double abs_sum = std::fabs(state->sum);
        if (abs_error > options.epsilon * abs_sum + options.absolute_slack) {
          state->result.violation_steps += 1;
        }
        if (abs_sum >= options.rel_error_floor) {
          state->result.max_rel_error =
              std::max(state->result.max_rel_error, abs_error / abs_sum);
        }
        if (state->curve_stride > 0) {
          const int64_t done = state->t + pos + j + 1;
          if (done % state->curve_stride == 0 || done == state->result.n) {
            state->result.curve.push_back(CurvePoint{
                done,
                j == consumed - 1 ? protocol->stats().total() : messages_before,
                state->sum, state->estimate});
          }
        }
      }
      pos += consumed;
    }
    i += run;
    site = next_site;
  }
  state->t += len;
}

PumpState InitPumpState(int64_t n, Protocol* protocol,
                        const TrackingOptions& options) {
  NMC_CHECK(protocol != nullptr);
  NMC_CHECK_GT(options.epsilon, 0.0);
  NMC_CHECK_GE(options.batch_size, 1);

  PumpState state;
  state.result.n = n;
  state.estimate = protocol->Estimate();
  state.curve_stride =
      options.curve_points > 0 ? std::max<int64_t>(1, n / options.curve_points)
                               : 0;
  if (state.curve_stride > 0) {
    // One point per stride plus the forced final point; +2 absorbs the
    // rounding so the push_back loop below never reallocates.
    state.result.curve.reserve(
        static_cast<size_t>(n / state.curve_stride + 2));
  }
  return state;
}

TrackingResult FinishPump(Protocol* protocol, PumpState* state) {
  NMC_CHECK_EQ(state->t, state->result.n);
  state->result.messages = protocol->stats().total();
  state->result.broadcasts = protocol->stats().broadcasts;
  state->result.final_sum = state->sum;
  state->result.final_estimate = protocol->Estimate();
  return std::move(state->result);
}

}  // namespace

TrackingResult RunTracking(const std::vector<double>& stream,
                           AssignmentPolicy* psi, Protocol* protocol,
                           const TrackingOptions& options) {
  NMC_CHECK(psi != nullptr);
  PumpState state =
      InitPumpState(static_cast<int64_t>(stream.size()), protocol, options);
  const std::span<const double> all(stream);
  const size_t batch = static_cast<size_t>(options.batch_size);
  const int num_sites = protocol->num_sites();
  for (size_t offset = 0; offset < all.size(); offset += batch) {
    PumpChunk(all.subspan(offset, std::min(batch, all.size() - offset)), psi,
              protocol, num_sites, options, &state);
  }
  return FinishPump(protocol, &state);
}

TrackingResult RunTracking(StreamSource* source, AssignmentPolicy* psi,
                           Protocol* protocol, const TrackingOptions& options) {
  NMC_CHECK(source != nullptr);
  NMC_CHECK(psi != nullptr);
  PumpState state = InitPumpState(source->length(), protocol, options);
  std::vector<double> buffer(static_cast<size_t>(options.batch_size));
  const int num_sites = protocol->num_sites();
  int64_t filled;
  while ((filled = source->FillChunk(buffer)) > 0) {
    PumpChunk(std::span<const double>(buffer.data(),
                                      static_cast<size_t>(filled)),
              psi, protocol, num_sites, options, &state);
  }
  return FinishPump(protocol, &state);
}

}  // namespace nmc::sim
