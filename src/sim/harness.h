#pragma once

#include <cstdint>
#include <vector>

#include "sim/assignment.h"
#include "sim/protocol.h"
#include "sim/stream_source.h"

namespace nmc::sim {

/// Configuration of the tracking checker.
struct TrackingOptions {
  /// Relative accuracy the protocol promises; a step violates the guarantee
  /// when |estimate - S| > epsilon * |S| (+ small float slack), or when
  /// S == 0 but the estimate is not.
  double epsilon = 0.1;

  /// Steps with |S| below this floor are excluded from max_rel_error (the
  /// relative error is ill-conditioned around zero) but still checked for
  /// violations via the absolute criterion above.
  double rel_error_floor = 1.0;

  /// Absolute slack added to the violation test to absorb floating-point
  /// accumulation noise on fractional streams.
  double absolute_slack = 1e-9;

  /// If > 0, record (t, cumulative messages, S, estimate) at this many
  /// roughly evenly spaced steps — the raw series behind "figures".
  int curve_points = 0;

  /// Stream items offered per Protocol::ProcessBatch run (>= 1). Larger
  /// batches let protocols with a fast-forward path consume whole
  /// inter-report runs per virtual call; 1 reproduces the per-update pump.
  /// Every field of TrackingResult is bit-identical across batch sizes
  /// (the ProcessBatch contract keeps the estimate constant over a run's
  /// silent prefix, and skip-sampler gap state persists across calls).
  int batch_size = 256;
};

/// One sampled point of the tracking trajectory.
struct CurvePoint {
  int64_t t = 0;
  int64_t messages = 0;
  double sum = 0.0;
  double estimate = 0.0;
};

/// Outcome of one tracked run.
struct TrackingResult {
  int64_t n = 0;
  int64_t messages = 0;
  int64_t broadcasts = 0;
  /// Steps at which the epsilon guarantee did not hold.
  int64_t violation_steps = 0;
  /// Max of |estimate - S| / |S| over steps with |S| >= rel_error_floor.
  double max_rel_error = 0.0;
  double final_sum = 0.0;
  double final_estimate = 0.0;
  std::vector<CurvePoint> curve;

  bool any_violation() const { return violation_steps > 0; }
};

/// Internal building block of runtime::RunWithTransport (runtime/run.h,
/// TransportKind::kSim), which is the public per-transport entry point;
/// sim-layer unit tests that exercise the checker itself may still call it
/// directly.
///
/// Drives `stream` through `protocol`, assigning the t-th update to site
/// psi->NextSite(t, value), and checks the coordinator's estimate against
/// the exact running sum after every update. Updates are pumped in
/// contiguous same-site runs of up to options.batch_size items via
/// Protocol::ProcessBatch; for a single-site protocol the assignment
/// policy is short-circuited to site 0 (every policy maps to 0 when
/// k == 1, and none observes protocol state).
TrackingResult RunTracking(const std::vector<double>& stream,
                           AssignmentPolicy* psi, Protocol* protocol,
                           const TrackingOptions& options);

/// Same checker over a chunked source: pulls options.batch_size items at a
/// time into one reusable buffer, so tracking an n-item stream allocates
/// O(batch_size) instead of O(n). Produces the same TrackingResult as the
/// vector overload fed the materialized stream.
TrackingResult RunTracking(StreamSource* source, AssignmentPolicy* psi,
                           Protocol* protocol, const TrackingOptions& options);

}  // namespace nmc::sim
