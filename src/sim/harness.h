#pragma once

#include <cstdint>
#include <vector>

#include "sim/assignment.h"
#include "sim/protocol.h"

namespace nmc::sim {

/// Configuration of the tracking checker.
struct TrackingOptions {
  /// Relative accuracy the protocol promises; a step violates the guarantee
  /// when |estimate - S| > epsilon * |S| (+ small float slack), or when
  /// S == 0 but the estimate is not.
  double epsilon = 0.1;

  /// Steps with |S| below this floor are excluded from max_rel_error (the
  /// relative error is ill-conditioned around zero) but still checked for
  /// violations via the absolute criterion above.
  double rel_error_floor = 1.0;

  /// Absolute slack added to the violation test to absorb floating-point
  /// accumulation noise on fractional streams.
  double absolute_slack = 1e-9;

  /// If > 0, record (t, cumulative messages, S, estimate) at this many
  /// roughly evenly spaced steps — the raw series behind "figures".
  int curve_points = 0;
};

/// One sampled point of the tracking trajectory.
struct CurvePoint {
  int64_t t = 0;
  int64_t messages = 0;
  double sum = 0.0;
  double estimate = 0.0;
};

/// Outcome of one tracked run.
struct TrackingResult {
  int64_t n = 0;
  int64_t messages = 0;
  int64_t broadcasts = 0;
  /// Steps at which the epsilon guarantee did not hold.
  int64_t violation_steps = 0;
  /// Max of |estimate - S| / |S| over steps with |S| >= rel_error_floor.
  double max_rel_error = 0.0;
  double final_sum = 0.0;
  double final_estimate = 0.0;
  std::vector<CurvePoint> curve;

  bool any_violation() const { return violation_steps > 0; }
};

/// Drives `stream` through `protocol`, assigning the t-th update to site
/// psi->NextSite(t, value), and checks the coordinator's estimate against
/// the exact running sum after every update.
TrackingResult RunTracking(const std::vector<double>& stream,
                           AssignmentPolicy* psi, Protocol* protocol,
                           const TrackingOptions& options);

}  // namespace nmc::sim

