#include "sim/reliable.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace nmc::sim {

ReliableProtocol::ReliableProtocol(std::unique_ptr<Protocol> inner,
                                   const ReliableOptions& options)
    : inner_(std::move(inner)), options_(options) {
  NMC_CHECK(inner_ != nullptr);
  NMC_CHECK_GE(options.backoff_base, 1);
  NMC_CHECK_GE(options.backoff_cap, options.backoff_base);
  NMC_CHECK_GE(options.max_retries, 0);
}

int ReliableProtocol::num_sites() const { return inner_->num_sites(); }

double ReliableProtocol::Estimate() const { return inner_->Estimate(); }

const MessageStats& ReliableProtocol::stats() const { return inner_->stats(); }

bool ReliableProtocol::Resync() { return inner_->Resync(); }

int64_t ReliableProtocol::FaultCount() const {
  const MessageStats& stats = inner_->stats();
  return stats.dropped + stats.delayed;
}

int64_t ReliableProtocol::RecoveryDeadlineTicks() const {
  int64_t deadline = 0;
  for (int r = 0; r < options_.max_retries; ++r) {
    const int64_t shift = std::min(r, 62);
    deadline += std::min(options_.backoff_base << shift, options_.backoff_cap);
  }
  return deadline;
}

void ReliableProtocol::ProcessUpdate(int site_id, double value) {
  inner_->ProcessUpdate(site_id, value);
  ++tick_;
  Supervise();
}

int64_t ReliableProtocol::ProcessBatch(int site_id,
                                       std::span<const double> values) {
  // One update per call: supervision must see every tick, and faulty
  // channels rule out fast-forwarding anyway (the inner protocol makes the
  // same choice).
  NMC_CHECK(!values.empty());
  ProcessUpdate(site_id, values.front());
  return 1;
}

void ReliableProtocol::Supervise() {
  const int64_t faults = FaultCount();
  if (!recovering_) {
    if (faults == observed_faults_) return;
    if (diagnostics_.unsupported) {
      // The wrapped protocol cannot resync; just keep the watermark moving
      // so the diagnostics stay meaningful.
      observed_faults_ = faults;
      return;
    }
    ++diagnostics_.loss_events;
    recovering_ = true;
    attempts_ = 0;
    next_attempt_tick_ = tick_;  // first attempt is immediate
  }
  if (tick_ < next_attempt_tick_) return;
  AttemptResync();
}

void ReliableProtocol::AttemptResync() {
  const int64_t before = FaultCount();
  const bool supported = inner_->Resync();
  ++diagnostics_.resyncs;
  // Everything up to and including the attempt is now reconciled; only
  // faults after this watermark can trigger the next loss event.
  observed_faults_ = FaultCount();
  if (!supported) {
    diagnostics_.unsupported = true;
    recovering_ = false;
    return;
  }
  if (observed_faults_ == before) {
    // The resync round went through intact: the coordinator is exact.
    ++diagnostics_.recoveries;
    recovering_ = false;
    return;
  }
  if (attempts_ >= options_.max_retries) {
    ++diagnostics_.abandoned;
    recovering_ = false;
    return;
  }
  const int64_t shift = std::min(attempts_, 62);
  const int64_t backoff =
      std::min(options_.backoff_base << shift, options_.backoff_cap);
  ++attempts_;
  ++diagnostics_.retries;
  next_attempt_tick_ = tick_ + backoff;
}

}  // namespace nmc::sim
