#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "sim/protocol.h"

namespace nmc::sim {

/// Retry/backoff policy of ReliableProtocol, in simulated time (one tick =
/// one stream update).
struct ReliableOptions {
  /// Backoff before retry r is min(backoff_base << r, backoff_cap) ticks
  /// (the first attempt after a detected loss is immediate).
  int64_t backoff_base = 1;
  int64_t backoff_cap = 64;
  /// Retries after the immediate first attempt; a loss event whose
  /// attempts all fail is abandoned (counted in diagnostics; a later loss
  /// event re-arms recovery).
  int max_retries = 16;
};

/// Recovery bookkeeping (for benches/tests).
struct ReliableDiagnostics {
  /// Silence-timeout events: transitions from clean to loss-detected.
  int64_t loss_events = 0;
  /// Resync() calls issued (first attempts + retries).
  int64_t resyncs = 0;
  /// Retries after a dirty attempt (some resync traffic was lost/delayed).
  int64_t retries = 0;
  /// Recoveries whose resync round went through intact.
  int64_t recoveries = 0;
  /// Loss events abandoned after max_retries dirty attempts.
  int64_t abandoned = 0;
  /// True when the wrapped protocol reported Resync() unsupported.
  bool unsupported = false;
};

/// Coordinator-driven fault recovery around any Protocol: watches the
/// wrapped protocol's fault counters after every update, and when new
/// losses appear, drives Protocol::Resync() with bounded retry and
/// exponential backoff in simulated time until one resync round completes
/// with no further loss — at which point the wrapped coordinator is exact
/// again. The silence-timeout detector is modeled on the stats the
/// simulator already keeps (stats().dropped): a real deployment would
/// detect the same events with sequence numbers or acks, at the same
/// message cost.
///
/// Worst-case recovery latency after a loss event is
/// RecoveryDeadlineTicks() (the sum of the backoff schedule), provided one
/// of the attempts goes through intact; the fault-tolerance tests enforce
/// this bound under Bernoulli loss.
///
/// The wrapper forces per-update supervision: ProcessBatch consumes one
/// update per call so every tick is inspected. Never use it on the
/// perfect-channel hot path.
class ReliableProtocol : public Protocol {
 public:
  ReliableProtocol(std::unique_ptr<Protocol> inner,
                   const ReliableOptions& options);

  int num_sites() const override;
  void ProcessUpdate(int site_id, double value) override;
  int64_t ProcessBatch(int site_id, std::span<const double> values) override;
  double Estimate() const override;
  const MessageStats& stats() const override;
  bool Resync() override;

  const ReliableDiagnostics& diagnostics() const { return diagnostics_; }
  Protocol* inner() { return inner_.get(); }

  /// Upper bound on ticks from loss detection to the last scheduled retry:
  /// sum over attempts of min(backoff_base << r, backoff_cap).
  int64_t RecoveryDeadlineTicks() const;

 private:
  /// One recovery attempt: Resync(), then check whether its own traffic
  /// survived. Clean -> recovered; dirty -> schedule the next retry.
  void AttemptResync();
  void Supervise();

  /// Dropped + delayed as one staleness signal: a delayed resync reply
  /// also leaves the round incomplete at the end of the attempt.
  int64_t FaultCount() const;

  std::unique_ptr<Protocol> inner_;
  ReliableOptions options_;
  ReliableDiagnostics diagnostics_;
  int64_t tick_ = 0;
  /// Fault count last reconciled (recovery triggers when it grows).
  int64_t observed_faults_ = 0;
  bool recovering_ = false;
  int attempts_ = 0;
  int64_t next_attempt_tick_ = 0;
};

}  // namespace nmc::sim
