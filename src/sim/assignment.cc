#include "sim/assignment.h"

#include "common/check.h"

namespace nmc::sim {

RoundRobinAssignment::RoundRobinAssignment(int num_sites)
    : num_sites_(num_sites) {
  NMC_CHECK_GE(num_sites, 1);
}

int RoundRobinAssignment::NextSite(int64_t t, double /*value*/) {
  return static_cast<int>(t % num_sites_);
}

UniformRandomAssignment::UniformRandomAssignment(int num_sites, uint64_t seed)
    : num_sites_(num_sites), rng_(seed) {
  NMC_CHECK_GE(num_sites, 1);
}

int UniformRandomAssignment::NextSite(int64_t /*t*/, double /*value*/) {
  return static_cast<int>(rng_.UniformInt(0, num_sites_ - 1));
}

SingleSiteAssignment::SingleSiteAssignment(int num_sites, int target_site)
    : target_site_(target_site) {
  NMC_CHECK_GE(target_site, 0);
  NMC_CHECK_LT(target_site, num_sites);
}

int SingleSiteAssignment::NextSite(int64_t /*t*/, double /*value*/) {
  return target_site_;
}

BlockCyclicAssignment::BlockCyclicAssignment(int num_sites, int64_t block_size)
    : num_sites_(num_sites), block_size_(block_size) {
  NMC_CHECK_GE(num_sites, 1);
  NMC_CHECK_GE(block_size, 1);
}

int BlockCyclicAssignment::NextSite(int64_t t, double /*value*/) {
  return static_cast<int>((t / block_size_) % num_sites_);
}

SignSplitAssignment::SignSplitAssignment(int num_sites)
    : num_sites_(num_sites) {
  NMC_CHECK_GE(num_sites, 1);
}

int SignSplitAssignment::NextSite(int64_t /*t*/, double value) {
  if (num_sites_ == 1) return 0;
  const int half = num_sites_ / 2;
  if (value >= 0) {
    return static_cast<int>(positive_count_++ % half);
  }
  return half + static_cast<int>(negative_count_++ % (num_sites_ - half));
}

ZeroCrossingAssignment::ZeroCrossingAssignment(int num_sites)
    : num_sites_(num_sites) {
  NMC_CHECK_GE(num_sites, 1);
}

int ZeroCrossingAssignment::NextSite(int64_t /*t*/, double value) {
  const double previous = prefix_sum_;
  prefix_sum_ += value;
  const bool crossed = (previous > 0.0 && prefix_sum_ <= 0.0) ||
                       (previous < 0.0 && prefix_sum_ >= 0.0);
  if (crossed) current_site_ = (current_site_ + 1) % num_sites_;
  return current_site_;
}

std::unique_ptr<AssignmentPolicy> MakeAssignment(const std::string& name,
                                                 int num_sites,
                                                 uint64_t seed) {
  if (name == "round_robin") {
    return std::make_unique<RoundRobinAssignment>(num_sites);
  }
  if (name == "random") {
    return std::make_unique<UniformRandomAssignment>(num_sites, seed);
  }
  if (name == "single") {
    return std::make_unique<SingleSiteAssignment>(num_sites, 0);
  }
  if (name == "block") {
    return std::make_unique<BlockCyclicAssignment>(num_sites, 64);
  }
  if (name == "sign_split") {
    return std::make_unique<SignSplitAssignment>(num_sites);
  }
  if (name == "zero_crossing") {
    return std::make_unique<ZeroCrossingAssignment>(num_sites);
  }
  return nullptr;
}

}  // namespace nmc::sim
