#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/message.h"

namespace nmc::sim {

/// What a channel decided to do with one message hop.
struct ChannelVerdict {
  enum class Action {
    kDeliver,    // deliver in order, this tick
    kDrop,       // lose the message
    kDelay,      // deliver at tick + delay_ticks (delay_ticks >= 1)
    kDuplicate,  // deliver two back-to-back copies this tick
  };
  Action action = Action::kDeliver;
  int64_t delay_ticks = 0;

  static ChannelVerdict Deliver() { return {Action::kDeliver, 0}; }
  static ChannelVerdict Drop() { return {Action::kDrop, 0}; }
  static ChannelVerdict Delay(int64_t ticks) { return {Action::kDelay, ticks}; }
  static ChannelVerdict Duplicate() { return {Action::kDuplicate, 0}; }
};

/// One message transmission as presented to a channel model. A broadcast is
/// adjudicated once per recipient (the fault unit is the point-to-point
/// link, so a broadcast can reach some sites and miss others).
struct Hop {
  bool to_coordinator = false;
  /// Source site for site->coordinator hops; destination site otherwise.
  int site_id = 0;
  /// Simulated time of the send: the number of Network::BeginTick() calls
  /// so far, i.e. the index of the stream update being processed.
  int64_t tick = 0;
  Message message;
};

/// Adjudicates each hop of a simulated network. Implementations must be
/// deterministic given their construction parameters: any randomness comes
/// from an explicitly seeded common::Rng consumed in hop order, so a run is
/// reproducible from (protocol seed, channel config) alone.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;
  virtual ChannelVerdict Adjudicate(const Hop& hop) = 0;
};

/// Delivers everything. Installing it is bit-identical to running with no
/// channel at all; it exists so factory-built configurations can name the
/// default explicitly.
class PerfectChannel : public ChannelModel {
 public:
  ChannelVerdict Adjudicate(const Hop& hop) override;
};

/// Drops each hop independently with probability `loss` and (optionally)
/// duplicates each surviving hop with probability `duplicate`. One uniform
/// draw per hop keeps the RNG stream aligned across loss rates.
class BernoulliLossChannel : public ChannelModel {
 public:
  BernoulliLossChannel(double loss, double duplicate, uint64_t seed);
  ChannelVerdict Adjudicate(const Hop& hop) override;

 private:
  double loss_;
  double duplicate_;
  common::Rng rng_;
};

/// Delays each hop with probability `delay_probability` by a uniform number
/// of ticks in [1, max_delay]; otherwise delivers immediately. Models
/// bounded asynchrony: no message is ever lost, but a message sent at
/// update t may arrive while update t + max_delay is being processed.
class BoundedDelayChannel : public ChannelModel {
 public:
  BoundedDelayChannel(double delay_probability, int64_t max_delay,
                      uint64_t seed);
  ChannelVerdict Adjudicate(const Hop& hop) override;

 private:
  double delay_probability_;
  int64_t max_delay_;
  common::Rng rng_;
};

/// One crash: `site` is down for ticks in [start, end).
struct CrashInterval {
  int site_id = 0;
  int64_t start = 0;
  int64_t end = 0;
};

/// Silences crashed sites: while a site is down, every hop it sends and
/// every hop addressed to it is dropped (a broadcast still reaches the live
/// sites). Deterministic by construction — no RNG; the schedule is the
/// config.
class CrashScheduleChannel : public ChannelModel {
 public:
  explicit CrashScheduleChannel(std::vector<CrashInterval> crashes);
  ChannelVerdict Adjudicate(const Hop& hop) override;

 private:
  bool IsDown(int site_id, int64_t tick) const;

  std::vector<CrashInterval> crashes_;
};

/// Value-type description of a channel, so protocol options structs and
/// bench flags can carry "which faults to inject" without owning a model.
struct ChannelConfig {
  enum class Kind {
    kPerfect,  // the default: no channel installed, today's behavior
    kLoss,     // BernoulliLossChannel(loss, duplicate, seed)
    kDelay,    // BoundedDelayChannel(delay_probability, max_delay, seed)
    kCrash,    // CrashScheduleChannel(crashes)
  };
  Kind kind = Kind::kPerfect;
  double loss = 0.0;
  double duplicate = 0.0;
  double delay_probability = 0.0;
  int64_t max_delay = 4;
  std::vector<CrashInterval> crashes;
  uint64_t seed = 1;

  bool faulty() const { return kind != Kind::kPerfect; }
};

/// Materializes the configured model, or nullptr for kPerfect (the Network
/// treats "no channel" as the perfect channel via a single branch, keeping
/// the default hot path untouched).
std::unique_ptr<ChannelModel> MakeChannel(const ChannelConfig& config);

}  // namespace nmc::sim
