#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"

namespace nmc::sim {

/// The adversary's data-partitioning function psi(t): which site receives
/// the t-th update. The model allows psi to adapt to everything observed
/// so far (update values and previous assignments), but not to the sites'
/// private coin flips; implementations therefore see (t, value, previous
/// choice) and nothing protocol-internal.
class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;

  /// Returns the site (in [0, k)) that receives the t-th update (t is
  /// 0-based). `value` is the update's content, which an adaptive adversary
  /// is allowed to inspect.
  virtual int NextSite(int64_t t, double value) = 0;
};

/// Cycles 0, 1, ..., k-1, 0, ... — an even load-balancer.
class RoundRobinAssignment : public AssignmentPolicy {
 public:
  explicit RoundRobinAssignment(int num_sites);
  int NextSite(int64_t t, double value) override;

 private:
  int num_sites_;
};

/// Each update goes to an independently uniform site.
class UniformRandomAssignment : public AssignmentPolicy {
 public:
  UniformRandomAssignment(int num_sites, uint64_t seed);
  int NextSite(int64_t t, double value) override;

 private:
  int num_sites_;
  common::Rng rng_;
};

/// All updates go to one fixed site — the maximally skewed partition.
class SingleSiteAssignment : public AssignmentPolicy {
 public:
  SingleSiteAssignment(int num_sites, int target_site);
  int NextSite(int64_t t, double value) override;

 private:
  int target_site_;
};

/// Blocks of `block_size` consecutive updates per site, cycling over sites:
/// a bursty adversary that concentrates load then moves on.
class BlockCyclicAssignment : public AssignmentPolicy {
 public:
  BlockCyclicAssignment(int num_sites, int64_t block_size);
  int NextSite(int64_t t, double value) override;

 private:
  int num_sites_;
  int64_t block_size_;
};

/// A value-adaptive adversary: positive updates are funneled to one half of
/// the sites and negative updates to the other half (round-robin within a
/// half). This exercises the model's allowance that psi may depend on the
/// update content.
class SignSplitAssignment : public AssignmentPolicy {
 public:
  explicit SignSplitAssignment(int num_sites);
  int NextSite(int64_t t, double value) override;

 private:
  int num_sites_;
  int64_t positive_count_ = 0;
  int64_t negative_count_ = 0;
};

/// A prefix-adaptive adversary (the strongest the model allows): it
/// watches the running sum of the values it has routed and keeps loading
/// one site for as long as the prefix sum keeps its sign, hopping to the
/// next site at every zero crossing. Near-zero regions — where the
/// protocol is most fragile — thus arrive maximally scattered.
class ZeroCrossingAssignment : public AssignmentPolicy {
 public:
  explicit ZeroCrossingAssignment(int num_sites);
  int NextSite(int64_t t, double value) override;

 private:
  int num_sites_;
  int current_site_ = 0;
  double prefix_sum_ = 0.0;
};

/// Factory by name ("round_robin", "random", "single", "block",
/// "sign_split", "zero_crossing") used by benches to sweep policies.
/// Returns nullptr for unknown names.
std::unique_ptr<AssignmentPolicy> MakeAssignment(const std::string& name,
                                                 int num_sites, uint64_t seed);

}  // namespace nmc::sim

