#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace nmc::sim {

/// Bump allocator for per-tick simulation state (message queues, delayed
/// deliveries). Allocation is a pointer bump; there is no per-object free.
/// Reset() rewinds every block for reuse without returning memory to the
/// system, so after warm-up the steady state performs no heap allocation
/// at all — the property the NO_HEAP_IN_HOT_PATH lint rule and the
/// counting-allocator test enforce for the update path.
///
/// Lifetime contract: Allocate() results are valid until the next Reset().
/// Owners of arena-backed containers must drop (or re-build) their storage
/// across a Reset; ArenaVector::ReleaseStorage exists for exactly that
/// hand-off. The arena never runs destructors — only trivially
/// destructible payloads may live here.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 4096;

  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(initial_block_bytes) {
    NMC_CHECK_GE(initial_block_bytes, 64);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Never
  /// fails for sane inputs: a request larger than the next block size gets
  /// a dedicated block.
  void* Allocate(size_t bytes, size_t align) {
    NMC_CHECK_GT(align, 0);
    NMC_CHECK_EQ(align & (align - 1), 0);  // power of two
    const size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (active_ >= blocks_.size() || aligned + bytes > blocks_[active_].size) {
      return AllocateSlow(bytes, align);
    }
    Block& block = blocks_[active_];
    offset_ = aligned + bytes;
    in_use_ += bytes;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return block.data.get() + aligned;
  }

  /// Rewinds every block for reuse. No memory is returned to the system
  /// (reserved_bytes() is unchanged); everything previously allocated is
  /// invalidated.
  void Reset() {
    active_ = 0;
    offset_ = 0;
    in_use_ = 0;
  }

  /// Live bytes handed out since the last Reset (payload only, excluding
  /// alignment padding).
  size_t bytes_in_use() const { return in_use_; }

  /// Max of bytes_in_use() over the arena's lifetime — the per-tick
  /// footprint benches report via MessageStats.
  size_t high_water_bytes() const { return high_water_; }

  /// Total block bytes obtained from the system so far.
  size_t reserved_bytes() const { return reserved_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void* AllocateSlow(size_t bytes, size_t align);

  std::vector<Block> blocks_;
  size_t active_ = 0;  // block the bump cursor lives in
  size_t offset_ = 0;  // cursor within blocks_[active_]
  size_t in_use_ = 0;
  size_t high_water_ = 0;
  size_t reserved_ = 0;
  size_t next_block_bytes_;
};

/// Minimal vector whose storage comes from an Arena: push_back is a bump
/// cursor away, growth abandons the old storage to the arena (reclaimed
/// wholesale at the next Reset), and nothing is ever freed per element.
/// Restricted to trivially copyable T — the arena runs no destructors and
/// growth relocates with memcpy semantics.
///
/// The owner must call ReleaseStorage() before (or instead of) any
/// Arena::Reset that could reclaim this vector's storage; size() must be 0
/// at that point — resetting under live elements is a use-after-rewind.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector payloads must be trivially copyable");
  static_assert(std::is_trivially_destructible_v<T>,
                "the arena never runs destructors");

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {
    NMC_CHECK(arena != nullptr);
  }

  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) {
    NMC_CHECK_LT(i, size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    NMC_CHECK_LT(i, size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  void reserve(size_t capacity) {
    if (capacity > capacity_) Grow(capacity);
  }

  /// Keeps the first `count` elements (count <= size()). Storage is
  /// untouched — this is the in-place compaction the delayed queue uses.
  void resize_down(size_t count) {
    NMC_CHECK_LE(count, size_);
    size_ = count;
  }

  void clear() { size_ = 0; }

  /// Forgets the storage entirely (size and capacity drop to zero) so the
  /// owner may Reset() the arena; the next push_back re-allocates from the
  /// rewound arena. Call only when empty — anything else would silently
  /// discard live elements.
  void ReleaseStorage() {
    NMC_CHECK_EQ(size_, 0);
    data_ = nullptr;
    capacity_ = 0;
  }

 private:
  void Grow(size_t min_capacity) {
    size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
    if (next < min_capacity) next = min_capacity;
    T* grown = static_cast<T*>(arena_->Allocate(next * sizeof(T), alignof(T)));
    for (size_t i = 0; i < size_; ++i) grown[i] = data_[i];
    data_ = grown;  // old storage is abandoned to the arena until Reset
    capacity_ = next;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace nmc::sim
