#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

#include "sim/message.h"

namespace nmc::sim {

/// Canonical wire image of a Message: the five fields in declaration order,
/// each as a fixed-width little-endian word, doubles as their IEEE-754 bit
/// patterns (so NaN payloads and signed zeros survive a round trip bit for
/// bit). This mapping is part of the sim contract — renaming or reordering
/// Message's fields is a wire-format change and must bump
/// runtime::wire::kVersion. Framing (magic, version, length) lives one
/// layer up in runtime/wire.h; this header only fixes the payload layout.
///
///   offset  size  field
///        0     4  type  (int32, two's complement)
///        4     8  a     (double, IEEE-754 bits)
///       12     8  b     (double, IEEE-754 bits)
///       20     8  u     (int64, two's complement)
///       28     8  v     (int64, two's complement)
inline constexpr size_t kMessageWireBytes = 36;

namespace wire_detail {

inline void PutLe32(uint32_t word, uint8_t* out) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<uint8_t>((word >> (8 * i)) & 0xFFu);
  }
}

inline void PutLe64(uint64_t word, uint8_t* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>((word >> (8 * i)) & 0xFFu);
  }
}

inline uint32_t GetLe32(const uint8_t* in) {
  uint32_t word = 0;
  for (int i = 0; i < 4; ++i) {
    word |= static_cast<uint32_t>(in[i]) << (8 * i);
  }
  return word;
}

inline uint64_t GetLe64(const uint8_t* in) {
  uint64_t word = 0;
  for (int i = 0; i < 8; ++i) {
    word |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return word;
}

}  // namespace wire_detail

/// Serializes `message` into exactly kMessageWireBytes at `out`.
inline void PackMessage(const Message& message, uint8_t* out) {
  wire_detail::PutLe32(static_cast<uint32_t>(message.type), out);
  wire_detail::PutLe64(std::bit_cast<uint64_t>(message.a), out + 4);
  wire_detail::PutLe64(std::bit_cast<uint64_t>(message.b), out + 12);
  wire_detail::PutLe64(static_cast<uint64_t>(message.u), out + 20);
  wire_detail::PutLe64(static_cast<uint64_t>(message.v), out + 28);
}

/// Inverse of PackMessage over exactly kMessageWireBytes at `in`. Every
/// byte pattern decodes (the payload is dense); framing-level validation
/// is the caller's job.
inline Message UnpackMessage(const uint8_t* in) {
  Message message;
  message.type = static_cast<int>(
      static_cast<int32_t>(wire_detail::GetLe32(in)));
  message.a = std::bit_cast<double>(wire_detail::GetLe64(in + 4));
  message.b = std::bit_cast<double>(wire_detail::GetLe64(in + 12));
  message.u = static_cast<int64_t>(wire_detail::GetLe64(in + 20));
  message.v = static_cast<int64_t>(wire_detail::GetLe64(in + 28));
  return message;
}

/// Bitwise message equality (doubles compared as bit patterns, so NaNs and
/// signed zeros compare the way the wire transports them).
inline bool MessageBitsEqual(const Message& lhs, const Message& rhs) {
  return lhs.type == rhs.type &&
         std::bit_cast<uint64_t>(lhs.a) == std::bit_cast<uint64_t>(rhs.a) &&
         std::bit_cast<uint64_t>(lhs.b) == std::bit_cast<uint64_t>(rhs.b) &&
         lhs.u == rhs.u && lhs.v == rhs.v;
}

}  // namespace nmc::sim
