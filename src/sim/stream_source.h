#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"

namespace nmc::sim {

/// Chunked stream generation: the harness pulls fixed-size chunks into a
/// reusable buffer instead of requiring the whole stream (or a per-item
/// allocation) up front. Generator implementations live in
/// src/streams/chunked.h; this header-only interface sits in sim/ so the
/// harness can consume sources without linking nmc_streams.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Total number of items the source will produce.
  virtual int64_t length() const = 0;

  /// Generates the next min(out.size(), remaining) items into `out` and
  /// returns the count filled (0 once exhausted).
  virtual int64_t FillChunk(std::span<double> out) = 0;
};

/// Adapter serving an existing in-memory stream chunk by chunk (the
/// bridge from the vector-returning generators to the chunked harness).
class SpanSource final : public StreamSource {
 public:
  explicit SpanSource(std::span<const double> values) : values_(values) {}

  int64_t length() const override {
    return static_cast<int64_t>(values_.size());
  }

  int64_t FillChunk(std::span<double> out) override {
    const size_t count = std::min(out.size(), values_.size() - offset_);
    for (size_t i = 0; i < count; ++i) out[i] = values_[offset_ + i];
    offset_ += count;
    return static_cast<int64_t>(count);
  }

 private:
  std::span<const double> values_;
  size_t offset_ = 0;
};

}  // namespace nmc::sim
