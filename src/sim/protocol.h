#pragma once

#include <cstdint>

#include "sim/message.h"

namespace nmc::sim {

/// A continuous distributed tracking protocol: the unit the harness drives
/// and the benches compare. Implementations own their Network and node
/// objects internally; all communication they perform is charged to
/// stats().
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual int num_sites() const = 0;

  /// Feeds one stream update to the given site and runs all communication
  /// it triggers to quiescence.
  virtual void ProcessUpdate(int site_id, double value) = 0;

  /// The coordinator's current estimate of the tracked sum. Must be valid
  /// after every ProcessUpdate — the tracking guarantee is continuous.
  virtual double Estimate() const = 0;

  virtual const MessageStats& stats() const = 0;
};

}  // namespace nmc::sim

