#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"
#include "sim/message.h"

namespace nmc::sim {

/// A continuous distributed tracking protocol: the unit the harness drives
/// and the benches compare. Implementations own their Network and node
/// objects internally; all communication they perform is charged to
/// stats().
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual int num_sites() const = 0;

  /// Feeds one stream update to the given site and runs all communication
  /// it triggers to quiescence.
  virtual void ProcessUpdate(int site_id, double value) = 0;

  /// Feeds a run of consecutive updates all addressed to `site_id`.
  /// Consumes at least one update, stops no later than immediately after
  /// the first update that triggers communication, and returns the count
  /// consumed. The contract the batched harness relies on: for every
  /// consumed update except possibly the last, no messages were sent and
  /// Estimate() is unchanged, so the tracking invariant can be checked
  /// against a cached estimate instead of a virtual call per item.
  /// Equivalence: in any protocol, a ProcessBatch-driven run must be
  /// bit-identical to the same updates fed through ProcessUpdate one at a
  /// time (the default forwards exactly one update, so protocols without
  /// a fast-forward path satisfy this trivially).
  virtual int64_t ProcessBatch(int site_id, std::span<const double> values) {
    NMC_CHECK(!values.empty());
    ProcessUpdate(site_id, values.front());
    return 1;
  }

  /// The coordinator's current estimate of the tracked sum. Must be valid
  /// after every ProcessUpdate — the tracking guarantee is continuous.
  virtual double Estimate() const = 0;

  /// Coordinator-driven recovery hook for unreliable channels: re-collects
  /// enough state that, if every resync message is delivered, Estimate() is
  /// exact again afterwards. Returns false when the protocol has no such
  /// path (the default) — e.g. a stateless baseline whose lost messages are
  /// unrecoverable. Costs O(k) messages per call; never called by the
  /// perfect-channel harness paths.
  virtual bool Resync() { return false; }

  virtual const MessageStats& stats() const = 0;
};

}  // namespace nmc::sim

