#include "sim/network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "sim/channel.h"

namespace nmc::sim {

namespace {
/// Typical protocols use single-digit type discriminators; pre-sizing the
/// dense counter array to this floor makes the grow path effectively cold.
constexpr size_t kInitialTypeSlots = 16;
}  // namespace

Network::Network(int num_sites)
    : num_sites_(num_sites), queue_(&arena_), delayed_(&arena_) {
  NMC_CHECK_GE(num_sites, 1);
  sites_.assign(static_cast<size_t>(num_sites), nullptr);
  queue_.reserve(64);
  delayed_.reserve(16);
  breakdown_by_type_.resize(kInitialTypeSlots);
}

Network::~Network() = default;

void Network::AttachCoordinator(CoordinatorNode* coordinator) {
  NMC_CHECK(coordinator != nullptr);
  coordinator_ = coordinator;
}

void Network::AttachSite(int site_id, SiteNode* site) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites_);
  NMC_CHECK(site != nullptr);
  sites_[static_cast<size_t>(site_id)] = site;
}

void Network::SetChannel(std::unique_ptr<ChannelModel> channel) {
  NMC_CHECK_EQ(stats_.total(), 0);  // install before the first send
  channel_ = std::move(channel);
}

void Network::GrowBreakdown(size_t index) {
  breakdown_by_type_.resize(std::max(index + 1, breakdown_by_type_.size() * 2));
}

void Network::Route(const Envelope& envelope) {
  const ChannelVerdict verdict = channel_->Adjudicate(
      Hop{envelope.to_coordinator, envelope.site_id, tick_, envelope.message});
  switch (verdict.action) {
    case ChannelVerdict::Action::kDeliver:
      queue_.push_back(envelope);
      break;
    case ChannelVerdict::Action::kDrop:
      stats_.dropped += 1;
      break;
    case ChannelVerdict::Action::kDelay:
      NMC_CHECK_GE(verdict.delay_ticks, 1);
      stats_.delayed += 1;
      delayed_.push_back(DelayedEnvelope{tick_ + verdict.delay_ticks, envelope});
      break;
    case ChannelVerdict::Action::kDuplicate:
      stats_.duplicated += 1;
      queue_.push_back(envelope);
      queue_.push_back(envelope);
      break;
  }
}

void Network::BeginTickSlow() {
  NMC_CHECK(!delivering_);  // ticks advance between updates, not mid-pump
  ++tick_;
  if (!delayed_.empty()) {
    // Flush due envelopes into the delivery queue, keeping both the due
    // batch and the survivors in send order (the vector is append-only
    // between flushes, so one stable pass preserves it).
    size_t kept = 0;
    for (DelayedEnvelope& delayed : delayed_) {
      if (delayed.due <= tick_) {
        queue_.push_back(delayed.envelope);
      } else {
        delayed_[kept++] = delayed;
      }
    }
    delayed_.resize_down(kept);
    if (head_ < queue_.size()) DeliverAll();
  }
}

void Network::SendToCoordinator(int from_site, const Message& message) {
  NMC_CHECK_GE(from_site, 0);
  NMC_CHECK_LT(from_site, num_sites_);
  NMC_CHECK_GE(message.type, 0);
  stats_.site_to_coordinator += 1;
  BreakdownSlot(message.type).to_coordinator += 1;
  if (has_observer_) observer_(SentMessage{true, from_site, message});
  const Envelope envelope{/*to_coordinator=*/true, from_site, message};
  if (channel_ == nullptr) {
    queue_.push_back(envelope);
  } else {
    Route(envelope);
  }
}

void Network::SendToSite(int site_id, const Message& message) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites_);
  NMC_CHECK_GE(message.type, 0);
  stats_.coordinator_to_site += 1;
  BreakdownSlot(message.type).to_sites += 1;
  if (has_observer_) observer_(SentMessage{false, site_id, message});
  const Envelope envelope{/*to_coordinator=*/false, site_id, message};
  if (channel_ == nullptr) {
    queue_.push_back(envelope);
  } else {
    Route(envelope);
  }
}

void Network::Broadcast(const Message& message) {
  NMC_CHECK_GE(message.type, 0);
  stats_.coordinator_to_site += num_sites_;
  stats_.broadcasts += 1;
  BreakdownSlot(message.type).to_sites += num_sites_;
  for (int s = 0; s < num_sites_; ++s) {
    if (has_observer_) observer_(SentMessage{false, s, message});
    const Envelope envelope{/*to_coordinator=*/false, s, message};
    if (channel_ == nullptr) {
      queue_.push_back(envelope);
    } else {
      Route(envelope);
    }
  }
}

void Network::DeliverQueued() {
  delivering_ = true;
  // Handlers may send while we deliver, growing queue_ (and possibly
  // reallocating it), so index — never hold an iterator — and copy the
  // envelope out before dispatching.
  while (head_ < queue_.size()) {
    const Envelope env = queue_[head_];
    ++head_;
    if (env.to_coordinator) {
      NMC_CHECK(coordinator_ != nullptr);
      coordinator_->OnSiteMessage(env.site_id, env.message);
    } else {
      SiteNode* site = sites_[static_cast<size_t>(env.site_id)];
      NMC_CHECK(site != nullptr);
      site->OnCoordinatorMessage(env.message);
    }
  }
  // Quiescent: reset to reuse the storage on the next pump.
  queue_.clear();
  head_ = 0;
  MaybeResetArena();
  delivering_ = false;
}

void Network::MaybeResetArena() {
  // Only worth doing (and only safe) when nothing is in flight and vector
  // growth has abandoned old storage to the arena. In the steady state the
  // vectors sit at their peak capacity, live covers everything the arena
  // holds, and this returns after one compare — no allocation, no rewind.
  if (!delayed_.empty()) return;
  const size_t live = queue_.capacity() * sizeof(Envelope) +
                      delayed_.capacity() * sizeof(DelayedEnvelope);
  if (arena_.bytes_in_use() <= live) return;
  const size_t queue_cap = queue_.capacity();
  const size_t delayed_cap = delayed_.capacity();
  queue_.ReleaseStorage();
  delayed_.ReleaseStorage();
  arena_.Reset();
  // Re-reserve the old capacities from the rewound blocks so the arena's
  // retained memory is reused instead of re-minted.
  if (queue_cap > 0) queue_.reserve(queue_cap);
  if (delayed_cap > 0) delayed_.reserve(delayed_cap);
}

std::vector<Network::TypeCount> Network::type_breakdown() const {
  std::vector<TypeCount> breakdown;
  for (size_t type = 0; type < breakdown_by_type_.size(); ++type) {
    const DirectionCount& counts = breakdown_by_type_[type];
    if (counts.to_coordinator != 0 || counts.to_sites != 0) {
      breakdown.push_back(TypeCount{static_cast<int>(type),
                                    counts.to_coordinator, counts.to_sites});
    }
  }
  return breakdown;
}

}  // namespace nmc::sim
