#include "sim/network.h"

#include <algorithm>

#include "common/check.h"

namespace nmc::sim {

namespace {
/// Typical protocols use single-digit type discriminators; pre-sizing the
/// dense counter array to this floor makes the grow path effectively cold.
constexpr size_t kInitialTypeSlots = 16;
}  // namespace

Network::Network(int num_sites) : num_sites_(num_sites) {
  NMC_CHECK_GE(num_sites, 1);
  sites_.assign(static_cast<size_t>(num_sites), nullptr);
  queue_.reserve(64);
  breakdown_by_type_.resize(kInitialTypeSlots);
}

void Network::AttachCoordinator(CoordinatorNode* coordinator) {
  NMC_CHECK(coordinator != nullptr);
  coordinator_ = coordinator;
}

void Network::AttachSite(int site_id, SiteNode* site) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites_);
  NMC_CHECK(site != nullptr);
  sites_[static_cast<size_t>(site_id)] = site;
}

void Network::GrowBreakdown(size_t index) {
  breakdown_by_type_.resize(std::max(index + 1, breakdown_by_type_.size() * 2));
}

void Network::SendToCoordinator(int from_site, const Message& message) {
  NMC_CHECK_GE(from_site, 0);
  NMC_CHECK_LT(from_site, num_sites_);
  NMC_CHECK_GE(message.type, 0);
  stats_.site_to_coordinator += 1;
  BreakdownSlot(message.type).to_coordinator += 1;
  if (has_observer_) observer_(SentMessage{true, from_site, message});
  queue_.push_back(Envelope{/*to_coordinator=*/true, from_site, message});
}

void Network::SendToSite(int site_id, const Message& message) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites_);
  NMC_CHECK_GE(message.type, 0);
  stats_.coordinator_to_site += 1;
  BreakdownSlot(message.type).to_sites += 1;
  if (has_observer_) observer_(SentMessage{false, site_id, message});
  queue_.push_back(Envelope{/*to_coordinator=*/false, site_id, message});
}

void Network::Broadcast(const Message& message) {
  NMC_CHECK_GE(message.type, 0);
  stats_.coordinator_to_site += num_sites_;
  stats_.broadcasts += 1;
  BreakdownSlot(message.type).to_sites += num_sites_;
  for (int s = 0; s < num_sites_; ++s) {
    if (has_observer_) observer_(SentMessage{false, s, message});
    queue_.push_back(Envelope{/*to_coordinator=*/false, s, message});
  }
}

void Network::DeliverAll() {
  if (delivering_) return;  // handlers must not re-enter the pump
  delivering_ = true;
  // Handlers may send while we deliver, growing queue_ (and possibly
  // reallocating it), so index — never hold an iterator — and copy the
  // envelope out before dispatching.
  while (head_ < queue_.size()) {
    const Envelope env = queue_[head_];
    ++head_;
    if (env.to_coordinator) {
      NMC_CHECK(coordinator_ != nullptr);
      coordinator_->OnSiteMessage(env.site_id, env.message);
    } else {
      SiteNode* site = sites_[static_cast<size_t>(env.site_id)];
      NMC_CHECK(site != nullptr);
      site->OnCoordinatorMessage(env.message);
    }
  }
  // Quiescent: reset to reuse the storage on the next pump.
  queue_.clear();
  head_ = 0;
  delivering_ = false;
}

// nmc-lint: allow(NO_MAP_IN_HOT_PATH) cold-path diagnostic, built on demand from the dense array
std::map<int, Network::TypeBreakdown> Network::type_breakdown() const {
  // nmc-lint: allow(NO_MAP_IN_HOT_PATH) local to the on-demand snapshot above, never touched during delivery
  std::map<int, TypeBreakdown> breakdown;
  for (size_t type = 0; type < breakdown_by_type_.size(); ++type) {
    const TypeBreakdown& counts = breakdown_by_type_[type];
    if (counts.to_coordinator != 0 || counts.to_sites != 0) {
      breakdown[static_cast<int>(type)] = counts;
    }
  }
  return breakdown;
}

}  // namespace nmc::sim
