#include "sim/network.h"

#include "common/check.h"

namespace nmc::sim {

Network::Network(int num_sites) : num_sites_(num_sites) {
  NMC_CHECK_GE(num_sites, 1);
  sites_.assign(static_cast<size_t>(num_sites), nullptr);
}

void Network::AttachCoordinator(CoordinatorNode* coordinator) {
  NMC_CHECK(coordinator != nullptr);
  coordinator_ = coordinator;
}

void Network::AttachSite(int site_id, SiteNode* site) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites_);
  NMC_CHECK(site != nullptr);
  sites_[static_cast<size_t>(site_id)] = site;
}

void Network::SendToCoordinator(int from_site, const Message& message) {
  NMC_CHECK_GE(from_site, 0);
  NMC_CHECK_LT(from_site, num_sites_);
  stats_.site_to_coordinator += 1;
  type_breakdown_[message.type].to_coordinator += 1;
  if (observer_) observer_(SentMessage{true, from_site, message});
  queue_.push_back(Envelope{/*to_coordinator=*/true, from_site, message});
}

void Network::SendToSite(int site_id, const Message& message) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites_);
  stats_.coordinator_to_site += 1;
  type_breakdown_[message.type].to_sites += 1;
  if (observer_) observer_(SentMessage{false, site_id, message});
  queue_.push_back(Envelope{/*to_coordinator=*/false, site_id, message});
}

void Network::Broadcast(const Message& message) {
  stats_.coordinator_to_site += num_sites_;
  stats_.broadcasts += 1;
  type_breakdown_[message.type].to_sites += num_sites_;
  for (int s = 0; s < num_sites_; ++s) {
    if (observer_) observer_(SentMessage{false, s, message});
    queue_.push_back(Envelope{/*to_coordinator=*/false, s, message});
  }
}

void Network::DeliverAll() {
  if (delivering_) return;  // handlers must not re-enter the pump
  delivering_ = true;
  while (!queue_.empty()) {
    const Envelope env = queue_.front();
    queue_.pop_front();
    if (env.to_coordinator) {
      NMC_CHECK(coordinator_ != nullptr);
      coordinator_->OnSiteMessage(env.site_id, env.message);
    } else {
      SiteNode* site = sites_[static_cast<size_t>(env.site_id)];
      NMC_CHECK(site != nullptr);
      site->OnCoordinatorMessage(env.message);
    }
  }
  delivering_ = false;
}

}  // namespace nmc::sim
