#include "sim/arena.h"

#include <algorithm>

namespace nmc::sim {

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  // Block bases come from operator new[], aligned for every fundamental
  // type; a fresh block therefore starts every request at offset 0.
  NMC_CHECK_LE(align, alignof(std::max_align_t));
  // Try the remaining retained blocks first (post-Reset reuse), then mint
  // a new one. Block sizes double so the block count stays logarithmic in
  // the peak footprint; oversized requests get an exactly-sized block.
  while (active_ + 1 < blocks_.size()) {
    ++active_;
    offset_ = 0;
    if (bytes <= blocks_[active_].size) {
      offset_ = bytes;
      in_use_ += bytes;
      if (in_use_ > high_water_) high_water_ = in_use_;
      return blocks_[active_].data.get();
    }
  }
  const size_t block_bytes = std::max(next_block_bytes_, bytes);
  next_block_bytes_ = block_bytes * 2;
  // nmc-lint: allow(NO_HEAP_IN_HOT_PATH) cold slow path: block sizes double, so O(log peak) mints per trial; steady state reuses retained blocks via Reset
  blocks_.push_back(Block{std::make_unique<std::byte[]>(block_bytes),
                          block_bytes});
  reserved_ += block_bytes;
  active_ = blocks_.size() - 1;
  offset_ = bytes;
  in_use_ += bytes;
  if (in_use_ > high_water_) high_water_ = in_use_;
  return blocks_[active_].data.get();
}

}  // namespace nmc::sim
