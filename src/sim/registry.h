#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/channel.h"
#include "sim/protocol.h"

namespace nmc::sim {

/// The common parameter set a registered protocol builder receives.
/// Protocols read the fields they understand and ignore the rest, so one
/// value type can describe any of them (a bench flag set, a conformance
/// sweep, a fault-injection config).
struct ProtocolParams {
  /// Relative tracking accuracy.
  double epsilon = 0.2;
  /// Stream horizon (protocols with log(n) factors in their sampling laws).
  int64_t horizon_n = 4096;
  /// Failure probability target (randomized monotonic counters).
  double delta = 1e-6;
  /// Reporting period (periodic_sync).
  int64_t period = 8;
  /// Replay the legacy one-coin-per-update RNG pattern instead of
  /// geometric skip-sampling.
  bool legacy_coins = false;
  /// Fault model of the protocol's network(s); kPerfect by default.
  ChannelConfig channel;
  uint64_t seed = 1;
};

/// What inputs a registered protocol accepts — drives stream generation in
/// factory-driven tests and benches.
struct ProtocolTraits {
  /// Accepts arbitrary values in [-1, 1] (false: exactly ±1 only).
  bool general_values = true;
  /// Monotonic counter of unit increments (+1 only).
  bool monotonic_only = false;
  /// Safe to drive from the threaded transport backend: the protocol is a
  /// self-contained state machine (always single-threaded — only one
  /// coordinator thread ever touches it) that does not reach into mutable
  /// process-global state behind the registry's back. False quarantines a
  /// protocol to --transport=sim.
  bool thread_safe = true;
};

/// String-keyed factory for every protocol in the library, so benches and
/// tests construct "the counter under this config" by name instead of
/// duplicating ad-hoc construction switches. Entries are kept in a sorted
/// flat vector (deterministic iteration, no node containers in src/sim).
///
/// Thread-safe: registration and lookups serialize on an internal mutex,
/// so the threaded transport backend (and any trial worker) may build
/// protocols by name without an external registration barrier. Traits()
/// returns a pointer into the table, which a later Register() can
/// reallocate — read the traits out immediately instead of caching the
/// pointer across registrations.
class ProtocolRegistry {
 public:
  using Builder = std::function<std::unique_ptr<Protocol>(
      int num_sites, const ProtocolParams& params)>;

  /// The process-wide registry.
  static ProtocolRegistry& Global();

  /// Registers a builder under `name`; returns false (and changes nothing)
  /// if the name is taken.
  bool Register(std::string name, const ProtocolTraits& traits,
                Builder builder);

  bool Contains(std::string_view name) const;

  /// Traits of a registered protocol, or nullptr if unknown.
  const ProtocolTraits* Traits(std::string_view name) const;

  /// Builds a registered protocol; aborts with the known names on an
  /// unknown `name` (a typo in a bench flag should fail loudly, not fall
  /// back to something that silently benchmarks the wrong protocol).
  std::unique_ptr<Protocol> Create(std::string_view name, int num_sites,
                                   const ProtocolParams& params) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string name;
    ProtocolTraits traits;
    Builder builder;
  };

  /// Requires mutex_ held.
  const Entry* Find(std::string_view name) const;

  /// Serializes every entries_ access; never held while running a builder.
  mutable std::mutex mutex_;
  /// Sorted by name (binary-searched lookups, deterministic Names()).
  std::vector<Entry> entries_;
};

}  // namespace nmc::sim
