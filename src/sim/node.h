#pragma once

#include "sim/message.h"

namespace nmc::sim {

/// A site in the star topology. Sites never talk to each other directly
/// (the model forbids it); their only I/O is updates arriving locally and
/// messages to/from the coordinator, so a correct implementation cannot
/// accidentally read global state.
class SiteNode {
 public:
  virtual ~SiteNode() = default;

  /// A stream update of the given value arrived at this site. Any
  /// communication it triggers must go through Network.
  virtual void OnLocalUpdate(double value) = 0;

  /// A message (unicast or broadcast) arrived from the coordinator.
  virtual void OnCoordinatorMessage(const Message& message) = 0;
};

/// The coordinator. It must be able to produce its current estimate at any
/// moment — the continuous-tracking guarantee is checked after every single
/// update by the harness.
class CoordinatorNode {
 public:
  virtual ~CoordinatorNode() = default;

  /// A message arrived from site `site_id`.
  virtual void OnSiteMessage(int site_id, const Message& message) = 0;
};

}  // namespace nmc::sim

