#include "sim/channel.h"

#include <utility>

#include "common/check.h"

namespace nmc::sim {

ChannelVerdict PerfectChannel::Adjudicate(const Hop& hop) {
  (void)hop;
  return ChannelVerdict::Deliver();
}

BernoulliLossChannel::BernoulliLossChannel(double loss, double duplicate,
                                           uint64_t seed)
    : loss_(loss), duplicate_(duplicate), rng_(seed) {
  NMC_CHECK_GE(loss, 0.0);
  NMC_CHECK_LT(loss, 1.0);
  NMC_CHECK_GE(duplicate, 0.0);
  NMC_CHECK_LT(duplicate, 1.0);
}

ChannelVerdict BernoulliLossChannel::Adjudicate(const Hop& hop) {
  (void)hop;
  // One draw per hop regardless of outcome: the verdict for hop t never
  // shifts the randomness seen by hop t+1, so sweeping the loss rate with a
  // fixed seed perturbs each hop's fate monotonically instead of reshuffling
  // the whole run.
  const double u = rng_.UniformDouble();
  if (u < loss_) return ChannelVerdict::Drop();
  if (u < loss_ + duplicate_) return ChannelVerdict::Duplicate();
  return ChannelVerdict::Deliver();
}

BoundedDelayChannel::BoundedDelayChannel(double delay_probability,
                                         int64_t max_delay, uint64_t seed)
    : delay_probability_(delay_probability),
      max_delay_(max_delay),
      rng_(seed) {
  NMC_CHECK_GE(delay_probability, 0.0);
  NMC_CHECK_LE(delay_probability, 1.0);
  NMC_CHECK_GE(max_delay, 1);
}

ChannelVerdict BoundedDelayChannel::Adjudicate(const Hop& hop) {
  (void)hop;
  // Two draws when delaying, one otherwise; the extra draw is conditioned
  // only on this hop's own outcome, so runs stay reproducible.
  if (!rng_.Bernoulli(delay_probability_)) return ChannelVerdict::Deliver();
  return ChannelVerdict::Delay(rng_.UniformInt(1, max_delay_));
}

CrashScheduleChannel::CrashScheduleChannel(std::vector<CrashInterval> crashes)
    : crashes_(std::move(crashes)) {
  for (const CrashInterval& crash : crashes_) {
    NMC_CHECK_GE(crash.site_id, 0);
    NMC_CHECK_GE(crash.start, 0);
    NMC_CHECK_LT(crash.start, crash.end);
  }
}

bool CrashScheduleChannel::IsDown(int site_id, int64_t tick) const {
  for (const CrashInterval& crash : crashes_) {
    if (crash.site_id == site_id && tick >= crash.start && tick < crash.end) {
      return true;
    }
  }
  return false;
}

ChannelVerdict CrashScheduleChannel::Adjudicate(const Hop& hop) {
  // The site named on the hop is the source for site->coordinator traffic
  // and the destination otherwise; either way, a crashed site neither sends
  // nor receives.
  if (IsDown(hop.site_id, hop.tick)) return ChannelVerdict::Drop();
  return ChannelVerdict::Deliver();
}

std::unique_ptr<ChannelModel> MakeChannel(const ChannelConfig& config) {
  switch (config.kind) {
    case ChannelConfig::Kind::kPerfect:
      return nullptr;
    case ChannelConfig::Kind::kLoss:
      return std::make_unique<BernoulliLossChannel>(
          config.loss, config.duplicate, config.seed);
    case ChannelConfig::Kind::kDelay:
      return std::make_unique<BoundedDelayChannel>(
          config.delay_probability, config.max_delay, config.seed);
    case ChannelConfig::Kind::kCrash:
      return std::make_unique<CrashScheduleChannel>(config.crashes);
  }
  NMC_CHECK(false);
  return nullptr;
}

}  // namespace nmc::sim
