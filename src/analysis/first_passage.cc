#include "analysis/first_passage.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::analysis {

namespace {

// One DP sweep: occupancy[i] holds the probability of being at interior
// position i - (b-1) (i = 0..2b-2) without having exited yet.
struct WalkDp {
  explicit WalkDp(int64_t barrier, double mu)
      : b(barrier),
        up((1.0 + mu) / 2.0),
        down((1.0 - mu) / 2.0),
        occupancy(static_cast<size_t>(2 * b - 1), 0.0) {
    NMC_CHECK_GE(b, 1);
    NMC_CHECK_GE(mu, -1.0);
    NMC_CHECK_LE(mu, 1.0);
    occupancy[static_cast<size_t>(b - 1)] = 1.0;  // start at 0
  }

  // Advances one step; returns the probability mass that exits this step.
  double Step() {
    const size_t width = occupancy.size();
    std::vector<double> next(width, 0.0);
    double exited = 0.0;
    for (size_t i = 0; i < width; ++i) {
      const double mass = occupancy[i];
      if (mass == 0.0) continue;
      // Move up.
      if (i + 1 < width) {
        next[i + 1] += mass * up;
      } else {
        exited += mass * up;
      }
      // Move down.
      if (i >= 1) {
        next[i - 1] += mass * down;
      } else {
        exited += mass * down;
      }
    }
    occupancy.swap(next);
    return exited;
  }

  int64_t b;
  double up, down;
  std::vector<double> occupancy;
};

}  // namespace

std::vector<double> ExitTimeDistribution(int64_t b, double mu,
                                         int64_t max_steps) {
  NMC_CHECK_GE(max_steps, 1);
  WalkDp dp(b, mu);
  std::vector<double> distribution(static_cast<size_t>(max_steps), 0.0);
  for (int64_t r = 0; r < max_steps; ++r) {
    distribution[static_cast<size_t>(r)] = dp.Step();
  }
  return distribution;
}

double ExitTimeMean(int64_t b, double mu, int64_t max_steps) {
  const auto distribution = ExitTimeDistribution(b, mu, max_steps);
  double mean = 0.0;
  for (int64_t r = 0; r < max_steps; ++r) {
    mean += static_cast<double>(r + 1) * distribution[static_cast<size_t>(r)];
  }
  return mean;
}

double SyncFailureClosedForm(int64_t b, double p) {
  NMC_CHECK_GE(b, 1);
  NMC_CHECK_GT(p, 0.0);
  NMC_CHECK_LT(p, 1.0);
  const double phi = std::acosh(1.0 / (1.0 - p));
  // cosh(b*phi) overflows for large arguments; the failure is then 0.
  const double arg = static_cast<double>(b) * phi;
  if (arg > 700.0) return 0.0;
  return 1.0 / std::cosh(arg);
}

double SyncFailureFromDp(int64_t b, double mu, double p, int64_t max_steps) {
  NMC_CHECK_GT(p, 0.0);
  NMC_CHECK_LE(p, 1.0);
  WalkDp dp(b, mu);
  double failure = 0.0;
  double survive = 1.0;  // (1-p)^r, the clock still silent after r steps
  for (int64_t r = 0; r < max_steps; ++r) {
    survive *= 1.0 - p;
    failure += dp.Step() * survive;
    if (survive < 1e-18) break;  // the clock has certainly rung
  }
  return failure;
}

double SyncFailureMonteCarlo(int64_t b, double mu, double p, int64_t trials,
                             uint64_t seed) {
  NMC_CHECK_GE(trials, 1);
  common::Rng rng(seed);
  const double up = (1.0 + mu) / 2.0;
  int64_t failures = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    int64_t position = 0;
    while (true) {
      if (rng.Bernoulli(p)) break;  // clock rang first: no failure
      position += rng.Bernoulli(up) ? 1 : -1;
      if (position >= b || position <= -b) {
        ++failures;  // exited before the clock
        break;
      }
    }
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

double Eq1FailureAtRadius(int64_t b, double alpha, double beta, int64_t n) {
  NMC_CHECK_GE(n, 2);
  const double log_n = std::log(static_cast<double>(n));
  const double rate = alpha * std::pow(log_n, beta) /
                      (static_cast<double>(b) * static_cast<double>(b));
  if (rate >= 1.0) return 0.0;  // the site reports every update: exact
  return SyncFailureClosedForm(b, rate);
}

}  // namespace nmc::analysis
