#pragma once

#include <cstdint>
#include <vector>

namespace nmc::analysis {

/// Exact first-passage analysis of the ±1 random walk — the quantity the
/// whole sampling-law design rests on. Between syncs the count performs a
/// walk started at the synced value s; an error occurs iff the walk exits
/// the eps-ball (distance b ~ eps*s) before the site's geometric(p)
/// sampling clock rings. The probability of that race being lost is
/// exactly E[(1-p)^T] for T the two-sided exit time, which these
/// functions compute three independent ways (closed form, exact DP,
/// Monte Carlo) so each validates the others.

/// Exact distribution P(T = r) for r = 1..max_steps of the exit time T of
/// a ±1 walk (P[+1] = (1+mu)/2) started at 0 with absorbing barriers at
/// ±b, via dynamic programming over interior positions. O(b * max_steps).
std::vector<double> ExitTimeDistribution(int64_t b, double mu,
                                         int64_t max_steps);

/// E[T] computed from the DP (truncated at max_steps; for the symmetric
/// walk E[T] = b^2 exactly, a useful validation identity).
double ExitTimeMean(int64_t b, double mu, int64_t max_steps);

/// Closed form for the symmetric walk: E[s^T] = 1 / cosh(b * acosh(1/s)),
/// evaluated at s = 1 - p. This is the exact probability that a
/// geometric(p) clock loses the race against the exit — the per-sync
/// failure probability of the SBC sampling law.
double SyncFailureClosedForm(int64_t b, double p);

/// The same quantity from the exact DP distribution:
/// sum_r P(T = r) (1-p)^r (truncated; the tail is bounded by the
/// remaining mass times (1-p)^max_steps).
double SyncFailureFromDp(int64_t b, double mu, double p, int64_t max_steps);

/// Monte Carlo estimate of the same race (simulates walk vs clock).
double SyncFailureMonteCarlo(int64_t b, double mu, double p, int64_t trials,
                             uint64_t seed);

/// The per-sync failure implied by eq. (1)'s rate at ball radius b:
/// p = alpha * log^beta(n) / b^2 (clamped to 1), fed through the closed
/// form. This is the number the alpha/beta defaults are chosen against
/// (see CounterOptions::alpha) and what bench_e13 tabulates.
double Eq1FailureAtRadius(int64_t b, double alpha, double beta, int64_t n);

}  // namespace nmc::analysis

