#include "hyz/hyz_counter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmc::hyz {

namespace {

enum MessageType {
  kReport = 1,        // site -> coord: u = in-round local count, v = epoch
  kCollect = 2,       // coord -> sites (broadcast): u = round epoch
  kCollectReply = 3,  // site -> coord: u = exact lifetime count, v = epoch
  kNewRound = 4,      // coord -> sites (broadcast): a = sampling probability
};

}  // namespace

/// Site-side state: in-round local increment count and the current
/// sampling probability.
class HyzProtocol::Site : public sim::SiteNode {
 public:
  Site(int site_id, HyzMode mode, common::SamplerMode sampler,
       sim::Network* network, common::Rng rng)
      : site_id_(site_id),
        mode_(mode),
        network_(network),
        rng_(rng),
        skip_(sampler) {
    if (mode_ == HyzMode::kSampled &&
        sampler == common::SamplerMode::kGeometricSkip) {
      // Bulk gap feed: the round rate is frozen between broadcasts, so
      // consecutive draws share a rate and amortize one log1p over a
      // block. Seeding consumes one u64 from rng_; skip-mode transcripts
      // may differ per-seed, legacy mode never takes this branch.
      batch_rng_ = common::BatchRng(rng_.NextU64());
      skip_.AttachBatchRng(&batch_rng_);
    }
  }

  void OnLocalUpdate(double value) override {
    NMC_CHECK_EQ(value, 1.0);
    ConsumeRun(1);
  }

  /// Consumes a prefix of `count` unit increments (>= 1), stopping right
  /// after the first one that emits a report; returns the count consumed.
  /// Both modes fast-forward the silent prefix: kDeterministic knows the
  /// next report arithmetically (no coins exist to replay, so this is
  /// bit-exact in every sampler mode), kSampled skips by a geometric gap
  /// at the frozen round rate — no thinning needed, the rate only changes
  /// via broadcasts, which invalidate the cached gap.
  int64_t ConsumeRun(int64_t count) {
    NMC_CHECK_GE(count, 1);
    if (mode_ == HyzMode::kDeterministic) {
      const int64_t to_report =
          std::max<int64_t>(1, last_reported_ + threshold_ - round_count_);
      if (count < to_report) {
        round_count_ += count;
        return count;
      }
      round_count_ += to_report;
      Report();
      return to_report;
    }
    if (skip_.mode() == common::SamplerMode::kLegacyCoins) {
      int64_t consumed = 0;
      while (consumed < count) {
        ++round_count_;
        ++consumed;
        if (rng_.Bernoulli(rate_)) {
          Report();
          break;
        }
      }
      return consumed;
    }
    skip_.EnsureGap(&rng_, rate_);
    if (skip_.gap() >= count) {
      skip_.Advance(count);
      round_count_ += count;
      return count;
    }
    const int64_t consumed = skip_.gap() + 1;
    skip_.Advance(skip_.gap());
    skip_.TakeCandidate();
    round_count_ += consumed;
    Report();
    return consumed;
  }

  void OnCoordinatorMessage(const sim::Message& message) override {
    switch (message.type) {
      case kCollect: {
        collect_epoch_ = message.u;
        // The reply carries the lifetime increment count, not the in-round
        // count: lifetime totals are idempotent, so a reply that is lost,
        // duplicated, or superseded by a later round loses no counts (the
        // coordinator rebuilds the exact base from per-site totals).
        round_base_ += round_count_;
        sim::Message reply;
        reply.type = kCollectReply;
        reply.u = round_base_;
        reply.v = collect_epoch_;
        round_count_ = 0;
        last_reported_ = 0;
        // The reset redefines the reporting state; any cached gap was
        // drawn for the old round.
        skip_.Invalidate();
        network_->SendToCoordinator(site_id_, reply);
        break;
      }
      case kNewRound:
        // Payload is the sampling probability (kSampled) or the reporting
        // threshold (kDeterministic).
        if (mode_ == HyzMode::kSampled) {
          rate_ = message.a;
        } else {
          threshold_ = message.u;
        }
        skip_.Invalidate();
        break;
      default:
        NMC_CHECK(false);
    }
  }

 private:
  void Report() {
    sim::Message m;
    m.type = kReport;
    m.u = round_count_;
    m.v = collect_epoch_;  // lets the coordinator discard stale-round reports
    last_reported_ = round_count_;
    network_->SendToCoordinator(site_id_, m);
  }

  int site_id_;
  HyzMode mode_;
  sim::Network* network_;
  common::Rng rng_;
  common::GeometricSkip skip_;
  common::BatchRng batch_rng_{0};  // reseeded + attached in skip mode only
  double rate_ = 1.0;
  int64_t threshold_ = 1;
  int64_t round_count_ = 0;
  /// Increments absorbed into completed rounds (lifetime = round_base_ +
  /// round_count_).
  int64_t round_base_ = 0;
  int64_t last_reported_ = 0;
  int64_t collect_epoch_ = 0;
};

/// Coordinator-side state: exact base count from the last collect plus the
/// unbiased per-site contributions of the current round.
class HyzProtocol::Coordinator : public sim::CoordinatorNode {
 public:
  Coordinator(int num_sites, const HyzOptions& options, sim::Network* network)
      : options_(options),
        network_(network),
        base_(static_cast<double>(options.initial_total)),
        reported_(static_cast<size_t>(num_sites), false),
        last_report_(static_cast<size_t>(num_sites), 0),
        known_total_(static_cast<size_t>(num_sites), 0),
        collect_replied_(static_cast<size_t>(num_sites), false) {
    NMC_CHECK_GT(options.epsilon, 0.0);
    NMC_CHECK_GT(options.delta, 0.0);
    NMC_CHECK_LT(options.delta, 1.0);
    NMC_CHECK_GT(options.rate_constant, 0.0);
    NMC_CHECK_GE(options.initial_total, 0);
  }

  /// Computes the round's sampling probability (or reporting threshold)
  /// and announces it; called once at protocol start and at the end of
  /// every collect.
  void StartRound() {
    sim::Message m;
    m.type = kNewRound;
    if (options_.mode == HyzMode::kSampled) {
      rate_ = RateForBase(base_);
      m.a = rate_;
    } else {
      threshold_ = ThresholdForBase(base_);
      m.u = threshold_;
    }
    network_->Broadcast(m);
  }

  void OnSiteMessage(int site_id, const sim::Message& message) override {
    const size_t i = static_cast<size_t>(site_id);
    switch (message.type) {
      case kReport: {
        if (collecting_) break;  // stale report racing a collect
        // A report from a site whose round is stale (it missed a collect,
        // or the report was delayed across one) counts increments already
        // folded into the base; same-round reports only ever grow, so the
        // monotone check also discards reorderings. Both are no-ops on a
        // perfect channel.
        if (message.v != collect_epoch_) break;
        if (reported_[i] && message.u < last_report_[i]) break;
        contribution_sum_ -= Contribution(i);
        reported_[i] = true;
        last_report_[i] = message.u;
        contribution_sum_ += Contribution(i);
        MaybeStartCollect();
        break;
      }
      case kCollectReply: {
        // Lifetime totals are monotone: absorb whenever at least as new as
        // what we know, but only a first reply to the current epoch
        // advances the round.
        const bool current = collecting_ && message.v == collect_epoch_ &&
                             !collect_replied_[i];
        if (message.u >= known_total_[i]) known_total_[i] = message.u;
        if (!current) break;
        collect_replied_[i] = true;
        NMC_CHECK_GT(pending_replies_, 0);
        if (--pending_replies_ == 0) FinishCollect();
        break;
      }
      default:
        NMC_CHECK(false);
    }
  }

  /// Fault recovery: opens a fresh epoch-tagged collect round, superseding
  /// any round stuck on lost replies.
  void ForceCollect() { StartCollect(); }

  double Estimate() const { return base_ + contribution_sum_; }
  double rate() const { return rate_; }
  int64_t rounds() const { return rounds_; }

 private:
  double RateForBase(double base) const {
    // The residual at each site is geometric (subexponential), so the sum
    // of k residuals concentrates within eps*base only when
    // p * eps * base >= c*(sqrt(k L) + L), L = log(2/delta): the sqrt(kL)
    // term is the Gaussian part of the Bernstein bound and the additive L
    // covers the single-site heavy tail (dominant for k = O(L)).
    // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) rate is set once per round at StartRound, not per update
    const double log_term = std::log(2.0 / options_.delta);
    const double denom = options_.epsilon * std::max(base, 1.0);
    const double rate =
        options_.rate_constant *
        (std::sqrt(static_cast<double>(reported_.size()) * log_term) +
         log_term) /
        denom;
    return std::min(rate, 1.0);
  }

  // Deterministic threshold leaving total residual < eps*base/2.
  int64_t ThresholdForBase(double base) const {
    const double k = static_cast<double>(reported_.size());
    return std::max<int64_t>(
        1, static_cast<int64_t>(options_.epsilon * std::max(base, 1.0) /
                                (2.0 * k)));
  }

  double Contribution(size_t i) const {
    if (!reported_[i]) return 0.0;
    double value = static_cast<double>(last_report_[i]);
    // The unreported tail behind a sampled report is geometric with mean
    // (1-p)/p; adding it makes the estimator exactly unbiased. The
    // deterministic residual is one-sided (< threshold) and left as-is.
    if (options_.mode == HyzMode::kSampled) value += 1.0 / rate_ - 1.0;
    return value;
  }

  void MaybeStartCollect() {
    if (collecting_) return;
    if (Estimate() < 2.0 * std::max(base_, 1.0)) return;
    StartCollect();
  }

  void StartCollect() {
    collecting_ = true;
    ++collect_epoch_;
    pending_replies_ = static_cast<int>(reported_.size());
    std::fill(collect_replied_.begin(), collect_replied_.end(), false);
    sim::Message m;
    m.type = kCollect;
    m.u = collect_epoch_;
    network_->Broadcast(m);
  }

  void FinishCollect() {
    // Rebuild the exact base from the per-site lifetime totals. On a
    // perfect channel this equals the old sum-of-collected-deltas
    // accumulation exactly (integer arithmetic below 2^53); under faults
    // it is self-healing — a site's missed collect is repaired by its next
    // successful one.
    int64_t lifetime = 0;
    for (const int64_t total : known_total_) lifetime += total;
    base_ = static_cast<double>(options_.initial_total + lifetime);
    std::fill(reported_.begin(), reported_.end(), false);
    std::fill(last_report_.begin(), last_report_.end(), 0);
    contribution_sum_ = 0.0;
    collecting_ = false;
    ++rounds_;
    StartRound();
  }

  HyzOptions options_;
  sim::Network* network_;
  double base_;
  double rate_ = 1.0;
  int64_t threshold_ = 1;
  std::vector<bool> reported_;
  std::vector<int64_t> last_report_;
  /// Lifetime increment count per site, as of its newest collect reply.
  std::vector<int64_t> known_total_;
  std::vector<bool> collect_replied_;
  double contribution_sum_ = 0.0;
  bool collecting_ = false;
  int pending_replies_ = 0;
  int64_t collect_epoch_ = 0;
  int64_t rounds_ = 0;
};

HyzProtocol::HyzProtocol(int num_sites, const HyzOptions& options)
    : network_(num_sites) {
  network_.SetChannel(sim::MakeChannel(options.channel));
  common::Rng seeder(options.seed);
  coordinator_ = std::make_unique<Coordinator>(num_sites, options, &network_);
  network_.AttachCoordinator(coordinator_.get());
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites_.push_back(std::make_unique<Site>(s, options.mode, options.sampler,
                                            &network_, seeder.Fork()));
    network_.AttachSite(s, sites_.back().get());
  }
  coordinator_->StartRound();
  network_.DeliverAll();
}

HyzProtocol::~HyzProtocol() = default;

int HyzProtocol::num_sites() const { return network_.num_sites(); }

void HyzProtocol::ProcessUpdate(int site_id, double value) {
  NMC_CHECK_EQ(value, 1.0);
  ProcessRun(site_id, 1);
}

int64_t HyzProtocol::ProcessBatch(int site_id, std::span<const double> values) {
  NMC_CHECK(!values.empty());
  const int64_t consumed =
      ProcessRun(site_id, static_cast<int64_t>(values.size()));
  for (int64_t j = 0; j < consumed; ++j) {
    NMC_CHECK_EQ(values[static_cast<size_t>(j)], 1.0);
  }
  return consumed;
}

int64_t HyzProtocol::ProcessRun(int site_id, int64_t count) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites());
  // Under a faulty channel, advance simulated time (delivering anything
  // that came due) and process one increment per call: fast-forwarding a
  // silent run assumes it stays silent, which delayed delivery breaks.
  if (network_.channeled()) {
    network_.BeginTick();
    count = 1;
  }
  const int64_t consumed =
      sites_[static_cast<size_t>(site_id)]->ConsumeRun(count);
  network_.DeliverAll();
  return consumed;
}

bool HyzProtocol::Resync() {
  coordinator_->ForceCollect();
  network_.DeliverAll();
  return true;
}

double HyzProtocol::Estimate() const { return coordinator_->Estimate(); }

const sim::MessageStats& HyzProtocol::stats() const { return network_.stats(); }

double HyzProtocol::current_rate() const { return coordinator_->rate(); }

int64_t HyzProtocol::rounds() const { return coordinator_->rounds(); }

}  // namespace nmc::hyz
