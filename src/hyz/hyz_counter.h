#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/geometric_skip.h"
#include "common/rng.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/protocol.h"

namespace nmc::hyz {

/// Reporting strategy within a round.
enum class HyzMode {
  /// Randomized per-update sampling with the unbiased gap correction
  /// (the counter of [12]; cost ~ (sqrt(k L) + L)/eps per round).
  kSampled,
  /// Deterministic thresholds: a site reports whenever its in-round count
  /// grows by eps*n_r/(2k), leaving total residual < eps*n_r/2 with
  /// certainty (cost ~ 2k/eps per round). This is the flavor of strategy
  /// [12] uses in its large-k regime; cheaper than sampling while
  /// k = O(log(1/delta)).
  kDeterministic,
};

/// Parameters of the HYZ monotonic counter.
struct HyzOptions {
  HyzMode mode = HyzMode::kSampled;
  /// Relative accuracy guarantee.
  double epsilon = 0.1;
  /// Failure probability target; the sampling rate scales with
  /// sqrt(log(2/delta)).
  double delta = 1e-6;
  /// Multiplier on the theoretical sampling rate (tuning constant).
  double rate_constant = 1.0;
  /// How kSampled realizes its per-increment Bernoulli trials. The rate
  /// is frozen between round broadcasts, so kGeometricSkip (default)
  /// consumes a whole inter-report run per gap draw — same distribution,
  /// different RNG consumption pattern. kLegacyCoins is bit-identical to
  /// the pre-skip-sampler implementation (one coin per increment).
  /// kDeterministic mode needs no coins and fast-forwards either way.
  common::SamplerMode sampler = common::SamplerMode::kGeometricSkip;

  /// Offset added to the tracked count: Estimate() returns
  /// initial_total + (count of increments seen). Used when HYZ is started
  /// mid-stream from an exact snapshot (Phase 2 of the non-monotonic
  /// counter).
  int64_t initial_total = 0;

  /// Fault model of the star network (default: perfect, bit-identical to
  /// the historical reliable network). Under a faulty channel the counter
  /// processes increments one at a time in simulated-tick time, survives
  /// dropped / delayed / duplicated messages (collect rounds are epoch-
  /// tagged and replies carry lifetime totals, so lost replies lose no
  /// counts), and recovers exactness via Resync().
  sim::ChannelConfig channel;

  uint64_t seed = 1;
};

/// The randomized monotonic distributed counter of Huang, Yi and Zhang
/// ("Randomized algorithms for tracking distributed count, frequencies,
/// and ranks", arXiv:1108.3413), reconstructed from its published
/// description. It tracks the number of unit increments across k sites
/// within relative accuracy epsilon w.h.p. at expected communication cost
/// O((sqrt(k)/eps + k) * log n):
///
///   * Rounds: a round begins with the coordinator knowing the exact count
///     n_r (collected with Theta(k) messages) and broadcasting a sampling
///     probability p_r ~ (sqrt(k L) + L) / (eps * n_r), L = log(1/delta)
///     (the additive L term covers the geometric residuals' heavy single-
///     site tail, which dominates for k = O(L)).
///   * Within a round, a site receiving an increment reports its in-round
///     local count with probability p_r. The coordinator's per-site
///     estimator  (last reported count) + 1/p - 1  (0 if the site never
///     reported) is exactly unbiased — the unreported tail is geometric —
///     with variance <= (1-p)/p^2, so the k-site estimate concentrates
///     within eps * n_r.
///   * When the estimate doubles, the coordinator collects exact counts and
///     starts the next round; there are O(log n) rounds.
///
/// Used both standalone (the monotonic special case mu = 1, experiment E11)
/// and as the Phase-2 building block of the non-monotonic counter.
class HyzProtocol : public sim::Protocol {
 public:
  HyzProtocol(int num_sites, const HyzOptions& options);
  ~HyzProtocol() override;

  int num_sites() const override;

  /// `value` must be +1: this is a monotonic counter of unit increments.
  void ProcessUpdate(int site_id, double value) override;

  /// Batched form (every value must be +1): consumes a non-empty prefix,
  /// stopping right after the first increment that emits a message, and
  /// returns the count consumed (see the Protocol::ProcessBatch contract).
  int64_t ProcessBatch(int site_id, std::span<const double> values) override;

  /// Value-free form of ProcessBatch for callers that already know the
  /// run is `count` unit increments (Phase 2 of the non-monotonic
  /// counter): identical semantics without touching the values.
  int64_t ProcessRun(int site_id, int64_t count);

  double Estimate() const override;

  const sim::MessageStats& stats() const override;

  /// Fault recovery (see Protocol::Resync): forces a fresh epoch-tagged
  /// collect round, abandoning any round stuck on lost replies. If the
  /// resync traffic is delivered intact, Estimate() is exact afterwards.
  bool Resync() override;

  /// Taps the network (see sim::Network::SetObserver) — used by the
  /// skip-vs-coins equivalence tests to histogram inter-report gaps.
  void SetMessageObserver(
      std::function<void(const sim::Network::SentMessage&)> observer) {
    network_.SetObserver(std::move(observer));
  }

  /// Current round's sampling probability (exposed for tests/ablations).
  double current_rate() const;
  /// Number of completed round transitions.
  int64_t rounds() const;

 private:
  class Site;
  class Coordinator;

  sim::Network network_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace nmc::hyz

