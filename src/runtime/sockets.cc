#include "runtime/sockets.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <future>
#include <memory>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/seqlock.h"
#include "common/thread_pool.h"
#include "runtime/serving.h"
#include "runtime/wire.h"
#include "sim/protocol.h"

namespace nmc::runtime {

namespace {

/// Deterministic fault stream: splitmix64-style finalizer over (seed,
/// site, index) mapped to [0, 1). The same fault plan replays the same
/// drops and stalls regardless of socket timing, which is what makes the
/// E14-over-sockets runs reproducible.
double FaultUniform(uint64_t seed, uint64_t site, uint64_t index) {
  uint64_t x = seed ^ (site * 0x9E3779B97F4A7C15ull) ^
               (index + 0xBF58476D1CE4E5B9ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Sends one control frame on a nonblocking fd, polling through EAGAIN up
/// to `max_attempts` millisecond waits. Returns false when the peer is
/// gone (EPIPE/reset) or the socket never drained — callers treat both as
/// "the EOF path will clean up".
bool SendControl(int fd, const sim::Message& message, int max_attempts) {
  if (fd < 0) return false;
  uint8_t frame[wire::kFrameBytes];
  wire::EncodeFrame(message, frame);
  size_t off = 0;
  for (int attempt = 0; attempt < max_attempts && off < wire::kFrameBytes;
       ++attempt) {
    const ssize_t sent =
        send(fd, frame + off, wire::kFrameBytes - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      (void)poll(&pfd, 1, 1);
      continue;
    }
    return false;
  }
  return off == wire::kFrameBytes;
}

/// Accepts one pending TCP connection and reads its kHello frame (bounded
/// wait). Returns the connection fd and writes the announced site id, or
/// -1 when the connection is malformed or dies mid-handshake.
int AcceptHello(int listener, int* site_id) {
  const int conn = accept(listener, nullptr, nullptr);
  if (conn < 0) return -1;
  BoundSocketBuffers(conn);
  if (!SetNonBlocking(conn)) {
    close(conn);
    return -1;
  }
  uint8_t buf[wire::kFrameBytes];
  size_t got = 0;
  for (int attempt = 0; attempt < 2000 && got < wire::kFrameBytes;
       ++attempt) {
    const ssize_t r = recv(conn, buf + got, wire::kFrameBytes - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd;
      pfd.fd = conn;
      pfd.events = POLLIN;
      pfd.revents = 0;
      (void)poll(&pfd, 1, 1);
      continue;
    }
    break;
  }
  if (got < wire::kFrameBytes) {
    close(conn);
    return -1;
  }
  const wire::Decoded decoded =
      wire::DecodeFrame(std::span<const uint8_t>(buf, wire::kFrameBytes));
  if (decoded.status != wire::DecodeStatus::kOk ||
      decoded.message.type != static_cast<int>(FrameType::kHello)) {
    close(conn);
    return -1;
  }
  *site_id = static_cast<int>(decoded.message.u);
  return conn;
}

/// Coordinator-side view of one site across its incarnations.
struct SiteState {
  SiteProcess proc;
  wire::FrameReassembler reassembler;
  /// Reliable link: next sequence number to consume (strictly in-order).
  /// Raw link: one past the highest sequence number consumed.
  int64_t expected_seq = 0;
  /// Generated-world cursor: shard[0..world_next) is in the world.
  int64_t world_next = 0;
  /// kUpdate frames seen at ingress — the loss shim's hash domain, so
  /// retransmissions of the same update draw fresh coins.
  int64_t arrival_updates = 0;
  int64_t consumed_from = 0;
  int64_t stall_rounds = 0;
  bool nacked_this_round = false;
  bool saw_eof = false;
  bool fin_acked = false;
  bool dead = false;
  /// Scheduled kills for this site, sorted by after_consumed.
  std::vector<int64_t> kill_after;
  size_t kill_idx = 0;
  bool kill_pending_eof = false;
  int64_t consumed_at_kill = -1;
  bool awaiting_recovery = false;

  bool done() const { return fin_acked || dead; }
  bool live_fd() const { return proc.fd >= 0 && !done(); }
};

}  // namespace

SocketRunResult RunSockets(sim::Protocol* protocol,
                           std::span<const std::vector<double>> shards,
                           const SocketRunOptions& options) {
  NMC_CHECK(protocol != nullptr);
  const int num_sites = protocol->num_sites();
  NMC_CHECK_EQ(static_cast<int>(shards.size()), num_sites);
  NMC_CHECK_GE(options.num_readers, 0);
  NMC_CHECK_GT(options.epsilon, 0.0);

  int64_t total_updates = 0;
  for (const std::vector<double>& shard : shards) {
    total_updates += static_cast<int64_t>(shard.size());
  }

  SocketRunResult run;
  ThreadedRunResult& result = run.serving;
  SocketStats& stats = run.stats;
  if (options.capture) {
    result.transcript.reserve(static_cast<size_t>(total_updates));
    result.publish_log.reserve(static_cast<size_t>(total_updates + 16));
  }

  // Per-site prefix sums of the shard: prefix[s][i] = sum of the first i
  // values. The violation checker charges a raw-link gap to the world in
  // one subtraction instead of replaying the lost updates.
  std::vector<std::vector<double>> prefix(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    const std::vector<double>& shard = shards[static_cast<size_t>(s)];
    std::vector<double>& p = prefix[static_cast<size_t>(s)];
    p.resize(shard.size() + 1);
    p[0] = 0.0;
    for (size_t i = 0; i < shard.size(); ++i) p[i + 1] = p[i] + shard[i];
  }

  // Serving layer: identical to the threads backend.
  common::Seqlock<PublishedEstimate> slot;
  const auto publish = [&](int64_t generation, double estimate) {
    slot.Publish(PublishedEstimate{generation, estimate});
    ++result.publishes;
    if (options.capture) {
      result.publish_log.push_back(PublishedEstimate{generation, estimate});
    }
  };
  double estimate = protocol->Estimate();
  publish(0, estimate);

  common::RuntimeAtomic<bool> run_done{false};
  std::vector<internal::ReaderStats> reader_stats(
      static_cast<size_t>(options.num_readers));
  std::unique_ptr<common::ThreadPool> pool;
  std::vector<std::future<void>> joins;
  if (options.num_readers > 0) {
    pool = std::make_unique<common::ThreadPool>(options.num_readers);
    joins.reserve(static_cast<size_t>(options.num_readers));
    for (int r = 0; r < options.num_readers; ++r) {
      internal::ReaderStats* rs = &reader_stats[static_cast<size_t>(r)];
      joins.push_back(pool->Submit([&slot, &run_done, &options, rs]() {
        internal::ReaderLoop(slot, run_done, options.reader_sample_capacity,
                             rs);
      }));
    }
  }

  // Transport bring-up: listener first (TCP children connect-retry against
  // it), then one child per site.
  int listener = -1;
  uint16_t port = 0;
  if (options.use_tcp) listener = OpenTcpListener(&port);

  std::vector<SiteState> sites(static_cast<size_t>(num_sites));
  const auto spawn = [&](int s, int64_t resume_seq) {
    SiteSpawnOptions spawn_options;
    spawn_options.site_id = s;
    spawn_options.shard = shards[static_cast<size_t>(s)];
    spawn_options.resume_seq = resume_seq;
    spawn_options.use_tcp = options.use_tcp;
    spawn_options.tcp_port = port;
    sites[static_cast<size_t>(s)].proc = SpawnSiteProcess(spawn_options);
    sites[static_cast<size_t>(s)].reassembler = wire::FrameReassembler();
    sites[static_cast<size_t>(s)].saw_eof = false;
  };
  for (int s = 0; s < num_sites; ++s) spawn(s, 0);
  for (const SiteKillSpec& kill : options.faults.kills) {
    NMC_CHECK_GE(kill.site, 0);
    NMC_CHECK_LT(kill.site, num_sites);
    sites[static_cast<size_t>(kill.site)].kill_after.push_back(
        kill.after_consumed);
  }
  for (SiteState& st : sites) {
    std::sort(st.kill_after.begin(), st.kill_after.end());
  }

  // Checker state: world_sum is the exact sum of the generated world (all
  // per-site prefixes up to their world cursors).
  double world_sum = 0.0;
  int64_t consumed_total = 0;

  // Scheduled-kill delivery, frame-granular: checked after every consumed
  // update (and once per round as a backstop) so the SIGKILL lands exactly
  // when the coordinator's consumption crosses the threshold — not a whole
  // drain round later, by which point a fast child may already have
  // FIN'd.
  const auto maybe_kill = [&](SiteState& st) {
    if (st.done() || st.kill_pending_eof) return;
    if (st.kill_idx < st.kill_after.size() && st.proc.pid > 0 &&
        st.consumed_from >= st.kill_after[st.kill_idx]) {
      (void)kill(st.proc.pid, SIGKILL);
      st.kill_pending_eof = true;
      st.consumed_at_kill = consumed_total;
      ++st.kill_idx;
      ++stats.kills_delivered;
    }
  };

  const auto consume = [&](int s, int64_t seq, double value) {
    SiteState& st = sites[static_cast<size_t>(s)];
    if (seq == st.world_next) {
      world_sum += value;
      st.world_next = seq + 1;
    } else if (seq > st.world_next) {
      // Raw-link gap: the skipped updates were generated (the site sent
      // them before this one) — they enter the world here, unseen by the
      // protocol. This is precisely where the raw counter's estimate
      // detaches from the truth.
      const std::vector<double>& p = prefix[static_cast<size_t>(s)];
      world_sum += p[static_cast<size_t>(seq + 1)] -
                   p[static_cast<size_t>(st.world_next)];
      st.world_next = seq + 1;
    }
    protocol->ProcessUpdate(s, value);
    ++consumed_total;
    ++st.consumed_from;
    estimate = protocol->Estimate();
    publish(consumed_total, estimate);
    if (options.capture) {
      result.transcript.push_back(TranscriptEntry{s, value});
    }
    const double abs_error = std::fabs(estimate - world_sum);
    const double abs_sum = std::fabs(world_sum);
    if (abs_error > options.epsilon * abs_sum + options.absolute_slack) {
      ++stats.violation_steps;
    }
    ++stats.checked_steps;
    if (abs_sum >= options.rel_error_floor) {
      stats.max_rel_error =
          std::max(stats.max_rel_error, abs_error / abs_sum);
    }
    if (st.awaiting_recovery) {
      st.awaiting_recovery = false;
      const int64_t recovery = consumed_total - st.consumed_at_kill;
      stats.max_recovery_updates =
          std::max(stats.max_recovery_updates, recovery);
      if (recovery > options.resync_deadline_updates) {
        stats.all_kills_recovered = false;
      }
    }
    maybe_kill(st);
  };

  const auto maybe_nack = [&](int s) {
    SiteState& st = sites[static_cast<size_t>(s)];
    if (st.nacked_this_round || st.proc.fd < 0) return;
    st.nacked_this_round = true;
    sim::Message nack;
    nack.type = static_cast<int>(FrameType::kNack);
    nack.u = st.expected_seq;
    if (SendControl(st.proc.fd, nack, 200)) ++stats.nacks_sent;
  };

  bool progressed_this_round = false;

  const auto handle_frame = [&](int s, const sim::Message& m) {
    SiteState& st = sites[static_cast<size_t>(s)];
    ++stats.frames;
    progressed_this_round = true;
    switch (static_cast<FrameType>(m.type)) {
      case FrameType::kUpdate: {
        const int64_t arrival = st.arrival_updates++;
        if (options.faults.loss > 0.0 &&
            FaultUniform(options.faults.seed, static_cast<uint64_t>(s),
                         static_cast<uint64_t>(arrival)) <
                options.faults.loss) {
          ++stats.drops_injected;
          return;
        }
        const int64_t seq = m.u;
        if (options.reliable) {
          if (seq < st.expected_seq) {
            ++stats.duplicate_updates;
            return;
          }
          if (seq > st.expected_seq) {
            maybe_nack(s);
            return;
          }
          consume(s, seq, m.a);
          ++st.expected_seq;
        } else {
          consume(s, seq, m.a);
          st.expected_seq = std::max(st.expected_seq, seq + 1);
        }
        return;
      }
      case FrameType::kFin: {
        if (options.reliable && m.u != st.expected_seq) {
          // The site believes it is done but the coordinator has a gap:
          // rewind it. A stale pre-rewind FIN takes this branch too.
          maybe_nack(s);
          return;
        }
        stats.echoes_acked += m.v;
        sim::Message ack;
        ack.type = static_cast<int>(FrameType::kFinAck);
        (void)SendControl(st.proc.fd, ack, 200);
        st.fin_acked = true;
        // The child exits on FinAck or on the EOF our close() produces —
        // either way this reap is bounded.
        (void)ReapSiteProcess(&st.proc, false);
        ++stats.children_reaped;
        return;
      }
      case FrameType::kHello:
        return;  // Unix-socketpair children never send one; ignore.
      default:
        return;  // site->coordinator control we don't know; ignore.
    }
  };

  const auto handle_eof = [&](int s) {
    SiteState& st = sites[static_cast<size_t>(s)];
    st.saw_eof = false;
    if (st.done()) return;
    // A partial trailing frame (SIGKILL mid-send) dies with this
    // incarnation's reassembler; whole frames were already drained.
    (void)ReapSiteProcess(&st.proc, true);
    ++stats.children_reaped;
    if (st.kill_pending_eof) {
      st.kill_pending_eof = false;
      if (options.reliable) {
        spawn(s, st.expected_seq);
        ++stats.respawns;
        st.awaiting_recovery = true;
      } else {
        st.dead = true;
        stats.all_kills_recovered = false;
      }
    } else {
      ++stats.unexpected_exits;
      st.dead = true;
    }
  };

  // The event loop: poll the live sockets (plus the TCP listener while any
  // site lacks a connection), reassemble frames, feed the confined
  // protocol, publish. 1ms poll timeout keeps the fault schedule and the
  // idle watchdog ticking even when no site is talking.
  std::vector<struct pollfd> pfds;
  std::vector<int> pfd_site;
  pfds.reserve(static_cast<size_t>(num_sites) + 1);
  pfd_site.reserve(static_cast<size_t>(num_sites) + 1);
  int64_t last_echo = 0;
  int64_t idle_rounds = 0;
  uint8_t rbuf[16384];

  while (true) {
    bool all_done = true;
    bool tcp_pending = false;
    for (const SiteState& st : sites) {
      if (!st.done()) all_done = false;
      if (!st.done() && st.proc.fd < 0) tcp_pending = true;
    }
    if (all_done) break;

    ++stats.poll_rounds;
    progressed_this_round = false;

    pfds.clear();
    pfd_site.clear();
    for (int s = 0; s < num_sites; ++s) {
      SiteState& st = sites[static_cast<size_t>(s)];
      st.nacked_this_round = false;
      if (!st.live_fd()) continue;
      if (st.stall_rounds > 0) {
        --st.stall_rounds;
        continue;
      }
      if (options.faults.delay_probability > 0.0 &&
          FaultUniform(options.faults.seed ^ 0xD31Au,
                       static_cast<uint64_t>(s),
                       static_cast<uint64_t>(stats.poll_rounds)) <
              options.faults.delay_probability) {
        st.stall_rounds = options.faults.delay_polls;
        ++stats.delays_injected;
        continue;
      }
      struct pollfd pfd;
      pfd.fd = st.proc.fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      pfds.push_back(pfd);
      pfd_site.push_back(s);
    }
    if (listener >= 0 && tcp_pending) {
      struct pollfd pfd;
      pfd.fd = listener;
      pfd.events = POLLIN;
      pfd.revents = 0;
      pfds.push_back(pfd);
      pfd_site.push_back(-1);
    }

    if (!pfds.empty()) {
      (void)poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 1);
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      if (pfd_site[i] < 0) {
        // TCP accepts: map each kHello to the site waiting for an fd.
        if ((pfds[i].revents & POLLIN) == 0) continue;
        int hello_site = -1;
        const int conn = AcceptHello(listener, &hello_site);
        if (conn < 0) continue;
        if (hello_site < 0 || hello_site >= num_sites ||
            sites[static_cast<size_t>(hello_site)].proc.fd >= 0) {
          close(conn);  // stray or duplicate connection
          continue;
        }
        sites[static_cast<size_t>(hello_site)].proc.fd = conn;
        progressed_this_round = true;
        continue;
      }
      const int s = pfd_site[i];
      SiteState& st = sites[static_cast<size_t>(s)];
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      // Bounded reads per site per round keep the loop fair across sites.
      for (int reads = 0; reads < 8; ++reads) {
        const ssize_t got = recv(st.proc.fd, rbuf, sizeof(rbuf), 0);
        if (got > 0) {
          st.reassembler.Feed(std::span<const uint8_t>(
              rbuf, static_cast<size_t>(got)));
          if (got < static_cast<ssize_t>(sizeof(rbuf))) break;
          continue;
        }
        if (got == 0) {
          st.saw_eof = true;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          st.saw_eof = true;  // reset by a killed peer: same as EOF
        }
        break;
      }
    }

    // Drain every reassembler fully, then settle EOFs. (A killed child's
    // final whole frames are consumed before its death is handled.)
    for (int s = 0; s < num_sites; ++s) {
      SiteState& st = sites[static_cast<size_t>(s)];
      sim::Message m;
      while (!st.done() && st.reassembler.Next(&m) == wire::DecodeStatus::kOk) {
        handle_frame(s, m);
      }
      // Our own children cannot desynchronize the stream; a corrupt
      // reassembler means a wire bug, not a fault to tolerate.
      NMC_CHECK(!st.reassembler.corrupt());
      if (st.saw_eof) handle_eof(s);
    }

    // Backstop for kill thresholds already crossed when a site (re)spawns
    // — consume-time delivery handles the common case. The EOF shows up on
    // a later round.
    for (int s = 0; s < num_sites; ++s) {
      maybe_kill(sites[static_cast<size_t>(s)]);
    }

    if (options.echo_period > 0 &&
        consumed_total - last_echo >= options.echo_period) {
      last_echo = consumed_total;
      sim::Message echo;
      echo.type = static_cast<int>(FrameType::kEcho);
      echo.a = estimate;
      echo.u = consumed_total;
      for (const SiteState& st : sites) {
        if (!st.live_fd()) continue;
        if (SendControl(st.proc.fd, echo, 1)) ++result.echoes_sent;
      }
    }

    if (progressed_this_round) {
      idle_rounds = 0;
    } else if (++idle_rounds > options.max_idle_polls) {
      stats.timed_out = true;
      break;
    }
  }

  // Teardown: stop the serving layer, then make sure nothing survives us —
  // no zombies, no open fds, regardless of how the loop ended.
  run_done.store(true, std::memory_order_release);
  for (std::future<void>& join : joins) join.get();
  for (SiteState& st : sites) {
    if (st.proc.pid > 0 || st.proc.fd >= 0) {
      (void)ReapSiteProcess(&st.proc, true);
      ++stats.children_reaped;
    }
    if (st.awaiting_recovery) stats.all_kills_recovered = false;
    if (st.kill_pending_eof) stats.all_kills_recovered = false;
    stats.generated_updates += st.world_next;
  }
  if (listener >= 0) close(listener);
  stats.updates_lost = stats.generated_updates - consumed_total;

  result.updates = consumed_total;
  result.final_published = PublishedEstimate{consumed_total, estimate};
  internal::FoldReaderStats(&reader_stats, &result);
  return run;
}

}  // namespace nmc::runtime
