#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/transport.h"

namespace nmc::sim {
// Declarations below take these only by pointer/const-ref; pulling in
// sim/registry.h here would drag the channel/rng chain into every
// transport user and blow the include-depth budget.
class Protocol;
struct ProtocolParams;
}  // namespace nmc::sim

namespace nmc::runtime {

/// The coordinator's continuously published serving slot: the estimate
/// Ŝ_t after `generation` stream updates have been applied. 16 bytes —
/// two seqlock words.
struct PublishedEstimate {
  int64_t generation = 0;
  double estimate = 0.0;
};

/// One consumed update in coordinator order — the unit of the captured
/// transcript. Replaying the transcript through a fresh protocol instance
/// on the deterministic simulator reproduces the threaded run exactly
/// (the protocol itself is single-threaded either way; the only
/// nondeterminism is the mailbox interleaving, which the transcript pins).
struct TranscriptEntry {
  int64_t site = 0;
  double value = 0.0;
};

/// One reader-observed snapshot retained for the linearizability check.
struct ReadSample {
  int64_t generation = 0;
  double estimate = 0.0;
};

struct ThreadedRunOptions {
  /// Query-client threads reading the published estimate concurrently.
  int num_readers = 0;
  /// Per-site mailbox capacity in updates (rounded up to a power of two).
  int64_t mailbox_capacity = 1 << 12;
  /// Max updates the coordinator pulls from one mailbox per visit — the
  /// fairness quantum across sites.
  int64_t max_pull = 256;
  /// Coordinator->site estimate echoes: after every `echo_period` consumed
  /// updates the current published estimate is offered to every site's
  /// reverse mailbox (dropped, not blocked on, when a site lags). 0 = off.
  int64_t echo_period = 1024;
  /// Record the transcript and the publish log for the linearizability
  /// check. Costs O(n) memory — meant for tests and verification runs.
  bool capture = false;
  /// Per-reader retained snapshot count (ring-replaced, so the tail of the
  /// run stays covered); 0 disables sampling.
  int64_t reader_sample_capacity = 256;
};

struct ThreadedRunResult {
  /// Updates consumed by the coordinator (== the summed shard lengths).
  int64_t updates = 0;
  /// Seqlock publishes (one per ProcessBatch return, plus the initial
  /// generation-0 publish).
  int64_t publishes = 0;
  /// Coordinator->site echo messages actually enqueued / actually drained.
  int64_t echoes_sent = 0;
  int64_t echoes_received = 0;
  /// Pooled over readers. torn_reads counts snapshot attempts that lost
  /// the race with an in-flight publish (retried, never served torn).
  int64_t total_reads = 0;
  int64_t torn_reads = 0;
  /// Reader-observed generation going backwards — any nonzero value is a
  /// published-estimate ordering bug.
  int64_t generation_regressions = 0;
  PublishedEstimate final_published;
  /// Captured only when options.capture is set.
  std::vector<TranscriptEntry> transcript;
  std::vector<PublishedEstimate> publish_log;
  /// Per-reader retained snapshots (capture-independent).
  std::vector<std::vector<ReadSample>> reader_samples;
};

/// Runs `protocol` on the threaded transport backend: shards[i] streams
/// into site i's thread (spawned on a common::ThreadPool), updates flow
/// through lock-free SPSC mailboxes to the coordinator (the calling
/// thread), which applies them via Protocol::ProcessBatch and publishes
/// the estimate into a seqlock slot that options.num_readers concurrent
/// query threads read wait-free. Returns after every shard is consumed and
/// every thread has joined.
///
/// The protocol object itself is only ever touched by the coordinator
/// thread — protocols stay single-threaded state machines; the concurrency
/// lives in the transport around them.
///
/// Internal building block of runtime::RunWithTransport (runtime/run.h),
/// which is the public per-transport entry point; call this directly only
/// from code that is explicitly threads-backend-specific.
ThreadedRunResult RunThreaded(sim::Protocol* protocol,
                              std::span<const std::vector<double>> shards,
                              const ThreadedRunOptions& options);

/// Splits `stream` round-robin into `num_sites` shards — the canonical
/// sharding under which the sim transport's RoundRobinAssignment pumps the
/// exact same per-site subsequences as the threaded backend's site
/// threads.
std::vector<std::vector<double>> ShardRoundRobin(
    const std::vector<double>& stream, int num_sites);

/// Inverse of ShardRoundRobin: the canonical single-stream interleaving of
/// per-site shards, for driving the sim transport on a sharded workload.
std::vector<double> InterleaveShards(
    std::span<const std::vector<double>> shards);

/// Verdict of replaying a captured threaded run against the deterministic
/// simulator (the oracle).
struct LinearizabilityReport {
  bool linearizable = false;
  int64_t publishes_checked = 0;
  int64_t samples_checked = 0;
  /// Empty when linearizable; otherwise the first mismatch, human-readable.
  std::string failure;
};

/// Replays run.transcript through `oracle` — a fresh instance of the same
/// protocol under the same seed, i.e. the deterministic simulator — and
/// checks that every published estimate and every reader-retained snapshot
/// (generation g, estimate v) is bit-identical to the oracle's estimate
/// after exactly g updates. With the single coordinator as the only
/// writer, matching every read to a prefix of the one consumption order
/// *is* linearizability of the estimate register. Requires a run captured
/// with options.capture.
LinearizabilityReport CheckLinearizable(const ThreadedRunResult& run,
                                        sim::Protocol* oracle);

/// True when `name` is registered and can run on `kind` (the sim backend
/// accepts every protocol; the threaded backend requires the registry's
/// thread_safe trait).
bool TransportSupports(TransportKind kind, std::string_view name);

/// Builds a registered protocol for the given backend; aborts (like
/// ProtocolRegistry::Create) on an unknown name, and refuses — with the
/// trait spelled out — a protocol whose registry traits declare it unfit
/// for the threaded backend.
std::unique_ptr<sim::Protocol> CreateForTransport(
    TransportKind kind, std::string_view name, int num_sites,
    const sim::ProtocolParams& params);

}  // namespace nmc::runtime
