#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "common/atomic_policy.h"
#include "common/seqlock.h"
#include "runtime/threaded.h"

namespace nmc::runtime::internal {

/// The seqlock serving layer shared by every concurrent transport backend
/// (threads, sockets): the coordinator publishes PublishedEstimate
/// generations into one Seqlock slot, m reader threads poll it wait-free,
/// and their per-thread accumulators are folded into the run result only
/// after the pool has joined. Internal — backends include this; users see
/// the reader counters through RunResult/ThreadedRunResult.

/// Per-reader accumulator. Owned by one reader thread for the duration of
/// the run; the coordinator folds them only after the pool has joined.
struct ReaderStats {
  int64_t reads = 0;
  int64_t torn = 0;
  int64_t regressions = 0;
  int64_t sampled = 0;
  std::vector<ReadSample> samples;
};

/// Reader snapshots are thinned by a fixed stride and retained in a ring,
/// so both early and late generations survive into the linearizability
/// check without unbounded memory. Prime, so readers de-synchronize from
/// the coordinator's publish cadence instead of aliasing it.
inline constexpr int64_t kSampleStride = 17;

/// Yield cadence for the spin paths. On an oversubscribed machine (more
/// threads than cores — CI runners, the 1-core container this repo grows
/// in) an unyielding spin loop starves the very thread it waits on.
inline constexpr int64_t kReaderYieldEvery = 256;

inline void ReaderLoop(const common::Seqlock<PublishedEstimate>& slot,
                       const common::RuntimeAtomic<bool>& run_done,
                       int64_t sample_capacity, ReaderStats* stats) {
  if (sample_capacity > 0) {
    stats->samples.resize(static_cast<size_t>(sample_capacity));
  }
  int64_t last_generation = 0;
  while (!run_done.load(std::memory_order_acquire)) {
    PublishedEstimate snapshot;
    if (!slot.TryRead(&snapshot)) {
      ++stats->torn;
      std::this_thread::yield();
      continue;
    }
    ++stats->reads;
    if (snapshot.generation < last_generation) {
      ++stats->regressions;
    } else {
      last_generation = snapshot.generation;
    }
    if (sample_capacity > 0 && stats->reads % kSampleStride == 0) {
      stats->samples[static_cast<size_t>(stats->sampled % sample_capacity)] =
          ReadSample{snapshot.generation, snapshot.estimate};
      ++stats->sampled;
    }
    if (stats->reads % kReaderYieldEvery == 0) std::this_thread::yield();
  }
}

/// Folds the joined readers' accumulators into the run result (totals plus
/// the retained snapshot rings, trimmed to what was actually sampled).
inline void FoldReaderStats(std::vector<ReaderStats>* reader_stats,
                            ThreadedRunResult* result) {
  result->reader_samples.reserve(reader_stats->size());
  for (ReaderStats& stats : *reader_stats) {
    result->total_reads += stats.reads;
    result->torn_reads += stats.torn;
    result->generation_regressions += stats.regressions;
    const int64_t kept =
        stats.sampled < static_cast<int64_t>(stats.samples.size())
            ? stats.sampled
            : static_cast<int64_t>(stats.samples.size());
    stats.samples.resize(static_cast<size_t>(kept));
    result->reader_samples.push_back(std::move(stats.samples));
  }
}

}  // namespace nmc::runtime::internal
