#pragma once

#include <string_view>

namespace nmc::runtime {

/// Which transport drives a protocol run — the backend seam selected at
/// bench time via --transport (modeled on the DKVStore one-interface /
/// many-backends pattern).
///
///   * kSim: the historical deterministic in-process simulator
///     (sim::RunTracking). Single-threaded, simulated time, bit-exact
///     across machines and thread counts — it stays the oracle that the
///     concurrent backend is checked against.
///   * kThreads: the real-time concurrent runtime (runtime::RunThreaded):
///     one thread per site feeding lock-free SPSC mailboxes, a coordinator
///     thread running the protocol, and a seqlock-published estimate read
///     wait-free by query-client threads.
///   * kSockets: the multi-process runtime (runtime::RunSockets): sites are
///     forked child processes speaking the versioned wire framing of
///     sim::Message (runtime/wire.h) over Unix domain sockets (TCP via an
///     option), a nonblocking poll loop on the coordinator feeding the same
///     confined protocol drive loop and the same seqlock serving layer.
///     Channel faults become *real* transport faults here: frame-level
///     drop/delay shims and SIGKILLed children.
enum class TransportKind {
  kSim = 0,
  kThreads = 1,
  kSockets = 2,
};

/// "sim" / "threads" / "sockets" — the --transport flag vocabulary.
const char* TransportKindName(TransportKind kind);

/// Parses the --transport flag value; false (and *out untouched) on an
/// unknown name.
bool ParseTransportKind(std::string_view name, TransportKind* out);

}  // namespace nmc::runtime
