#pragma once

#include <string_view>

namespace nmc::runtime {

/// Which transport drives a protocol run — the backend seam selected at
/// bench time via --transport (modeled on the DKVStore one-interface /
/// many-backends pattern).
///
///   * kSim: the historical deterministic in-process simulator
///     (sim::RunTracking). Single-threaded, simulated time, bit-exact
///     across machines and thread counts — it stays the oracle that the
///     concurrent backend is checked against.
///   * kThreads: the real-time concurrent runtime (runtime::RunThreaded):
///     one thread per site feeding lock-free SPSC mailboxes, a coordinator
///     thread running the protocol, and a seqlock-published estimate read
///     wait-free by query-client threads.
enum class TransportKind {
  kSim = 0,
  kThreads = 1,
};

/// "sim" / "threads" — the --transport flag vocabulary.
const char* TransportKindName(TransportKind kind);

/// Parses the --transport flag value; false (and *out untouched) on an
/// unknown name.
bool ParseTransportKind(std::string_view name, TransportKind* out);

}  // namespace nmc::runtime
