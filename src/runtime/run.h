#pragma once

#include <span>
#include <vector>

#include "runtime/sockets.h"
#include "runtime/threaded.h"
#include "runtime/transport.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::runtime {

/// The one transport-agnostic run description. Callers fill the input
/// (either a single stream or pre-built per-site shards), the protocol,
/// and the per-backend option blocks; RunWithTransport dispatches on the
/// TransportKind and fills the matching slice of RunResult.
///
/// Input forms:
///   * `stream` set, `shards` empty — the sim backend drives it through
///     `psi` (round-robin when psi is null); the concurrent backends
///     shard it with ShardRoundRobin.
///   * `shards` set, `stream` null — the concurrent backends take them
///     as-is; the sim backend pumps InterleaveShards(shards) round-robin,
///     i.e. the canonical serialization of the same per-site
///     subsequences.
struct RunConfig {
  sim::Protocol* protocol = nullptr;
  const std::vector<double>* stream = nullptr;
  std::span<const std::vector<double>> shards;
  /// Sim-only assignment policy (the adversary's psi). Null means
  /// round-robin, matching what the concurrent backends' sharding
  /// implies. Ignored by kThreads/kSockets — there the partition IS the
  /// sharding.
  sim::AssignmentPolicy* psi = nullptr;
  /// kSim checker configuration.
  sim::TrackingOptions tracking;
  /// kThreads configuration.
  ThreadedRunOptions threaded;
  /// kSockets configuration.
  SocketRunOptions sockets;
};

/// Transport-agnostic outcome. Exactly one slice is authoritative per
/// transport: `tracking` for kSim; `serving` for kThreads and kSockets;
/// `sockets` additionally for kSockets. The untouched slices stay
/// default-initialized.
struct RunResult {
  TransportKind transport = TransportKind::kSim;
  sim::TrackingResult tracking;
  ThreadedRunResult serving;
  SocketStats sockets;
};

/// Runs config.protocol over the chosen transport backend. This is the
/// public entry point for every backend; sim::RunTracking,
/// runtime::RunThreaded and runtime::RunSockets are its internal building
/// blocks (benches and integration tests go through here so a backend can
/// be swapped with one flag). The sim path delegates verbatim to
/// sim::RunTracking — same pump, same checker arithmetic — so existing
/// sim outputs are pinned byte-identical.
RunResult RunWithTransport(TransportKind kind, const RunConfig& config);

/// CheckLinearizable over a unified result: replays the captured serving
/// transcript (kThreads/kSockets runs with capture set) against the sim
/// oracle. For a kSim result there is nothing concurrent to check; it
/// reports non-linearizable with an explanatory failure string.
LinearizabilityReport CheckLinearizable(const RunResult& run,
                                        sim::Protocol* oracle);

}  // namespace nmc::runtime
