#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "sim/message.h"
#include "sim/message_wire.h"

namespace nmc::runtime::wire {

/// Versioned length-prefixed framing of sim::Message for the sockets
/// transport — the explicit wire contract the in-process backends never
/// needed. One frame:
///
///   offset  size  field
///        0     4  magic    0x314D434E ("NCM1" on the wire, little-endian)
///        4     2  version  kVersion (decoders reject anything else)
///        6     2  length   payload bytes; must equal sim::kMessageWireBytes
///        8    36  payload  sim::PackMessage image (see sim/message_wire.h)
///
/// The length field is validated against the version's fixed payload size
/// before any payload byte is touched, so truncated, oversized, and
/// garbage frames are rejected cleanly instead of desynchronizing the
/// stream decoder.
inline constexpr uint32_t kMagic = 0x314D434Eu;
inline constexpr uint16_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 8;
inline constexpr size_t kFrameBytes = kHeaderBytes + sim::kMessageWireBytes;

enum class DecodeStatus {
  kOk = 0,
  kNeedMore,    // the buffer ends mid-frame; feed more bytes and retry
  kBadMagic,    // first 4 bytes are not kMagic — stream is desynchronized
  kBadVersion,  // framed by a peer speaking a different wire version
  kBadLength,   // length field disagrees with the version's payload size
};

const char* DecodeStatusName(DecodeStatus status);

/// Serializes one frame (header + payload) into exactly kFrameBytes at
/// `out`.
void EncodeFrame(const sim::Message& message, uint8_t* out);

/// EncodeFrame appended to a byte vector.
void AppendFrame(const sim::Message& message, std::vector<uint8_t>* out);

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  /// Bytes consumed from the input on kOk (always kFrameBytes); 0 on any
  /// other status — a malformed prefix is never silently skipped.
  size_t consumed = 0;
  sim::Message message;
};

/// Decodes the frame at the front of `bytes`. Validation order: magic,
/// version, length, then completeness — so a wrong-version frame is
/// reported as kBadVersion even when truncated past the header.
Decoded DecodeFrame(std::span<const uint8_t> bytes);

/// Incremental frame decoder over a byte stream (a socket read loop feeds
/// arbitrary chunk boundaries; frames come out whole). A framing error is
/// sticky: once the stream is desynchronized there is no reliable way to
/// find the next frame boundary, so every later Next() repeats the error
/// and the connection should be torn down.
class FrameReassembler {
 public:
  /// Appends raw stream bytes (chunks may split frames anywhere).
  void Feed(std::span<const uint8_t> bytes);

  /// Pops the next complete frame into *out. Returns kOk with *out filled,
  /// kNeedMore when the buffer holds no complete frame (*out untouched),
  /// or the sticky framing error.
  DecodeStatus Next(sim::Message* out);

  /// Bytes buffered but not yet decoded (a partial trailing frame).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

  /// True after any framing error; the stream cannot be re-synchronized.
  bool corrupt() const { return corrupt_ != DecodeStatus::kOk; }

 private:
  std::vector<uint8_t> buffer_;
  /// Consumed prefix of buffer_; compacted when it grows past the live
  /// bytes so the buffer's footprint stays bounded by the burst size.
  size_t pos_ = 0;
  DecodeStatus corrupt_ = DecodeStatus::kOk;
};

}  // namespace nmc::runtime::wire
