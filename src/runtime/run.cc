#include "runtime/run.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace nmc::runtime {

RunResult RunWithTransport(TransportKind kind, const RunConfig& config) {
  NMC_CHECK(config.protocol != nullptr);
  NMC_CHECK(config.stream != nullptr || !config.shards.empty());
  RunResult out;
  out.transport = kind;

  switch (kind) {
    case TransportKind::kSim: {
      std::vector<double> interleaved;
      const std::vector<double>* stream = config.stream;
      if (stream == nullptr) {
        interleaved = InterleaveShards(config.shards);
        stream = &interleaved;
      }
      sim::RoundRobinAssignment round_robin(config.protocol->num_sites());
      sim::AssignmentPolicy* psi =
          config.psi != nullptr ? config.psi : &round_robin;
      out.tracking =
          sim::RunTracking(*stream, psi, config.protocol, config.tracking);
      return out;
    }
    case TransportKind::kThreads: {
      std::vector<std::vector<double>> owned;
      std::span<const std::vector<double>> shards = config.shards;
      if (shards.empty()) {
        owned =
            ShardRoundRobin(*config.stream, config.protocol->num_sites());
        shards = owned;
      }
      out.serving = RunThreaded(config.protocol, shards, config.threaded);
      return out;
    }
    case TransportKind::kSockets: {
      std::vector<std::vector<double>> owned;
      std::span<const std::vector<double>> shards = config.shards;
      if (shards.empty()) {
        owned =
            ShardRoundRobin(*config.stream, config.protocol->num_sites());
        shards = owned;
      }
      SocketRunResult socket_run =
          RunSockets(config.protocol, shards, config.sockets);
      out.serving = std::move(socket_run.serving);
      out.sockets = socket_run.stats;
      return out;
    }
  }
  NMC_CHECK(false);
  return out;
}

LinearizabilityReport CheckLinearizable(const RunResult& run,
                                        sim::Protocol* oracle) {
  if (run.transport == TransportKind::kSim) {
    LinearizabilityReport report;
    report.failure =
        "sim transport runs have no concurrent serving layer to check";
    return report;
  }
  return CheckLinearizable(run.serving, oracle);
}

}  // namespace nmc::runtime
