#include "runtime/transport.h"

namespace nmc::runtime {

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kThreads:
      return "threads";
    case TransportKind::kSockets:
      return "sockets";
  }
  return "unknown";
}

bool ParseTransportKind(std::string_view name, TransportKind* out) {
  if (name == "sim") {
    *out = TransportKind::kSim;
    return true;
  }
  if (name == "threads") {
    *out = TransportKind::kThreads;
    return true;
  }
  if (name == "sockets") {
    *out = TransportKind::kSockets;
    return true;
  }
  return false;
}

}  // namespace nmc::runtime
