#include "runtime/process.h"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "common/check.h"
#include "runtime/wire.h"

namespace nmc::runtime {

namespace {

/// Child-side outbound batch: whole frames only, so a kNack rewind never
/// has to retract a half-written frame (the receiver's framing stays in
/// sync; stale update frames are simply discarded by sequence number).
constexpr size_t kChildOutFrames = 64;
constexpr size_t kChildOutBytes = kChildOutFrames * wire::kFrameBytes;
constexpr size_t kChildInBytes = 4096;

/// Everything below runs post-fork in the child. No heap allocation, no
/// stdio, no C++ containers: the parent may be multithreaded at fork time
/// (replacement sites are forked while reader threads run), so the child
/// must not touch a lock another parent thread could have held. Stack
/// buffers + raw syscalls only; every exit is _exit (no atexit handlers,
/// no sanitizer leak sweep over inherited allocations).
[[noreturn]] void ChildSiteMain(int fd, const SiteSpawnOptions& options) {
  (void)SetNonBlocking(fd);
  uint8_t inbuf[kChildInBytes];
  size_t inlen = 0;
  uint8_t outbuf[kChildOutBytes];
  size_t outlen = 0;
  size_t outpos = 0;
  const int64_t shard_n = static_cast<int64_t>(options.shard.size());
  int64_t cursor = options.resume_seq;
  int64_t echoes = 0;
  bool fin_sent = false;

  for (;;) {
    // 1. Refill the outbound batch once the previous one fully drained.
    if (outpos == outlen) {
      outpos = 0;
      outlen = 0;
      while (cursor < shard_n &&
             outlen + wire::kFrameBytes <= kChildOutBytes) {
        sim::Message m;
        m.type = static_cast<int>(FrameType::kUpdate);
        m.a = options.shard[static_cast<size_t>(cursor)];
        m.u = cursor;
        wire::EncodeFrame(m, outbuf + outlen);
        outlen += wire::kFrameBytes;
        ++cursor;
      }
      if (cursor >= shard_n && !fin_sent &&
          outlen + wire::kFrameBytes <= kChildOutBytes) {
        sim::Message m;
        m.type = static_cast<int>(FrameType::kFin);
        m.u = shard_n;
        m.v = echoes;
        wire::EncodeFrame(m, outbuf + outlen);
        outlen += wire::kFrameBytes;
        fin_sent = true;
      }
    }

    // 2. Flush as much as the socket accepts right now.
    bool send_blocked = false;
    if (outpos < outlen) {
      const ssize_t sent =
          send(fd, outbuf + outpos, outlen - outpos, MSG_NOSIGNAL);
      if (sent > 0) {
        outpos += static_cast<size_t>(sent);
      } else if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        send_blocked = true;
      } else if (sent < 0 && errno != EINTR) {
        _exit(2);  // coordinator gone mid-run: an orphan must die, not spin
      }
    }

    // 3. Drain control frames (kNack rewinds, echoes, the FinAck release).
    const ssize_t got = recv(fd, inbuf + inlen, kChildInBytes - inlen, 0);
    if (got == 0) _exit(2);
    if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      _exit(2);
    }
    if (got > 0) inlen += static_cast<size_t>(got);
    size_t ipos = 0;
    while (inlen - ipos >= wire::kFrameBytes) {
      const wire::Decoded decoded = wire::DecodeFrame(
          std::span<const uint8_t>(inbuf + ipos, inlen - ipos));
      if (decoded.status != wire::DecodeStatus::kOk) _exit(3);
      ipos += decoded.consumed;
      switch (static_cast<FrameType>(decoded.message.type)) {
        case FrameType::kNack:
          // Go-back-N rewind. The frames already batched keep flushing
          // (whole frames; the coordinator discards stale sequence
          // numbers), only the cursor moves back.
          if (decoded.message.u < cursor) {
            cursor = decoded.message.u;
            fin_sent = false;
          }
          break;
        case FrameType::kEcho:
          ++echoes;
          break;
        case FrameType::kFinAck:
          _exit(0);
        default:
          break;
      }
    }
    if (ipos > 0) {
      std::memmove(inbuf, inbuf + ipos, inlen - ipos);
      inlen -= ipos;
    }

    // 4. Nothing flushable and nothing new to say: block on the socket
    // instead of spinning against a busy coordinator.
    if (send_blocked || (outpos == outlen && fin_sent)) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = static_cast<short>(POLLIN | (send_blocked ? POLLOUT : 0));
      pfd.revents = 0;
      const int ready = poll(&pfd, 1, 50);
      if (ready > 0 && (pfd.revents & (POLLERR | POLLNVAL)) != 0) _exit(2);
      // POLLHUP alone is not conclusive: the read direction may still hold
      // the coordinator's FinAck; the recv()==0 above is the real EOF.
    }
  }
}

/// TCP child bootstrap: connect to the coordinator's loopback listener
/// (with retries — the parent listens before forking, but a slow accept
/// loop is normal) and introduce this site with a kHello frame before the
/// generic site loop takes over.
[[noreturn]] void ChildTcpMain(const SiteSpawnOptions& options) {
  int fd = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) _exit(4);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.tcp_port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) == 0) {
      break;
    }
    close(fd);
    fd = -1;
    struct timespec backoff = {0, 10 * 1000 * 1000};  // 10ms
    nanosleep(&backoff, nullptr);
  }
  if (fd < 0) _exit(4);
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  BoundSocketBuffers(fd);

  sim::Message hello;
  hello.type = static_cast<int>(FrameType::kHello);
  hello.u = options.site_id;
  uint8_t frame[wire::kFrameBytes];
  wire::EncodeFrame(hello, frame);
  size_t off = 0;
  while (off < wire::kFrameBytes) {  // fd still blocking here
    const ssize_t sent =
        send(fd, frame + off, wire::kFrameBytes - off, MSG_NOSIGNAL);
    if (sent < 0 && errno == EINTR) continue;
    if (sent <= 0) _exit(4);
    off += static_cast<size_t>(sent);
  }
  ChildSiteMain(fd, options);
}

}  // namespace

SiteProcess SpawnSiteProcess(const SiteSpawnOptions& options) {
  SiteProcess site;
  site.site_id = options.site_id;
  site.resume_seq = options.resume_seq;

  if (options.use_tcp) {
    const pid_t pid = fork();
    NMC_CHECK_GE(pid, 0);
    if (pid == 0) ChildTcpMain(options);
    site.pid = pid;
    site.fd = -1;  // arrives later via accept + kHello
    return site;
  }

  int fds[2];
  NMC_CHECK_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  BoundSocketBuffers(fds[0]);
  BoundSocketBuffers(fds[1]);
  const pid_t pid = fork();
  NMC_CHECK_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    ChildSiteMain(fds[1], options);
  }
  close(fds[1]);
  NMC_CHECK(SetNonBlocking(fds[0]));
  site.pid = pid;
  site.fd = fds[0];
  return site;
}

int ReapSiteProcess(SiteProcess* site, bool kill_first) {
  if (site->fd >= 0) {
    close(site->fd);
    site->fd = -1;
  }
  if (site->pid <= 0) return 0;
  if (kill_first) (void)kill(site->pid, SIGKILL);
  int status = 0;
  // Reap exactly this child; retry through signal interruptions. A child
  // that got FinAck is already exiting, a SIGKILLed one is gone — blocking
  // here is bounded either way (EOF-triggered exits close the race where a
  // child could outlive its socket).
  while (waitpid(site->pid, &status, 0) < 0 && errno == EINTR) {
  }
  site->pid = -1;
  return status;
}

void BoundSocketBuffers(int fd) {
  // Small kernel buffers bound the in-flight window to a few hundred
  // frames per direction. Without this a fast child streams its entire
  // shard into the socket before the coordinator consumes a thing, which
  // makes crash injection meaningless (the SIGKILL lands after the data
  // already left) and resync distances unbounded. Best effort: the kernel
  // clamps to its floor, and doubles what we ask for bookkeeping.
  const int bytes = 16 * 1024;
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int OpenTcpListener(uint16_t* port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  NMC_CHECK_GE(fd, 0);
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  NMC_CHECK_EQ(
      bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)), 0);
  NMC_CHECK_EQ(listen(fd, SOMAXCONN), 0);
  socklen_t len = sizeof(addr);
  NMC_CHECK_EQ(
      getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
  NMC_CHECK(SetNonBlocking(fd));
  return fd;
}

}  // namespace nmc::runtime
