#include "runtime/threaded.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>

#include "common/atomic_policy.h"
#include "common/check.h"
#include "common/seqlock.h"
#include "common/spsc_queue.h"
#include "common/thread_pool.h"
#include "runtime/serving.h"
#include "sim/registry.h"

namespace nmc::runtime {

namespace {

using internal::ReaderLoop;
using internal::ReaderStats;

void SiteLoop(const std::vector<double>& shard,
              common::SpscQueue<double>* inbox,
              common::SpscQueue<PublishedEstimate>* echoes,
              common::RuntimeAtomic<bool>* done,
              common::RuntimeAtomic<int64_t>* echoes_received) {
  int64_t received = 0;
  size_t pos = 0;
  const std::span<const double> all(shard);
  while (pos < all.size()) {
    const size_t pushed = inbox->TryPushSpan(all.subspan(pos));
    pos += pushed;
    PublishedEstimate echo;
    while (echoes->TryPop(&echo)) ++received;
    if (pushed == 0) std::this_thread::yield();
  }
  // Publish the shard-exhausted flag only after the last TryPushSpan: the
  // release store orders every enqueued update before the flag, so a
  // coordinator that sees done==true and an empty mailbox has seen
  // everything.
  done->store(true, std::memory_order_release);
  echoes_received->fetch_add(received, std::memory_order_relaxed);
}

}  // namespace

ThreadedRunResult RunThreaded(sim::Protocol* protocol,
                              std::span<const std::vector<double>> shards,
                              const ThreadedRunOptions& options) {
  NMC_CHECK(protocol != nullptr);
  const int num_sites = protocol->num_sites();
  NMC_CHECK_EQ(static_cast<int>(shards.size()), num_sites);
  NMC_CHECK_GE(options.num_readers, 0);
  NMC_CHECK_GE(options.mailbox_capacity, 1);
  NMC_CHECK_GE(options.max_pull, 1);

  int64_t total_updates = 0;
  for (const std::vector<double>& shard : shards) {
    total_updates += static_cast<int64_t>(shard.size());
  }

  ThreadedRunResult result;
  if (options.capture) {
    result.transcript.reserve(static_cast<size_t>(total_updates));
    result.publish_log.reserve(static_cast<size_t>(total_updates / 8 + 16));
  }

  std::vector<std::unique_ptr<common::SpscQueue<double>>> inboxes;
  std::vector<std::unique_ptr<common::SpscQueue<PublishedEstimate>>> echoes;
  inboxes.reserve(static_cast<size_t>(num_sites));
  echoes.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    inboxes.push_back(std::make_unique<common::SpscQueue<double>>(
        static_cast<size_t>(options.mailbox_capacity)));
    // The echo ring is advisory (lagging sites drop echoes), so a small
    // fixed capacity suffices.
    echoes.push_back(std::make_unique<common::SpscQueue<PublishedEstimate>>(64));
  }
  std::unique_ptr<common::RuntimeAtomic<bool>[]> site_done(
      new common::RuntimeAtomic<bool>[static_cast<size_t>(num_sites)]);
  for (int i = 0; i < num_sites; ++i) {
    site_done[i].store(false, std::memory_order_relaxed);
  }
  common::RuntimeAtomic<bool> run_done{false};
  common::RuntimeAtomic<int64_t> echoes_received{0};

  common::Seqlock<PublishedEstimate> slot;
  const auto publish = [&](int64_t generation, double estimate) {
    slot.Publish(PublishedEstimate{generation, estimate});
    ++result.publishes;
    if (options.capture) {
      result.publish_log.push_back(PublishedEstimate{generation, estimate});
    }
  };
  publish(0, protocol->Estimate());

  std::vector<ReaderStats> reader_stats(
      static_cast<size_t>(options.num_readers));

  // Sites and readers on pool threads; the coordinator is the calling
  // thread, so the pool never has to schedule a task that other running
  // tasks spin-wait on.
  common::ThreadPool pool(num_sites + options.num_readers);
  std::vector<std::future<void>> joins;
  joins.reserve(static_cast<size_t>(num_sites + options.num_readers));
  for (int i = 0; i < num_sites; ++i) {
    joins.push_back(pool.Submit(
        [&shards, &inboxes, &echoes, &site_done, &echoes_received, i]() {
          SiteLoop(shards[static_cast<size_t>(i)],
                   inboxes[static_cast<size_t>(i)].get(),
                   echoes[static_cast<size_t>(i)].get(), &site_done[i],
                   &echoes_received);
        }));
  }
  for (int r = 0; r < options.num_readers; ++r) {
    ReaderStats* stats = &reader_stats[static_cast<size_t>(r)];
    joins.push_back(pool.Submit([&slot, &run_done, &options, stats]() {
      ReaderLoop(slot, run_done, options.reader_sample_capacity, stats);
    }));
  }

  // Coordinator: round-robin over the mailboxes, feeding contiguous spans
  // straight from the ring storage into ProcessBatch (zero copies), and
  // publishing the estimate at every point the protocol may have changed
  // it (each ProcessBatch return).
  int64_t consumed_total = 0;
  int64_t last_echo = 0;
  double estimate = protocol->Estimate();
  while (true) {
    bool progressed = false;
    for (int s = 0; s < num_sites; ++s) {
      common::SpscQueue<double>& inbox = *inboxes[static_cast<size_t>(s)];
      const std::span<const double> batch =
          inbox.PeekContiguous(static_cast<size_t>(options.max_pull));
      if (batch.empty()) continue;
      progressed = true;
      size_t pos = 0;
      while (pos < batch.size()) {
        const int64_t consumed =
            protocol->ProcessBatch(s, batch.subspan(pos));
        NMC_CHECK_GE(consumed, 1);
        if (options.capture) {
          for (int64_t j = 0; j < consumed; ++j) {
            result.transcript.push_back(TranscriptEntry{
                s, batch[pos + static_cast<size_t>(j)]});
          }
        }
        pos += static_cast<size_t>(consumed);
        consumed_total += consumed;
        estimate = protocol->Estimate();
        publish(consumed_total, estimate);
      }
      inbox.Advance(batch.size());
    }
    if (options.echo_period > 0 &&
        consumed_total - last_echo >= options.echo_period) {
      last_echo = consumed_total;
      const PublishedEstimate echo{consumed_total, estimate};
      for (int s = 0; s < num_sites; ++s) {
        if (echoes[static_cast<size_t>(s)]->TryPush(echo)) {
          ++result.echoes_sent;
        }
      }
    }
    if (progressed) continue;
    // Check done flags before re-probing the mailboxes: a site's pushes
    // happen-before its done flag, so done && empty is conclusive.
    bool finished = true;
    for (int s = 0; s < num_sites; ++s) {
      if (!site_done[s].load(std::memory_order_acquire) ||
          !inboxes[static_cast<size_t>(s)]->PeekContiguous(1).empty()) {
        finished = false;
        break;
      }
    }
    if (finished) break;
    std::this_thread::yield();
  }
  NMC_CHECK_EQ(consumed_total, total_updates);
  run_done.store(true, std::memory_order_release);
  for (std::future<void>& join : joins) join.get();

  result.updates = consumed_total;
  result.echoes_received = echoes_received.load(std::memory_order_relaxed);
  result.final_published = PublishedEstimate{consumed_total, estimate};
  internal::FoldReaderStats(&reader_stats, &result);
  return result;
}

std::vector<std::vector<double>> ShardRoundRobin(
    const std::vector<double>& stream, int num_sites) {
  NMC_CHECK_GE(num_sites, 1);
  std::vector<std::vector<double>> shards(static_cast<size_t>(num_sites));
  for (std::vector<double>& shard : shards) {
    shard.reserve(stream.size() / static_cast<size_t>(num_sites) + 1);
  }
  for (size_t t = 0; t < stream.size(); ++t) {
    shards[t % static_cast<size_t>(num_sites)].push_back(stream[t]);
  }
  return shards;
}

std::vector<double> InterleaveShards(
    std::span<const std::vector<double>> shards) {
  size_t total = 0;
  for (const std::vector<double>& shard : shards) total += shard.size();
  std::vector<double> stream;
  stream.reserve(total);
  for (size_t round = 0; stream.size() < total; ++round) {
    for (const std::vector<double>& shard : shards) {
      if (round < shard.size()) stream.push_back(shard[round]);
    }
  }
  return stream;
}

namespace {

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

std::string Mismatch(const char* what, int64_t generation, double got,
                     double want) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s at generation %lld: observed %.17g, oracle %.17g", what,
                static_cast<long long>(generation), got, want);
  return buffer;
}

}  // namespace

LinearizabilityReport CheckLinearizable(const ThreadedRunResult& run,
                                        sim::Protocol* oracle) {
  NMC_CHECK(oracle != nullptr);
  LinearizabilityReport report;
  if (run.transcript.empty() && run.updates > 0) {
    report.failure = "run was not captured (set ThreadedRunOptions::capture)";
    return report;
  }
  if (run.generation_regressions > 0) {
    report.failure = "a reader observed the published generation regress";
    return report;
  }

  // The oracle trajectory: the deterministic simulator's estimate after
  // each prefix of the captured consumption order.
  std::vector<double> trajectory;
  trajectory.reserve(run.transcript.size() + 1);
  trajectory.push_back(oracle->Estimate());
  for (const TranscriptEntry& entry : run.transcript) {
    oracle->ProcessUpdate(static_cast<int>(entry.site), entry.value);
    trajectory.push_back(oracle->Estimate());
  }

  const auto check = [&](const char* what, int64_t generation,
                         double estimate) {
    if (generation < 0 ||
        generation >= static_cast<int64_t>(trajectory.size())) {
      report.failure = Mismatch(what, generation, estimate, 0.0) +
                       " (generation outside the replayed range)";
      return false;
    }
    const double want = trajectory[static_cast<size_t>(generation)];
    if (!SameBits(estimate, want)) {
      report.failure = Mismatch(what, generation, estimate, want);
      return false;
    }
    return true;
  };

  for (const PublishedEstimate& published : run.publish_log) {
    if (!check("publish", published.generation, published.estimate)) {
      return report;
    }
    ++report.publishes_checked;
  }
  for (const std::vector<ReadSample>& samples : run.reader_samples) {
    for (const ReadSample& sample : samples) {
      if (!check("reader snapshot", sample.generation, sample.estimate)) {
        return report;
      }
      ++report.samples_checked;
    }
  }
  report.linearizable = true;
  return report;
}

bool TransportSupports(TransportKind kind, std::string_view name) {
  const sim::ProtocolTraits* traits =
      sim::ProtocolRegistry::Global().Traits(name);
  if (traits == nullptr) return false;
  // kSockets confines the protocol to the coordinator thread exactly like
  // kThreads (processes stream, they never touch protocol state), but the
  // serving layer still runs concurrent readers in-process, so both
  // concurrent backends require the same trait.
  return kind == TransportKind::kSim || traits->thread_safe;
}

std::unique_ptr<sim::Protocol> CreateForTransport(
    TransportKind kind, std::string_view name, int num_sites,
    const sim::ProtocolParams& params) {
  const sim::ProtocolTraits* traits =
      sim::ProtocolRegistry::Global().Traits(name);
  if (traits != nullptr && kind != TransportKind::kSim) {
    // Refuse loudly: silently running a thread-hostile protocol on a
    // concurrent backend would corrupt results, not just crash.
    NMC_CHECK(traits->thread_safe);
  }
  return sim::ProtocolRegistry::Global().Create(name, num_sites, params);
}

}  // namespace nmc::runtime
