#include "runtime/wire.h"

#include <cstring>

namespace nmc::runtime::wire {

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMore:
      return "need-more";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kBadVersion:
      return "bad-version";
    case DecodeStatus::kBadLength:
      return "bad-length";
  }
  return "unknown";
}

void EncodeFrame(const sim::Message& message, uint8_t* out) {
  sim::wire_detail::PutLe32(kMagic, out);
  sim::wire_detail::PutLe32(
      static_cast<uint32_t>(kVersion) |
          (static_cast<uint32_t>(sim::kMessageWireBytes) << 16),
      out + 4);
  sim::PackMessage(message, out + kHeaderBytes);
}

void AppendFrame(const sim::Message& message, std::vector<uint8_t>* out) {
  uint8_t frame[kFrameBytes];
  EncodeFrame(message, frame);
  out->insert(out->end(), frame, frame + kFrameBytes);
}

Decoded DecodeFrame(std::span<const uint8_t> bytes) {
  Decoded decoded;
  // Each header field is checked as soon as its bytes are present: a frame
  // that already disagrees on magic or version is an error even when
  // truncated, while a well-formed prefix is just kNeedMore.
  if (bytes.size() < 4) {
    // A short prefix of the magic must still be *consistent* with it —
    // otherwise a garbage trickle would sit in kNeedMore forever.
    for (size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] != static_cast<uint8_t>((kMagic >> (8 * i)) & 0xFFu)) {
        decoded.status = DecodeStatus::kBadMagic;
        return decoded;
      }
    }
    return decoded;
  }
  if (sim::wire_detail::GetLe32(bytes.data()) != kMagic) {
    decoded.status = DecodeStatus::kBadMagic;
    return decoded;
  }
  if (bytes.size() < 6) return decoded;
  const uint32_t tail = bytes.size() >= 8
                            ? sim::wire_detail::GetLe32(bytes.data() + 4)
                            : static_cast<uint32_t>(bytes[4]) |
                                  (static_cast<uint32_t>(bytes[5]) << 8);
  if ((tail & 0xFFFFu) != kVersion) {
    decoded.status = DecodeStatus::kBadVersion;
    return decoded;
  }
  if (bytes.size() < kHeaderBytes) return decoded;
  if ((tail >> 16) != sim::kMessageWireBytes) {
    decoded.status = DecodeStatus::kBadLength;
    return decoded;
  }
  if (bytes.size() < kFrameBytes) return decoded;
  decoded.status = DecodeStatus::kOk;
  decoded.consumed = kFrameBytes;
  decoded.message = sim::UnpackMessage(bytes.data() + kHeaderBytes);
  return decoded;
}

void FrameReassembler::Feed(std::span<const uint8_t> bytes) {
  if (corrupt()) return;  // the stream is already dead; don't grow the buffer
  // Compact before growing: the consumed prefix is reclaimed whenever it
  // dominates the buffer, keeping footprint ~ one burst.
  if (pos_ > 0 && pos_ >= buffer_.size() - pos_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

DecodeStatus FrameReassembler::Next(sim::Message* out) {
  if (corrupt()) return corrupt_;
  const Decoded decoded = DecodeFrame(
      std::span<const uint8_t>(buffer_.data() + pos_, buffer_.size() - pos_));
  if (decoded.status == DecodeStatus::kOk) {
    pos_ += decoded.consumed;
    *out = decoded.message;
    return DecodeStatus::kOk;
  }
  if (decoded.status != DecodeStatus::kNeedMore) corrupt_ = decoded.status;
  return decoded.status;
}

}  // namespace nmc::runtime::wire
