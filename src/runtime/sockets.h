#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/process.h"
#include "runtime/threaded.h"

namespace nmc::runtime {

/// One scheduled crash: SIGKILL the live incarnation of `site` once the
/// coordinator has consumed `after_consumed` of that site's updates. The
/// process-level twin of the sim CrashScheduleChannel: a killed site stops
/// generating — its unsent tail leaves the world — and, on the reliable
/// link, a replacement incarnation is forked that resumes the shard at the
/// coordinator's consumption cursor.
struct SiteKillSpec {
  int site = 0;
  int64_t after_consumed = 0;
};

/// Socket-level fault plan, applied at coordinator ingress so the faults
/// hit real frames on real sockets (the twin of BernoulliLossChannel /
/// CrashScheduleChannel, which perturb sim::Message objects in memory).
struct SocketFaultOptions {
  /// Probability of dropping a kUpdate frame at ingress. Control frames
  /// (kHello/kFin/kNack/kEcho/kFinAck) ride a reliable control plane and
  /// are never dropped — loss models a flaky data path, not a broken link.
  double loss = 0.0;
  /// Probability (per site per poll round) of a head-of-line stall: the
  /// coordinator stops reading that site's socket for `delay_polls`
  /// rounds, so frames back up in the kernel buffer and arrive late but
  /// in order — the socket-level shape of a delay channel.
  double delay_probability = 0.0;
  int64_t delay_polls = 8;
  /// Seed of the deterministic fault stream. Drops hash (seed, site,
  /// arrival index); the same plan replays the same faults.
  uint64_t seed = 1;
  std::vector<SiteKillSpec> kills;
};

struct SocketRunOptions {
  /// Serving layer, identical to the threads backend: query threads read
  /// the seqlock-published estimate while the run progresses.
  int num_readers = 0;
  bool capture = false;
  int64_t reader_sample_capacity = 256;
  /// Coordinator->site kEcho cadence in consumed updates; 0 = off.
  int64_t echo_period = 1024;
  /// Sites connect over TCP to a loopback listener instead of inheriting
  /// a Unix socketpair end. Same framing either way.
  bool use_tcp = false;
  /// Reliable link discipline: strictly in-order consumption, gaps NACKed
  /// (go-back-N), killed sites respawned at the consumption cursor. When
  /// false the link is raw — dropped frames are lost forever and killed
  /// sites stay dead — which is exactly the configuration that must
  /// violate the tracking guarantee under loss (E14's point).
  bool reliable = true;
  SocketFaultOptions faults;
  /// Tracking-guarantee check against the generated world (see
  /// SocketStats::violation_steps). Matches sim::TrackingOptions.
  double epsilon = 0.1;
  double rel_error_floor = 1.0;
  double absolute_slack = 1e-9;
  /// A respawned site must deliver its first resumed update within this
  /// many coordinator-consumed updates (across all sites) of the kill;
  /// otherwise the run reports all_kills_recovered = false.
  int64_t resync_deadline_updates = 1 << 20;
  /// Safety stop: consecutive poll rounds with no frame consumed before
  /// the coordinator declares the run wedged, SIGKILLs everything and
  /// returns with timed_out set (a hung CI job is worse than a failed
  /// one). Each idle round blocks ~1ms in poll.
  int64_t max_idle_polls = 20000;
};

/// Link- and fault-level counters of one sockets run. The serving-side
/// counters (updates, publishes, reads, samples) live in the shared
/// ThreadedRunResult.
struct SocketStats {
  /// Frames decoded at ingress, all types, counted before the loss shim.
  int64_t frames = 0;
  int64_t drops_injected = 0;
  int64_t delays_injected = 0;
  int64_t nacks_sent = 0;
  /// kUpdate frames discarded as already-consumed duplicates — the
  /// retransmission overlap a go-back-N rewind necessarily resends.
  int64_t duplicate_updates = 0;
  int64_t kills_delivered = 0;
  int64_t respawns = 0;
  /// Worst observed kill->first-resumed-update distance, in coordinator
  /// consumed updates. 0 when no kill recovered (or none scheduled).
  int64_t max_recovery_updates = 0;
  /// Every scheduled kill was followed by a resumed update within
  /// resync_deadline_updates. Vacuously true without kills; always false
  /// for kills on a raw link (dead sites stay dead).
  bool all_kills_recovered = true;
  /// Updates the generated world contains but the coordinator never
  /// consumed: raw-link loss plus killed sites' in-flight gaps.
  int64_t updates_lost = 0;
  int64_t generated_updates = 0;
  /// Tracking-guarantee check of every consumed step against the exact
  /// sum of the *generated* world prefix (per-site prefix sums; a gap
  /// consumed out of order on the raw link pulls the skipped updates into
  /// the world — the site generated them, the protocol never saw them).
  int64_t violation_steps = 0;
  int64_t checked_steps = 0;
  double max_rel_error = 0.0;
  /// Children that died without a scheduled kill (nonzero means a site
  /// crashed or hit a framing error — always a bug worth looking at).
  int64_t unexpected_exits = 0;
  /// Echo receipts the sites reported back in their kFin frames.
  int64_t echoes_acked = 0;
  int64_t poll_rounds = 0;
  bool timed_out = false;
  int children_reaped = 0;
};

struct SocketRunResult {
  /// Same shape the threads backend fills, so CheckLinearizable and the
  /// serving-layer reporting are transport-agnostic.
  ThreadedRunResult serving;
  SocketStats stats;
};

/// Runs `protocol` on the sockets transport backend: shards[i] streams
/// from a forked child process over a Unix-domain socketpair (or loopback
/// TCP) in the versioned wire framing, a nonblocking poll event loop on
/// the coordinator reassembles frames and feeds the confined protocol
/// exactly as the sim drive loop would, and every post-update estimate is
/// published through the same seqlock serving layer as the threads
/// backend. Returns once every site has FIN/FinAck'd (or died per the
/// fault plan) and every child is reaped — no zombies, no open fds.
///
/// The protocol object is only ever touched by the calling thread;
/// processes own streaming, not protocol state.
SocketRunResult RunSockets(sim::Protocol* protocol,
                           std::span<const std::vector<double>> shards,
                           const SocketRunOptions& options);

}  // namespace nmc::runtime
