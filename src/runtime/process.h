#pragma once

#include <cstdint>
#include <span>

#include <sys/types.h>

namespace nmc::runtime {

/// Transport-level frame vocabulary of the sockets backend, carried in
/// sim::Message::type. Distinct from any protocol's own message enum: these
/// frames move *stream updates and link control* between processes; the
/// tracking protocol itself runs confined inside the coordinator, exactly
/// as on the threads backend.
///
/// Field usage per type (unused fields are zero):
///   kHello   u = site_id                      (TCP only: maps a connection)
///   kUpdate  a = value, u = per-site sequence number (0-based)
///   kFin     u = shard length, v = echoes the child had received
///   kFinAck  (none) — coordinator release; the child exits on receipt
///   kNack    u = first sequence number to resend (go-back-N rewind)
///   kEcho    a = estimate, u = generation     (advisory, may be dropped)
enum class FrameType : int {
  kHello = 1,
  kUpdate = 2,
  kFin = 3,
  kFinAck = 4,
  kNack = 5,
  kEcho = 6,
};

/// One forked site incarnation as the coordinator sees it.
struct SiteProcess {
  pid_t pid = -1;
  /// Parent's end of the stream socket, nonblocking. -1 after teardown.
  int fd = -1;
  int site_id = 0;
  /// First sequence number this incarnation sends (respawns resume where
  /// the coordinator's consumption cursor stood).
  int64_t resume_seq = 0;
};

struct SiteSpawnOptions {
  int site_id = 0;
  /// The site's full shard; the child streams shard[resume_seq..) tagging
  /// each update with its absolute sequence number.
  std::span<const double> shard;
  int64_t resume_seq = 0;
  /// Connect over TCP to 127.0.0.1:tcp_port and introduce itself with a
  /// kHello frame, instead of inheriting one end of a Unix socketpair.
  bool use_tcp = false;
  uint16_t tcp_port = 0;
};

/// Forks one site child. The child never returns: it streams its shard as
/// kUpdate frames, honors kNack rewinds (go-back-N), announces completion
/// with kFin, and _exit()s once the coordinator acknowledges with kFinAck
/// (or the socket reports EOF/error — an orphaned child must die, not
/// linger). The post-fork child path allocates nothing on the heap: the
/// parent may already be running reader threads when a replacement site is
/// forked, and a child touching malloc could inherit a locked allocator.
/// Returns the parent-side endpoint (nonblocking fd). Aborts via NMC_CHECK
/// on syscall failure — a transport that cannot even fork has no graceful
/// degradation story.
SiteProcess SpawnSiteProcess(const SiteSpawnOptions& options);

/// Parent-side teardown of one incarnation: closes the fd (if still open),
/// SIGKILLs the child when `kill_first` (idempotent — already-dead children
/// are fine), and reaps the pid with waitpid so no zombie outlives the
/// run. Returns the child's raw wait status (0 when there was nothing to
/// reap).
int ReapSiteProcess(SiteProcess* site, bool kill_first);

/// O_NONBLOCK on an fd; returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// Shrinks SO_SNDBUF/SO_RCVBUF so only a few hundred frames fit in flight
/// per direction. Applied to every data socket (both socketpair ends, TCP
/// connections): a fast child must not outrun the coordinator by a whole
/// shard, or crash injection degenerates (the kill lands after the data
/// already left the site) and resync distances stop meaning anything.
void BoundSocketBuffers(int fd);

/// Creates a localhost TCP listener on an ephemeral port (nonblocking,
/// SO_REUSEADDR). Returns the listening fd and writes the bound port.
int OpenTcpListener(uint16_t* port);

}  // namespace nmc::runtime
