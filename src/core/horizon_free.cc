#include "core/horizon_free.h"

#include "common/check.h"

namespace nmc::core {

HorizonFreeCounter::HorizonFreeCounter(int num_sites,
                                       const HorizonFreeOptions& options)
    : num_sites_(num_sites),
      options_(options),
      horizon_(options.initial_horizon),
      epoch_seed_(options.counter.seed) {
  NMC_CHECK_GE(options.initial_horizon, 2);
  NMC_CHECK_GE(options.growth_factor, 2);
  NMC_CHECK(options.counter.drift_mode == DriftMode::kZeroDrift);
  CounterOptions epoch = options_.counter;
  epoch.horizon_n = horizon_;
  epoch.seed = epoch_seed_++;
  counter_ = std::make_unique<NonMonotonicCounter>(num_sites_, epoch);
}

void HorizonFreeCounter::ProcessUpdate(int site_id, double value) {
  if (processed_ >= horizon_) Restart();
  counter_->ProcessUpdate(site_id, value);
  ++processed_;
}

void HorizonFreeCounter::Restart() {
  counter_->ForceSync();
  CounterOptions epoch = options_.counter;
  epoch.initial_updates = counter_->SyncedUpdates();
  epoch.initial_sum = counter_->Estimate();  // exact after ForceSync
  epoch.initial_sum_sq = counter_->SyncedSumSquares();
  NMC_CHECK_EQ(epoch.initial_updates, processed_);
  retired_stats_ += counter_->stats();
  horizon_ *= options_.growth_factor;
  epoch.horizon_n = horizon_;
  epoch.seed = epoch_seed_++;
  // nmc-lint: allow(NO_HEAP_IN_HOT_PATH) one allocation per epoch restart; the horizon grows geometrically, so this runs O(log n) times per trial, not per update
  counter_ = std::make_unique<NonMonotonicCounter>(num_sites_, epoch);
  ++epochs_;
}

double HorizonFreeCounter::Estimate() const { return counter_->Estimate(); }

const sim::MessageStats& HorizonFreeCounter::stats() const {
  combined_stats_ = retired_stats_;
  combined_stats_ += counter_->stats();
  return combined_stats_;
}

}  // namespace nmc::core
