#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/geometric_skip.h"
#include "core/gp_search.h"
#include "hyz/hyz_counter.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "sim/protocol.h"

namespace nmc::core {

/// Whether the counter may assume anything about the drift mu = E[X].
enum class DriftMode {
  /// Phase 1 only: the Section 3.1/3.3/3.4 algorithm (zero-drift i.i.d.,
  /// random permutation, fBm inputs — none of which let the algorithm
  /// exploit a drift).
  kZeroDrift,
  /// The full Section 3.2 algorithm for i.i.d. ±1 updates with unknown
  /// drift: conservative sampling guard + GPSearch in the background +
  /// switch to two HYZ monotonic counters once the drift resolves.
  /// Requires every update to be exactly +1 or -1.
  kUnknownUnitDrift,
};

/// Ablation control for the two Phase-1 communication stages.
enum class StagePolicy {
  /// Default: switch to SBC exactly when it is the cheaper pattern, i.e.
  /// (3k+1) * sampling_rate(S_hat) <= 2. Up to the log factor this is the
  /// paper's (eps*|S_hat|)^2 >= k rule, but it avoids the band where SBC
  /// would sample at rate ~1 and pay Theta(k) per update.
  kAuto,
  /// The paper's literal Õ-level boundary (eps*|S_hat|)^delta >= k (E12
  /// ablation).
  kPaperBoundary,
  /// Never switch to StraightSync (shows why the switch matters: near zero
  /// every update triggers a Theta(k) sync).
  kSbcOnly,
  /// Never use SBC (the trivial 2-messages-per-update protocol).
  kStraightOnly,
};

/// Parameters of the Non-monotonic Counter. Defaults are tuned so that
/// empirical violation rates stay well below 1/n (the paper's constants,
/// noted per field, are proof-friendly upper bounds).
struct CounterOptions {
  /// Relative tracking accuracy epsilon > 0.
  double epsilon = 0.1;

  /// Stream horizon n. The sampling laws' log(n) factors need it; the
  /// standard doubling trick would remove the requirement at a constant
  /// factor, which we keep out of scope for fidelity to eq. (1)/(2).
  int64_t horizon_n = 1;

  /// Eq. (1) constants: rate = min{alpha log^beta(n) / (eps s)^2, 1}.
  /// beta = 2 is structural, not slack: the chance a sync interval ends in
  /// error is E[e^{-p T}] ~ e^{-eps|s| sqrt(2p)} (Laplace transform of the
  /// first passage out of the eps-ball), so p (eps s)^2 = alpha log^2 n
  /// drives it to n^{-sqrt(2 alpha)}. alpha = 2 gives ~n^{-2} per sync
  /// (the paper's alpha > 9/2 targets a larger safety margin); the E12
  /// ablation measures what happens for beta in {0, 1, 2}.
  double alpha = 2.0;
  double beta = 2.0;

  /// If > 0, use the fBm law eq. (2) with this exponent delta (1 < delta
  /// <= 2, valid for Hurst H <= 1/delta) instead of eq. (1).
  double fbm_delta = 0.0;
  /// Eq. (2) constant alpha_delta (paper: c(2(c+1))^{delta/2}, c > 3/2).
  double fbm_alpha = 2.0;

  DriftMode drift_mode = DriftMode::kZeroDrift;

  /// Conservative max(., c log n/(eps t)) term in the Phase-1 sampling
  /// rate (Section 3.2). It is what keeps the counter correct when the
  /// input drifts — including biased multisets in the permutation model,
  /// whose Theorem 3.4 cost carries the matching +log^3 n term — at a
  /// total cost of only O(k log^2(n)/eps). Disable only for the E12
  /// ablation or for inputs known to be driftless.
  bool enable_drift_guard = true;
  /// Guard rate = c log(n)/(eps t): a drift-dominated escape takes ~eps*t
  /// steps, so the per-window failure is ~n^{-c}; c = 2 matches the 1/n^2
  /// per-event budget of the walk law above.
  double drift_guard_c = 2.0;

  /// Allows disabling the Phase-2 switch while keeping GPSearch running
  /// (E12 ablation).
  bool enable_phase2 = true;

  /// GPSearch target accuracy for mu_hat.
  double gp_epsilon0 = 0.25;

  /// Phase-2 HYZ counters run at eps_h = max(phase2_eps_fraction * eps *
  /// |mu_hat|, 1e-5): the error budget eps_h * t must fit in eps * |S_t|
  /// ~= eps * |mu| * t.
  double phase2_eps_fraction = 0.25;
  /// Phase-2 HYZ failure probability (paper: Theta(1/n^2)).
  double phase2_delta_scale = 1.0;
  /// If true (default), Phase 2 picks the cheaper HYZ variant per round
  /// cost — deterministic thresholds (~2k/eps_h) while k = O(log(1/delta)),
  /// sampled (~(sqrt(kL)+L)/eps_h) beyond — the crossover the E11 bench
  /// measures. False always uses the sampled variant of [12].
  bool phase2_auto_hyz_mode = true;

  StagePolicy stage_policy = StagePolicy::kAuto;
  /// Multiplier on the SBC side of the kAuto cost comparison: values > 1
  /// bias toward StraightSync, < 1 toward SBC. Ablation knob; 1 = neutral.
  double stage_boundary_factor = 1.0;

  /// Extension (see README "findings"): rescale the diffusive sampling
  /// term by the observed mean square of the updates. Eq. (1) is
  /// calibrated for ±1 steps; steps of variance m2 need 1/m2 times longer
  /// to escape the eps-ball, so for small-valued streams the unscaled law
  /// oversamples all the way to Theta(n). No effect on ±1 streams.
  bool variance_adaptive = false;

  /// How the per-update Bernoulli trials are realized. kGeometricSkip
  /// (default) draws geometric inter-report gaps at a dominating rate and
  /// thins candidates, so silent runs are consumed in O(1) coin draws —
  /// the sampled trajectory has exactly the per-coin distribution, but a
  /// different RNG consumption pattern. kLegacyCoins flips one Bernoulli
  /// coin per update in stream order and is bit-identical to the
  /// pre-skip-sampler implementation (golden transcripts, seed-pinned
  /// regression tests).
  common::SamplerMode sampler = common::SamplerMode::kGeometricSkip;

  /// Carried state for restarts (used by HorizonFreeCounter): the counter
  /// behaves as if `initial_updates` updates summing to `initial_sum`
  /// (with sum of squares `initial_sum_sq`) had already been processed and
  /// synchronized.
  int64_t initial_updates = 0;
  double initial_sum = 0.0;
  double initial_sum_sq = 0.0;

  /// Fault model of the Phase-1 star network (and, forked, of the Phase-2
  /// HYZ pair). The default kPerfect installs nothing and is bit-identical
  /// to the historical reliable network. Under a faulty channel the counter
  /// processes updates one at a time in simulated-tick time (fast-forward
  /// assumes silent prefixes stay silent, which delayed delivery breaks),
  /// tolerates dropped / delayed / duplicated messages without aborting,
  /// and recovers exactness via Resync().
  sim::ChannelConfig channel;

  uint64_t seed = 1;
};

/// Diagnostics exposed for benches and tests.
struct CounterDiagnostics {
  bool phase2_active = false;
  double mu_hat = 0.0;
  int64_t phase2_switch_time = 0;
  int64_t sbc_syncs = 0;
  int64_t straight_reports = 0;
  int64_t stage_switches = 0;
  bool in_sbc_stage = false;
  /// Resync() rounds initiated (fault recovery; 0 on perfect channels).
  int64_t resyncs = 0;
};

/// The Non-monotonic Counter of Liu, Radunovic and Vojnovic (PODS 2012):
/// continuous tracking of a non-monotonic sum over k distributed sites
/// within relative accuracy epsilon, at expected communication cost
/// Õ(min{ sqrt(k)/(eps|mu|), sqrt(kn)/eps, n }) under i.i.d., randomly
/// permuted, or fractional-Brownian inputs.
///
/// Phase 1 alternates two communication patterns driven by the global
/// estimate S_hat that the coordinator broadcasts at every sync:
///   * SBC (sampling & broadcasting) when (eps S_hat)^2 >= k: on each
///     update the receiving site flips a coin with the eq. (1)/(2) rate;
///     heads trigger a full sync (signal + collect broadcast + k reports +
///     result broadcast = 3k + 1 messages).
///   * StraightSync when (eps S_hat)^2 < k: every update is forwarded and
///     acknowledged (2 messages), so the coordinator is exact while the
///     count sits in the error-sensitive region near zero.
/// With k = 1 the protocol reduces to the paper's single-site form: the
/// site samples against its own exact count and each head costs a single
/// message.
///
/// In kUnknownUnitDrift mode, GPSearch watches the synced counts; once the
/// drift resolves to mu_hat the coordinator snapshots the exact positive /
/// negative update counts and Phase 2 serves the difference of two HYZ
/// monotonic counters with accuracy Theta(eps |mu_hat|).
class NonMonotonicCounter : public sim::Protocol {
 public:
  NonMonotonicCounter(int num_sites, const CounterOptions& options);
  ~NonMonotonicCounter() override;

  int num_sites() const override;

  /// Feeds one update (value in [-1, 1]; exactly ±1 in drift mode).
  void ProcessUpdate(int site_id, double value) override;

  /// Feeds a same-site run: consumes a non-empty prefix of `values` —
  /// stopping right after the first update that triggers communication —
  /// and returns the count consumed (see the Protocol::ProcessBatch
  /// contract). With the kGeometricSkip sampler the silent prefix of a
  /// run costs O(1) RNG draws and rate evaluations instead of one per
  /// update.
  int64_t ProcessBatch(int site_id, std::span<const double> values) override;

  double Estimate() const override;

  const sim::MessageStats& stats() const override;

  /// Fault recovery (see Protocol::Resync): starts a fresh epoch-tagged
  /// collect round (single message in the single-site form; the HYZ pair
  /// is resynced in Phase 2), abandoning any round stuck on lost replies.
  /// If the resync traffic is delivered intact, Estimate() is exact
  /// afterwards.
  bool Resync() override;

  CounterDiagnostics diagnostics() const;

  /// Forces the coordinator's state to be exact: a no-op in StraightSync
  /// (it already is), one message in the single-site form, one full sync
  /// (3k+1 messages) in SBC. Phase 1 only. Used by HorizonFreeCounter to
  /// snapshot state across horizon restarts.
  void ForceSync();

  /// The number of updates the coordinator knows of (exact immediately
  /// after ForceSync; Estimate() is then the exact sum).
  int64_t SyncedUpdates() const;

  /// The coordinator's view of the sum of squared updates (exact after
  /// ForceSync); carried across restarts for variance_adaptive mode.
  double SyncedSumSquares() const;

  /// Taps the Phase-1 network (see sim::Network::SetObserver) — tracing
  /// and golden-transcript tests. Phase-2 HYZ traffic is not observed.
  void SetMessageObserver(
      std::function<void(const sim::Network::SentMessage&)> observer) {
    network_.SetObserver(std::move(observer));
  }

 private:
  class Site;
  class Coordinator;

  void ActivatePhase2();

  CounterOptions options_;
  sim::Network network_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Site>> sites_;

  // Phase 2: monotonic counters over positive / negative updates.
  std::unique_ptr<hyz::HyzProtocol> positive_counter_;
  std::unique_ptr<hyz::HyzProtocol> negative_counter_;
  int64_t phase2_switch_time_ = 0;

  mutable sim::MessageStats combined_stats_;
};

}  // namespace nmc::core

