#pragma once

#include <cstdint>
#include <memory>

#include "core/nonmonotonic_counter.h"
#include "sim/protocol.h"

namespace nmc::core {

/// Options of the horizon-free wrapper.
struct HorizonFreeOptions {
  /// Per-epoch counter configuration; horizon_n, initial_* and seed are
  /// managed by the wrapper. Phase 2 needs the horizon in its failure
  /// budget, so only DriftMode::kZeroDrift is supported (the guard keeps
  /// drifting inputs correct regardless; see the E12 ablation).
  CounterOptions counter;
  /// Horizon assumed for the first epoch.
  int64_t initial_horizon = 4096;
  /// Horizon multiplier at each restart. 4 keeps the number of restarts at
  /// ~log4(n) while the log(horizon) in the sampling law changes little.
  int64_t growth_factor = 4;
};

/// Removes the known-horizon assumption of eq. (1)/(2) with the standard
/// doubling trick: run the counter with a guessed horizon; when the stream
/// outlives it, force one sync (<= 3k+1 messages), snapshot the exact
/// state, and restart with a `growth_factor` larger horizon and the
/// snapshot carried as initial state. Each epoch's guarantee holds with
/// probability 1 - O(1/epoch_horizon), the epochs are geometric, and the
/// total cost is a constant factor above the known-horizon counter — the
/// paper assumes n is known and this wrapper discharges that assumption.
class HorizonFreeCounter : public sim::Protocol {
 public:
  HorizonFreeCounter(int num_sites, const HorizonFreeOptions& options);

  int num_sites() const override { return num_sites_; }
  void ProcessUpdate(int site_id, double value) override;
  double Estimate() const override;
  const sim::MessageStats& stats() const override;

  /// Number of restarts performed so far.
  int64_t epochs() const { return epochs_; }
  /// The horizon the current epoch assumes.
  int64_t current_horizon() const { return horizon_; }

 private:
  void Restart();

  int num_sites_;
  HorizonFreeOptions options_;
  int64_t horizon_;
  int64_t processed_ = 0;
  int64_t epochs_ = 0;
  uint64_t epoch_seed_;
  std::unique_ptr<NonMonotonicCounter> counter_;
  sim::MessageStats retired_stats_;
  mutable sim::MessageStats combined_stats_;
};

}  // namespace nmc::core

