#include "core/nonmonotonic_counter.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/batch_ops.h"
#include "common/check.h"
#include "common/geometric_skip.h"
#include "common/rng.h"
#include "core/sampling.h"

namespace nmc::core {

namespace {

enum MessageType {
  kSyncRequest = 1,    // site -> coord: SBC coin came up heads
  kCollect = 2,        // coord -> all: request local totals
  kCollectReply = 3,   // site -> coord: u = #updates, a = sum, b = sum sq
  kState = 4,          // coord -> site(s): a = S_hat, u = t_hat, v = stage,
                       //                   b = variance rate scale
  kStraightReport = 5, // site -> coord: u = #updates, a = sum, b = sum sq
  kExactReport = 6,    // site -> coord (k == 1 fast path): same payload
  kPhase2 = 7,         // coord -> all: switch to the HYZ pair
};

constexpr int64_t kStageStraight = 0;
constexpr int64_t kStageSbc = 1;

/// Fraction of |s| a single-site fast-forward chunk may span: the
/// dominating rate is evaluated at |s| * (1 - 1/kChunkDivisor), so the
/// acceptance probability of a thinned candidate stays >=
/// ((kChunkDivisor-1)/kChunkDivisor)^2 ~ 0.77 while a chunk restart is
/// amortized over |s|/kChunkDivisor updates.
constexpr double kChunkDivisor = 8.0;

// Rate scale from the mean square of the updates seen so far. The eq. (1)
// first-passage calibration assumes ±1 steps; steps of variance m2 take
// 1/m2 times longer to cover the same distance, so the rate may be scaled
// down by m2 (kept conservative with a 2x margin, and never scaled up).
double VarianceScale(const CounterOptions& options, double sum_sq,
                     int64_t updates) {
  if (!options.variance_adaptive || updates <= 0) return 1.0;
  const double mean_sq = sum_sq / static_cast<double>(updates);
  return std::clamp(2.0 * mean_sq, 1e-9, 1.0);
}

// The Phase-1 sampling rate a site evaluates against the shared estimate.
// `scale` (in (0, 1], from VarianceScale) rescales the diffusive term; the
// drift guard is time-based and therefore scale-free. `cache` memoizes the
// walk/fBm term for call sites whose estimate is frozen between broadcasts
// (bit-identical to recomputation).
double Phase1Rate(const CounterOptions& options, double estimate,
                  int64_t t_estimate, double scale,
                  RateCache* cache = nullptr) {
  // Folding the scale into epsilon keeps the min{., 1} clamps intact:
  // scale * alpha log^b / (eps s)^2 == alpha log^b / (eps' s)^2 with
  // eps' = eps / sqrt(scale) (delta-th root in fBm mode). scale == 1.0
  // (every non-variance-adaptive run) short-circuits the pow/sqrt, which
  // is exact: x / sqrt(1.0) == x / pow(1.0, y) == x.
  double rate;
  if (options.fbm_delta > 0.0) {
    const double eps_eff =
        scale == 1.0
            ? options.epsilon
            // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) runs only in variance-adaptive runs (scale != 1.0) when the scale actually changed; the resulting rate is memoized in the RateCache
            : options.epsilon / std::pow(scale, 1.0 / options.fbm_delta);
    const auto compute = [&] {
      return FbmRate(estimate, eps_eff, options.horizon_n, options.fbm_delta,
                     options.fbm_alpha);
    };
    rate = cache != nullptr ? cache->Get(estimate, eps_eff, compute)
                            : compute();
  } else {
    const double eps_eff =
        scale == 1.0 ? options.epsilon : options.epsilon / std::sqrt(scale);
    const auto compute = [&] {
      return RandomWalkRate(estimate, eps_eff, options.horizon_n,
                            options.alpha, options.beta);
    };
    rate = cache != nullptr ? cache->Get(estimate, eps_eff, compute)
                            : compute();
  }
  if (options.enable_drift_guard) {
    rate = std::max(rate, DriftGuardRate(t_estimate, options.epsilon,
                                         options.horizon_n,
                                         options.drift_guard_c));
  }
  return rate;
}

}  // namespace

/// Site-side state machine of Phase 1.
class NonMonotonicCounter::Site : public sim::SiteNode {
 public:
  Site(int site_id, int num_sites, const CounterOptions& options,
       sim::Network* network, common::Rng rng)
      : site_id_(site_id),
        num_sites_(num_sites),
        options_(options),
        network_(network),
        rng_(rng),
        skip_(options.sampler) {
    if (options_.sampler == common::SamplerMode::kGeometricSkip) {
      // Bulk gap feed for skip-mode draws. Seeding consumes one u64 from
      // rng_, which is fine: skip-mode transcripts are already allowed to
      // differ from legacy per-seed, and legacy mode never reaches this
      // branch, so its bit-exact replay promise is untouched.
      batch_rng_ = common::BatchRng(rng_.NextU64());
      skip_.AttachBatchRng(&batch_rng_);
    }
    if (num_sites_ == 1) {
      // The single site holds the entire history, including any carried
      // state from a previous horizon epoch.
      local_updates_ = options_.initial_updates;
      local_sum_ = options_.initial_sum;
      local_sum_sq_ = options_.initial_sum_sq;
    }
  }

  void OnLocalUpdate(double value) override {
    ConsumeRun(std::span<const double>(&value, 1));
  }

  /// Consumes a prefix of `values` (>= 1 update), stopping immediately
  /// after the first update that emits a message; returns the count
  /// consumed. ProcessUpdate is the count == 1 special case, so batched
  /// and per-update pumping share one state machine and are bit-identical
  /// for every slicing of the stream into runs.
  int64_t ConsumeRun(std::span<const double> values) {
    NMC_CHECK(!phase2_);  // Phase-2 updates are routed to the HYZ pair
    NMC_CHECK(!values.empty());

    if (num_sites_ == 1) return ConsumeSingleSite(values);

    if (!in_sbc_stage_) {
      // StraightSync: every update is forwarded, so runs cannot be
      // fast-forwarded — each update is a message event.
      Absorb(values[0]);
      SendSnapshot(kStraightReport);
      return 1;
    }
    return ConsumeSbc(values);
  }

  void OnCoordinatorMessage(const sim::Message& message) override {
    switch (message.type) {
      case kCollect:
        // The epoch rides in u; the reply echoes it so the coordinator can
        // discard replies to abandoned rounds under faulty channels.
        collect_epoch_ = message.u;
        SendSnapshot(kCollectReply);
        break;
      case kState:
        global_estimate_ = message.a;
        global_time_ = message.u;
        in_sbc_stage_ = (message.v == kStageSbc);
        rate_scale_ = message.b;
        updates_since_state_ = 0;
        // The broadcast moved the rate inputs: any cached inter-report
        // gap was drawn at a dominating rate that no longer applies.
        skip_.Invalidate();
        break;
      case kPhase2:
        phase2_ = true;
        skip_.Invalidate();
        break;
      default:
        NMC_CHECK(false);
    }
  }

  /// Emits one message carrying this site's exact totals (used by the
  /// protocol's ForceSync as well as the regular flows above). Collect
  /// replies also echo the round epoch in v.
  void SendSnapshot(int type) {
    sim::Message m;
    m.type = type;
    m.u = local_updates_;
    m.a = local_sum_;
    m.b = local_sum_sq_;
    if (type == kCollectReply) m.v = collect_epoch_;
    network_->SendToCoordinator(site_id_, m);
  }

  /// Emits a sync request (ForceSync in the SBC stage).
  void SendSyncRequest() {
    sim::Message m;
    m.type = kSyncRequest;
    network_->SendToCoordinator(site_id_, m);
  }

 private:
  /// Applies one update to the local totals (the per-update bookkeeping
  /// every path shares, coins or not).
  void Absorb(double value) {
    // The discrete models assume bounded updates in [-1, 1]; fBm mode
    // feeds Gaussian (unbounded) increments, per Section 3.4.
    if (options_.fbm_delta == 0.0) NMC_CHECK_LE(std::fabs(value), 1.0);
    if (options_.drift_mode == DriftMode::kUnknownUnitDrift) {
      NMC_CHECK_EQ(std::fabs(value), 1.0);
    }
    ++local_updates_;
    local_sum_ += value;
    local_sum_sq_ += value * value;
    ++updates_since_state_;
    // A scalar update may be fractional or push the totals toward the
    // exact-integer limit: drop the banked small-totals certificate and
    // let the next bulk run revalidate (one store; no branch).
    small_budget_ = 0;
  }

  /// True when x is an integer far enough below 2^51 that `margin` more
  /// unit steps keep every intermediate exactly representable — the gate
  /// that makes the bulk path below bit-identical to the scalar loop.
  static bool SmallInteger(double x, double margin) {
    return x == std::floor(x) && std::fabs(x) + margin < 0x1.0p51;
  }

  /// Validation margin banked by a successful small-totals test: one test
  /// certifies the next ~2^20 unit updates (any scalar Absorb voids the
  /// bank), so consecutive bulk runs pay one integer compare instead of
  /// two floor tests each. Small against 2^51, so banking it never
  /// excludes a run the per-call test would have admitted in practice.
  static constexpr double kSmallBudgetMargin = 0x1.0p20;

  /// True when both totals are integers far enough below 2^51 that `n`
  /// more unit steps stay exactly representable. Prefers the banked
  /// certificate; a revalidation banks the larger margin when it passes.
  /// Conservative only: a false here merely routes the run to the scalar
  /// loop, which is bit-identical to the bulk path whenever both apply.
  bool SmallTotalsFor(int64_t n) {
    if (small_budget_ >= n) return true;
    const double margin = std::max(static_cast<double>(n), kSmallBudgetMargin);
    if (SmallInteger(local_sum_, margin) &&
        SmallInteger(local_sum_sq_, margin)) {
      small_budget_ = static_cast<int64_t>(margin);
      return true;
    }
    return false;
  }

  void AbsorbRun(std::span<const double> values) {
    // Bulk path for ±1 runs: with integer totals in the exact range,
    // grouped additions of ±1 are bit-identical to the per-update loop
    // (every intermediate is an exactly-representable integer), so
    // batch-size invariance survives. The tally also subsumes Absorb's
    // per-update range checks — all-unit implies |v| == 1. Non-unit or
    // non-integer-total runs (fBm, fractional streams) fall through.
    const int64_t n = static_cast<int64_t>(values.size());
    if (n >= 4 && SmallTotalsFor(n)) {
      const common::SignTally tally = common::TallySigns(values);
      if (tally.all_unit) {
        small_budget_ -= n;
        local_updates_ += n;
        local_sum_ += static_cast<double>(tally.plus - tally.minus);
        local_sum_sq_ += static_cast<double>(n);
        updates_since_state_ += n;
        return;
      }
    }
    for (const double value : values) Absorb(value);
  }

  /// Single-site form (Theorem 3.1): the site samples against its own
  /// exact count; a head costs one message and needs no reply.
  int64_t ConsumeSingleSite(std::span<const double> values) {
    // The fast-forward chunk bound (fast_forward_) needs |local_sum_| to
    // move by at most 1 per update and the rate law to be monotone in |s|
    // at fixed epsilon — which rules out unbounded fBm increments and the
    // per-update rescaling of variance_adaptive. Those run on the
    // per-coin reference path (in legacy mode everything does).
    if (!fast_forward_) {
      int64_t consumed = 0;
      const int64_t count = static_cast<int64_t>(values.size());
      while (consumed < count) {
        Absorb(values[static_cast<size_t>(consumed)]);
        ++consumed;
        const double scale =
            VarianceScale(options_, local_sum_sq_, local_updates_);
        const double rate =
            options_.stage_policy == StagePolicy::kStraightOnly
                ? 1.0
                : Phase1Rate(options_, local_sum_, local_updates_, scale);
        if (rng_.Bernoulli(rate)) {
          SendSnapshot(kExactReport);
          break;
        }
      }
      return consumed;
    }

    // Fast-forward: thinned geometric skips over a chunk of updates whose
    // rate is dominated by chunk_dom_ (the rate at the smallest |s| and
    // earliest t the chunk can reach). Candidates fire at the dominating
    // rate and are accepted with probability rate/chunk_dom_, which makes
    // every update an exact Bernoulli(rate) trial; discarding a partially
    // consumed gap at a chunk boundary is exact by memorylessness.
    int64_t consumed = 0;
    const int64_t count = static_cast<int64_t>(values.size());
    // Whole-span fast path: a cached gap that covers the span inside the
    // live chunk absorbs it in one shot. Exactly the loop below with
    // m == count — EnsureGap is a no-op on a valid gap and the candidate
    // branch is unreachable — minus the min/branch bookkeeping, which is
    // most of the per-call cost at small pump batch sizes.
    if (chunk_left_ >= count && skip_.valid() && skip_.gap() >= count) {
      AbsorbRun(values);
      chunk_left_ -= count;
      skip_.Advance(count);
      return count;
    }
    while (consumed < count) {
      if (chunk_left_ <= 0) RestartSingleSiteChunk();
      skip_.EnsureGap(&rng_, chunk_dom_);
      const int64_t m =
          std::min({skip_.gap(), chunk_left_, count - consumed});
      if (m > 0) {
        AbsorbRun(values.subspan(static_cast<size_t>(consumed),
                                 static_cast<size_t>(m)));
        consumed += m;
        chunk_left_ -= m;
        skip_.Advance(m);
      }
      if (consumed == count) break;
      if (chunk_left_ == 0) continue;  // domination span expired: rechunk
      // gap == 0 within the chunk: the next update is a candidate.
      Absorb(values[static_cast<size_t>(consumed)]);
      ++consumed;
      --chunk_left_;
      skip_.TakeCandidate();
      const double rate =
          options_.stage_policy == StagePolicy::kStraightOnly
              ? 1.0
              : Phase1Rate(options_, local_sum_, local_updates_,
                           /*scale=*/1.0);
      // The chunk stays valid across reports: its domination argument
      // bounds |s| and t over the next chunk_left_ updates and does not
      // involve the report history, so only the gap is redrawn.
      const bool accept =
          rate >= chunk_dom_ || rng_.UniformDouble() * chunk_dom_ < rate;
      if (accept) {
        SendSnapshot(kExactReport);
        break;
      }
    }
    return consumed;
  }

  void RestartSingleSiteChunk() {
    skip_.Invalidate();
    if (options_.stage_policy == StagePolicy::kStraightOnly) {
      chunk_dom_ = 1.0;  // rate is the constant 1: every update reports
      chunk_left_ = common::GeometricSkip::kInfiniteGap;
      return;
    }
    const double abs_s = std::fabs(local_sum_);
    int64_t span = static_cast<int64_t>(abs_s / kChunkDivisor);
    if (span < 1) span = 1;
    const double s_min = std::max(abs_s - static_cast<double>(span), 0.0);
    // Updates are bounded by 1, so |s| >= s_min throughout the span and
    // t >= local_updates_ + 1 at the first update: both the walk law
    // (decreasing in |s|) and the drift guard (decreasing in t) are
    // dominated by the rate at (s_min, t + 1).
    chunk_dom_ =
        Phase1Rate(options_, s_min, local_updates_ + 1, /*scale=*/1.0);
    chunk_left_ = span;
  }

  /// SBC: sample against the last broadcast estimate. The global time
  /// estimate (for the drift guard) is the broadcast time plus the
  /// updates this site has seen since — an underestimate of the true t,
  /// which errs toward sampling more, never less.
  int64_t ConsumeSbc(std::span<const double> values) {
    const int64_t count = static_cast<int64_t>(values.size());
    if (skip_.mode() == common::SamplerMode::kLegacyCoins) {
      int64_t consumed = 0;
      while (consumed < count) {
        Absorb(values[static_cast<size_t>(consumed)]);
        ++consumed;
        const double rate =
            Phase1Rate(options_, global_estimate_,
                       global_time_ + updates_since_state_, rate_scale_,
                       &walk_cache_);
        if (rng_.Bernoulli(rate)) {
          SendSyncRequest();
          break;
        }
      }
      return consumed;
    }

    // Fast-forward: between broadcasts the walk/fBm term is frozen and
    // the drift guard only decays, so the rate at the next update
    // dominates every later one until the next kState invalidates the
    // gap. Candidates are thinned by rate/sbc_dom_ (identically 1 once
    // the frozen walk term dominates the guard).
    int64_t consumed = 0;
    while (consumed < count) {
      if (!skip_.valid()) {
        sbc_dom_ = Phase1Rate(options_, global_estimate_,
                              global_time_ + updates_since_state_ + 1,
                              rate_scale_, &walk_cache_);
        skip_.EnsureGap(&rng_, sbc_dom_);
      }
      const int64_t m = std::min(skip_.gap(), count - consumed);
      if (m > 0) {
        AbsorbRun(values.subspan(static_cast<size_t>(consumed),
                                 static_cast<size_t>(m)));
        consumed += m;
        skip_.Advance(m);
      }
      if (consumed == count) break;
      Absorb(values[static_cast<size_t>(consumed)]);
      ++consumed;
      skip_.TakeCandidate();
      const double rate =
          Phase1Rate(options_, global_estimate_,
                     global_time_ + updates_since_state_, rate_scale_,
                     &walk_cache_);
      const bool accept =
          rate >= sbc_dom_ || rng_.UniformDouble() * sbc_dom_ < rate;
      if (accept) {
        SendSyncRequest();
        break;
      }
    }
    return consumed;
  }

  int site_id_;
  int num_sites_;
  CounterOptions options_;
  sim::Network* network_;
  common::Rng rng_;
  common::GeometricSkip skip_;
  common::BatchRng batch_rng_{0};  // reseeded + attached in skip mode only
  // Hoisted ConsumeSingleSite gate — constant for the life of the site
  // (see the comment there for why these modes are excluded).
  const bool fast_forward_ =
      skip_.mode() == common::SamplerMode::kGeometricSkip &&
      options_.fbm_delta == 0.0 && !options_.variance_adaptive;
  RateCache walk_cache_;

  // Fast-forward state: the dominating rates the cached gap was drawn at.
  double chunk_dom_ = 0.0;    // single-site chunk (valid while chunk_left_ > 0)
  int64_t chunk_left_ = 0;    // updates left in the single-site chunk
  double sbc_dom_ = 0.0;      // SBC dominating rate (valid while gap cached)

  int64_t local_updates_ = 0;
  double local_sum_ = 0.0;
  double local_sum_sq_ = 0.0;
  int64_t small_budget_ = 0;  // banked small-totals margin (see SmallTotalsFor)
  int64_t updates_since_state_ = 0;
  double global_estimate_ = 0.0;
  int64_t global_time_ = 0;
  double rate_scale_ = 1.0;
  bool in_sbc_stage_ = false;
  bool phase2_ = false;
  int64_t collect_epoch_ = 0;
};

/// Coordinator-side state machine of Phase 1.
class NonMonotonicCounter::Coordinator : public sim::CoordinatorNode {
 public:
  Coordinator(int num_sites, const CounterOptions& options,
              sim::Network* network)
      : num_sites_(num_sites),
        options_(options),
        network_(network),
        known_updates_(static_cast<size_t>(num_sites), 0),
        known_sum_(static_cast<size_t>(num_sites), 0.0),
        known_sum_sq_(static_cast<size_t>(num_sites), 0.0),
        collect_replied_(static_cast<size_t>(num_sites), false),
        gp_(GpSearchOptions{options.gp_epsilon0, options.horizon_n,
                            /*observation_epsilon=*/0.0,
                            /*geometric_checkpoints=*/true}) {
    // Carried state from a previous horizon epoch (HorizonFreeCounter).
    // With k > 1 the sites restart their local totals at zero, so the
    // carried part lives only in these aggregates; with k = 1 the single
    // site carries it itself and reports absolute totals, so the per-site
    // "known" entry starts at the carried values to keep the deltas right.
    total_updates_ = options.initial_updates;
    total_sum_ = options.initial_sum;
    total_sum_sq_ = options.initial_sum_sq;
    if (num_sites == 1) {
      known_updates_[0] = options.initial_updates;
      known_sum_[0] = options.initial_sum;
      known_sum_sq_[0] = options.initial_sum_sq;
    }
  }

  void OnSiteMessage(int site_id, const sim::Message& message) override {
    switch (message.type) {
      case kSyncRequest:
        if (collecting_ || phase2_pending_) break;
        ++sbc_syncs_;
        StartCollect();
        break;
      case kCollectReply: {
        const size_t i = static_cast<size_t>(site_id);
        // A faulty channel can replay a reply (duplicate) or deliver one
        // from an abandoned round (delay across a resync). Totals are
        // absorbed whenever they are no older than what we know — per-site
        // totals are monotone in u, so this never regresses state — but
        // only a first reply to the current epoch advances the round.
        const bool current = collecting_ && message.v == collect_epoch_ &&
                             !collect_replied_[i];
        if (message.u >= known_updates_[i]) {
          UpdateKnown(site_id, message.u, message.a, message.b);
        }
        if (!current) break;
        collect_replied_[i] = true;
        NMC_CHECK_GT(pending_replies_, 0);
        if (--pending_replies_ == 0) {
          collecting_ = false;
          OnExactState(/*from_collect=*/true, /*reporter=*/-1);
        }
        break;
      }
      case kStraightReport:
        // Stale (delayed-past-newer) reports are dropped whole: absorbing
        // them is a no-op by the monotone rule and acknowledging them
        // would re-broadcast old state.
        if (message.u < known_updates_[static_cast<size_t>(site_id)]) break;
        UpdateKnown(site_id, message.u, message.a, message.b);
        ++straight_reports_;
        OnExactState(/*from_collect=*/false, site_id);
        break;
      case kExactReport:
        NMC_CHECK_EQ(num_sites_, 1);
        if (message.u < known_updates_[static_cast<size_t>(site_id)]) break;
        UpdateKnown(site_id, message.u, message.a, message.b);
        OnExactState(/*from_collect=*/false, /*reporter=*/-1);
        break;
      default:
        NMC_CHECK(false);
    }
  }

  /// Fault recovery: opens a fresh epoch-tagged collect round, superseding
  /// any round stuck on lost replies (their late replies are recognized by
  /// epoch and ignored). No-op once the Phase-2 handoff is pending — the
  /// HYZ pair owns recovery from there.
  void BeginResync() {
    if (phase2_pending_) return;
    ++resyncs_;
    StartCollect();
  }

  double Estimate() const { return total_sum_; }
  int64_t known_updates() const { return total_updates_; }
  double known_sum_sq() const { return total_sum_sq_; }
  bool phase2_pending() const { return phase2_pending_; }
  double mu_hat() const { return gp_.mu_hat(); }
  int64_t snapshot_updates() const { return snapshot_updates_; }
  double snapshot_sum() const { return snapshot_sum_; }
  int64_t sbc_syncs() const { return sbc_syncs_; }
  int64_t straight_reports() const { return straight_reports_; }
  int64_t stage_switches() const { return stage_switches_; }
  int64_t resyncs() const { return resyncs_; }
  bool in_sbc_stage() const { return in_sbc_stage_; }
  bool gp_resolved() const { return gp_.resolved(); }

 private:
  void StartCollect() {
    collecting_ = true;
    ++collect_epoch_;
    pending_replies_ = num_sites_;
    std::fill(collect_replied_.begin(), collect_replied_.end(), false);
    sim::Message m;
    m.type = kCollect;
    m.u = collect_epoch_;
    network_->Broadcast(m);
  }

  void UpdateKnown(int site_id, int64_t updates, double sum, double sum_sq) {
    const size_t i = static_cast<size_t>(site_id);
    total_updates_ += updates - known_updates_[i];
    total_sum_ += sum - known_sum_[i];
    total_sum_sq_ += sum_sq - known_sum_sq_[i];
    known_updates_[i] = updates;
    known_sum_[i] = sum;
    known_sum_sq_[i] = sum_sq;
  }

  /// Both ends of a collect and every straight report leave the
  /// coordinator with the exact (t, S): all per-site totals are current.
  void OnExactState(bool from_collect, int reporter) {
    if (options_.drift_mode == DriftMode::kUnknownUnitDrift) {
      gp_.Observe(total_updates_, total_sum_);
      if (options_.enable_phase2 && gp_.resolved() && !phase2_pending_) {
        phase2_pending_ = true;
        snapshot_updates_ = total_updates_;
        snapshot_sum_ = total_sum_;
        sim::Message m;
        m.type = kPhase2;
        network_->Broadcast(m);
        return;
      }
    }

    if (num_sites_ == 1) return;  // single-site form: no replies needed

    const bool want_sbc = WantSbcStage();
    const bool changed = want_sbc != in_sbc_stage_;
    if (changed) {
      in_sbc_stage_ = want_sbc;
      ++stage_switches_;
    }

    sim::Message state;
    state.type = kState;
    state.a = total_sum_;
    state.u = total_updates_;
    state.v = in_sbc_stage_ ? kStageSbc : kStageStraight;
    state.b = VarianceScale(options_, total_sum_sq_, total_updates_);
    if (from_collect || changed) {
      network_->Broadcast(state);
    } else {
      // StraightSync: acknowledge the reporting site with the fresh
      // global state (2 messages per update in total).
      NMC_CHECK_GE(reporter, 0);
      network_->SendToSite(reporter, state);
    }
  }

  bool WantSbcStage() {
    switch (options_.stage_policy) {
      case StagePolicy::kSbcOnly:
        return true;
      case StagePolicy::kStraightOnly:
        return false;
      case StagePolicy::kPaperBoundary: {
        // The paper's Õ-level rule (eps*|S_hat|)^2 >= k: correct
        // asymptotically but ignores the log factor, leaving a band where
        // SBC samples at rate ~1 and pays 3k+1 per update (the E12
        // ablation quantifies this).
        const double d = options_.fbm_delta > 0.0 ? options_.fbm_delta : 2.0;
        const double scaled = options_.epsilon * std::fabs(total_sum_);
        // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) stage decision runs once per sync round (OnExactState), not per update
        return std::pow(scaled, d) >= static_cast<double>(num_sites_);
      }
      case StagePolicy::kAuto:
        break;
    }
    // Bracket cache: under the walk law (fbm_delta == 0) with no variance
    // rescaling, the fresh computation below reduces to
    //   factor * (3k+1) * RandomWalkRate(|S|, eps, n, alpha, beta) <= 2
    // and RandomWalkRate is IEEE-monotone non-increasing in |S| — one
    // multiply, one square, one divide, one min, each correctly rounded
    // and monotone; the log^beta factor is a memoized run constant, so
    // no pow is evaluated per call (pow carries no monotonicity
    // guarantee, which is why the fBm law and the per-call epsilon
    // rescaling of variance_adaptive skip the cache). The decision is
    // therefore a threshold in |S|: remember the tightest true/false
    // bracket observed and only recompute strictly inside it. Every
    // answer equals what the full computation would return, so the
    // cache is observationally invisible. StraightSync regimes hit the
    // bracket every update, eliminating a CounterOptions copy and a
    // rate evaluation from the per-update message path.
    const bool bracketable = options_.fbm_delta == 0.0 &&
                             !options_.variance_adaptive &&
                             options_.stage_boundary_factor >= 0.0;
    const double abs_s = std::fabs(total_sum_);
    if (bracketable) {
      if (abs_s >= sbc_true_min_) return true;
      if (abs_s <= sbc_false_max_) return false;
    }
    // Cost-comparing form of the same rule: an SBC sync costs 3k+1
    // messages and fires at the eq. (1)/(2) rate, StraightSync costs 2 per
    // update; switch to SBC exactly when it is the cheaper pattern. Up to
    // the log factor this is the paper's (eps*|S_hat|)^2 >= k boundary.
    CounterOptions rate_options = options_;
    rate_options.enable_drift_guard = false;  // guard cost is stage-free
    const double scale =
        VarianceScale(options_, total_sum_sq_, total_updates_);
    const double rate =
        Phase1Rate(rate_options, total_sum_, total_updates_, scale);
    const double sync_cost = 3.0 * static_cast<double>(num_sites_) + 1.0;
    const bool want =
        options_.stage_boundary_factor * sync_cost * rate <= 2.0;
    if (bracketable) {
      if (want) {
        sbc_true_min_ = abs_s;
      } else {
        sbc_false_max_ = abs_s;
      }
    }
    return want;
  }

  int num_sites_;
  CounterOptions options_;
  sim::Network* network_;

  std::vector<int64_t> known_updates_;
  std::vector<double> known_sum_;
  std::vector<double> known_sum_sq_;
  int64_t total_updates_ = 0;
  double total_sum_ = 0.0;
  double total_sum_sq_ = 0.0;

  bool in_sbc_stage_ = false;
  // WantSbcStage bracket cache (kAuto + walk law only): the decision is
  // true for |S| >= sbc_true_min_ and false for |S| <= sbc_false_max_.
  double sbc_true_min_ = std::numeric_limits<double>::infinity();
  double sbc_false_max_ = -1.0;
  bool collecting_ = false;
  int pending_replies_ = 0;
  int64_t collect_epoch_ = 0;
  std::vector<bool> collect_replied_;
  int64_t resyncs_ = 0;

  GpSearch gp_;
  bool phase2_pending_ = false;
  int64_t snapshot_updates_ = 0;
  double snapshot_sum_ = 0.0;

  int64_t sbc_syncs_ = 0;
  int64_t straight_reports_ = 0;
  int64_t stage_switches_ = 0;
};

NonMonotonicCounter::NonMonotonicCounter(int num_sites,
                                         const CounterOptions& options)
    : options_(options), network_(num_sites) {
  NMC_CHECK_GT(options.epsilon, 0.0);
  NMC_CHECK_GE(options.horizon_n, 1);
  NMC_CHECK_GE(options.initial_updates, 0);
  network_.SetChannel(sim::MakeChannel(options.channel));
  common::Rng seeder(options.seed);
  coordinator_ = std::make_unique<Coordinator>(num_sites, options, &network_);
  network_.AttachCoordinator(coordinator_.get());
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites_.push_back(std::make_unique<Site>(s, num_sites, options, &network_,
                                            seeder.Fork()));
    network_.AttachSite(s, sites_.back().get());
  }
}

NonMonotonicCounter::~NonMonotonicCounter() = default;

int NonMonotonicCounter::num_sites() const { return network_.num_sites(); }

void NonMonotonicCounter::ProcessUpdate(int site_id, double value) {
  // Per-update fast path for the common Phase-1 / perfect-channel case:
  // skips the batch plumbing (phase-2 run scan, channel probe) that
  // ProcessBatch pays per call. StraightSync regimes, where every update
  // messages anyway, live on this path.
  if (positive_counter_ == nullptr && !network_.channeled()) {
    NMC_CHECK_GE(site_id, 0);
    NMC_CHECK_LT(site_id, num_sites());
    sites_[static_cast<size_t>(site_id)]->ConsumeRun(
        std::span<const double>(&value, 1));
    network_.DeliverAll();
    if (coordinator_->phase2_pending() && positive_counter_ == nullptr) {
      ActivatePhase2();
    }
    return;
  }
  ProcessBatch(site_id, std::span<const double>(&value, 1));
}

int64_t NonMonotonicCounter::ProcessBatch(int site_id,
                                          std::span<const double> values) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites());
  NMC_CHECK(!values.empty());
  if (positive_counter_ != nullptr) {
    // Phase 2: forward the leading same-sign run to the matching HYZ
    // counter as unit increments (±1 updates only, so same sign == equal).
    const double first = values.front();
    NMC_CHECK_EQ(std::fabs(first), 1.0);
    size_t run = 1;
    while (run < values.size() && values[run] == first) ++run;
    hyz::HyzProtocol* target =
        first > 0 ? positive_counter_.get() : negative_counter_.get();
    return target->ProcessRun(site_id, static_cast<int64_t>(run));
  }
  // Under a faulty channel, advance simulated time (delivering anything
  // that came due) and process one update per call: fast-forwarding a
  // silent prefix assumes it stays silent, which delayed delivery breaks.
  const bool faulty = network_.channeled();
  if (faulty) network_.BeginTick();
  const int64_t consumed =
      sites_[static_cast<size_t>(site_id)]->ConsumeRun(
          faulty ? values.first(1) : values);
  network_.DeliverAll();
  if (coordinator_->phase2_pending() && positive_counter_ == nullptr) {
    ActivatePhase2();
  }
  return consumed;
}

bool NonMonotonicCounter::Resync() {
  if (positive_counter_ != nullptr) {
    const bool positive_ok = positive_counter_->Resync();
    const bool negative_ok = negative_counter_->Resync();
    return positive_ok && negative_ok;
  }
  if (num_sites() == 1) {
    sites_[0]->SendSnapshot(kExactReport);
  } else {
    coordinator_->BeginResync();
  }
  network_.DeliverAll();
  return true;
}

void NonMonotonicCounter::ForceSync() {
  NMC_CHECK(positive_counter_ == nullptr);  // Phase 1 only
  if (num_sites() == 1) {
    sites_[0]->SendSnapshot(kExactReport);
  } else if (coordinator_->in_sbc_stage()) {
    sites_[0]->SendSyncRequest();
  } else {
    return;  // StraightSync: the coordinator is already exact
  }
  network_.DeliverAll();
}

int64_t NonMonotonicCounter::SyncedUpdates() const {
  return coordinator_->known_updates();
}

double NonMonotonicCounter::SyncedSumSquares() const {
  return coordinator_->known_sum_sq();
}

void NonMonotonicCounter::ActivatePhase2() {
  const int64_t t = coordinator_->snapshot_updates();
  const double s = coordinator_->snapshot_sum();
  // For ±1 updates, #positives = (t + S)/2 and #negatives = (t - S)/2.
  const double positives = (static_cast<double>(t) + s) / 2.0;
  const double negatives = (static_cast<double>(t) - s) / 2.0;
  const int64_t p0 = std::llround(positives);
  const int64_t n0 = std::llround(negatives);
  NMC_CHECK_LE(std::fabs(positives - static_cast<double>(p0)), 1e-6);
  NMC_CHECK_LE(std::fabs(negatives - static_cast<double>(n0)), 1e-6);
  phase2_switch_time_ = t;

  const double mu = coordinator_->mu_hat();
  hyz::HyzOptions hyz_options;
  hyz_options.epsilon = std::clamp(
      options_.phase2_eps_fraction * options_.epsilon * std::fabs(mu), 1e-5,
      0.9);
  const double n = static_cast<double>(options_.horizon_n);
  hyz_options.delta = std::min(0.5, options_.phase2_delta_scale / (n * n));
  hyz_options.sampler = options_.sampler;
  if (options_.phase2_auto_hyz_mode) {
    // Per-round cost: deterministic ~2k, sampled ~sqrt(kL) + L.
    const double k = static_cast<double>(num_sites());
    // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) phase-2 activation is a once-per-trial transition, not per-update work
    const double log_term = std::log(2.0 / hyz_options.delta);
    if (2.0 * k < std::sqrt(k * log_term) + log_term) {
      hyz_options.mode = hyz::HyzMode::kDeterministic;
    }
  }
  // The pair inherits the fault model on separate networks; distinct
  // channel seeds keep the two loss patterns independent. (Under the
  // default perfect channel the seed is unused and no channel is built.)
  hyz_options.channel = options_.channel;
  common::Rng seeder(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  hyz_options.seed = seeder.NextU64();
  hyz_options.channel.seed = options_.channel.seed + 1;
  hyz_options.initial_total = p0;
  positive_counter_ =
      std::make_unique<hyz::HyzProtocol>(num_sites(), hyz_options);  // nmc-lint: allow(NO_HEAP_IN_HOT_PATH) phase-2 activation allocates the HYZ pair exactly once per trial
  hyz_options.seed = seeder.NextU64();
  hyz_options.channel.seed = options_.channel.seed + 2;
  hyz_options.initial_total = n0;
  negative_counter_ =
      std::make_unique<hyz::HyzProtocol>(num_sites(), hyz_options);  // nmc-lint: allow(NO_HEAP_IN_HOT_PATH) phase-2 activation allocates the HYZ pair exactly once per trial
}

double NonMonotonicCounter::Estimate() const {
  if (positive_counter_ != nullptr) {
    return positive_counter_->Estimate() - negative_counter_->Estimate();
  }
  return coordinator_->Estimate();
}

const sim::MessageStats& NonMonotonicCounter::stats() const {
  // Phase 1 serves the network's stats by reference: the tracking pump
  // reads stats() around every batch, so the combined-copy path would be
  // a per-batch struct copy for the lifetime of most runs.
  if (positive_counter_ == nullptr) return network_.stats();
  combined_stats_ = network_.stats();
  combined_stats_ += positive_counter_->stats();
  combined_stats_ += negative_counter_->stats();
  return combined_stats_;
}

CounterDiagnostics NonMonotonicCounter::diagnostics() const {
  CounterDiagnostics d;
  d.phase2_active = positive_counter_ != nullptr;
  d.mu_hat = coordinator_->gp_resolved() ? coordinator_->mu_hat() : 0.0;
  d.phase2_switch_time = phase2_switch_time_;
  d.sbc_syncs = coordinator_->sbc_syncs();
  d.straight_reports = coordinator_->straight_reports();
  d.stage_switches = coordinator_->stage_switches();
  d.in_sbc_stage = coordinator_->in_sbc_stage();
  d.resyncs = coordinator_->resyncs();
  return d;
}

}  // namespace nmc::core
