#pragma once

namespace nmc::core {

/// Helpers that turn the counter's multiplicative guarantee
/// estimate in [(1-eps) S, (1+eps) S] into certified statements about the
/// true count S — the question application code actually asks (e.g. the
/// voting example: who leads, and by at least how much?).

/// The certified interval for S given an estimate with relative accuracy
/// eps (0 < eps < 1). For estimate e > 0: S in [e/(1+eps), e/(1-eps)];
/// symmetric for e < 0; for e == 0 the guarantee pins S to exactly 0.
struct CertifiedRange {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double value) const { return lo <= value && value <= hi; }
};

CertifiedRange RangeFromEstimate(double estimate, double epsilon);

/// The certified sign of S: +1 or -1 when the guarantee pins the sign AND
/// the magnitude is certifiably at least `min_magnitude`; 0 ("too close to
/// call") otherwise. Under the guarantee the estimate always shares S's
/// sign (|e - S| <= eps|S| < |S|), so the magnitude test is what gates
/// the call.
int CertifiedSign(double estimate, double epsilon, double min_magnitude);

}  // namespace nmc::core

