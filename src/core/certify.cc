#include "core/certify.h"

#include <cmath>

#include "common/check.h"

namespace nmc::core {

CertifiedRange RangeFromEstimate(double estimate, double epsilon) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_LT(epsilon, 1.0);
  CertifiedRange range;
  if (estimate > 0.0) {
    range.lo = estimate / (1.0 + epsilon);
    range.hi = estimate / (1.0 - epsilon);
  } else if (estimate < 0.0) {
    range.lo = estimate / (1.0 - epsilon);
    range.hi = estimate / (1.0 + epsilon);
  }
  return range;
}

int CertifiedSign(double estimate, double epsilon, double min_magnitude) {
  NMC_CHECK_GE(min_magnitude, 0.0);
  const CertifiedRange range = RangeFromEstimate(estimate, epsilon);
  if (range.lo >= min_magnitude && range.lo > 0.0) return 1;
  if (range.hi <= -min_magnitude && range.hi < 0.0) return -1;
  return 0;
}

}  // namespace nmc::core
