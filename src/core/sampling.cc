#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmc::core {

namespace {

double LogHorizon(int64_t horizon_n) {
  NMC_CHECK_GE(horizon_n, 1);
  return std::log(std::max<double>(static_cast<double>(horizon_n), 2.0));
}

}  // namespace

double RandomWalkRate(double estimate, double epsilon, int64_t horizon_n,
                      double alpha, double beta) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_GT(alpha, 0.0);
  NMC_CHECK_GE(beta, 0.0);
  const double scaled = epsilon * std::fabs(estimate);
  if (scaled == 0.0) return 1.0;
  const double rate =
      alpha * std::pow(LogHorizon(horizon_n), beta) / (scaled * scaled);
  return std::min(rate, 1.0);
}

double FbmRate(double estimate, double epsilon, int64_t horizon_n,
               double delta, double alpha_delta) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_GT(delta, 1.0);
  NMC_CHECK_LE(delta, 2.0);
  NMC_CHECK_GT(alpha_delta, 0.0);
  const double scaled = epsilon * std::fabs(estimate);
  if (scaled == 0.0) return 1.0;
  const double rate = alpha_delta *
                      std::pow(LogHorizon(horizon_n), 1.0 + delta / 2.0) /
                      std::pow(scaled, delta);
  return std::min(rate, 1.0);
}

double DriftGuardRate(int64_t t, double epsilon, int64_t horizon_n, double c) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_GT(c, 0.0);
  if (t <= 0) return 1.0;
  const double rate =
      c * LogHorizon(horizon_n) / (epsilon * static_cast<double>(t));
  return std::min(rate, 1.0);
}

}  // namespace nmc::core
