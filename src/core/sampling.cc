#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nmc::core {

namespace {

/// log(max(n, 2)), memoized: the horizon is a run constant but this sits
/// on the per-update sampling path, so recomputing the log each update is
/// pure waste. thread_local keeps the cache safe under the parallel trial
/// runner; the cached value is bit-identical to recomputation.
double LogHorizon(int64_t horizon_n) {
  NMC_CHECK_GE(horizon_n, 1);
  thread_local int64_t cached_n = -1;
  thread_local double cached_log = 0.0;
  if (horizon_n != cached_n) {
    cached_log =
        std::log(std::max<double>(static_cast<double>(horizon_n), 2.0));  // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) memoized: one log per horizon change (a run constant), served from the thread_local cache on every later update
    cached_n = horizon_n;
  }
  return cached_log;
}

/// pow(LogHorizon(n), exponent), memoized for the same reason.
double PowLogHorizon(int64_t horizon_n, double exponent) {
  thread_local int64_t cached_n = -1;
  thread_local double cached_exponent = 0.0;
  thread_local double cached_pow = 0.0;
  if (horizon_n != cached_n || exponent != cached_exponent) {
    // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) memoized: recomputed only when the horizon or exponent changes, both run constants
    cached_pow = std::pow(LogHorizon(horizon_n), exponent);
    cached_n = horizon_n;
    cached_exponent = exponent;
  }
  return cached_pow;
}

}  // namespace

double RandomWalkRate(double estimate, double epsilon, int64_t horizon_n,
                      double alpha, double beta) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_GT(alpha, 0.0);
  NMC_CHECK_GE(beta, 0.0);
  const double scaled = epsilon * std::fabs(estimate);
  if (scaled == 0.0) return 1.0;
  const double rate =
      alpha * PowLogHorizon(horizon_n, beta) / (scaled * scaled);
  return std::min(rate, 1.0);
}

double FbmRate(double estimate, double epsilon, int64_t horizon_n,
               double delta, double alpha_delta) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_GT(delta, 1.0);
  NMC_CHECK_LE(delta, 2.0);
  NMC_CHECK_GT(alpha_delta, 0.0);
  const double scaled = epsilon * std::fabs(estimate);
  if (scaled == 0.0) return 1.0;
  const double rate = alpha_delta *
                      PowLogHorizon(horizon_n, 1.0 + delta / 2.0) /
                      std::pow(scaled, delta);  // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) rate recomputation, not per-update work: every per-update call site caches the result in core::RateCache until the estimate moves
  return std::min(rate, 1.0);
}

double DriftGuardRate(int64_t t, double epsilon, int64_t horizon_n, double c) {
  NMC_CHECK_GT(epsilon, 0.0);
  NMC_CHECK_GT(c, 0.0);
  if (t <= 0) return 1.0;
  const double rate =
      c * LogHorizon(horizon_n) / (epsilon * static_cast<double>(t));
  return std::min(rate, 1.0);
}

}  // namespace nmc::core
