#pragma once

#include <cstdint>

namespace nmc::core {

/// Parameters of the drift estimator.
struct GpSearchOptions {
  /// Target relative accuracy of the reported estimate mu_hat.
  double epsilon0 = 0.25;
  /// Stream horizon n (enters the Hoeffding confidence width's log term).
  int64_t horizon_n = 1;
  /// Relative accuracy of the counter feeding the observations (the
  /// coordinator observes S_t only up to this error; the confidence test
  /// deflates |S| accordingly). Exact observations pass 0.
  double observation_epsilon = 0.0;
  /// If true (the paper's formulation), observations are only evaluated at
  /// geometrically spaced times t >= 2^j, which is what the union bound in
  /// the analysis is taken over.
  bool geometric_checkpoints = true;
};

/// GPSearch (Section 2.1): a conservative online estimator of the drift
/// mu = E[X]. It observes (t, S_t) pairs whenever the coordinator learns
/// the count, and reports mu_hat = S_t / t only once it is confident —
/// via a Hoeffding width w_t = sqrt(2 t ln(2 n^3)) — that
/// mu_hat is within (1 ± epsilon0) mu. For |mu| > 0 this happens before
/// t = Theta(log n / (mu * epsilon0)^2); for mu = 0 it never reports,
/// which is exactly what Phase 1 of the counter needs. Communication-free:
/// it reuses counts the protocol already synchronizes.
class GpSearch {
 public:
  explicit GpSearch(const GpSearchOptions& options);

  /// Feeds the (exact or epsilon-accurate) count at time t. Times must be
  /// non-decreasing. No-op once resolved.
  void Observe(int64_t t, double count);

  /// Whether a confident estimate has been reported.
  bool resolved() const { return resolved_; }

  /// The reported drift estimate; only valid once resolved().
  double mu_hat() const;

  /// The time at which the estimate was reported; only valid once
  /// resolved().
  int64_t resolution_time() const;

 private:
  GpSearchOptions options_;
  double log_term_;
  int64_t next_checkpoint_ = 1;
  bool resolved_ = false;
  double mu_hat_ = 0.0;
  int64_t resolution_time_ = 0;
};

}  // namespace nmc::core

