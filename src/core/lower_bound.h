#pragma once

#include <cstdint>
#include <vector>

namespace nmc::core {

/// Empirical side of the paper's lower bounds (Section 4). The proofs are
/// sample-path arguments: any correct tracker must communicate whenever the
/// count sits in an error-sensitive region, so the expected occupancy of
/// that region lower-bounds the expected message count.

/// Number of steps t at which |S_t| <= radius, where S_t is the prefix sum
/// of `stream`. With radius = 1/eps this is the quantity E[|{t : S_t in
/// E}|] from Theorems 4.1/4.2 — each such step forces Omega(1) messages.
int64_t CountOccupancy(const std::vector<double>& stream, double radius);

/// Phase-wise occupancy for the k-site bound (Theorem 4.5): the stream is
/// chopped into phases of k updates; a phase counts if the sum at its
/// start lies in [-a, a] with a = min(sqrt(k)/eps, sqrt(j*k)) for phase j.
/// Each counted phase forces Omega(k) messages, so the returned count
/// times k lower-bounds the total communication.
int64_t CountPhaseOccupancy(const std::vector<double>& stream, int64_t k,
                            double epsilon);

/// The "tracking k inputs" one-shot game of Lemma 4.4: k sites each hold
/// one uniform ±1 input; a coordinator that samples only z of them must
/// decide the sign of the total whenever |total| >= c*sqrt(k). The optimal
/// strategy declares the sign of the sampled sum. The lemma shows the
/// error probability is Omega(1) unless z = Omega(k).
struct KInputsGameResult {
  int64_t trials = 0;
  /// Trials in which |total| >= c*sqrt(k) (the decision was required).
  int64_t decided_trials = 0;
  /// Required decisions that came out wrong.
  int64_t errors = 0;

  double error_rate() const {
    return decided_trials > 0
               ? static_cast<double>(errors) / static_cast<double>(decided_trials)
               : 0.0;
  }
};

KInputsGameResult RunKInputsGame(int64_t k, int64_t sampled_sites,
                                 double threshold_c, int64_t trials,
                                 uint64_t seed);

}  // namespace nmc::core

