#include "core/lower_bound.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::core {

int64_t CountOccupancy(const std::vector<double>& stream, double radius) {
  NMC_CHECK_GE(radius, 0.0);
  int64_t occupancy = 0;
  double sum = 0.0;
  for (double value : stream) {
    sum += value;
    if (std::fabs(sum) <= radius) ++occupancy;
  }
  return occupancy;
}

int64_t CountPhaseOccupancy(const std::vector<double>& stream, int64_t k,
                            double epsilon) {
  NMC_CHECK_GE(k, 1);
  NMC_CHECK_GT(epsilon, 0.0);
  const int64_t n = static_cast<int64_t>(stream.size());
  const double sqrt_k = std::sqrt(static_cast<double>(k));
  int64_t counted = 0;
  double sum = 0.0;
  int64_t phase = 0;
  for (int64_t start = 0; start + k <= n; start += k, ++phase) {
    const double a = std::min(sqrt_k / epsilon,
                              std::sqrt(static_cast<double>((phase + 1) * k)));
    if (std::fabs(sum) <= a) ++counted;
    for (int64_t i = start; i < start + k; ++i) {
      sum += stream[static_cast<size_t>(i)];
    }
  }
  return counted;
}

KInputsGameResult RunKInputsGame(int64_t k, int64_t sampled_sites,
                                 double threshold_c, int64_t trials,
                                 uint64_t seed) {
  NMC_CHECK_GE(k, 1);
  NMC_CHECK_GE(sampled_sites, 0);
  NMC_CHECK_LE(sampled_sites, k);
  NMC_CHECK_GT(threshold_c, 0.0);
  NMC_CHECK_GE(trials, 1);

  common::Rng rng(seed);
  const double threshold = threshold_c * std::sqrt(static_cast<double>(k));
  KInputsGameResult result;
  result.trials = trials;
  for (int64_t trial = 0; trial < trials; ++trial) {
    // The inputs are exchangeable, so sampling the first z sites is
    // equivalent to sampling a uniform subset.
    int64_t sampled_sum = 0;
    int64_t total = 0;
    for (int64_t i = 0; i < k; ++i) {
      const int x = rng.Sign(0.5);
      total += x;
      if (i < sampled_sites) sampled_sum += x;
    }
    if (std::fabs(static_cast<double>(total)) < threshold) continue;
    ++result.decided_trials;
    // Optimal decision: the sign of the sampled sum, coin flip on a tie.
    int declared;
    if (sampled_sum > 0) {
      declared = 1;
    } else if (sampled_sum < 0) {
      declared = -1;
    } else {
      declared = rng.Sign(0.5);
    }
    if ((total > 0) != (declared > 0)) ++result.errors;
  }
  return result;
}

}  // namespace nmc::core
