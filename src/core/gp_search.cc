#include "core/gp_search.h"

#include <cmath>

#include "common/check.h"

namespace nmc::core {

GpSearch::GpSearch(const GpSearchOptions& options) : options_(options) {
  NMC_CHECK_GT(options.epsilon0, 0.0);
  NMC_CHECK_LT(options.epsilon0, 1.0);
  NMC_CHECK_GE(options.horizon_n, 1);
  NMC_CHECK_GE(options.observation_epsilon, 0.0);
  NMC_CHECK_LT(options.observation_epsilon, 1.0);
  const double n = std::max<double>(static_cast<double>(options.horizon_n), 2.0);
  log_term_ = std::log(2.0 * n * n * n);
}

void GpSearch::Observe(int64_t t, double count) {
  if (resolved_) return;
  NMC_CHECK_GE(t, 0);
  if (t <= 0) return;
  if (options_.geometric_checkpoints && t < next_checkpoint_) return;
  while (next_checkpoint_ <= t) next_checkpoint_ *= 2;

  // Hoeffding: |S_t - mu*t| <= w_t with probability 1 - 1/n^3 per
  // checkpoint (bounded +-1 updates). Deflate the observed |count| by the
  // counter's own accuracy before testing.
  const double width = std::sqrt(2.0 * static_cast<double>(t) * log_term_);
  const double observed =
      std::fabs(count) * (1.0 - options_.observation_epsilon);
  if (observed >= (1.0 + 1.0 / options_.epsilon0) * width) {
    resolved_ = true;
    mu_hat_ = count / static_cast<double>(t);
    resolution_time_ = t;
  }
}

double GpSearch::mu_hat() const {
  NMC_CHECK(resolved_);
  return mu_hat_;
}

int64_t GpSearch::resolution_time() const {
  NMC_CHECK(resolved_);
  return resolution_time_;
}

}  // namespace nmc::core
