#pragma once

#include <cstdint>

namespace nmc::core {

/// The sampling-rate laws of the Non-monotonic Counter. All rates are
/// probabilities in (0, 1]; they are pure functions of broadcast state, so
/// every site evaluates the same rate from the same global estimate (this
/// is what lets the coordinator reason about the sites' behavior without
/// extra messages).

/// Eq. (1): random-walk law  min{ alpha * log^beta(n) / (eps*|s|)^2 , 1 }.
/// The paper proves correctness with alpha > 9/2 and beta = 2; those
/// constants come from Hoeffding + union bounds and are very conservative
/// in practice, so alpha and beta are configurable (see
/// CounterOptions::alpha/beta and the E12 ablation).
double RandomWalkRate(double estimate, double epsilon, int64_t horizon_n,
                      double alpha, double beta);

/// Eq. (2): fBm law  min{ alpha_delta * log^{1+delta/2}(n) / (eps*|s|)^delta, 1 }
/// for 1 < delta <= 2 with H <= 1/delta. delta = 2 recovers eq. (1).
double FbmRate(double estimate, double epsilon, int64_t horizon_n,
               double delta, double alpha_delta);

/// The conservative drift guard of Section 3.2:  min{ c * log(n) / (eps*t), 1 }.
/// Applied (as a max with the walk rate) while the drift is still unknown;
/// its total cost is only O(log^2(n)/eps) (the paper's "type 1 waste").
double DriftGuardRate(int64_t t, double epsilon, int64_t horizon_n, double c);

}  // namespace nmc::core

