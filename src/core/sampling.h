#pragma once

#include <cstdint>

namespace nmc::core {

/// The sampling-rate laws of the Non-monotonic Counter. All rates are
/// probabilities in (0, 1]; they are pure functions of broadcast state, so
/// every site evaluates the same rate from the same global estimate (this
/// is what lets the coordinator reason about the sites' behavior without
/// extra messages).

/// Eq. (1): random-walk law  min{ alpha * log^beta(n) / (eps*|s|)^2 , 1 }.
/// The paper proves correctness with alpha > 9/2 and beta = 2; those
/// constants come from Hoeffding + union bounds and are very conservative
/// in practice, so alpha and beta are configurable (see
/// CounterOptions::alpha/beta and the E12 ablation).
double RandomWalkRate(double estimate, double epsilon, int64_t horizon_n,
                      double alpha, double beta);

/// Eq. (2): fBm law  min{ alpha_delta * log^{1+delta/2}(n) / (eps*|s|)^delta, 1 }
/// for 1 < delta <= 2 with H <= 1/delta. delta = 2 recovers eq. (1).
double FbmRate(double estimate, double epsilon, int64_t horizon_n,
               double delta, double alpha_delta);

/// The conservative drift guard of Section 3.2:  min{ c * log(n) / (eps*t), 1 }.
/// Applied (as a max with the walk rate) while the drift is still unknown;
/// its total cost is only O(log^2(n)/eps) (the paper's "type 1 waste").
double DriftGuardRate(int64_t t, double epsilon, int64_t horizon_n, double c);

/// Single-entry memo for the walk/fBm laws at call sites where the
/// estimate is frozen between broadcasts but the law would otherwise be
/// re-evaluated per update: LogHorizon/PowLogHorizon memoize the run
/// constants, but FbmRate still pays a pow(eps*|s|, delta) per call even
/// when the estimate has not moved since the last broadcast. Keyed on
/// (estimate, effective epsilon); the cached value is bit-identical to
/// recomputation, so hits and misses are observationally equivalent.
class RateCache {
 public:
  template <typename ComputeFn>
  double Get(double estimate, double epsilon_eff, ComputeFn&& compute) {
    if (!valid_ || estimate != key_estimate_ || epsilon_eff != key_epsilon_) {
      rate_ = compute();
      key_estimate_ = estimate;
      key_epsilon_ = epsilon_eff;
      valid_ = true;
    }
    return rate_;
  }

  void Invalidate() { valid_ = false; }

 private:
  bool valid_ = false;
  double key_estimate_ = 0.0;
  double key_epsilon_ = 0.0;
  double rate_ = 0.0;
};

}  // namespace nmc::core

