#include "registry/builtin.h"

#include <memory>

#include "baselines/exact_sync.h"
#include "baselines/periodic_sync.h"
#include "baselines/two_monotonic.h"
#include "common/check.h"
#include "common/geometric_skip.h"
#include "core/horizon_free.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/registry.h"

namespace nmc::registry {

namespace {

common::SamplerMode SamplerFor(const sim::ProtocolParams& params) {
  return params.legacy_coins ? common::SamplerMode::kLegacyCoins
                             : common::SamplerMode::kGeometricSkip;
}

core::CounterOptions CounterOptionsFor(const sim::ProtocolParams& params) {
  core::CounterOptions options;
  options.epsilon = params.epsilon;
  options.horizon_n = params.horizon_n;
  options.sampler = SamplerFor(params);
  options.channel = params.channel;
  options.seed = params.seed;
  return options;
}

hyz::HyzOptions HyzOptionsFor(const sim::ProtocolParams& params) {
  hyz::HyzOptions options;
  options.epsilon = params.epsilon;
  options.delta = params.delta;
  options.sampler = SamplerFor(params);
  options.channel = params.channel;
  options.seed = params.seed;
  return options;
}

void RegisterAll() {
  sim::ProtocolRegistry& registry = sim::ProtocolRegistry::Global();

  registry.Register(
      "counter", sim::ProtocolTraits{/*general_values=*/true,
                                     /*monotonic_only=*/false},
      [](int k, const sim::ProtocolParams& params) {
        return std::make_unique<core::NonMonotonicCounter>(
            k, CounterOptionsFor(params));
      });

  registry.Register(
      "counter_drift", sim::ProtocolTraits{/*general_values=*/false,
                                           /*monotonic_only=*/false},
      [](int k, const sim::ProtocolParams& params) {
        core::CounterOptions options = CounterOptionsFor(params);
        options.drift_mode = core::DriftMode::kUnknownUnitDrift;
        return std::make_unique<core::NonMonotonicCounter>(k, options);
      });

  registry.Register(
      "horizon_free", sim::ProtocolTraits{/*general_values=*/true,
                                          /*monotonic_only=*/false},
      [](int k, const sim::ProtocolParams& params) {
        // The wrapper's restart snapshot relies on ForceSync completing,
        // which only the perfect channel guarantees.
        NMC_CHECK(!params.channel.faulty());
        core::HorizonFreeOptions options;
        options.counter = CounterOptionsFor(params);
        options.initial_horizon = 512;
        return std::make_unique<core::HorizonFreeCounter>(k, options);
      });

  registry.Register(
      "hyz", sim::ProtocolTraits{/*general_values=*/false,
                                 /*monotonic_only=*/true},
      [](int k, const sim::ProtocolParams& params) {
        return std::make_unique<hyz::HyzProtocol>(k, HyzOptionsFor(params));
      });

  registry.Register(
      "hyz_deterministic", sim::ProtocolTraits{/*general_values=*/false,
                                               /*monotonic_only=*/true},
      [](int k, const sim::ProtocolParams& params) {
        hyz::HyzOptions options = HyzOptionsFor(params);
        options.mode = hyz::HyzMode::kDeterministic;
        return std::make_unique<hyz::HyzProtocol>(k, options);
      });

  registry.Register(
      "exact_sync", sim::ProtocolTraits{/*general_values=*/true,
                                        /*monotonic_only=*/false},
      [](int k, const sim::ProtocolParams& params) {
        return std::make_unique<baselines::ExactSyncProtocol>(k,
                                                              params.channel);
      });

  registry.Register(
      "periodic_sync", sim::ProtocolTraits{/*general_values=*/true,
                                           /*monotonic_only=*/false},
      [](int k, const sim::ProtocolParams& params) {
        return std::make_unique<baselines::PeriodicSyncProtocol>(
            k, params.period, params.channel);
      });

  registry.Register(
      "two_monotonic", sim::ProtocolTraits{/*general_values=*/false,
                                           /*monotonic_only=*/false},
      [](int k, const sim::ProtocolParams& params) {
        return std::make_unique<baselines::TwoMonotonicProtocol>(
            k, params.epsilon, params.delta, params.seed, params.channel);
      });
}

}  // namespace

void RegisterBuiltinProtocols() {
  // Thread-safe and idempotent via the local-static guard; duplicate
  // registration cannot happen (RegisterAll runs once per process).
  static const bool registered = [] {
    RegisterAll();
    return true;
  }();
  (void)registered;
}

}  // namespace nmc::registry
