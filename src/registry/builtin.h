#pragma once

namespace nmc::registry {

/// Registers every protocol in the library with
/// sim::ProtocolRegistry::Global() under these names:
///
///   counter, counter_drift, horizon_free, hyz, hyz_deterministic,
///   exact_sync, periodic_sync, two_monotonic
///
/// Idempotent and safe to call from every bench/test entry point. Lives
/// above the protocol layers (sim cannot depend on core/hyz/baselines), so
/// linking nmc_registry is what makes the names available.
void RegisterBuiltinProtocols();

}  // namespace nmc::registry
