#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/channel.h"
#include "sim/network.h"
#include "sim/protocol.h"

namespace nmc::baselines {

/// A deterministic strawman: each site pushes its local totals to the
/// coordinator every `period` local updates (1 message each time, n/period
/// total). It has no error guarantee — between pushes the estimate can be
/// arbitrarily stale relative to a small |S| — and the benches use it to
/// show that fixed-rate reporting cannot buy relative accuracy on
/// non-monotonic streams no matter how the period is tuned.
///
/// Pushes carry cumulative totals, so under a faulty channel a lost push
/// is repaired by the next one; Resync() broadcasts a probe that makes
/// every site push immediately (2k messages).
class PeriodicSyncProtocol : public sim::Protocol {
 public:
  PeriodicSyncProtocol(int num_sites, int64_t period,
                       const sim::ChannelConfig& channel = {});
  ~PeriodicSyncProtocol() override;

  int num_sites() const override;
  void ProcessUpdate(int site_id, double value) override;
  double Estimate() const override;
  const sim::MessageStats& stats() const override;
  bool Resync() override;

 private:
  class Site;
  class Coordinator;

  sim::Network network_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace nmc::baselines
