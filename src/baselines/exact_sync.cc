#include "baselines/exact_sync.h"

#include "common/check.h"

namespace nmc::baselines {

namespace {
enum MessageType { kValue = 1 };  // site -> coord: a = update value
}  // namespace

class ExactSyncProtocol::Site : public sim::SiteNode {
 public:
  Site(int site_id, sim::Network* network)
      : site_id_(site_id), network_(network) {}

  void OnLocalUpdate(double value) override {
    sim::Message m;
    m.type = kValue;
    m.a = value;
    network_->SendToCoordinator(site_id_, m);
  }

  void OnCoordinatorMessage(const sim::Message& /*message*/) override {
    NMC_CHECK(false);  // the coordinator never sends
  }

 private:
  int site_id_;
  sim::Network* network_;
};

class ExactSyncProtocol::Coordinator : public sim::CoordinatorNode {
 public:
  void OnSiteMessage(int /*site_id*/, const sim::Message& message) override {
    NMC_CHECK_EQ(message.type, kValue);
    sum_ += message.a;
  }

  double sum() const { return sum_; }

 private:
  double sum_ = 0.0;
};

ExactSyncProtocol::ExactSyncProtocol(int num_sites,
                                     const sim::ChannelConfig& channel)
    : network_(num_sites) {
  network_.SetChannel(sim::MakeChannel(channel));
  coordinator_ = std::make_unique<Coordinator>();
  network_.AttachCoordinator(coordinator_.get());
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites_.push_back(std::make_unique<Site>(s, &network_));
    network_.AttachSite(s, sites_.back().get());
  }
}

ExactSyncProtocol::~ExactSyncProtocol() = default;

int ExactSyncProtocol::num_sites() const { return network_.num_sites(); }

void ExactSyncProtocol::ProcessUpdate(int site_id, double value) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites());
  network_.BeginTick();
  sites_[static_cast<size_t>(site_id)]->OnLocalUpdate(value);
  network_.DeliverAll();
}

double ExactSyncProtocol::Estimate() const { return coordinator_->sum(); }

const sim::MessageStats& ExactSyncProtocol::stats() const {
  return network_.stats();
}

}  // namespace nmc::baselines
