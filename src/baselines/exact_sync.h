#pragma once

#include <memory>
#include <vector>

#include "sim/channel.h"
#include "sim/network.h"
#include "sim/protocol.h"

namespace nmc::baselines {

/// The trivial always-correct protocol: every update is forwarded to the
/// coordinator (1 message per update, Theta(n) total, zero error). This is
/// the only correct strategy for fully adversarial non-monotonic input
/// (Section 1.1's Omega(n) argument) and the yardstick the sublinear
/// algorithms are measured against.
///
/// Under a faulty channel it degrades unrecoverably: each message carries
/// one raw value (not a cumulative total), so a dropped message is lost
/// state no resync can rebuild — Resync() stays false. E14 uses this as
/// the contrast case for the self-healing protocols.
class ExactSyncProtocol : public sim::Protocol {
 public:
  explicit ExactSyncProtocol(int num_sites,
                             const sim::ChannelConfig& channel = {});
  ~ExactSyncProtocol() override;

  int num_sites() const override;
  void ProcessUpdate(int site_id, double value) override;
  double Estimate() const override;
  const sim::MessageStats& stats() const override;

 private:
  class Site;
  class Coordinator;

  sim::Network network_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace nmc::baselines
