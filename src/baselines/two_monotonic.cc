#include "baselines/two_monotonic.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nmc::baselines {

TwoMonotonicProtocol::TwoMonotonicProtocol(int num_sites, double epsilon,
                                           double delta, uint64_t seed,
                                           const sim::ChannelConfig& channel) {
  common::Rng seeder(seed);
  hyz::HyzOptions options;
  options.epsilon = epsilon;
  options.delta = delta;
  // Each counter runs its own star network; distinct channel seeds keep
  // the two fault patterns independent (unused on the perfect default).
  options.channel = channel;
  options.seed = seeder.NextU64();
  options.channel.seed = channel.seed + 1;
  positive_ = std::make_unique<hyz::HyzProtocol>(num_sites, options);
  options.seed = seeder.NextU64();
  options.channel.seed = channel.seed + 2;
  negative_ = std::make_unique<hyz::HyzProtocol>(num_sites, options);
}

int TwoMonotonicProtocol::num_sites() const { return positive_->num_sites(); }

void TwoMonotonicProtocol::ProcessUpdate(int site_id, double value) {
  NMC_CHECK_EQ(std::fabs(value), 1.0);
  if (value > 0) {
    positive_->ProcessUpdate(site_id, 1.0);
  } else {
    negative_->ProcessUpdate(site_id, 1.0);
  }
}

double TwoMonotonicProtocol::Estimate() const {
  return positive_->Estimate() - negative_->Estimate();
}

const sim::MessageStats& TwoMonotonicProtocol::stats() const {
  combined_stats_ = positive_->stats();
  combined_stats_ += negative_->stats();
  return combined_stats_;
}

bool TwoMonotonicProtocol::Resync() {
  const bool positive_ok = positive_->Resync();
  const bool negative_ok = negative_->Resync();
  return positive_ok && negative_ok;
}

}  // namespace nmc::baselines
