#include "baselines/periodic_sync.h"

#include "common/check.h"

namespace nmc::baselines {

namespace {
enum MessageType {
  kTotals = 1,  // site -> coord: u = #updates, a = sum
  kProbe = 2,   // coord -> sites (broadcast): push totals now (resync)
};
}  // namespace

class PeriodicSyncProtocol::Site : public sim::SiteNode {
 public:
  Site(int site_id, int64_t period, sim::Network* network)
      : site_id_(site_id), period_(period), network_(network) {}

  void OnLocalUpdate(double value) override {
    ++local_updates_;
    local_sum_ += value;
    if (local_updates_ % period_ == 0) PushTotals();
  }

  void OnCoordinatorMessage(const sim::Message& message) override {
    NMC_CHECK_EQ(message.type, kProbe);
    PushTotals();
  }

 private:
  void PushTotals() {
    sim::Message m;
    m.type = kTotals;
    m.u = local_updates_;
    m.a = local_sum_;
    network_->SendToCoordinator(site_id_, m);
  }

  int site_id_;
  int64_t period_;
  sim::Network* network_;
  int64_t local_updates_ = 0;
  double local_sum_ = 0.0;
};

class PeriodicSyncProtocol::Coordinator : public sim::CoordinatorNode {
 public:
  Coordinator(sim::Network* network, int num_sites)
      : network_(network),
        known_updates_(static_cast<size_t>(num_sites), 0),
        known_sum_(static_cast<size_t>(num_sites), 0.0) {}

  void OnSiteMessage(int site_id, const sim::Message& message) override {
    NMC_CHECK_EQ(message.type, kTotals);
    const size_t i = static_cast<size_t>(site_id);
    // Pushes carry cumulative totals; a stale (delayed-past-newer) push
    // must not regress the per-site state. No-op on a perfect channel:
    // in-order pushes have nondecreasing u.
    if (message.u < known_updates_[i]) return;
    known_updates_[i] = message.u;
    total_ += message.a - known_sum_[i];
    known_sum_[i] = message.a;
  }

  /// Resync: ask every site for fresh totals (k + k messages).
  void Probe() {
    sim::Message m;
    m.type = kProbe;
    network_->Broadcast(m);
  }

  double total() const { return total_; }

 private:
  sim::Network* network_;
  std::vector<int64_t> known_updates_;
  std::vector<double> known_sum_;
  double total_ = 0.0;
};

PeriodicSyncProtocol::PeriodicSyncProtocol(int num_sites, int64_t period,
                                           const sim::ChannelConfig& channel)
    : network_(num_sites) {
  NMC_CHECK_GE(period, 1);
  network_.SetChannel(sim::MakeChannel(channel));
  coordinator_ = std::make_unique<Coordinator>(&network_, num_sites);
  network_.AttachCoordinator(coordinator_.get());
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites_.push_back(std::make_unique<Site>(s, period, &network_));
    network_.AttachSite(s, sites_.back().get());
  }
}

PeriodicSyncProtocol::~PeriodicSyncProtocol() = default;

int PeriodicSyncProtocol::num_sites() const { return network_.num_sites(); }

void PeriodicSyncProtocol::ProcessUpdate(int site_id, double value) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites());
  network_.BeginTick();
  sites_[static_cast<size_t>(site_id)]->OnLocalUpdate(value);
  network_.DeliverAll();
}

double PeriodicSyncProtocol::Estimate() const { return coordinator_->total(); }

const sim::MessageStats& PeriodicSyncProtocol::stats() const {
  return network_.stats();
}

bool PeriodicSyncProtocol::Resync() {
  coordinator_->Probe();
  network_.DeliverAll();
  return true;
}

}  // namespace nmc::baselines
