#include "baselines/periodic_sync.h"

#include "common/check.h"

namespace nmc::baselines {

namespace {
enum MessageType { kTotals = 1 };  // site -> coord: u = #updates, a = sum
}  // namespace

class PeriodicSyncProtocol::Site : public sim::SiteNode {
 public:
  Site(int site_id, int64_t period, sim::Network* network)
      : site_id_(site_id), period_(period), network_(network) {}

  void OnLocalUpdate(double value) override {
    ++local_updates_;
    local_sum_ += value;
    if (local_updates_ % period_ == 0) {
      sim::Message m;
      m.type = kTotals;
      m.u = local_updates_;
      m.a = local_sum_;
      network_->SendToCoordinator(site_id_, m);
    }
  }

  void OnCoordinatorMessage(const sim::Message& /*message*/) override {
    NMC_CHECK(false);
  }

 private:
  int site_id_;
  int64_t period_;
  sim::Network* network_;
  int64_t local_updates_ = 0;
  double local_sum_ = 0.0;
};

class PeriodicSyncProtocol::Coordinator : public sim::CoordinatorNode {
 public:
  explicit Coordinator(int num_sites)
      : known_sum_(static_cast<size_t>(num_sites), 0.0) {}

  void OnSiteMessage(int site_id, const sim::Message& message) override {
    NMC_CHECK_EQ(message.type, kTotals);
    const size_t i = static_cast<size_t>(site_id);
    total_ += message.a - known_sum_[i];
    known_sum_[i] = message.a;
  }

  double total() const { return total_; }

 private:
  std::vector<double> known_sum_;
  double total_ = 0.0;
};

PeriodicSyncProtocol::PeriodicSyncProtocol(int num_sites, int64_t period)
    : network_(num_sites) {
  NMC_CHECK_GE(period, 1);
  coordinator_ = std::make_unique<Coordinator>(num_sites);
  network_.AttachCoordinator(coordinator_.get());
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites_.push_back(std::make_unique<Site>(s, period, &network_));
    network_.AttachSite(s, sites_.back().get());
  }
}

PeriodicSyncProtocol::~PeriodicSyncProtocol() = default;

int PeriodicSyncProtocol::num_sites() const { return network_.num_sites(); }

void PeriodicSyncProtocol::ProcessUpdate(int site_id, double value) {
  NMC_CHECK_GE(site_id, 0);
  NMC_CHECK_LT(site_id, num_sites());
  sites_[static_cast<size_t>(site_id)]->OnLocalUpdate(value);
  network_.DeliverAll();
}

double PeriodicSyncProtocol::Estimate() const { return coordinator_->total(); }

const sim::MessageStats& PeriodicSyncProtocol::stats() const {
  return network_.stats();
}

}  // namespace nmc::baselines
