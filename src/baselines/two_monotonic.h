#pragma once

#include <cstdint>
#include <memory>

#include "hyz/hyz_counter.h"
#include "sim/channel.h"
#include "sim/protocol.h"

namespace nmc::baselines {

/// The "naive difference" approach the paper's introduction warns about:
/// track the positive updates and the negative updates with two
/// independent monotonic (HYZ) counters of accuracy epsilon each and
/// report the difference. Each counter is individually within epsilon of
/// P resp. N, but the difference carries absolute error up to
/// epsilon*(P+N) = epsilon*t, so its RELATIVE error against S = P - N is
/// unbounded whenever |S| << t (e.g. balanced voting). Requires ±1
/// updates.
class TwoMonotonicProtocol : public sim::Protocol {
 public:
  TwoMonotonicProtocol(int num_sites, double epsilon, double delta,
                       uint64_t seed,
                       const sim::ChannelConfig& channel = {});

  int num_sites() const override;
  void ProcessUpdate(int site_id, double value) override;
  double Estimate() const override;
  const sim::MessageStats& stats() const override;
  bool Resync() override;

 private:
  std::unique_ptr<hyz::HyzProtocol> positive_;
  std::unique_ptr<hyz::HyzProtocol> negative_;
  mutable sim::MessageStats combined_stats_;
};

}  // namespace nmc::baselines
