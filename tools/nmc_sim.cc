// nmc_sim — command-line driver for the tracking protocols.
//
// Runs any protocol of the library against any input model with full
// control over the parameters, and prints a per-trial table (optionally
// CSV) plus a summary. The tool is how you explore regimes that the fixed
// E1..E12 benches don't sweep.
//
// Examples:
//   nmc_sim --protocol=counter --model=iid --mu=0.2 --n=100000 --k=8
//   nmc_sim --protocol=counter --model=fbm --hurst=0.8 --eps=0.05
//   nmc_sim --protocol=two_monotonic --model=permuted --trials=5 --csv
//   nmc_sim --help

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/exact_sync.h"
#include "baselines/periodic_sync.h"
#include "baselines/two_monotonic.h"
#include "common/flags.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/horizon_free.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "runtime/run.h"
#include "sim/assignment.h"
#include "streams/adversarial.h"
#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/permutation.h"

namespace {

constexpr char kUsage[] = R"(nmc_sim — continuous distributed counting simulator

  --protocol=NAME   counter (default) | horizon_free | hyz | exact |
                    periodic | two_monotonic
  --model=NAME      iid (default) | fractional | permuted | fbm |
                    alternating | sawtooth
  --n=INT           stream length (default 65536)
  --k=INT           number of sites (default 4)
  --eps=FLOAT       relative accuracy (default 0.1)
  --trials=INT      independent runs (default 3)
  --seed=INT        base seed (default 1)
  --psi=NAME        round_robin (default) | random | single | block |
                    sign_split | zero_crossing
  --csv             emit CSV instead of the aligned table

model parameters:
  --mu=FLOAT        drift of the iid/fractional models (default 0)
  --multiset=NAME   permuted model: balanced | biased | oscillating |
                    skewed | blocks (default balanced)
  --hurst=FLOAT     fbm model Hurst parameter (default 0.75)
  --peak=INT        sawtooth swing amplitude (default 64)

counter parameters (protocol=counter / horizon_free):
  --drift_mode=NAME zero (default) | unknown   (unknown requires ±1 input)
  --alpha=FLOAT --beta=FLOAT   eq. (1) constants (defaults 2, 2)
  --variance_adaptive          enable the value-scale extension
  --no_guard                   disable the conservative drift guard

baseline parameters:
  --period=INT      periodic baseline's reporting period (default 64)

output:
  --curve=N         dump an N-point trajectory of trial 0 as CSV
                    (t, messages, exact_sum, estimate) instead of the
                    summary table
)";

std::vector<double> MakeStream(const nmc::common::Flags& flags, int64_t n,
                               uint64_t seed) {
  const std::string model = flags.GetString("model", "iid");
  const double mu = flags.GetDouble("mu", 0.0);
  if (model == "iid") return nmc::streams::BernoulliStream(n, mu, seed);
  if (model == "fractional") {
    return nmc::streams::FractionalIidStream(n, mu, 1.0, seed);
  }
  if (model == "permuted") {
    const std::string multiset = flags.GetString("multiset", "balanced");
    return nmc::streams::RandomlyPermuted(
        nmc::streams::MakeAdversaryMultiset(multiset, n), seed);
  }
  if (model == "fbm") {
    return nmc::streams::FgnDaviesHarte(n, flags.GetDouble("hurst", 0.75),
                                        seed);
  }
  if (model == "alternating") return nmc::streams::AlternatingStream(n);
  if (model == "sawtooth") {
    return nmc::streams::SawtoothStream(n, flags.GetInt("peak", 64));
  }
  std::fprintf(stderr, "unknown --model=%s\n", model.c_str());
  std::exit(1);
}

std::unique_ptr<nmc::sim::Protocol> MakeProtocol(
    const nmc::common::Flags& flags, int k, int64_t n, double eps,
    uint64_t seed) {
  const std::string protocol = flags.GetString("protocol", "counter");
  if (protocol == "counter" || protocol == "horizon_free") {
    nmc::core::CounterOptions options;
    options.epsilon = eps;
    options.horizon_n = n;
    options.alpha = flags.GetDouble("alpha", options.alpha);
    options.beta = flags.GetDouble("beta", options.beta);
    options.variance_adaptive = flags.GetBool("variance_adaptive", false);
    options.enable_drift_guard = !flags.GetBool("no_guard", false);
    if (flags.GetString("model", "iid") == "fbm") {
      options.fbm_delta = 1.0 / flags.GetDouble("hurst", 0.75);
    }
    if (flags.GetString("drift_mode", "zero") == "unknown") {
      options.drift_mode = nmc::core::DriftMode::kUnknownUnitDrift;
    }
    options.seed = seed;
    if (protocol == "horizon_free") {
      nmc::core::HorizonFreeOptions hf;
      hf.counter = options;
      return std::make_unique<nmc::core::HorizonFreeCounter>(k, hf);
    }
    return std::make_unique<nmc::core::NonMonotonicCounter>(k, options);
  }
  if (protocol == "hyz") {
    nmc::hyz::HyzOptions options;
    options.epsilon = eps;
    options.seed = seed;
    return std::make_unique<nmc::hyz::HyzProtocol>(k, options);
  }
  if (protocol == "exact") {
    return std::make_unique<nmc::baselines::ExactSyncProtocol>(k);
  }
  if (protocol == "periodic") {
    return std::make_unique<nmc::baselines::PeriodicSyncProtocol>(
        k, flags.GetInt("period", 64));
  }
  if (protocol == "two_monotonic") {
    return std::make_unique<nmc::baselines::TwoMonotonicProtocol>(k, eps,
                                                                  1e-6, seed);
  }
  std::fprintf(stderr, "unknown --protocol=%s\n", protocol.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  nmc::common::Flags flags;
  const auto status = nmc::common::Flags::Parse(argc, argv, &flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(), kUsage);
    return 1;
  }
  if (flags.Has("help")) {
    std::fputs(kUsage, stdout);
    (void)flags.GetBool("help", false);
    return 0;
  }

  const int64_t n = flags.GetInt("n", 65536);
  const int k = static_cast<int>(flags.GetInt("k", 4));
  const double eps = flags.GetDouble("eps", 0.1);
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string psi_name = flags.GetString("psi", "round_robin");
  const bool csv = flags.GetBool("csv", false);
  const int64_t curve_points = flags.GetInt("curve", 0);

  nmc::common::Table table({"trial", "messages", "violation_steps",
                            "max_rel_err", "final_sum", "final_estimate"});
  nmc::common::RunningStat messages;
  int64_t total_violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t trial_seed = seed + static_cast<uint64_t>(trial) * 9973;
    const auto stream = MakeStream(flags, n, trial_seed);
    auto protocol = MakeProtocol(flags, k, n, eps, trial_seed + 1);
    auto psi = nmc::sim::MakeAssignment(psi_name, k, trial_seed + 2);
    if (psi == nullptr) {
      std::fprintf(stderr, "unknown --psi=%s\n", psi_name.c_str());
      return 1;
    }
    nmc::sim::TrackingOptions tracking;
    tracking.epsilon = eps;
    if (trial == 0 && curve_points > 0) {
      tracking.curve_points = static_cast<int>(curve_points);
    }
    nmc::runtime::RunConfig config;
    config.protocol = protocol.get();
    config.stream = &stream;
    config.psi = psi.get();
    config.tracking = tracking;
    const auto result = nmc::runtime::RunWithTransport(
                            nmc::runtime::TransportKind::kSim, config)
                            .tracking;
    if (trial == 0 && curve_points > 0) {
      nmc::common::Table curve({"t", "messages", "exact_sum", "estimate"});
      for (const auto& point : result.curve) {
        curve.AddRow({nmc::common::Format(point.t),
                      nmc::common::Format(point.messages),
                      nmc::common::Format(point.sum, 2),
                      nmc::common::Format(point.estimate, 2)});
      }
      std::fputs(curve.ToCsv().c_str(), stdout);
      return 0;
    }
    table.AddRow({nmc::common::Format(static_cast<int64_t>(trial)),
                  nmc::common::Format(result.messages),
                  nmc::common::Format(result.violation_steps),
                  nmc::common::Format(result.max_rel_error, 4),
                  nmc::common::Format(result.final_sum, 1),
                  nmc::common::Format(result.final_estimate, 1)});
    messages.Add(static_cast<double>(result.messages));
    total_violations += result.violation_steps;
  }

  // Reject typos before printing anything (all flags are queried by now).
  for (const auto& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "unknown flag --%s\n%s", key.c_str(), kUsage);
    return 1;
  }
  for (const auto& key : flags.Malformed()) {
    std::fprintf(stderr, "malformed value for --%s\n", key.c_str());
    return 1;
  }

  if (csv) {
    std::fputs(table.ToCsv().c_str(), stdout);
  } else {
    table.Print();
    std::printf("\nmean messages     : %.0f (stderr %.0f)\n", messages.mean(),
                messages.stderr_mean());
    std::printf("messages / update : %.3f\n",
                messages.mean() / static_cast<double>(n));
    std::printf("violating steps   : %lld across %d trials\n",
                static_cast<long long>(total_violations), trials);
  }
  return 0;
}
