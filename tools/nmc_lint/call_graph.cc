#include "nmc_lint/call_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <string>

#include "nmc_lint/scopes.h"
#include "nmc_lint/token_match.h"

namespace nmc::lint {

namespace {

std::vector<std::string> SplitQualified(const std::string& name) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= name.size()) {
    const size_t sep = name.find("::", begin);
    if (sep == std::string::npos) {
      if (begin < name.size()) parts.push_back(name.substr(begin));
      break;
    }
    if (sep > begin) parts.push_back(name.substr(begin, sep - begin));
    begin = sep + 2;
  }
  return parts;
}

/// `quals` must be a suffix of the node's namespace::class path for a
/// qualified call to resolve to it (`GeometricSkip::DrawGap` matches
/// nmc::common + GeometricSkip).
bool QualSuffixMatches(const FunctionSymbol& node,
                       const std::vector<std::string>& quals) {
  std::vector<std::string> path = SplitQualified(node.name_space);
  if (!node.class_name.empty()) path.push_back(node.class_name);
  if (quals.size() > path.size()) return false;
  return std::equal(quals.rbegin(), quals.rend(), path.rbegin());
}

std::string JoinQuals(const std::vector<std::string>& quals,
                      const std::string& name) {
  std::string out;
  for (const std::string& q : quals) out += q + "::";
  return out + name;
}

}  // namespace

// ---- construction ---------------------------------------------------------

CallGraph CallGraph::Build(const std::vector<const FileSymbols*>& files) {
  CallGraph graph;
  // Node order: files in the caller's (sorted) order, functions in source
  // order within each file — the determinism everything downstream rests on.
  std::vector<size_t> offsets(files.size(), 0);
  for (size_t fi = 0; fi < files.size(); ++fi) {
    offsets[fi] = graph.nodes_.size();
    for (const FunctionSymbol& fn : files[fi]->functions) {
      graph.nodes_.push_back(fn);
    }
  }
  graph.adjacency_.resize(graph.nodes_.size());

  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t n = 0; n < graph.nodes_.size(); ++n) {
    by_name[graph.nodes_[n].name].push_back(n);
  }

  auto add_edge = [&](size_t caller, size_t callee, int line) {
    for (const GraphEdge& edge : graph.adjacency_[caller]) {
      if (edge.callee == callee) return;  // keep the earliest call site
    }
    graph.adjacency_[caller].push_back({callee, line});
    ++graph.edge_count_;
  };

  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (const CallSite& call : files[fi]->calls) {
      const size_t caller = offsets[fi] + call.caller_index;
      const FunctionSymbol& from = graph.nodes_[caller];
      if (!call.quals.empty() && call.quals.front() == "std") continue;
      const auto found = by_name.find(call.name);
      if (found == by_name.end()) {
        ++graph.unresolved_[JoinQuals(call.quals, call.name)];
        continue;
      }
      std::vector<size_t> candidates = found->second;
      if (!call.quals.empty()) {
        std::vector<size_t> matched;
        for (const size_t n : candidates) {
          if (QualSuffixMatches(graph.nodes_[n], call.quals)) {
            matched.push_back(n);
          }
        }
        if (matched.empty()) {
          ++graph.unresolved_[JoinQuals(call.quals, call.name)];
          continue;
        }
        candidates = std::move(matched);
      } else if (call.member_call) {
        // `x.f()` / `x->f()`: the receiver's type is unknown, so prefer
        // member functions, the caller's own class first (this->f()).
        std::vector<size_t> members, own_class;
        for (const size_t n : candidates) {
          if (graph.nodes_[n].class_name.empty()) continue;
          members.push_back(n);
          if (!from.class_name.empty() &&
              graph.nodes_[n].class_name == from.class_name) {
            own_class.push_back(n);
          }
        }
        if (!own_class.empty()) {
          candidates = std::move(own_class);
        } else if (!members.empty()) {
          candidates = std::move(members);
        }
      } else {
        // Bare call: same class beats same file beats same namespace beats
        // the whole overload set.
        auto tier = [&](auto pred) {
          std::vector<size_t> out;
          for (const size_t n : candidates) {
            if (pred(graph.nodes_[n])) out.push_back(n);
          }
          return out;
        };
        std::vector<size_t> best;
        if (!from.class_name.empty()) {
          best = tier([&](const FunctionSymbol& f) {
            return f.class_name == from.class_name;
          });
        }
        if (best.empty()) {
          best = tier([&](const FunctionSymbol& f) {
            return f.file == from.file;
          });
        }
        if (best.empty() && !from.name_space.empty()) {
          best = tier([&](const FunctionSymbol& f) {
            return f.name_space == from.name_space;
          });
        }
        if (!best.empty()) candidates = std::move(best);
      }
      for (const size_t callee : candidates) {
        add_edge(caller, callee, call.line);
      }
    }
  }
  for (std::vector<GraphEdge>& edges : graph.adjacency_) {
    std::sort(edges.begin(), edges.end(),
              [](const GraphEdge& a, const GraphEdge& b) {
                return a.callee < b.callee;
              });
  }
  return graph;
}

// ---- roots and reachability -----------------------------------------------

std::vector<size_t> CallGraph::HotPathRoots() const {
  std::vector<size_t> roots;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (InProtocolCode(nodes_[n].file) &&
        std::any_of(std::begin(kHotPathEntryPoints),
                    std::end(kHotPathEntryPoints), [&](const char* name) {
                      return nodes_[n].name == name;
                    })) {
      roots.push_back(n);
    }
  }
  return roots;
}

std::vector<size_t> CallGraph::ReentrancyRoots() const {
  std::vector<size_t> roots = HotPathRoots();
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const FunctionSymbol& fn = nodes_[n];
    const bool audit_class =
        std::any_of(std::begin(kReentrantAuditClasses),
                    std::end(kReentrantAuditClasses), [&](const char* name) {
                      return fn.class_name == name;
                    });
    if ((audit_class && InLibraryCode(fn.file)) ||
        fn.annotation == ThreadAnnotation::kReentrant) {
      roots.push_back(n);
    }
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

Reachability CallGraph::ReachableFrom(const std::vector<size_t>& roots) const {
  Reachability reach;
  reach.parent.assign(nodes_.size(), Reachability::kUnreached);
  reach.parent_line.assign(nodes_.size(), 0);
  reach.depth.assign(nodes_.size(), -1);
  std::deque<size_t> queue;
  for (const size_t root : roots) {
    if (reach.depth[root] != -1) continue;
    reach.depth[root] = 0;
    queue.push_back(root);
  }
  while (!queue.empty()) {
    const size_t from = queue.front();
    queue.pop_front();
    for (const GraphEdge& edge : adjacency_[from]) {
      if (reach.depth[edge.callee] != -1) continue;
      reach.depth[edge.callee] = reach.depth[from] + 1;
      reach.parent[edge.callee] = from;
      reach.parent_line[edge.callee] = edge.line;
      queue.push_back(edge.callee);
    }
  }
  return reach;
}

std::vector<size_t> CallGraph::ChainTo(const Reachability& reach,
                                       size_t node) const {
  std::vector<size_t> chain;
  if (!reach.Reached(node)) return chain;
  for (size_t cur = node;; cur = reach.parent[cur]) {
    chain.push_back(cur);
    if (reach.parent[cur] == Reachability::kUnreached) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::string CallGraph::RenderChain(const std::vector<size_t>& chain) const {
  std::string out = " [call chain: ";
  for (size_t i = 0; i < chain.size(); ++i) {
    const FunctionSymbol& fn = nodes_[chain[i]];
    if (i > 0) out += " -> ";
    out += fn.Display() + " (" + fn.file + ":" + std::to_string(fn.line) + ")";
  }
  return out + "]";
}

std::vector<FlowStep> CallGraph::ChainFlow(const Reachability& reach,
                                           const std::vector<size_t>& chain,
                                           const std::string& hazard_file,
                                           int hazard_line,
                                           const std::string& hazard_note)
    const {
  std::vector<FlowStep> flow;
  for (size_t i = 0; i < chain.size(); ++i) {
    const FunctionSymbol& fn = nodes_[chain[i]];
    if (i == 0) {
      flow.push_back({fn.file, fn.line, fn.Display() + "() is an entry point"});
    } else {
      const FunctionSymbol& caller = nodes_[chain[i - 1]];
      flow.push_back({caller.file, reach.parent_line[chain[i]],
                      "calls " + fn.Display() + "()"});
    }
  }
  flow.push_back({hazard_file, hazard_line, hazard_note});
  return flow;
}

// ---- DOT ------------------------------------------------------------------

std::string CallGraph::ToDot() const {
  const std::vector<size_t> hot = HotPathRoots();
  auto is_hot = [&](size_t n) {
    return std::binary_search(hot.begin(), hot.end(), n);
  };
  std::ostringstream out;
  out << "digraph nmc_call_graph {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const FunctionSymbol& fn = nodes_[n];
    out << "  n" << n << " [label=\"" << fn.Display() << "\\n" << fn.file
        << ":" << fn.line;
    if (fn.annotation == ThreadAnnotation::kReentrant) {
      out << "\\n[reentrant]";
    } else if (fn.annotation == ThreadAnnotation::kNotThreadSafe) {
      out << "\\n[not-thread-safe]";
    }
    out << "\"";
    if (is_hot(n)) out << ", shape=box";
    out << "];\n";
  }
  for (size_t n = 0; n < nodes_.size(); ++n) {
    for (const GraphEdge& edge : adjacency_[n]) {
      out << "  n" << n << " -> n" << edge.callee << ";\n";
    }
  }
  out << "  // " << nodes_.size() << " nodes, " << edge_count_
      << " resolved edges, " << unresolved_.size()
      << " distinct unresolved callee names\n";
  for (const auto& [name, count] : unresolved_) {
    out << "  // unresolved: " << name << " x" << count << "\n";
  }
  out << "}\n";
  return out.str();
}

// ---- interprocedural rules ------------------------------------------------

namespace {

std::vector<std::string> ReservedReceivers(const std::vector<Token>& code) {
  std::vector<std::string> names;
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (IsIdent(code, i) &&
        (IsPunct(code, i + 1, ".") || IsPunct(code, i + 1, "->")) &&
        IsIdent(code, i + 2, "reserve") && IsPunct(code, i + 3, "(")) {
      names.push_back(code[i].text);
    }
  }
  return names;
}

struct Hazard {
  int line = 0;
  std::string rule;
  std::string message;  // chain suffix appended by the caller
  std::string note;     // final flow step
};

/// Direct hazards inside one function body — the same patterns the direct
/// hot-path rules police in entry-point bodies, here found anywhere the
/// propagation can reach.
std::vector<Hazard> ScanBodyHazards(const FileSymbols& file,
                                    const FunctionSymbol& fn,
                                    const std::vector<std::string>& reserved) {
  std::vector<Hazard> hazards;
  const std::vector<Token>& code = file.code;
  auto is_reserved = [&](const std::string& name) {
    return std::find(reserved.begin(), reserved.end(), name) != reserved.end();
  };
  const std::string where = fn.Display() + "()";
  for (size_t i = fn.body_begin; i < fn.body_end && i < code.size(); ++i) {
    if (IsIdentIn(code, i, kTranscendentals) && IsPunct(code, i + 1, "(")) {
      hazards.push_back(
          {code[i].line, "NO_PER_UPDATE_TRANSCENDENTALS",
           "'" + code[i].text + "' in " + where +
               " is reachable from a per-update hot-path entry point; "
               "amortize it (core::RateCache, geometric skip) or hoist it "
               "off the per-update path",
           "'" + code[i].text + "' call"});
    } else if (IsIdent(code, i, "new")) {
      hazards.push_back(
          {code[i].line, "NO_HEAP_IN_HOT_PATH",
           "'new' in " + where +
               " is reachable from a per-update hot-path entry point; "
               "preallocate in the constructor or use the per-tick arena "
               "(sim::Arena)",
           "'new' expression"});
    } else if (IsIdentIn(code, i, kHeapMakers) &&
               (IsPunct(code, i + 1, "<") || IsPunct(code, i + 1, "("))) {
      hazards.push_back(
          {code[i].line, "NO_HEAP_IN_HOT_PATH",
           "'" + code[i].text + "' in " + where +
               " is reachable from a per-update hot-path entry point; hoist "
               "the allocation out of the per-update path",
           "'" + code[i].text + "' call"});
    } else if (i >= fn.body_begin + 2 && IsIdentIn(code, i, kGrowthCalls) &&
               IsPunct(code, i + 1, "(") &&
               (IsPunct(code, i - 1, ".") || IsPunct(code, i - 1, "->")) &&
               IsIdent(code, i - 2) && !is_reserved(code[i - 2].text)) {
      hazards.push_back(
          {code[i].line, "NO_HEAP_IN_HOT_PATH",
           "'" + code[i - 2].text + "." + code[i].text + "' in " + where +
               " with no reserve() on '" + code[i - 2].text +
               "' anywhere in its file, reachable from a per-update "
               "hot-path entry point; reserve capacity up front",
           "'" + code[i].text + "' growth"});
    } else if (!InHotPath(fn.file) && i + 3 < code.size() &&
               IsIdent(code, i, "std") && IsPunct(code, i + 1, "::") &&
               IsIdentIn(code, i + 2, kMapLike) && IsPunct(code, i + 3, "<")) {
      hazards.push_back(
          {code[i].line, "NO_MAP_IN_HOT_PATH",
           "node-based container in " + where +
               " is reachable from a per-update hot-path entry point; use a "
               "flat vector/array",
           "std::" + code[i + 2].text + " use"});
    } else if (!InSimLibrary(fn.file) && IsIdent(code, i, "std") &&
               IsPunct(code, i + 1, "::") &&
               (IsIdent(code, i + 2, "cout") || IsIdent(code, i + 2, "cerr"))) {
      hazards.push_back({code[i].line, "NO_IOSTREAM_IN_LIB",
                         "console output in " + where +
                             " is reachable from a per-update hot-path entry "
                             "point",
                         "console output"});
    }
  }
  return hazards;
}

}  // namespace

void RunInterprocRules(const std::vector<const FileSymbols*>& files,
                       const CallGraph& graph,
                       std::map<std::string, std::vector<Finding>>*
                           findings_by_file) {
  // (file index, per-file function index) → graph node index; Build()
  // appended nodes in exactly this order.
  std::vector<size_t> offsets(files.size(), 0);
  {
    size_t total = 0;
    for (size_t fi = 0; fi < files.size(); ++fi) {
      offsets[fi] = total;
      total += files[fi]->functions.size();
    }
  }
  std::map<std::string, std::vector<std::string>> reserved_by_file;
  for (const FileSymbols* file : files) {
    reserved_by_file[file->file] = ReservedReceivers(file->code);
  }

  // 1. Transitive hot-path propagation, depth >= 1 (depth 0 is the direct
  //    rules' territory).
  const Reachability hot = graph.ReachableFrom(graph.HotPathRoots());
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const FileSymbols& file = *files[fi];
    if (!InLibraryCode(file.file)) continue;
    for (size_t k = 0; k < file.functions.size(); ++k) {
      const size_t node = offsets[fi] + k;
      if (!hot.Reached(node) || hot.depth[node] < 1) continue;
      const FunctionSymbol& fn = file.functions[k];
      const std::vector<size_t> chain = graph.ChainTo(hot, node);
      const std::string chain_text = graph.RenderChain(chain);
      for (const Hazard& hazard :
           ScanBodyHazards(file, fn, reserved_by_file[file.file])) {
        Finding finding;
        finding.file = file.file;
        finding.line = hazard.line;
        finding.rule = hazard.rule;
        finding.message = hazard.message + chain_text;
        finding.flow = graph.ChainFlow(hot, chain, file.file, hazard.line,
                                       hazard.note);
        (*findings_by_file)[file.file].push_back(std::move(finding));
      }
    }
  }

  // 2. NO_STATIC_LOCAL_IN_REENTRANT: mutable function-local statics
  //    anywhere the reentrancy audit can reach (depth 0 included — a static
  //    local directly in ProcessBatch is just as shared).
  const Reachability audit = graph.ReachableFrom(graph.ReentrancyRoots());
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const FileSymbols& file = *files[fi];
    if (!InLibraryCode(file.file)) continue;
    for (const StaticLocal& local : file.static_locals) {
      const size_t node = offsets[fi] + local.function_index;
      if (!audit.Reached(node)) continue;
      const FunctionSymbol& fn = file.functions[local.function_index];
      const std::vector<size_t> chain = graph.ChainTo(audit, node);
      const std::string named =
          local.hint.empty() ? "" : " '" + local.hint + "'";
      Finding finding;
      finding.file = file.file;
      finding.line = local.line;
      finding.rule = "NO_STATIC_LOCAL_IN_REENTRANT";
      finding.message =
          "mutable function-local static" + named + " in " + fn.Display() +
          "() is process-wide state on a reentrant path; hoist it into a "
          "member, or make it const/thread_local" +
          graph.RenderChain(chain);
      finding.flow = graph.ChainFlow(audit, chain, file.file, local.line,
                                     "static local" + named);
      (*findings_by_file)[file.file].push_back(std::move(finding));
    }
  }

  // 3. THREAD_COMPAT: a declared-reentrant function may only call resolved
  //    callees that are themselves declared reentrant.
  const std::vector<FunctionSymbol>& nodes = graph.nodes();
  for (size_t n = 0; n < nodes.size(); ++n) {
    const FunctionSymbol& caller = nodes[n];
    if (caller.annotation != ThreadAnnotation::kReentrant ||
        !InLibraryCode(caller.file)) {
      continue;
    }
    for (const GraphEdge& edge : graph.adjacency()[n]) {
      const FunctionSymbol& callee = nodes[edge.callee];
      if (callee.annotation == ThreadAnnotation::kReentrant) continue;
      Finding finding;
      finding.file = caller.file;
      finding.line = edge.line;
      finding.rule = "THREAD_COMPAT";
      if (callee.annotation == ThreadAnnotation::kNotThreadSafe) {
        finding.message = "reentrant " + caller.Display() +
                          "() calls not-thread-safe " + callee.Display() +
                          "() (" + callee.file + ":" +
                          std::to_string(callee.line) +
                          "); a reentrant function may only call reentrant "
                          "functions";
      } else {
        finding.message = "reentrant " + caller.Display() +
                          "() calls unannotated " + callee.Display() + "() (" +
                          callee.file + ":" + std::to_string(callee.line) +
                          "); annotate the callee (// nmc: reentrant or "
                          "// nmc: not-thread-safe(reason)) or drop the "
                          "caller's contract";
      }
      finding.flow = {
          {caller.file, caller.line,
           caller.Display() + "() declared reentrant"},
          {caller.file, edge.line, "calls " + callee.Display() + "()"},
          {callee.file, callee.line, callee.Display() + "() defined here"}};
      (*findings_by_file)[caller.file].push_back(std::move(finding));
    }
  }
}

}  // namespace nmc::lint
