#pragma once

#include <string>
#include <vector>

namespace nmc::lint {

/// Lexical class of a token. The linter's rules consume kIdentifier /
/// kNumber / kPunct ("code" tokens) and kPpDirective; comment and literal
/// tokens exist so that nothing inside them can ever look like code — the
/// raw-string false positives of the line-stripping scanner are the
/// regression class this lexer retires.
enum class TokenKind {
  kIdentifier,   ///< keywords included; the linter treats them uniformly
  kNumber,       ///< pp-number: 0x1F, 1'000'000ULL, 1e-9, .5f, ...
  kPunct,        ///< operator/punctuator; multi-char forms are one token
  kString,       ///< "..." with escapes, including u8/u/U/L prefixes
  kRawString,    ///< R"delim(...)delim", including encoding prefixes
  kCharLiteral,  ///< '...' with escapes, including prefixes
  kComment,      ///< one // comment or one /* */ comment (may span lines)
  kPpDirective,  ///< a whole preprocessor directive, continuations spliced
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;  ///< spliced source text (directives: includes the '#')
  int line = 0;      ///< 1-based physical line where the token starts

  bool operator==(const Token&) const = default;
};

/// Tokenizes C++ source. Error-tolerant: unterminated literals close at the
/// next newline (or EOF) instead of swallowing the rest of the file, so one
/// stray quote cannot blind every later rule. Backslash-newline splices are
/// removed (tokens carry the spliced text; line numbers stay physical).
/// Limitation, documented rather than handled: a backslash at the very end
/// of a line *inside a raw string* is treated as a splice too — reverting
/// splices inside raw strings (standard phase 3) is not worth the machinery
/// for a linter that only ever ignores raw-string contents.
std::vector<Token> Lex(const std::string& content);

}  // namespace nmc::lint
