#include "nmc_lint/sarif.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace nmc::lint {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SarifReport(const std::vector<Finding>& findings,
                        const std::vector<bool>& baselined) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"nmc_lint\",\n"
      << "          \"informationUri\": \"DESIGN.md\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = Rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << JsonEscape(rules[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const bool suppressed = i < baselined.size() && baselined[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"" << (suppressed ? "note" : "error")
        << "\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}\n"
        << "          ]";
    if (!f.flow.empty()) {
      // Interprocedural chain: entry point → call sites → hazard, as one
      // SARIF codeFlow/threadFlow so viewers can step the propagation.
      out << ",\n          \"codeFlows\": [{\"threadFlows\": [{\"locations\": "
             "[\n";
      for (size_t j = 0; j < f.flow.size(); ++j) {
        const FlowStep& step = f.flow[j];
        out << "            {\"location\": {\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << JsonEscape(step.file) << "\"}, \"region\": {\"startLine\": "
            << (step.line > 0 ? step.line : 1)
            << "}}, \"message\": {\"text\": \"" << JsonEscape(step.note)
            << "\"}}}" << (j + 1 < f.flow.size() ? "," : "") << "\n";
      }
      out << "          ]}]}]";
    }
    if (suppressed) {
      out << ",\n          \"suppressions\": [{\"kind\": \"external\"}]";
    }
    out << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace nmc::lint
