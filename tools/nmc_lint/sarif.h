#pragma once

#include <string>
#include <vector>

#include "nmc_lint/lint.h"

namespace nmc::lint {

/// Renders findings as a SARIF 2.1.0 log with a single run. The tool driver
/// carries the full rule registry (Rules()) so viewers can show rule help
/// even for rules with no current results. `baselined` parallels `findings`;
/// baselined results are emitted at level "note" with an external
/// suppression, everything else at level "error". Output is deterministic:
/// same findings, byte-identical JSON.
std::string SarifReport(const std::vector<Finding>& findings,
                        const std::vector<bool>& baselined);

}  // namespace nmc::lint
