#include "nmc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace nmc::lint {

namespace {

// ---- Path scopes ----------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsHeader(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

/// src/ minus src/bench/ — the simulator + protocol library proper, where
/// wall-clock reads and console output are banned (src/bench is the timing
/// and reporting layer, which needs both).
bool InSimLibrary(const std::string& path) {
  return StartsWith(path, "src/") && !StartsWith(path, "src/bench/");
}

/// Directories whose code decides *what messages are sent when* — any
/// iteration-order dependence here leaks straight into message schedules.
bool InProtocolCode(const std::string& path) {
  return StartsWith(path, "src/core/") || StartsWith(path, "src/hyz/") ||
         StartsWith(path, "src/baselines/") || StartsWith(path, "src/sim/");
}

bool InHotPath(const std::string& path) { return StartsWith(path, "src/sim/"); }

/// Determinism scope: everything that can influence a recorded result —
/// the library, the bench drivers, and the CLI tools. tests/ are excluded:
/// they only check results, they do not produce them.
bool InDeterminismScope(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "bench/") ||
         StartsWith(path, "tools/");
}

bool InRepoCode(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "bench/") ||
         StartsWith(path, "tests/") || StartsWith(path, "tools/");
}

// ---- Rule table -----------------------------------------------------------

struct TokenRule {
  const char* id;
  bool (*in_scope)(const std::string& path);
  const char* pattern;  // ECMAScript regex, word-boundary aware.
  const char* message;
};

/// The pattern-match rules. Matching runs on comment- and string-stripped
/// text, so `// calls rand()` and `"rand"` never fire; `\b` boundaries keep
/// identifiers like resolution_time() or operand from matching time( / rand.
const TokenRule kTokenRules[] = {
    {"NO_UNSEEDED_RNG", InDeterminismScope,
     R"(\brandom_device\b|\bsrand\b|\brand\s*\()",
     "non-deterministic RNG source; use a seeded nmc::common::Rng"},
    {"NO_WALLCLOCK_IN_SIM", InSimLibrary,
     R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b)"
     R"(|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b|\blocaltime\b|\bgmtime\b)",
     "wall-clock read in simulator/protocol code; timing belongs in "
     "src/bench"},
    {"NO_MAP_IN_HOT_PATH", InHotPath,
     R"(\bstd::map\s*<|\bstd::multimap\s*<|\bstd::deque\s*<)",
     "node-based container in src/sim delivery path; use a flat "
     "vector/array (see PR 1 regression class)"},
    {"NO_IOSTREAM_IN_LIB", InSimLibrary,
     R"(#\s*include\s*<iostream>|\bstd::cout\b|\bstd::cerr\b|\bprintf\s*\()",
     "console output in library code; return data or use "
     "fprintf(stderr, ...) at the binary layer"},
};

struct HygieneRule {
  const char* id;
  const char* summary;
};

const std::vector<RuleInfo> kAllRules = {
    {"NO_UNSEEDED_RNG",
     "no std::random_device / rand() / srand in src/, bench/, tools/"},
    {"NO_WALLCLOCK_IN_SIM",
     "no wall-clock reads in src/ outside src/bench timing code"},
    {"NO_UNORDERED_ITERATION_IN_PROTOCOL",
     "no iteration over unordered containers in src/{core,hyz,baselines,sim}"},
    {"NO_MAP_IN_HOT_PATH", "no std::map/std::deque in src/sim delivery paths"},
    {"NO_IOSTREAM_IN_LIB", "no std::cout/printf in library code"},
    {"NO_PER_UPDATE_TRANSCENDENTALS",
     "no log/exp/pow inside per-update protocol entry points; hoist into a "
     "rate helper or cache (see core::RateCache)"},
    {"INCLUDE_HYGIENE",
     "no parent-relative #include \"../...\" and no <bits/...> headers"},
    {"PRAGMA_ONCE", "every header starts with #pragma once"},
    {"ALLOW_MISSING_REASON", "nmc-lint: allow(...) must carry a reason"},
    {"ALLOW_UNKNOWN_RULE", "nmc-lint: allow(...) names a rule that exists"},
    {"ALLOW_UNUSED", "nmc-lint: allow(...) must suppress something"},
};

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& rule : kAllRules) {
    if (id == rule.id) return true;
  }
  return false;
}

// ---- Lexical preprocessing ------------------------------------------------

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Blanks comments and string/character literals (preserving length and
/// line structure) so token rules only ever match real code. Handles //,
/// /* */, "..." with escapes, '...', and R"( ... )" raw strings with
/// optional delimiters.
std::string StripCommentsAndStrings(const std::string& content) {
  std::string out = content;
  const size_t n = content.size();
  size_t i = 0;
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = content[i];
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      while (i < n && content[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      blank(i++);
      blank(i++);
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        blank(i++);
      }
      if (i + 1 < n) {
        blank(i++);
        blank(i++);
      } else if (i < n) {
        blank(i++);
      }
    } else if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
               (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                               content[i - 1])) &&
                           content[i - 1] != '_'))) {
      // Raw string: R"delim( ... )delim"
      size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      const size_t end = content.find(closer, j);
      const size_t stop = end == std::string::npos ? n : end + closer.size();
      while (i < stop) blank(i++);
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      blank(i++);
      while (i < n && content[i] != quote && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n && content[i] == quote) blank(i++);
    } else {
      ++i;
    }
  }
  return out;
}

// ---- Allow annotations ----------------------------------------------------

struct Allowance {
  int line = 0;           // line the allowance was written on (1-based)
  int target_line = 0;    // line it suppresses
  std::string rule;
  bool has_reason = false;
  bool used = false;
};

/// Parses allow annotations — the "nmc-lint:" marker followed by a
/// parenthesized comma-separated rule list and a free-text reason — from
/// the raw (unstripped) lines. An annotation on a comment-only line applies
/// to the next line; inline annotations apply to their own line.
std::vector<Allowance> ParseAllowances(const std::vector<std::string>& lines) {
  static const std::regex kAllowRe(
      R"(//\s*nmc-lint:\s*allow\(([^)]*)\)\s*(.*)$)");
  std::vector<Allowance> allowances;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(lines[i], match, kAllowRe)) continue;
    const std::string first_two = lines[i].substr(
        std::min(lines[i].find_first_not_of(" \t"), lines[i].size()), 2);
    const int target =
        first_two == "//" ? static_cast<int>(i) + 2 : static_cast<int>(i) + 1;
    const bool has_reason = !match[2].str().empty();
    std::stringstream rule_list(match[1].str());
    std::string rule;
    while (std::getline(rule_list, rule, ',')) {
      const size_t begin = rule.find_first_not_of(" \t");
      const size_t end = rule.find_last_not_of(" \t");
      if (begin == std::string::npos) continue;
      allowances.push_back({static_cast<int>(i) + 1, target,
                            rule.substr(begin, end - begin + 1), has_reason,
                            false});
    }
  }
  return allowances;
}

// ---- NO_UNORDERED_ITERATION_IN_PROTOCOL -----------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Names declared in this file with an unordered container type. Lexical
/// heuristic: find `unordered_{map,set,...} < ... >` (brackets balanced
/// within the line) and take the identifier that follows, skipping
/// function declarations (identifier followed by '(').
std::set<std::string> CollectUnorderedNames(
    const std::vector<std::string>& stripped) {
  static const std::regex kDeclRe(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  std::set<std::string> names;
  for (const std::string& line : stripped) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDeclRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      size_t pos = static_cast<size_t>(it->position()) + it->length() - 1;
      int depth = 0;
      while (pos < line.size()) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++pos;
      }
      if (pos >= line.size()) continue;  // declaration spans lines: skip
      ++pos;
      while (pos < line.size() &&
             (line[pos] == ' ' || line[pos] == '&' || line[pos] == '*')) {
        ++pos;
      }
      std::string name;
      while (pos < line.size() && IsIdentChar(line[pos])) name += line[pos++];
      while (pos < line.size() && line[pos] == ' ') ++pos;
      const bool is_function = pos < line.size() && line[pos] == '(';
      if (!name.empty() && !is_function) names.insert(name);
    }
  }
  return names;
}

void CheckUnorderedIteration(const std::string& path,
                             const std::vector<std::string>& stripped,
                             std::vector<Finding>* findings) {
  const std::set<std::string> names = CollectUnorderedNames(stripped);
  if (names.empty()) return;
  static const std::regex kRangeForRe(
      R"(\bfor\s*\([^;)]*:\s*([A-Za-z_]\w*)\s*\))");
  // Only the begin() family starts an iteration; `x.find(k) != x.end()` is
  // the standard membership probe and must not fire.
  static const std::regex kBeginRe(
      R"(\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?r?begin\s*\()");
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    for (const std::regex* re : {&kRangeForRe, &kBeginRe}) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), *re);
           it != std::sregex_iterator(); ++it) {
        if (names.count((*it)[1].str()) == 0) continue;
        findings->push_back(
            {path, static_cast<int>(i) + 1,
             "NO_UNORDERED_ITERATION_IN_PROTOCOL",
             "iteration over unordered container '" + (*it)[1].str() +
                 "' — hash-order leaks into the message schedule; iterate "
                 "a sorted/indexed structure instead"});
      }
    }
  }
}

// ---- NO_PER_UPDATE_TRANSCENDENTALS ----------------------------------------

/// Entry points the harness calls once per stream item (or per consumed
/// run). A transcendental evaluated here is paid O(n) times per trial —
/// the exact cost class the geometric skip sampler and RateCache exist to
/// remove. Rate math belongs in a helper the body calls only on the slow
/// path, or behind a cache keyed on its inputs.
constexpr const char* kPerUpdateEntryPoints =
    R"(\b(OnLocalUpdate|ProcessUpdate|ProcessBatch|ProcessRun|ConsumeRun)\s*\()";

/// Brace-tracks the *definitions* of the per-update entry points (a name
/// followed by `;` before any `{` is a declaration and is skipped) and
/// flags direct transcendental calls inside their bodies. Lexical, like
/// every other rule here: a helper called from the body is not traced —
/// the rule polices the hot loop's own text, the layer where these costs
/// have actually crept in.
void CheckPerUpdateTranscendentals(const std::string& path,
                                   const std::vector<std::string>& stripped,
                                   std::vector<Finding>* findings) {
  static const std::regex kEntryRe(kPerUpdateEntryPoints);
  static const std::regex kTransRe(
      R"(\b(?:std\s*::\s*)?(log1p|log2|log10|log|exp2|expm1|exp|pow)\s*\()");
  enum class Mode { kOutside, kSeeking, kInside };
  Mode mode = Mode::kOutside;
  int depth = 0;
  std::string entry;
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    size_t pos = 0;
    if (mode == Mode::kOutside) {
      std::smatch match;
      if (!std::regex_search(line, match, kEntryRe)) continue;
      mode = Mode::kSeeking;
      entry = match[1].str();
      pos = static_cast<size_t>(match.position()) +
            static_cast<size_t>(match.length());
    }
    bool line_in_body = mode == Mode::kInside;
    for (; pos < line.size(); ++pos) {
      const char c = line[pos];
      if (mode == Mode::kSeeking) {
        if (c == ';') {  // declaration (or call expression), not a body
          mode = Mode::kOutside;
          break;
        }
        if (c == '{') {
          mode = Mode::kInside;
          depth = 1;
          line_in_body = true;
        }
      } else if (mode == Mode::kInside) {
        if (c == '{') {
          ++depth;
        } else if (c == '}' && --depth == 0) {
          mode = Mode::kOutside;
          break;
        }
      }
    }
    if (!line_in_body) continue;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kTransRe);
         it != std::sregex_iterator(); ++it) {
      findings->push_back(
          {path, static_cast<int>(i) + 1, "NO_PER_UPDATE_TRANSCENDENTALS",
           "'" + (*it)[1].str() + "' call inside " + entry +
               "() runs once per update; hoist it into a rate helper, "
               "cache it (core::RateCache), or fast-forward with the skip "
               "sampler"});
    }
  }
}

// ---- INCLUDE_HYGIENE / PRAGMA_ONCE ----------------------------------------

void CheckIncludeHygiene(const std::string& path,
                         const std::vector<std::string>& raw,
                         std::vector<Finding>* findings) {
  // Anchored to line start: include directives cannot be indented behind
  // code, and the anchor keeps commented-out includes from firing (this
  // check runs on raw lines because the string stripper blanks the
  // "../path" literal itself).
  static const std::regex kParentRe(R"(^\s*#\s*include\s*\"\.\./)");
  static const std::regex kBitsRe(R"(^\s*#\s*include\s*<bits/)");
  for (size_t i = 0; i < raw.size(); ++i) {
    if (std::regex_search(raw[i], kParentRe)) {
      findings->push_back({path, static_cast<int>(i) + 1, "INCLUDE_HYGIENE",
                           "parent-relative #include; include repo-rooted "
                           "paths (e.g. \"core/sampling.h\")"});
    }
    if (std::regex_search(raw[i], kBitsRe)) {
      findings->push_back({path, static_cast<int>(i) + 1, "INCLUDE_HYGIENE",
                           "non-portable <bits/...> header"});
    }
  }
}

void CheckPragmaOnce(const std::string& path,
                     const std::vector<std::string>& raw,
                     std::vector<Finding>* findings) {
  for (const std::string& line : raw) {
    const size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    if (line.compare(begin, 12, "#pragma once") == 0) return;
  }
  findings->push_back({path, 1, "PRAGMA_ONCE",
                       "header lacks #pragma once (repo convention; "
                       "#ifndef guards were retired in PR 2)"});
}

}  // namespace

// ---- Public API -----------------------------------------------------------

const std::vector<RuleInfo>& Rules() { return kAllRules; }

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content) {
  std::vector<Finding> findings;
  if (!InRepoCode(path)) return findings;

  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> stripped =
      SplitLines(StripCommentsAndStrings(content));
  std::vector<Allowance> allowances = ParseAllowances(raw);

  // Pattern rules on stripped text.
  for (const TokenRule& rule : kTokenRules) {
    if (!rule.in_scope(path)) continue;
    const std::regex re(rule.pattern);
    for (size_t i = 0; i < stripped.size(); ++i) {
      if (std::regex_search(stripped[i], re)) {
        findings.push_back(
            {path, static_cast<int>(i) + 1, rule.id, rule.message});
      }
    }
  }

  if (InProtocolCode(path)) {
    CheckUnorderedIteration(path, stripped, &findings);
    CheckPerUpdateTranscendentals(path, stripped, &findings);
  }
  CheckIncludeHygiene(path, raw, &findings);
  if (IsHeader(path)) CheckPragmaOnce(path, raw, &findings);

  // Apply allowances: a finding on an annotated line (with the matching
  // rule) is suppressed and marks the allowance used.
  std::vector<Finding> kept;
  for (const Finding& finding : findings) {
    bool suppressed = false;
    for (Allowance& allowance : allowances) {
      if (allowance.target_line == finding.line &&
          allowance.rule == finding.rule) {
        allowance.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(finding);
  }

  // Annotation hygiene. These findings are not themselves suppressible —
  // the annotation layer must stay honest.
  for (const Allowance& allowance : allowances) {
    if (!IsKnownRule(allowance.rule)) {
      kept.push_back({path, allowance.line, "ALLOW_UNKNOWN_RULE",
                      "allow(" + allowance.rule + ") names no known rule"});
      continue;
    }
    if (!allowance.has_reason) {
      kept.push_back({path, allowance.line, "ALLOW_MISSING_REASON",
                      "allow(" + allowance.rule +
                          ") carries no justification; write the reason "
                          "after the closing parenthesis"});
    }
    if (!allowance.used) {
      kept.push_back({path, allowance.line, "ALLOW_UNUSED",
                      "allow(" + allowance.rule +
                          ") suppresses nothing on line " +
                          std::to_string(allowance.target_line) +
                          "; delete the stale annotation"});
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return kept;
}

std::vector<Finding> LintFiles(const std::string& repo_root,
                               const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  for (const std::string& path : paths) {
    const fs::path abs =
        fs::path(path).is_absolute() ? fs::path(path) : fs::path(repo_root) / path;
    const std::string rel =
        fs::path(path).is_absolute()
            ? fs::relative(abs, repo_root).generic_string()
            : path;
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      findings.push_back({rel, 0, "LINT_IO", "cannot read file"});
      continue;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = LintContent(rel, buffer.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<std::string> CollectFiles(const std::string& repo_root,
                                      const std::string& compile_commands_path,
                                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::set<std::string> files;
  auto under_roots = [&](const std::string& rel) {
    for (const std::string& root : roots) {
      if (StartsWith(rel, root + "/") || rel == root) return true;
    }
    return false;
  };
  auto in_testdata = [](const fs::path& p) {
    for (const auto& part : p) {
      if (part == "testdata") return true;
    }
    return false;
  };
  for (const std::string& root : roots) {
    const fs::path dir = fs::path(repo_root) / root;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      if (in_testdata(entry.path())) continue;
      files.insert(fs::relative(entry.path(), repo_root).generic_string());
    }
  }
  if (!compile_commands_path.empty()) {
    std::ifstream in(compile_commands_path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string json = buffer.str();
      static const std::regex kFileRe(R"re("file"\s*:\s*"([^"]+)")re");
      for (auto it = std::sregex_iterator(json.begin(), json.end(), kFileRe);
           it != std::sregex_iterator(); ++it) {
        const fs::path file((*it)[1].str());
        if (in_testdata(file)) continue;
        std::error_code ec;
        const fs::path rel = fs::relative(file, repo_root, ec);
        if (ec) continue;
        const std::string rel_str = rel.generic_string();
        if (under_roots(rel_str)) files.insert(rel_str);
      }
    }
  }
  return {files.begin(), files.end()};
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

}  // namespace nmc::lint
