#include "nmc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "nmc_lint/call_graph.h"
#include "nmc_lint/include_graph.h"
#include "nmc_lint/lexer.h"
#include "nmc_lint/scopes.h"
#include "nmc_lint/symbols.h"
#include "nmc_lint/token_match.h"

namespace nmc::lint {

namespace {

// Path scopes, name tables, and token matchers live in scopes.h and
// token_match.h, shared with the symbol/call-graph layers.

// ---- Rule registry --------------------------------------------------------

const std::vector<RuleInfo> kAllRules = {
    {"NO_UNSEEDED_RNG",
     "no std::random_device / rand() / srand, and every engine construction "
     "seeds from a parameter or a common/rng.h factory (src/, bench/, "
     "tools/)"},
    {"NO_WALLCLOCK_IN_SIM",
     "no wall-clock reads in src/ outside src/bench timing code"},
    {"NO_UNORDERED_ITERATION_IN_PROTOCOL",
     "no iteration over unordered containers in src/{core,hyz,baselines,sim}"},
    {"NO_MAP_IN_HOT_PATH", "no std::map/std::deque in src/sim delivery paths"},
    {"NO_IOSTREAM_IN_LIB", "no std::cout/printf in library code"},
    {"NO_PER_UPDATE_TRANSCENDENTALS",
     "no log/exp/pow inside per-update protocol entry points; hoist into a "
     "rate helper or cache (see core::RateCache)"},
    {"NO_HEAP_IN_HOT_PATH",
     "no new/make_unique/make_shared, and no push_back/emplace_back on a "
     "receiver the file never reserve()s, inside per-update hot-path entry "
     "points (src/{core,hyz,baselines,sim}) or any function they "
     "transitively call"},
    {"NO_MUTABLE_GLOBAL_STATE",
     "no non-const namespace-scope data or non-const static data members in "
     "src/ — process-wide state a threaded runtime cannot tolerate "
     "undeclared"},
    {"NO_STATIC_LOCAL_IN_REENTRANT",
     "no mutable function-local statics in functions reachable from "
     "hot-path entry points, Protocol/Network/BatchRng members, or "
     "// nmc: reentrant functions"},
    {"THREAD_COMPAT",
     "// nmc: reentrant / not-thread-safe(reason) contracts are "
     "well-formed, attach to a definition, and a reentrant function only "
     "calls reentrant functions"},
    {"ATOMIC_ORDER_EXPLICIT",
     "every atomic load/store/RMW in src/ spells its memory_order "
     "argument; a defaulted (seq_cst) call hides the synchronization "
     "contract the model checker verifies"},
    {"SEQ_CST_JUSTIFIED",
     "every memory_order_seq_cst in src/ carries a same-or-previous-line "
     "// nmc: seq-cst(reason) — the total order is expensive and almost "
     "never what the protocol actually needs"},
    {"NO_RAW_ATOMIC_IN_RUNTIME",
     "concurrency in src/runtime/ and the lock-free primitives goes "
     "through the atomics policy shim (common/atomic_policy.h), never raw "
     "std::atomic / atomic_thread_fence — raw atomics are invisible to "
     "tools/nmc_race"},
    {"INCLUDE_HYGIENE",
     "no parent-relative #include \"../...\" and no <bits/...> headers"},
    {"PRAGMA_ONCE", "every header starts with #pragma once"},
    {"LAYERING_VIOLATION",
     "includes must follow the layer DAG in tools/nmc_lint/layers.txt"},
    {"NO_INCLUDE_CYCLES", "the repo include graph must stay acyclic"},
    {"INCLUDE_DEPTH",
     "transitive include depth stays within the layers.txt budget"},
    {"ALLOW_MISSING_REASON", "nmc-lint: allow(...) must carry a reason"},
    {"ALLOW_UNKNOWN_RULE", "nmc-lint: allow(...) names a rule that exists"},
    {"ALLOW_UNUSED", "nmc-lint: allow(...) must suppress something"},
    {"BASELINE_STALE",
     "every baseline entry still matches a finding (tools/nmc_lint/"
     "baseline.txt)"},
    {"LINT_IO", "every linted file is readable"},
};

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& rule : kAllRules) {
    if (id == rule.id) return true;
  }
  return false;
}

// ---- Token streams --------------------------------------------------------

/// The rules walk "code" (identifiers/numbers/punctuation) and directives as
/// two parallel streams; literal and comment tokens are dropped entirely —
/// nothing inside them can match, which is the point of lexing.
struct TokenStreams {
  std::vector<Token> code;
  std::vector<Token> directives;
};

TokenStreams SplitStreams(const std::vector<Token>& tokens) {
  TokenStreams streams;
  for (const Token& token : tokens) {
    if (IsCodeToken(token)) {
      streams.code.push_back(token);
    } else if (token.kind == TokenKind::kPpDirective) {
      streams.directives.push_back(token);
    }
  }
  return streams;
}

// ---- Simple token-pattern rules -------------------------------------------

constexpr const char* kWallclockBare[] = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "localtime",    "gmtime"};
constexpr const char* kWallclockCalls[] = {"time", "clock"};

void CheckWallclock(const std::string& path, const std::vector<Token>& code,
                    std::vector<Finding>* findings) {
  const char* message =
      "wall-clock read in simulator/protocol code; timing belongs in "
      "src/bench";
  for (size_t i = 0; i < code.size(); ++i) {
    if (IsIdentIn(code, i, kWallclockBare)) {
      findings->push_back({path, code[i].line, "NO_WALLCLOCK_IN_SIM", message});
    } else if (IsIdentIn(code, i, kWallclockCalls) && IsPunct(code, i + 1, "(")) {
      findings->push_back({path, code[i].line, "NO_WALLCLOCK_IN_SIM", message});
    }
  }
}

void CheckMapInHotPath(const std::string& path, const std::vector<Token>& code,
                       std::vector<Finding>* findings) {
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (IsIdent(code, i, "std") && IsPunct(code, i + 1, "::") &&
        IsIdentIn(code, i + 2, kMapLike) && IsPunct(code, i + 3, "<")) {
      findings->push_back(
          {path, code[i].line, "NO_MAP_IN_HOT_PATH",
           "node-based container in src/sim delivery path; use a flat "
           "vector/array (see PR 1 regression class)"});
    }
  }
}

void CheckIostream(const std::string& path, const TokenStreams& streams,
                   std::vector<Finding>* findings) {
  const char* message =
      "console output in library code; return data or use "
      "fprintf(stderr, ...) at the binary layer";
  static const std::regex kIostreamInclude(R"(^#\s*include\s*<iostream>)");
  for (const Token& directive : streams.directives) {
    if (std::regex_search(directive.text, kIostreamInclude)) {
      findings->push_back(
          {path, directive.line, "NO_IOSTREAM_IN_LIB", message});
    }
  }
  const std::vector<Token>& code = streams.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (IsIdent(code, i, "std") && IsPunct(code, i + 1, "::") &&
        (IsIdent(code, i + 2, "cout") || IsIdent(code, i + 2, "cerr"))) {
      findings->push_back({path, code[i].line, "NO_IOSTREAM_IN_LIB", message});
    } else if (IsIdent(code, i, "printf") && IsPunct(code, i + 1, "(")) {
      findings->push_back({path, code[i].line, "NO_IOSTREAM_IN_LIB", message});
    }
  }
}

void CheckIncludeHygiene(const std::string& path, const TokenStreams& streams,
                         std::vector<Finding>* findings) {
  static const std::regex kParentRe(R"(^#\s*include\s*\"\.\./)");
  static const std::regex kBitsRe(R"(^#\s*include\s*<bits/)");
  for (const Token& directive : streams.directives) {
    if (std::regex_search(directive.text, kParentRe)) {
      findings->push_back({path, directive.line, "INCLUDE_HYGIENE",
                           "parent-relative #include; include repo-rooted "
                           "paths (e.g. \"core/sampling.h\")"});
    }
    if (std::regex_search(directive.text, kBitsRe)) {
      findings->push_back({path, directive.line, "INCLUDE_HYGIENE",
                           "non-portable <bits/...> header"});
    }
  }
}

void CheckPragmaOnce(const std::string& path, const TokenStreams& streams,
                     std::vector<Finding>* findings) {
  static const std::regex kPragmaOnce(R"(^#\s*pragma\s+once\b)");
  for (const Token& directive : streams.directives) {
    if (std::regex_search(directive.text, kPragmaOnce)) return;
  }
  findings->push_back({path, 1, "PRAGMA_ONCE",
                       "header lacks #pragma once (repo convention; "
                       "#ifndef guards were retired in PR 2)"});
}

// ---- Atomics-discipline rules ---------------------------------------------

/// std::atomic member operations that take a memory_order parameter and
/// default it to seq_cst when omitted. `load`/`store` are atomic-specific
/// enough as member names in this codebase; the repo's own SlotArray
/// spells Store/View capitalized precisely to stay out of this namespace.
constexpr const char* kAtomicOrderedOps[] = {
    "load",          "store",        "exchange",
    "fetch_add",     "fetch_sub",    "fetch_and",
    "fetch_or",      "fetch_xor",    "test_and_set",
    "compare_exchange_weak",         "compare_exchange_strong"};

/// ATOMIC_ORDER_EXPLICIT: a member call `x.load(...)` / `x->fetch_add(...)`
/// must mention a memory_order somewhere in its argument list — either a
/// std::memory_order_* constant or a Policy::Order(...) wrapper (whose
/// site argument spells the declared constant). Lexical by design: the
/// receiver's type is unknown, but non-atomic receivers with these exact
/// member names do not occur in library code, and allow() is the escape.
void CheckAtomicOrderExplicit(const std::string& path,
                              const std::vector<Token>& code,
                              std::vector<Finding>* findings) {
  for (size_t i = 2; i < code.size(); ++i) {
    if (!IsIdentIn(code, i, kAtomicOrderedOps)) continue;
    if (!IsPunct(code, i - 1, ".") && !IsPunct(code, i - 1, "->")) continue;
    if (!IsPunct(code, i + 1, "(")) continue;
    const size_t close = MatchingClose(code, i + 1, ParenDelta);
    if (close == code.size()) continue;  // unbalanced; not a call we parse
    bool has_order = false;
    for (size_t j = i + 2; j < close; ++j) {
      if (IsIdent(code, j) &&
          code[j].text.rfind("memory_order", 0) == 0) {
        has_order = true;
        break;
      }
    }
    if (!has_order) {
      findings->push_back(
          {path, code[i].line, "ATOMIC_ORDER_EXPLICIT",
           "'" + code[i].text +
               "' with a defaulted memory_order (seq_cst); spell the "
               "ordering — and justify it if seq_cst is really meant"});
    }
  }
}

/// SEQ_CST_JUSTIFIED: each memory_order_seq_cst token needs a
/// // nmc: seq-cst(<reason>) on its own or the preceding raw line.
void CheckSeqCstJustified(const std::string& path,
                          const std::vector<Token>& code,
                          const std::vector<std::string>& lines,
                          std::vector<Finding>* findings) {
  static const std::regex kJustification(R"(//\s*nmc:\s*seq-cst\([^)\s][^)]*\))");
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsIdent(code, i, "memory_order_seq_cst")) continue;
    const int line = code[i].line;  // 1-based
    bool justified = false;
    for (int candidate = line - 1; candidate <= line; ++candidate) {
      if (candidate < 1 || candidate > static_cast<int>(lines.size())) {
        continue;
      }
      if (std::regex_search(lines[static_cast<size_t>(candidate) - 1],
                            kJustification)) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      findings->push_back(
          {path, line, "SEQ_CST_JUSTIFIED",
           "memory_order_seq_cst without a justification; write "
           "// nmc: seq-cst(<why the single total order is required>) on "
           "this or the preceding line"});
    }
  }
}

/// NO_RAW_ATOMIC_IN_RUNTIME: inside the modeled-concurrency scope
/// (src/runtime/ + the lock-free primitive headers), spelling std::atomic
/// or a bare fence bypasses the policy shim and makes the code invisible
/// to the model checker.
void CheckRawAtomicInRuntime(const std::string& path,
                             const std::vector<Token>& code,
                             std::vector<Finding>* findings) {
  for (size_t i = 0; i < code.size(); ++i) {
    if (IsIdent(code, i, "std") && IsPunct(code, i + 1, "::") &&
        (IsIdent(code, i + 2, "atomic") ||
         IsIdent(code, i + 2, "atomic_flag"))) {
      findings->push_back(
          {path, code[i].line, "NO_RAW_ATOMIC_IN_RUNTIME",
           "raw std::" + code[i + 2].text +
               " in model-checked concurrency code; use the policy shim "
               "(common::RuntimeAtomic<T> or Policy::template Atomic<T>) "
               "so tools/nmc_race can model this synchronization"});
    } else if (IsIdent(code, i, "atomic_thread_fence")) {
      findings->push_back(
          {path, code[i].line, "NO_RAW_ATOMIC_IN_RUNTIME",
           "bare atomic_thread_fence in model-checked concurrency code; "
           "route fences through Policy::Fence(OrderSite, order)"});
    }
  }
}

// ---- NO_UNSEEDED_RNG: banned sources + seed provenance --------------------

/// Engines whose construction demands a traceable seed.
constexpr const char* kStdEngines[] = {
    "mt19937",       "mt19937_64",   "minstd_rand",   "minstd_rand0",
    "default_random_engine",         "knuth_b",       "ranlux24",
    "ranlux48",      "ranlux24_base", "ranlux48_base"};

/// Identifiers that taint a seed expression outright.
constexpr const char* kTaintedSources[] = {"random_device", "rand", "srand",
                                           "time", "clock", "getpid"};

/// common/rng.h methods that yield derived, provenance-clean seeds or
/// engines when called on an already-clean Rng.
constexpr const char* kRngFactoryMethods[] = {"Fork", "NextU64", "UniformInt"};

/// Type-ish leading tokens that mark a parenthesized list as a parameter
/// list (a declaration), not a seed expression.
constexpr const char* kTypeKeywords[] = {
    "const",  "unsigned", "signed", "uint64_t", "uint32_t", "int64_t",
    "int32_t", "size_t",  "int",    "long",     "short",    "double",
    "float",  "bool",     "char",   "auto",     "void",     "uint8_t",
    "int8_t", "uint16_t", "int16_t"};

/// Scope-tracking provenance checker. One forward pass maintains a stack of
/// function scopes (parameter names harvested from definition headers,
/// locals classified as they are assigned) and, at every engine
/// construction, classifies the seed expression:
///   clean  — every leaf identifier is a parameter, a clean local, a member
///            (trailing '_', repo convention), or a method call on a clean
///            object (the common/rng.h factories); literals may mix in
///            (the `seed ^ kSalt` pattern);
///   dirty  — a leaf resolves to none of those (an unseeded global, an
///            entropy source, an unknown free function);
///   literal-only — a hard-coded seed: deterministic, but untraceable to
///            any caller, so trials cannot be varied or decorrelated.
/// Deliberately lexical: constructor *member-init lists* are not analyzed
/// (the member's value was classified where it was computed), and helper
/// functions are not traced across files — the seed must be clean at the
/// construction site's own scope, which is exactly what a reviewer sees.
class RngProvenanceChecker {
 public:
  RngProvenanceChecker(const std::string& path,
                       const std::vector<Token>& code,
                       std::vector<Finding>* findings)
      : path_(path), code_(code), findings_(findings) {}

  void Run() {
    for (size_t i = 0; i < code_.size(); ++i) {
      MaintainScopes(i);
      TrackAssignment(i);
      CheckConstruction(i);
    }
  }

 private:
  struct Scope {
    int entry_depth = 0;  // brace depth the scope's body lives at
    std::vector<std::string> params;
    std::map<std::string, bool> locals;  // name -> provenance-clean
  };

  void MaintainScopes(size_t i) {
    if (IsPunct(code_, i, "{")) {
      ++depth_;
      if (pending_params_ && pending_brace_index_ == i) {
        scopes_.push_back({depth_, std::move(pending_names_), {}});
        pending_params_ = false;
      }
      return;
    }
    if (IsPunct(code_, i, "}")) {
      if (!scopes_.empty() && scopes_.back().entry_depth == depth_) {
        scopes_.pop_back();
      }
      --depth_;
      return;
    }
    // Function-definition header: `name ( params ) [qualifiers] {` — also
    // lambda headers `] ( params ) ... {`. Harvest parameter names so the
    // body can resolve them.
    const bool header_start =
        (IsIdent(code_, i) || IsPunct(code_, i, "]")) &&
        IsPunct(code_, i + 1, "(");
    if (!header_start) return;
    int paren_depth = 0;
    size_t j = i + 1;
    std::vector<std::string> names;
    for (; j < code_.size(); ++j) {
      paren_depth += ParenDelta(code_[j]);
      if (paren_depth == 0) break;
      if (paren_depth == 1 && IsIdent(code_, j) &&
          (IsPunct(code_, j + 1, ",") || IsPunct(code_, j + 1, ")") ||
           IsPunct(code_, j + 1, "="))) {
        names.push_back(code_[j].text);
      }
    }
    if (j >= code_.size() || names.empty()) return;
    // Skip trailing qualifiers; a ctor init list runs to the body brace.
    size_t k = j + 1;
    while (k < code_.size() &&
           (IsIdent(code_, k, "const") || IsIdent(code_, k, "noexcept") ||
            IsIdent(code_, k, "override") || IsIdent(code_, k, "final"))) {
      ++k;
    }
    if (IsPunct(code_, k, ":")) {
      int d = 0;
      for (; k < code_.size(); ++k) {
        d += ParenDelta(code_[k]);
        if (d == 0 && IsPunct(code_, k, "{")) break;
        if (d == 0 && IsPunct(code_, k, ";")) return;  // not a definition
      }
    }
    if (!IsPunct(code_, k, "{")) return;
    // The last entry of a ctor member-init list (`..., network_(n) {`) also
    // looks like a header ending at the body brace; the real header claimed
    // that brace first and keeps it.
    if (pending_params_ && pending_brace_index_ == k) return;
    pending_params_ = true;
    pending_brace_index_ = k;
    pending_names_ = std::move(names);
  }

  void TrackAssignment(size_t i) {
    if (scopes_.empty() || !IsIdent(code_, i) || !IsPunct(code_, i + 1, "=")) {
      return;
    }
    // `name = expr ;` — record whether expr is provenance-clean. Statement
    // ends at the first ';' outside parentheses.
    size_t end = i + 2;
    int paren_depth = 0;
    while (end < code_.size()) {
      paren_depth += ParenDelta(code_[end]);
      if (paren_depth == 0 && IsPunct(code_, end, ";")) break;
      ++end;
    }
    const Verdict v = Classify(i + 2, end);
    scopes_.back().locals[code_[i].text] = v == Verdict::kClean;
  }

  void CheckConstruction(size_t i) {
    if (!IsIdent(code_, i)) return;
    const bool is_std_engine = IsIdentIn(code_, i, kStdEngines);
    const bool is_rng = code_[i].text == "Rng";
    if (!is_std_engine && !is_rng) return;
    // Qualification: `std::mt19937` / `common::Rng` / bare `Rng`.
    if (i >= 2 && IsPunct(code_, i - 1, "::")) {
      const std::string& qual = code_[i - 2].text;
      if (is_std_engine && qual != "std") return;
      if (is_rng && qual != "common") return;
    }
    size_t args_open;  // index of '(' or '{' carrying the seed expression
    if (IsPunct(code_, i + 1, "(")) {
      args_open = i + 1;  // temporary: Rng(expr)
    } else if (IsIdent(code_, i + 1) &&
               (IsPunct(code_, i + 2, "(") || IsPunct(code_, i + 2, "{"))) {
      args_open = i + 2;  // named: Rng name(expr) / Rng name{expr}
    } else if (is_std_engine && IsIdent(code_, i + 1) &&
               IsPunct(code_, i + 2, ";")) {
      findings_->push_back(
          {path_, code_[i].line, "NO_UNSEEDED_RNG",
           "default-constructed " + code_[i].text +
               " uses the implementation's fixed default seed; seed it from "
               "a parameter or a common/rng.h factory"});
      return;
    } else {
      return;  // reference/pointer/template-argument position, not a ctor
    }
    const char open = code_[args_open].text[0];
    const char close = open == '(' ? ')' : '}';
    size_t end = args_open + 1;
    int group_depth = 1;
    while (end < code_.size() && group_depth > 0) {
      if (code_[end].kind == TokenKind::kPunct) {
        if (code_[end].text[0] == open && code_[end].text.size() == 1) {
          ++group_depth;
        } else if (code_[end].text[0] == close &&
                   code_[end].text.size() == 1) {
          --group_depth;
        }
      }
      if (group_depth == 0) break;
      ++end;
    }
    if (end >= code_.size()) return;
    const size_t args_begin = args_open + 1;
    if (args_begin == end) {
      // `Rng Fork()` is a function declaration; `std::mt19937 gen()` is the
      // most vexing parse. Only braced `std::mt19937 gen{}` is a real
      // (default, unseeded) construction.
      if (is_std_engine && open == '{') {
        findings_->push_back(
            {path_, code_[i].line, "NO_UNSEEDED_RNG",
             "default-constructed " + code_[i].text +
                 " uses the implementation's fixed default seed; seed it "
                 "from a parameter or a common/rng.h factory"});
      }
      return;
    }
    if (IsIdentIn(code_, args_begin, kTypeKeywords) ||
        (IsIdent(code_, args_begin) && IsIdent(code_, args_begin + 1))) {
      return;  // parameter list: `explicit Rng(uint64_t seed)` etc.
    }
    const Verdict verdict = Classify(args_begin, end);
    // A named construction declares a local whose own provenance downstream
    // code may lean on: `Rng seeder(options.seed); Rng rng(seeder.NextU64());`
    if (args_open == i + 2 && !scopes_.empty()) {
      scopes_.back().locals[code_[i + 1].text] = verdict == Verdict::kClean;
    }
    switch (verdict) {
      case Verdict::kClean:
        return;
      case Verdict::kDirty:
        findings_->push_back(
            {path_, code_[i].line, "NO_UNSEEDED_RNG",
             "seed of this " + code_[i].text +
                 " does not trace to a function/ctor parameter or a "
                 "common/rng.h factory ('" + dirty_leaf_ + "')"});
        return;
      case Verdict::kLiteralOnly:
        findings_->push_back(
            {path_, code_[i].line, "NO_UNSEEDED_RNG",
             "hard-coded seed for this " + code_[i].text +
                 "; thread the seed in from the caller (function/ctor "
                 "parameter or common/rng.h factory) so trials can vary it"});
        return;
    }
  }

  enum class Verdict { kClean, kDirty, kLiteralOnly };

  /// Classifies the expression spanning code tokens [begin, end).
  Verdict Classify(size_t begin, size_t end) {
    bool saw_clean = false;
    for (size_t i = begin; i < end; ++i) {
      if (!IsIdent(code_, i)) continue;
      const std::string& name = code_[i].text;
      if (IsIdentIn(code_, i, kTaintedSources)) {
        dirty_leaf_ = name;
        return Verdict::kDirty;
      }
      // Engine type names inside the expression (`rng = Rng(seed)`) are not
      // leaves; the nested construction is judged by CheckConstruction.
      if (name == "Rng" || IsIdentIn(code_, i, kStdEngines)) continue;
      if (name == "static_cast" || name == "sizeof" || name == "nullptr" ||
          name == "true" || name == "false" || name == "this" ||
          IsIdentIn(code_, i, kTypeKeywords)) {
        if (name == "this") saw_clean = true;
        continue;
      }
      // Member/method position: `base.name` — provenance rides on `base`.
      if (i > begin && (IsPunct(code_, i - 1, ".") ||
                        IsPunct(code_, i - 1, "->"))) {
        continue;
      }
      // Qualifier position: `ns::name` — judge the full qualified leaf.
      if (IsPunct(code_, i + 1, "::")) continue;
      if (i > begin && IsPunct(code_, i - 1, "::")) {
        dirty_leaf_ = code_[i - 2].text + "::" + name;
        return Verdict::kDirty;  // qualified globals have no local provenance
      }
      // Free-function call: not a factory we know.
      if (IsPunct(code_, i + 1, "(")) {
        bool factory = IsIdentIn(code_, i, kRngFactoryMethods);
        if (!factory) {
          dirty_leaf_ = name + "()";
          return Verdict::kDirty;
        }
        saw_clean = true;
        continue;
      }
      if (ResolvesClean(name)) {
        saw_clean = true;
        continue;
      }
      dirty_leaf_ = name;
      return Verdict::kDirty;
    }
    return saw_clean ? Verdict::kClean : Verdict::kLiteralOnly;
  }

  bool ResolvesClean(const std::string& name) {
    if (!name.empty() && name.back() == '_') return true;  // member, by style
    // A ctor's member-init list runs before its body scope is pushed; the
    // parameters harvested from the header are already pending.
    if (pending_params_ &&
        std::find(pending_names_.begin(), pending_names_.end(), name) !=
            pending_names_.end()) {
      return true;
    }
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      const auto local = scope->locals.find(name);
      if (local != scope->locals.end()) return local->second;
      if (std::find(scope->params.begin(), scope->params.end(), name) !=
          scope->params.end()) {
        return true;
      }
    }
    return false;
  }

  const std::string& path_;
  const std::vector<Token>& code_;
  std::vector<Finding>* findings_;
  int depth_ = 0;
  std::vector<Scope> scopes_;
  bool pending_params_ = false;
  size_t pending_brace_index_ = 0;
  std::vector<std::string> pending_names_;
  std::string dirty_leaf_;
};

void CheckUnseededRng(const std::string& path, const std::vector<Token>& code,
                      std::vector<Finding>* findings) {
  const char* message =
      "non-deterministic RNG source; use a seeded nmc::common::Rng";
  for (size_t i = 0; i < code.size(); ++i) {
    if (IsIdent(code, i, "random_device") || IsIdent(code, i, "srand")) {
      findings->push_back({path, code[i].line, "NO_UNSEEDED_RNG", message});
    } else if (IsIdent(code, i, "rand") && IsPunct(code, i + 1, "(")) {
      findings->push_back({path, code[i].line, "NO_UNSEEDED_RNG", message});
    }
  }
  if (!IsRngFactory(path)) {
    RngProvenanceChecker(path, code, findings).Run();
  }
}

// ---- NO_UNORDERED_ITERATION_IN_PROTOCOL -----------------------------------

constexpr const char* kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
constexpr const char* kBeginFamily[] = {"begin", "cbegin", "rbegin", "crbegin"};

/// Names declared in this file with an unordered container type: after
/// `unordered_*` the template argument list is balanced (across lines —
/// the token stream has no line seams), then the declared identifier is
/// taken, skipping function declarations (identifier followed by '(').
std::vector<std::string> CollectUnorderedNames(const std::vector<Token>& code) {
  std::vector<std::string> names;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsIdentIn(code, i, kUnorderedContainers) ||
        !IsPunct(code, i + 1, "<")) {
      continue;
    }
    size_t j = i + 1;
    int depth = 0;
    for (; j < code.size(); ++j) {
      depth += AngleDelta(code[j]);
      if (depth <= 0) break;
    }
    if (j >= code.size()) continue;
    ++j;
    while (IsPunct(code, j, "&") || IsPunct(code, j, "*") ||
           IsPunct(code, j, "&&")) {
      ++j;
    }
    if (!IsIdent(code, j) || IsPunct(code, j + 1, "(")) continue;
    names.push_back(code[j].text);
  }
  return names;
}

void CheckUnorderedIteration(const std::string& path,
                             const std::vector<Token>& code,
                             std::vector<Finding>* findings) {
  const std::vector<std::string> names = CollectUnorderedNames(code);
  if (names.empty()) return;
  auto is_unordered = [&](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  auto report = [&](int line, const std::string& name) {
    findings->push_back(
        {path, line, "NO_UNORDERED_ITERATION_IN_PROTOCOL",
         "iteration over unordered container '" + name +
             "' — hash-order leaks into the message schedule; iterate "
             "a sorted/indexed structure instead"});
  };
  for (size_t i = 0; i < code.size(); ++i) {
    // Range-for: `for ( decl : name )`.
    if (IsIdent(code, i, "for") && IsPunct(code, i + 1, "(")) {
      size_t j = i + 2;
      int depth = 1;
      for (; j < code.size(); ++j) {
        depth += ParenDelta(code[j]);
        if (depth == 0) break;                            // plain for-loop
        if (depth == 1 && IsPunct(code, j, ";")) break;   // classic for
        if (depth == 1 && IsPunct(code, j, ":")) {
          if (IsIdent(code, j + 1) && IsPunct(code, j + 2, ")") &&
              is_unordered(code[j + 1].text)) {
            report(code[i].line, code[j + 1].text);
          }
          break;
        }
      }
    }
    // Sweep start: `name.begin()` / `name->cbegin()`.
    if (IsIdent(code, i) &&
        (IsPunct(code, i + 1, ".") || IsPunct(code, i + 1, "->")) &&
        IsIdentIn(code, i + 2, kBeginFamily) && IsPunct(code, i + 3, "(") &&
        is_unordered(code[i].text)) {
      report(code[i].line, code[i].text);
    }
  }
}

// ---- NO_PER_UPDATE_TRANSCENDENTALS ----------------------------------------

/// Brace-tracks the *definitions* of the per-update entry points (a name
/// followed by `;` before any `{` is a declaration and is skipped) and
/// flags direct transcendental calls inside their bodies. A transcendental
/// here is paid O(n) times per trial — the exact cost class the geometric
/// skip sampler and RateCache exist to remove. Lexical by design: a helper
/// called from the body is not traced — the rule polices the hot loop's own
/// text, the layer where these costs have actually crept in.
void CheckPerUpdateTranscendentals(const std::string& path,
                                   const std::vector<Token>& code,
                                   std::vector<Finding>* findings) {
  enum class Mode { kOutside, kSeeking, kInside };
  Mode mode = Mode::kOutside;
  int depth = 0;
  std::string entry;
  for (size_t i = 0; i < code.size(); ++i) {
    switch (mode) {
      case Mode::kOutside:
        if (IsIdentIn(code, i, kPerUpdateEntryPoints) &&
            IsPunct(code, i + 1, "(")) {
          mode = Mode::kSeeking;
          entry = code[i].text;
          ++i;  // skip the '('; a ';' before '{' still aborts below
        }
        break;
      case Mode::kSeeking:
        if (IsPunct(code, i, ";")) {
          mode = Mode::kOutside;  // declaration (or call), not a body
        } else if (IsPunct(code, i, "{")) {
          mode = Mode::kInside;
          depth = 1;
        }
        break;
      case Mode::kInside:
        if (IsPunct(code, i, "{")) {
          ++depth;
        } else if (IsPunct(code, i, "}")) {
          if (--depth == 0) mode = Mode::kOutside;
        } else if (IsIdentIn(code, i, kTranscendentals) &&
                   IsPunct(code, i + 1, "(")) {
          findings->push_back(
              {path, code[i].line, "NO_PER_UPDATE_TRANSCENDENTALS",
               "'" + code[i].text + "' call inside " + entry +
                   "() runs once per update; hoist it into a rate helper, "
                   "cache it (core::RateCache), or fast-forward with the "
                   "skip sampler"});
        }
        break;
    }
  }
}

// ---- NO_HEAP_IN_HOT_PATH --------------------------------------------------

/// Receivers the file reserves capacity for somewhere: `name.reserve(` or
/// `name->reserve(`. Same-file rather than same-function on purpose — the
/// sanctioned pattern is exactly "constructor reserves, hot path pushes",
/// and those live in different functions of one translation unit.
std::vector<std::string> CollectReservedReceivers(
    const std::vector<Token>& code) {
  std::vector<std::string> names;
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (IsIdent(code, i) &&
        (IsPunct(code, i + 1, ".") || IsPunct(code, i + 1, "->")) &&
        IsIdent(code, i + 2, "reserve") && IsPunct(code, i + 3, "(")) {
      names.push_back(code[i].text);
    }
  }
  return names;
}

/// Brace-tracks the hot-path entry-point definitions (same machinery as
/// CheckPerUpdateTranscendentals) and flags heap traffic inside them:
/// `new` / std::make_unique / std::make_shared outright, and vector growth
/// (`x.push_back` / `x.emplace_back`) on a receiver the file never calls
/// reserve() on. Reserved receivers amortize to zero steady-state
/// allocations (the repo's arena-backed queues additionally never touch
/// the heap at all); unreserved ones reallocate on a schedule the adversary
/// controls. Lexical by design, like the transcendental rule: helpers
/// called from the body are not traced.
void CheckHeapInHotPath(const std::string& path,
                        const std::vector<Token>& code,
                        std::vector<Finding>* findings) {
  const std::vector<std::string> reserved = CollectReservedReceivers(code);
  auto is_reserved = [&](const std::string& name) {
    return std::find(reserved.begin(), reserved.end(), name) != reserved.end();
  };
  enum class Mode { kOutside, kSeeking, kInside };
  Mode mode = Mode::kOutside;
  int depth = 0;
  std::string entry;
  for (size_t i = 0; i < code.size(); ++i) {
    switch (mode) {
      case Mode::kOutside:
        if (IsIdentIn(code, i, kHotPathEntryPoints) &&
            IsPunct(code, i + 1, "(")) {
          mode = Mode::kSeeking;
          entry = code[i].text;
          ++i;  // skip the '('; a ';' before '{' still aborts below
        }
        break;
      case Mode::kSeeking:
        if (IsPunct(code, i, ";")) {
          mode = Mode::kOutside;  // declaration (or call), not a body
        } else if (IsPunct(code, i, "{")) {
          mode = Mode::kInside;
          depth = 1;
        }
        break;
      case Mode::kInside:
        if (IsPunct(code, i, "{")) {
          ++depth;
        } else if (IsPunct(code, i, "}")) {
          if (--depth == 0) mode = Mode::kOutside;
        } else if (IsIdent(code, i, "new")) {
          findings->push_back(
              {path, code[i].line, "NO_HEAP_IN_HOT_PATH",
               "'new' inside " + entry +
                   "() allocates once per update; preallocate in the "
                   "constructor or use the per-tick arena (sim::Arena)"});
        } else if (IsIdentIn(code, i, kHeapMakers) &&
                   (IsPunct(code, i + 1, "<") || IsPunct(code, i + 1, "("))) {
          findings->push_back(
              {path, code[i].line, "NO_HEAP_IN_HOT_PATH",
               "'" + code[i].text + "' inside " + entry +
                   "() allocates once per update; hoist the allocation out "
                   "of the per-update path"});
        } else if (i >= 2 && IsIdentIn(code, i, kGrowthCalls) &&
                   IsPunct(code, i + 1, "(") &&
                   (IsPunct(code, i - 1, ".") || IsPunct(code, i - 1, "->")) &&
                   IsIdent(code, i - 2) && !is_reserved(code[i - 2].text)) {
          findings->push_back(
              {path, code[i].line, "NO_HEAP_IN_HOT_PATH",
               "'" + code[i - 2].text + "." + code[i].text + "' inside " +
                   entry + "() with no reserve() on '" + code[i - 2].text +
                   "' anywhere in this file; reserve capacity up front so "
                   "the steady state never reallocates"});
        }
        break;
    }
  }
}

// ---- Concurrency-readiness per-file rules ---------------------------------

/// NO_MUTABLE_GLOBAL_STATE plus the THREAD_COMPAT annotation-grammar checks
/// — everything about the concurrency contracts that one file can decide
/// alone (the reentrant-calls-reentrant edge check needs the call graph and
/// runs in RunInterprocRules).
void CheckSymbolRules(const std::string& path, const FileSymbols& symbols,
                      std::vector<Finding>* findings) {
  for (const MutableGlobal& global : symbols.mutable_globals) {
    const std::string what =
        global.is_static_member
            ? "static data member '" + global.owner + "::" + global.name + "'"
            : "namespace-scope variable '" + global.name + "'";
    findings->push_back(
        {path, global.line, "NO_MUTABLE_GLOBAL_STATE",
         "mutable " + what +
             " is process-wide shared state; make it const, pass it "
             "explicitly, or allow() it with the single-threaded "
             "justification"});
  }
  for (const ThreadMarker& marker : symbols.markers) {
    if (marker.kind == ThreadAnnotation::kNone) {
      findings->push_back(
          {path, marker.line, "THREAD_COMPAT",
           "unknown thread-contract verb '" + marker.verb +
               "'; known contracts: // nmc: reentrant and "
               "// nmc: not-thread-safe(reason)"});
      continue;
    }
    if (marker.kind == ThreadAnnotation::kNotThreadSafe &&
        marker.reason.empty()) {
      findings->push_back(
          {path, marker.line, "THREAD_COMPAT",
           "not-thread-safe contract carries no reason; write "
           "// nmc: not-thread-safe(<why it is hostile>)"});
    }
    if (!marker.attached) {
      findings->push_back(
          {path, marker.line, "THREAD_COMPAT",
           "thread-contract annotation attaches to no function definition "
           "within two lines; move it onto the definition or delete it"});
    }
  }
}

// ---- Allow annotations ----------------------------------------------------

struct Allowance {
  int line = 0;         // line the allowance was written on (1-based)
  int target_line = 0;  // line it suppresses
  std::string rule;
  bool has_reason = false;
  bool used = false;
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Parses allow annotations — the "nmc-lint:" marker followed by a
/// parenthesized comma-separated rule list and a free-text reason — from
/// the raw (unstripped) lines. An annotation on a comment-only line applies
/// to the next line; inline annotations apply to their own line.
std::vector<Allowance> ParseAllowances(const std::vector<std::string>& lines) {
  static const std::regex kAllowRe(
      R"(//\s*nmc-lint:\s*allow\(([^)]*)\)\s*(.*)$)");
  std::vector<Allowance> allowances;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(lines[i], match, kAllowRe)) continue;
    const std::string first_two = lines[i].substr(
        std::min(lines[i].find_first_not_of(" \t"), lines[i].size()), 2);
    const int target =
        first_two == "//" ? static_cast<int>(i) + 2 : static_cast<int>(i) + 1;
    const bool has_reason = !match[2].str().empty();
    std::stringstream rule_list(match[1].str());
    std::string rule;
    while (std::getline(rule_list, rule, ',')) {
      const size_t begin = rule.find_first_not_of(" \t");
      const size_t end = rule.find_last_not_of(" \t");
      if (begin == std::string::npos) continue;
      allowances.push_back({static_cast<int>(i) + 1, target,
                            rule.substr(begin, end - begin + 1), has_reason,
                            false});
    }
  }
  return allowances;
}

// ---- Per-file pipeline ----------------------------------------------------

/// Pre-suppression analysis of one file: every single-file rule, findings
/// deduplicated to one per (line, rule) to match the historic
/// one-finding-per-line regex behavior.
struct FileAnalysis {
  std::vector<Finding> findings;  // pre-suppression
  std::vector<Allowance> allowances;
  /// Symbol table for library files (src/) — feeds the per-file concurrency
  /// rules here and the cross-TU call graph in LintRepo.
  FileSymbols symbols;
  bool has_symbols = false;
};

FileAnalysis AnalyzeFile(const std::string& path, const std::string& content) {
  FileAnalysis analysis;
  if (!InRepoCode(path)) return analysis;

  const TokenStreams streams = SplitStreams(Lex(content));
  const std::vector<std::string> lines = SplitLines(content);
  analysis.allowances = ParseAllowances(lines);

  std::vector<Finding>* findings = &analysis.findings;
  if (InLibraryCode(path)) {
    analysis.symbols = BuildFileSymbols(path, content);
    analysis.has_symbols = true;
    CheckSymbolRules(path, analysis.symbols, findings);
  }
  if (InAtomicsDisciplineScope(path)) {
    CheckAtomicOrderExplicit(path, streams.code, findings);
    CheckSeqCstJustified(path, streams.code, lines, findings);
  }
  if (InModeledConcurrencyScope(path)) {
    CheckRawAtomicInRuntime(path, streams.code, findings);
  }
  if (InDeterminismScope(path)) CheckUnseededRng(path, streams.code, findings);
  if (InSimLibrary(path)) {
    CheckWallclock(path, streams.code, findings);
    CheckIostream(path, streams, findings);
  }
  if (InHotPath(path)) CheckMapInHotPath(path, streams.code, findings);
  if (InProtocolCode(path)) {
    CheckUnorderedIteration(path, streams.code, findings);
    CheckPerUpdateTranscendentals(path, streams.code, findings);
    CheckHeapInHotPath(path, streams.code, findings);
  }
  CheckIncludeHygiene(path, streams, findings);
  if (IsHeader(path)) CheckPragmaOnce(path, streams, findings);

  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  findings->erase(std::unique(findings->begin(), findings->end(),
                              [](const Finding& a, const Finding& b) {
                                return a.line == b.line && a.rule == b.rule;
                              }),
                  findings->end());
  return analysis;
}

/// Rules whose findings can originate in a cross-file pass (include graph
/// or call-graph propagation). An allow() for one of these may look unused
/// in single-file mode simply because the pass that produces the finding
/// did not run — ALLOW_UNUSED for them gates only in repo mode.
constexpr const char* kCrossFileCapableRules[] = {
    "LAYERING_VIOLATION",        "NO_INCLUDE_CYCLES",
    "INCLUDE_DEPTH",             "NO_HEAP_IN_HOT_PATH",
    "NO_PER_UPDATE_TRANSCENDENTALS", "NO_MAP_IN_HOT_PATH",
    "NO_IOSTREAM_IN_LIB",        "NO_STATIC_LOCAL_IN_REENTRANT",
    "THREAD_COMPAT"};

bool IsCrossFileCapable(const std::string& rule) {
  for (const char* name : kCrossFileCapableRules) {
    if (rule == name) return true;
  }
  return false;
}

/// Applies allowances to the (possibly graph-rule-augmented) findings and
/// appends the annotation-hygiene findings. These are not themselves
/// suppressible — the annotation layer must stay honest. `repo_mode` says
/// whether the cross-file passes ran; see kCrossFileCapableRules.
std::vector<Finding> ApplyAllowances(const std::string& path,
                                     std::vector<Finding> findings,
                                     std::vector<Allowance> allowances,
                                     bool repo_mode) {
  std::vector<Finding> kept;
  for (const Finding& finding : findings) {
    bool suppressed = false;
    for (Allowance& allowance : allowances) {
      if (allowance.target_line == finding.line &&
          allowance.rule == finding.rule) {
        allowance.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(finding);
  }
  for (const Allowance& allowance : allowances) {
    if (!IsKnownRule(allowance.rule)) {
      kept.push_back({path, allowance.line, "ALLOW_UNKNOWN_RULE",
                      "allow(" + allowance.rule + ") names no known rule"});
      continue;
    }
    if (!allowance.has_reason) {
      kept.push_back({path, allowance.line, "ALLOW_MISSING_REASON",
                      "allow(" + allowance.rule +
                          ") carries no justification; write the reason "
                          "after the closing parenthesis"});
    }
    if (!allowance.used &&
        (repo_mode || !IsCrossFileCapable(allowance.rule))) {
      kept.push_back({path, allowance.line, "ALLOW_UNUSED",
                      "allow(" + allowance.rule +
                          ") suppresses nothing on line " +
                          std::to_string(allowance.target_line) +
                          "; delete the stale annotation"});
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return kept;
}

std::string ReadFileOr(const std::filesystem::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *ok = true;
  return buffer.str();
}

void SortByFileLineRule(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
}

}  // namespace

// ---- Public API -----------------------------------------------------------

const std::vector<RuleInfo>& Rules() { return kAllRules; }

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content) {
  FileAnalysis analysis = AnalyzeFile(path, content);
  return ApplyAllowances(path, std::move(analysis.findings),
                         std::move(analysis.allowances),
                         /*repo_mode=*/false);
}

std::vector<Finding> LintFiles(const std::string& repo_root,
                               const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  for (const std::string& path : paths) {
    const fs::path abs = fs::path(path).is_absolute()
                             ? fs::path(path)
                             : fs::path(repo_root) / path;
    const std::string rel = fs::path(path).is_absolute()
                                ? fs::relative(abs, repo_root).generic_string()
                                : path;
    bool ok = false;
    const std::string content = ReadFileOr(abs, &ok);
    if (!ok) {
      findings.push_back({rel, 0, "LINT_IO", "cannot read file"});
      continue;
    }
    std::vector<Finding> file_findings = LintContent(rel, content);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  SortByFileLineRule(&findings);
  return findings;
}

std::vector<Finding> LintRepo(const RepoLintOptions& options,
                              size_t* files_linted) {
  namespace fs = std::filesystem;
  const std::vector<std::string> files = CollectFiles(
      options.repo_root, options.compile_commands, options.roots);
  if (files_linted != nullptr) *files_linted = files.size();

  std::vector<Finding> all;
  // Per-file analysis, optionally parallel. Files are strided across
  // workers and results land in a by-index vector, then merge in path
  // order — output is byte-identical for every thread count.
  std::vector<FileAnalysis> analyzed(files.size());
  std::vector<char> unreadable(files.size(), 0);
  unsigned threads =
      options.threads == 0 ? std::thread::hardware_concurrency()
                           : options.threads;
  if (threads == 0) threads = 1;
  if (files.size() < threads) {
    threads = files.empty() ? 1 : static_cast<unsigned>(files.size());
  }
  const auto analyze_shard = [&](unsigned shard) {
    for (size_t i = shard; i < files.size(); i += threads) {
      bool ok = false;
      const std::string content =
          ReadFileOr(fs::path(options.repo_root) / files[i], &ok);
      if (!ok) {
        unreadable[i] = 1;
        continue;
      }
      analyzed[i] = AnalyzeFile(files[i], content);
    }
  };
  if (threads <= 1) {
    analyze_shard(0);
  } else {
    std::vector<std::thread> pool;
    for (unsigned shard = 1; shard < threads; ++shard) {
      pool.emplace_back(analyze_shard, shard);
    }
    analyze_shard(0);
    for (std::thread& worker : pool) worker.join();
  }
  std::map<std::string, FileAnalysis> analyses;
  for (size_t i = 0; i < files.size(); ++i) {
    if (unreadable[i] != 0) {
      all.push_back({files[i], 0, "LINT_IO", "cannot read file"});
    } else {
      analyses.emplace(files[i], std::move(analyzed[i]));
    }
  }

  // Cross-file rules: merged into the per-file lists *before* allowance
  // application so an inline allow() on the offending #include works.
  if (!options.layers_path.empty()) {
    LayerSpec spec;
    std::string error;
    if (!LoadLayerSpec(options.layers_path, &spec, &error)) {
      all.push_back({options.layers_path, 0, "LINT_IO",
                     "layer spec rejected: " + error});
    } else {
      const IncludeGraph graph = BuildIncludeGraph(options.repo_root, files);
      for (Finding& finding : CheckIncludeGraph(graph, spec)) {
        const auto it = analyses.find(finding.file);
        if (it != analyses.end()) {
          it->second.findings.push_back(std::move(finding));
        } else {
          all.push_back(std::move(finding));
        }
      }
    }
  }

  // Interprocedural pass: cross-TU call graph over the library files'
  // symbol tables, transitive hot-path propagation, and the
  // concurrency-readiness reachability/contract rules. Propagated findings
  // merge into the per-file lists *before* allowance application (like the
  // include-graph rules) so an inline allow() at the flagged line works; a
  // direct finding at the same (line, rule) wins over its propagated twin.
  std::vector<const FileSymbols*> symbol_files;
  for (const auto& [file, analysis] : analyses) {
    if (analysis.has_symbols) symbol_files.push_back(&analysis.symbols);
  }
  const CallGraph graph = CallGraph::Build(symbol_files);
  if (!options.dot_path.empty()) {
    std::ofstream dot(options.dot_path, std::ios::binary);
    dot << graph.ToDot();
  }
  std::map<std::string, std::vector<Finding>> interproc;
  RunInterprocRules(symbol_files, graph, &interproc);
  for (auto& [file, findings] : interproc) {
    const auto it = analyses.find(file);
    for (Finding& finding : findings) {
      if (it == analyses.end()) {
        all.push_back(std::move(finding));
        continue;
      }
      const bool duplicate = std::any_of(
          it->second.findings.begin(), it->second.findings.end(),
          [&](const Finding& existing) {
            return existing.line == finding.line &&
                   existing.rule == finding.rule;
          });
      if (!duplicate) it->second.findings.push_back(std::move(finding));
    }
  }

  for (auto& [file, analysis] : analyses) {
    std::vector<Finding> kept = ApplyAllowances(
        file, std::move(analysis.findings), std::move(analysis.allowances),
        /*repo_mode=*/true);
    all.insert(all.end(), kept.begin(), kept.end());
  }
  SortByFileLineRule(&all);
  return all;
}

std::vector<std::string> CollectFiles(const std::string& repo_root,
                                      const std::string& compile_commands_path,
                                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::set<std::string> files;
  auto under_roots = [&](const std::string& rel) {
    for (const std::string& root : roots) {
      if (StartsWith(rel, root + "/") || rel == root) return true;
    }
    return false;
  };
  auto in_testdata = [](const fs::path& p) {
    for (const auto& part : p) {
      if (part == "testdata") return true;
    }
    return false;
  };
  for (const std::string& root : roots) {
    const fs::path dir = fs::path(repo_root) / root;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      // Exclusion is by *repo-relative* path: fixtures under the linted
      // tree are deliberately pathological, but a fixture tree used as
      // repo_root by the lint tests must itself stay lintable.
      const fs::path rel = fs::relative(entry.path(), repo_root);
      if (in_testdata(rel)) continue;
      files.insert(rel.generic_string());
    }
  }
  if (!compile_commands_path.empty()) {
    std::ifstream in(compile_commands_path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string json = buffer.str();
      static const std::regex kFileRe(R"re("file"\s*:\s*"([^"]+)")re");
      for (auto it = std::sregex_iterator(json.begin(), json.end(), kFileRe);
           it != std::sregex_iterator(); ++it) {
        const fs::path file((*it)[1].str());
        std::error_code ec;
        const fs::path rel = fs::relative(file, repo_root, ec);
        if (ec || in_testdata(rel)) continue;
        const std::string rel_str = rel.generic_string();
        if (under_roots(rel_str)) files.insert(rel_str);
      }
    }
  }
  return {files.begin(), files.end()};
}

Baseline ParseBaseline(const std::string& content) {
  Baseline baseline;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::string file, rule;
    if (words >> file >> rule) baseline.entries.insert({file, rule});
  }
  return baseline;
}

bool LoadBaseline(const std::string& path, Baseline* baseline) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *baseline = ParseBaseline(buffer.str());
  return true;
}

bool IsBaselined(const Baseline& baseline, const Finding& finding) {
  if (StartsWith(finding.rule, "ALLOW_") || finding.rule == "BASELINE_STALE" ||
      finding.rule == "THREAD_COMPAT") {
    return false;
  }
  return baseline.entries.count({finding.file, finding.rule}) > 0;
}

std::vector<Finding> StaleBaselineEntries(
    const Baseline& baseline, const std::vector<Finding>& findings) {
  std::vector<Finding> stale;
  for (const auto& [file, rule] : baseline.entries) {
    const bool matched =
        std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
          return f.file == file && f.rule == rule;
        });
    if (!matched) {
      stale.push_back({file, 0, "BASELINE_STALE",
                       "baseline entry (" + file + ", " + rule +
                           ") matches no current finding; delete it from "
                           "the baseline file"});
    }
  }
  return stale;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

}  // namespace nmc::lint
