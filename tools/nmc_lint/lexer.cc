#include "nmc_lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace nmc::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-char punctuators, longest first so maximal munch works by scanning
/// the table in order. ">>" stays a single token; consumers that balance
/// template brackets must count it as two closers.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", ".*",
};

/// Phase-2 splice: removes backslash-newline pairs while recording the
/// physical line of every surviving character.
void Splice(const std::string& content, std::string* out,
            std::vector<int>* line_of) {
  const size_t n = content.size();
  int line = 1;
  out->reserve(n);
  line_of->reserve(n);
  for (size_t i = 0; i < n;) {
    if (content[i] == '\\' && i + 1 < n &&
        (content[i + 1] == '\n' ||
         (content[i + 1] == '\r' && i + 2 < n && content[i + 2] == '\n'))) {
      i += content[i + 1] == '\r' ? 3 : 2;
      ++line;
      continue;
    }
    out->push_back(content[i]);
    line_of->push_back(line);
    if (content[i] == '\n') ++line;
    ++i;
  }
}

}  // namespace

std::vector<Token> Lex(const std::string& content) {
  std::string s;
  std::vector<int> line_of;
  Splice(content, &s, &line_of);

  std::vector<Token> tokens;
  const size_t n = s.size();
  size_t i = 0;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto emit = [&](TokenKind kind, size_t begin, size_t end) {
    tokens.push_back({kind, s.substr(begin, end - begin), line_of[begin]});
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' with nothing but whitespace before it on
    // the line owns everything through the (spliced) end of line.
    if (c == '#' && at_line_start) {
      const size_t begin = i;
      while (i < n && s[i] != '\n') ++i;
      emit(TokenKind::kPpDirective, begin, i);
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const size_t begin = i;
      while (i < n && s[i] != '\n') ++i;
      emit(TokenKind::kComment, begin, i);
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const size_t begin = i;
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = i + 1 < n ? i + 2 : n;
      emit(TokenKind::kComment, begin, i);
      continue;
    }

    // Identifier — possibly a literal prefix (R"..., u8"..., L'...').
    if (IsIdentStart(c)) {
      const size_t begin = i;
      while (i < n && IsIdentChar(s[i])) ++i;
      const std::string ident = s.substr(begin, i - begin);
      const bool raw_prefix = ident == "R" || ident == "u8R" ||
                              ident == "uR" || ident == "LR" || ident == "UR";
      const bool enc_prefix =
          ident == "u8" || ident == "u" || ident == "U" || ident == "L";
      if (raw_prefix && i < n && s[i] == '"') {
        // R"delim( ... )delim" — contents are verbatim, no escapes.
        size_t j = i + 1;
        std::string delim;
        while (j < n && s[j] != '(' && s[j] != '\n' && delim.size() < 16) {
          delim += s[j++];
        }
        if (j < n && s[j] == '(') {
          const std::string closer = ")" + delim + "\"";
          const size_t end = s.find(closer, j + 1);
          i = end == std::string::npos ? n : end + closer.size();
          emit(TokenKind::kRawString, begin, i);
          continue;
        }
        // Malformed raw-string opener: fall through, treat as identifier +
        // ordinary string so later tokens still lex.
      }
      if (enc_prefix && i < n && (s[i] == '"' || s[i] == '\'')) {
        const char quote = s[i];
        size_t j = i + 1;
        while (j < n && s[j] != quote && s[j] != '\n') {
          if (s[j] == '\\' && j + 1 < n) ++j;
          ++j;
        }
        i = j < n && s[j] == quote ? j + 1 : j;
        emit(quote == '"' ? TokenKind::kString : TokenKind::kCharLiteral,
             begin, i);
        continue;
      }
      emit(TokenKind::kIdentifier, begin, i);
      continue;
    }

    // Plain string / char literal.
    if (c == '"' || c == '\'') {
      const size_t begin = i;
      size_t j = i + 1;
      while (j < n && s[j] != c && s[j] != '\n') {
        if (s[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      i = j < n && s[j] == c ? j + 1 : j;
      emit(c == '"' ? TokenKind::kString : TokenKind::kCharLiteral, begin, i);
      continue;
    }

    // pp-number: starts with a digit, or '.' followed by a digit.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(s[i + 1]))) {
      const size_t begin = i;
      ++i;
      while (i < n) {
        if (IsIdentChar(s[i]) || s[i] == '\'' || s[i] == '.') {
          // Exponent signs belong to the number: 1e+9, 0x1p-3.
          const char prev = s[i];
          ++i;
          if ((prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') &&
              i < n && (s[i] == '+' || s[i] == '-')) {
            ++i;
          }
          continue;
        }
        break;
      }
      emit(TokenKind::kNumber, begin, i);
      continue;
    }

    // Punctuator: longest match from the multi-char table, else one char.
    {
      const size_t begin = i;
      size_t len = 1;
      for (const char* p : kPuncts) {
        const size_t plen = std::char_traits<char>::length(p);
        if (plen <= n - i && s.compare(i, plen, p) == 0) {
          len = plen;
          break;
        }
      }
      i += len;
      emit(TokenKind::kPunct, begin, i);
    }
  }
  return tokens;
}

}  // namespace nmc::lint
