// Fixture for NO_UNORDERED_ITERATION_IN_PROTOCOL. Linted as if at
// src/hyz/fixture.cc. Declaring and point-querying unordered containers is
// fine; iterating one (hash order → message schedule) is the violation.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int SumValues(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& entry : counts) {  // EXPECT: NO_UNORDERED_ITERATION_IN_PROTOCOL
    total += entry.second;
  }
  return total;
}

int FirstElement(const std::unordered_set<int>& live_sites) {
  return *live_sites.begin();  // EXPECT: NO_UNORDERED_ITERATION_IN_PROTOCOL
}

// Near-misses that must stay silent:
int PointLookups(const std::unordered_map<std::string, int>& index) {
  int hits = 0;
  // The standard membership probe: .end() without .begin() is not a sweep.
  if (index.find("root") != index.end()) ++hits;
  hits += static_cast<int>(index.count("leaf"));
  return hits;
}

std::vector<int> SortedSweep(const std::vector<int>& ordered_sites) {
  std::vector<int> out;
  for (const int site : ordered_sites) out.push_back(site);  // vector: fine
  return out;
}
