// EXPECT: PRAGMA_ONCE
// Fixture: a header still using the retired #ifndef guard convention.
// The finding is reported at line 1 (it is a whole-file property).
#ifndef NMCOUNT_TESTDATA_MISSING_PRAGMA_ONCE_H_
#define NMCOUNT_TESTDATA_MISSING_PRAGMA_ONCE_H_

int GuardedDeclaration();

#endif  // NMCOUNT_TESTDATA_MISSING_PRAGMA_ONCE_H_
