#pragma once
