#pragma once

#include "mid/m.h"
