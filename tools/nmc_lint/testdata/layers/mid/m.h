#pragma once

#include "base/b.h"
