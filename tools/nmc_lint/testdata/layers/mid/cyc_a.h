#pragma once

#include "mid/cyc_b.h"
