#pragma once

#include "mid/cyc_a.h"
