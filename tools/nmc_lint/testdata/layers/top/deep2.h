#pragma once

#include "top/deep3.h"
