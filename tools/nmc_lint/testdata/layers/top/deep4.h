#pragma once
