#pragma once

#include "top/deep4.h"
