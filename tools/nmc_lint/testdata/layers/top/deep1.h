#pragma once

#include "top/deep2.h"
