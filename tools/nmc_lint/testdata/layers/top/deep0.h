#pragma once

#include "top/deep1.h"
