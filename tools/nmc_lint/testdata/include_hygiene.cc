// Fixture for INCLUDE_HYGIENE. Linted as if at src/streams/fixture.cc.
#include "../core/sampling.h"  // EXPECT: INCLUDE_HYGIENE
#include <bits/stdc++.h>  // EXPECT: INCLUDE_HYGIENE

// Near-misses that must stay silent:
#include "core/sampling.h"
#include <vector>
// A comment mentioning #include "../core/sampling.h" must not fire, and
// neither must a string:
const char* kExample = "#include \"../core/sampling.h\"";

int Placeholder() { return 0; }
