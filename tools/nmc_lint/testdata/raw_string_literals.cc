// Regression fixture for raw-string scanning. The pre-lexer line scanner
// closed R"x(...)x" at the first ')"' regardless of the delimiter,
// resurrecting the tail of the literal as "code"; and it dropped the line
// accounting of multi-line raw strings. Nothing inside any literal below
// may fire a rule, and the one real violation at the end must land on its
// exact line.
#include <string>

namespace nmc::sim {

const char* kQueries[] = {
    R"(select time( from logs)",
    R"(std::map<int, int> rendered as prose)",
    R"x(rand() and a tricky )" inside the delimited text)x",
};

const char* kReport = R"sql(
  time(nullptr);
  std::cout << "not a real stream insertion";
  std::deque<int> still_prose;
  rand();
)sql";

// A '"' inside a char literal must not open a string that swallows the
// rest of the file.
constexpr char kQuote = '"';
constexpr char kApostrophe = '\'';

// EXPECT-NEXT: NO_WALLCLOCK_IN_SIM
long AfterTheLiterals() { return time(nullptr); }

}  // namespace nmc::sim
