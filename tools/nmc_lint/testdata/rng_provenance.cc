// Fixture for the provenance half of NO_UNSEEDED_RNG: an engine
// construction is clean only when its seed expression traces to a
// function/ctor parameter, a member, or a common/rng.h factory call on an
// already-clean generator — all judged at the construction site.
#include "common/rng.h"

namespace nmc::core {

struct Options {
  unsigned long long seed = 0;
};

class Widget {
 public:
  explicit Widget(const Options& options) : options_(options) {}

  void CleanCases(unsigned long long seed, const Options& options) {
    common::Rng direct(seed);
    common::Rng from_member(options_.seed);
    common::Rng salted(options.seed ^ 0x9e3779b97f4a7c15ULL);
    common::Rng seeder(options.seed);
    common::Rng forked = seeder.Fork();
    common::Rng derived(seeder.NextU64());
    std::mt19937 std_ok(static_cast<unsigned>(seed));
  }

  void DirtyCases(unsigned long long seed) {
    // EXPECT-NEXT: NO_UNSEEDED_RNG
    common::Rng fixed(12345);
    // EXPECT-NEXT: NO_UNSEEDED_RNG
    common::Rng from_global(kFileScopeSeed);
    // EXPECT-NEXT: NO_UNSEEDED_RNG
    std::mt19937 defaulted;
    // EXPECT-NEXT: NO_UNSEEDED_RNG
    common::Rng from_helper(MakeSeed());
    // A dirty local stays dirty through an assignment.
    unsigned long long laundered = MakeSeed();
    // EXPECT-NEXT: NO_UNSEEDED_RNG
    common::Rng still_dirty(laundered);
    // The annotation escape hatch, with its mandatory reason:
    // nmc-lint: allow(NO_UNSEEDED_RNG) fixture demonstrates a justified fixed seed
    common::Rng annotated(99);
  }

 private:
  Options options_;
};

}  // namespace nmc::core
