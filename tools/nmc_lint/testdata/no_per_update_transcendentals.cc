// Fixture for NO_PER_UPDATE_TRANSCENDENTALS. Linted as if at
// src/core/fixture.cc (protocol scope). The rule brace-tracks the bodies
// of the per-update entry points (OnLocalUpdate / ProcessUpdate /
// ProcessBatch / ProcessRun / ConsumeRun) and flags direct log/exp/pow
// calls there; helpers, declarations, and look-alike identifiers stay
// silent.
#include <cmath>

class Site {
 public:
  void OnLocalUpdate(double value) {
    sum_ += value;
    rate_ = std::log1p(-value);  // EXPECT: NO_PER_UPDATE_TRANSCENDENTALS
  }

  long ConsumeRun(long count) {
    const double dom = std::pow(sum_, 0.5);  // EXPECT: NO_PER_UPDATE_TRANSCENDENTALS
    // A justified slow-path evaluation uses the annotation escape:
    // nmc-lint: allow(NO_PER_UPDATE_TRANSCENDENTALS) frozen-rate gap redraw, amortized O(1) per report
    const double gap = std::log(0.5) / dom;
    return count + static_cast<long>(gap);
  }

 private:
  double rate_ = 0.0;
  double sum_ = 0.0;
};

class Protocol {
 public:
  // Declaration only — no body, must not arm the tracker; the exp() in
  // the helper right after it is outside any entry point.
  void ProcessUpdate(int site_id, double value);

  double RateHelper(double estimate) const {
    return std::exp(-estimate);  // helper body: silent by design
  }

  long ProcessBatch(long count) {
    // Unqualified calls count too (cmath pollutes the global namespace).
    const double boost = exp2(3.0);  // EXPECT: NO_PER_UPDATE_TRANSCENDENTALS
    return count + static_cast<long>(boost);
  }

  long ProcessRun(long count) { return count + offset_; }  // clean body

 private:
  long offset_ = 0;
};

// Near-misses that must NOT fire:
double exp_(double x);                       // trailing underscore: not exp(
double logical(double x) { return x; }       // 'log' inside an identifier
double ReProcessUpdate(double x) {           // name embedded in a longer one
  return std::pow(x, 2.0);                   // ...so this body is untracked
}
const double export_rate = 0.0;              // 'exp' prefix, no call
