// Fixture for NO_IOSTREAM_IN_LIB. Linted as if at src/core/fixture.cc.
// Library code returns data; printing is for binaries and src/bench.
#include <cstdio>
#include <iostream>  // EXPECT: NO_IOSTREAM_IN_LIB

void ReportProgress(int step) {
  std::cout << "step " << step << "\n";  // EXPECT: NO_IOSTREAM_IN_LIB
}

void ReportError(const char* what) {
  std::cerr << what << "\n";  // EXPECT: NO_IOSTREAM_IN_LIB
}

void LegacyPrint(int value) {
  printf("%d\n", value);  // EXPECT: NO_IOSTREAM_IN_LIB
}

// Near-misses that must stay silent: stderr diagnostics via fprintf and
// string formatting via snprintf are the sanctioned forms (see
// src/common/check.h).
void Diagnose(const char* what) { std::fprintf(stderr, "%s\n", what); }
int Format(char* buf, unsigned long n) {
  return std::snprintf(buf, n, "x");
}
int sprintf_like_name(int x) { return x; }  // 'printf' inside an identifier
