// Fixture for the annotation-hygiene rules. Linted as if at
// src/core/fixture.cc. The allowlist layer itself is linted: an allowance
// must name a real rule, carry a written reason, and actually suppress
// something — otherwise it rots into a blanket suppression.
#include <cstdlib>

// EXPECT-NEXT: ALLOW_MISSING_REASON
int NoReasonGiven() { return rand(); }  // nmc-lint: allow(NO_UNSEEDED_RNG)

// EXPECT-NEXT: ALLOW_UNKNOWN_RULE
int TypoedRule() { return 1; }  // nmc-lint: allow(NO_SUCH_RULE) the rule name is misspelled

// EXPECT-NEXT: ALLOW_UNUSED
int NothingToSuppress() { return 2; }  // nmc-lint: allow(NO_UNSEEDED_RNG) nothing on this line fires

// A correct allowance: known rule, written reason, suppresses a real
// finding — completely silent.
int JustifiedUse() {
  return rand();  // nmc-lint: allow(NO_UNSEEDED_RNG) fixture: documented escape hatch
}
