// Fixture for NO_HEAP_IN_HOT_PATH. Linted as if at src/sim/fixture.cc
// (protocol scope). The rule brace-tracks the bodies of the per-update and
// delivery entry points (OnLocalUpdate / ProcessUpdate / ... / DeliverAll /
// Route / Send* / On*Message) and flags heap traffic there: `new`,
// std::make_unique / std::make_shared, and push_back / emplace_back on a
// receiver the file never reserve()s. Constructors, helpers, declarations,
// and reserved receivers stay silent.
#include <memory>
#include <vector>

struct Message {
  int type = 0;
};

class Network {
 public:
  Network() {
    queue_.reserve(64);  // sanctioned: reserve in the ctor, push in the pump
  }

  void SendToCoordinator(int from_site, const Message& message) {
    queue_.push_back(message);    // reserved receiver: silent
    backlog_.push_back(message);  // EXPECT: NO_HEAP_IN_HOT_PATH
  }

  void Route(const Message& message) {
    auto* copy = new Message(message);  // EXPECT: NO_HEAP_IN_HOT_PATH
    delete copy;
    tap_ = std::make_unique<Message>(message);  // EXPECT: NO_HEAP_IN_HOT_PATH
  }

  void DeliverAll() {
    // A justified warm-up allocation uses the annotation escape:
    // nmc-lint: allow(NO_HEAP_IN_HOT_PATH) cold-path lazy init, amortized O(1) per trial
    scratch_.push_back(Message{});
    queue_.emplace_back();  // reserved receiver: silent
  }

  // Declaration only — no body, must not arm the tracker; the make_shared
  // in the helper right after it is outside any entry point.
  void ProcessUpdate(int site_id, double value);

  void RebuildRouting() {
    routes_ = std::make_shared<std::vector<int>>();  // helper body: silent
    routes_->push_back(0);                           // helper body: silent
  }

 private:
  std::vector<Message> queue_;
  std::vector<Message> backlog_;
  std::vector<Message> scratch_;
  std::unique_ptr<Message> tap_;
  std::shared_ptr<std::vector<int>> routes_;
};

// Near-misses that must NOT fire:
struct Renewal {
  int renew = 0;  // 'new' inside a longer identifier
};
void ProcessBatchStats(std::vector<int>* out) {  // name embedded in a longer one
  out->push_back(1);                             // ...so this body is untracked
}
