// Fixture for the atomics-discipline rules. Linted twice: as
// src/core/fixture.cc (ATOMIC_ORDER_EXPLICIT + SEQ_CST_JUSTIFIED apply)
// and as src/runtime/fixture.cc (NO_RAW_ATOMIC_IN_RUNTIME joins in; the
// raw-atomic EXPECT-RUNTIME markers below are rewritten to EXPECT by the
// test before linting at that path).
#include <atomic>

class Widget {
 public:
  int DefaultedLoad() {
    return counter_.load();  // EXPECT: ATOMIC_ORDER_EXPLICIT
  }

  void DefaultedStore(int v) {
    counter_.store(v);  // EXPECT: ATOMIC_ORDER_EXPLICIT
  }

  int DefaultedRmw() {
    return counter_.fetch_add(1);  // EXPECT: ATOMIC_ORDER_EXPLICIT
  }

  bool DefaultedCas(int want, int next) {
    // EXPECT-NEXT: ATOMIC_ORDER_EXPLICIT
    return counter_.compare_exchange_strong(want, next);
  }

  int ExplicitRelaxedIsFine() {
    counter_.store(1, std::memory_order_relaxed);
    return counter_.load(std::memory_order_acquire);
  }

  int SpannedArgumentListIsStillSeen(int v) {
    counter_.store(v,
                   std::memory_order_release);
    return 0;
  }

  int UnjustifiedSeqCst() {
    return counter_.load(std::memory_order_seq_cst);  // EXPECT: SEQ_CST_JUSTIFIED
  }

  int JustifiedSeqCstSameLine() {
    return counter_.load(std::memory_order_seq_cst);  // nmc: seq-cst(SB litmus needs the total order)
  }

  int JustifiedSeqCstPrecedingLine() {
    // nmc: seq-cst(cross-variable agreement between watchers)
    counter_.store(2, std::memory_order_seq_cst);
    return 0;
  }

  int EmptyReasonDoesNotJustify() {
    // nmc: seq-cst()
    return counter_.load(std::memory_order_seq_cst);  // EXPECT: SEQ_CST_JUSTIFIED
  }

  void RawFence() {
    std::atomic_thread_fence(  // EXPECT-RUNTIME: NO_RAW_ATOMIC_IN_RUNTIME
        std::memory_order_acquire);
  }

 private:
  std::atomic<int> counter_{0};  // EXPECT-RUNTIME: NO_RAW_ATOMIC_IN_RUNTIME
  std::atomic_flag flag_;        // EXPECT-RUNTIME: NO_RAW_ATOMIC_IN_RUNTIME
};

// Near-misses that must stay silent: capitalized SlotArray-style members,
// identifiers named load/store that are not member calls, and free calls.
struct Slots {
  void Store(unsigned long i, int v);
  int View(unsigned long i) const;
};
inline void UsesSlots(Slots* slots) {
  slots->Store(0, 1);
  (void)slots->View(0);
}
int load(int x);  // a free function named load is not an atomic op
inline int CallsFreeLoad() { return load(3); }
