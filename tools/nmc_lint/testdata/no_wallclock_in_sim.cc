// Fixture for NO_WALLCLOCK_IN_SIM. Linted as if at src/sim/fixture.cc —
// and a second time as if at src/bench/fixture.cc, where every line below
// must be silent (src/bench is the sanctioned timing layer).
#include <chrono>
#include <ctime>

double WallNow() {
  const auto now = std::chrono::system_clock::now();  // EXPECT: NO_WALLCLOCK_IN_SIM
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long UnixTime() {
  return time(nullptr);  // EXPECT: NO_WALLCLOCK_IN_SIM
}

double MonotonicNow() {
  const auto t = std::chrono::steady_clock::now();  // EXPECT: NO_WALLCLOCK_IN_SIM
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// Near-misses: `time` as an identifier fragment must NOT fire. This is the
// canonical false-positive the word-boundary matcher exists for.
double resolution_time();
double QueryResolution() { return resolution_time(); }
int downtime(int x) { return x; }
struct Clockwork {};  // 'clock' inside an identifier, no call
const int uptime_seconds = 0;
