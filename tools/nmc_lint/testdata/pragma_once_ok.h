// Fixture: the compliant header shape — no findings expected anywhere.
#pragma once

#include <vector>

std::vector<int> CompliantDeclaration();
