// Fixture for NO_MAP_IN_HOT_PATH. Linted as if at src/sim/fixture.cc.
// Node-based containers in the delivery path are the exact regression
// class PR 1 removed (std::map accounting, std::deque delivery queue).
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

struct Delivery {
  std::map<int, long> per_type_counts;  // EXPECT: NO_MAP_IN_HOT_PATH
  std::deque<int> queue;                // EXPECT: NO_MAP_IN_HOT_PATH
};

// Near-misses that must stay silent:
struct FlatDelivery {
  std::vector<int> queue;                  // the PR 1 replacement shape
  std::unordered_map<int, long> lookup;    // 'map<' inside unordered_map<
};
int remap_site(int site) { return site; }  // 'map' inside an identifier

// The sanctioned escape hatch: cold-path diagnostics may build a std::map
// on demand when annotated with a reason.
std::map<int, long> DebugSnapshot() {  // nmc-lint: allow(NO_MAP_IN_HOT_PATH) fixture: cold-path diagnostic built on demand
  return {};
}
