// Fixture for NO_UNSEEDED_RNG. Linted as if at src/core/fixture.cc.
// Tagged lines must produce exactly the named finding; every other line
// must stay silent.
#include <cstdlib>
#include <random>

int HardwareEntropy() {
  std::random_device rd;  // EXPECT: NO_UNSEEDED_RNG
  return static_cast<int>(rd());
}

void SeedFromNothing() {
  srand(42);  // EXPECT: NO_UNSEEDED_RNG
}

int LegacyRand() {
  return rand();  // EXPECT: NO_UNSEEDED_RNG
}

// Near-misses: the tokens embedded in identifiers must NOT fire.
int brand_score(int x) { return x; }
int operand_count() { return 2; }
double my_rand_helper_value() { return 0.5; }
struct Srandomizer {};  // 'srand' inside an identifier

// Tokens in comments and string literals must NOT fire:
// calling rand() or std::random_device here would be a bug.
const char* kDoc = "uses rand() and srand() internally";

int AllowedLegacyRand() {
  // nmc-lint: allow(NO_UNSEEDED_RNG) fixture: proves annotation-above form suppresses
  return rand();
}

int AllowedInline() {
  return rand();  // nmc-lint: allow(NO_UNSEEDED_RNG) fixture: inline form
}
