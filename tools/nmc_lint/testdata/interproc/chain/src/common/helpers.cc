// Hazard TU for the chain fixture: src/common/ is library code but not a
// hot-path directory, so the heap allocation and the transcendental below
// are only reportable through the propagated chain rooted at
// Pump::ProcessUpdate. CycleBack closes a cross-TU cycle back into the
// chain to prove the reachability walk terminates.
#include <cmath>

namespace fix {

void StageOne(double value);
void StageThree(double value);

void StageTwo(double value) {
  StageThree(value);
  CycleBack(value);
}

void StageThree(double value) {
  double* scratch = new double[8];
  scratch[0] = std::log(value);
  delete[] scratch;
}

void CycleBack(double value) {
  if (value > 0.0) StageTwo(value);
}

}  // namespace fix
