// Interprocedural fixture: a hot-path entry point whose hazards all live
// two-plus calls away, across a TU boundary (helpers.cc). Nothing in this
// file is a direct finding.
namespace fix {

void StageTwo(double value);
void CycleBack(double value);

class Pump {
 public:
  void ProcessUpdate(int site, double value);

 private:
  void StageOne(double value);
  int sites_ = 0;
};

void Pump::ProcessUpdate(int site, double value) {
  sites_ = site;
  StageOne(value);
}

void Pump::StageOne(double value) { StageTwo(value); }

}  // namespace fix
