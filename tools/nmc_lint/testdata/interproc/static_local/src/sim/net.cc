// Static-local fixture: CountCall's mutable static is two calls below
// Network::Route, a reentrancy root both by entry-point name and by audit
// class; the const and thread_local statics are fine.
namespace fix {

void CountCall(int packet);

class Network {
 public:
  void Route(int packet) { Dispatch(packet); }

 private:
  void Dispatch(int packet);
};

void Network::Dispatch(int packet) { CountCall(packet); }

void CountCall(int packet) {
  static long calls = 0;
  static const int kTableSize = 4;
  thread_local int scratch = 0;
  scratch = packet % kTableSize;
  calls += scratch;
}

}  // namespace fix
