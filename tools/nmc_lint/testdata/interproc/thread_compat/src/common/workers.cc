// THREAD_COMPAT fixture: a reentrant function may only call functions
// that are themselves marked reentrant — one unannotated callee and one
// hostile callee are findings at their call lines. The tail of the file
// seeds the three annotation-grammar findings (unknown verb, missing
// reason, unattached marker).
namespace fix {

int Unmarked(int x);
int Hostile(int x);

// nmc: reentrant
int SafeDouble(int x) { return x * 2; }

// nmc: reentrant
int DrawValue(int x) {
  int total = SafeDouble(x);
  total += Unmarked(x);
  total += Hostile(x);
  return total;
}

int Unmarked(int x) { return x + 1; }

// nmc: not-thread-safe(writes a shared buffer without locks)
int Hostile(int x) { return x - 1; }

// nmc: not-thread-safe
int NoReason(int x) { return x; }

// nmc: frobnicates(some excuse)
int UnknownVerb(int x) { return x; }

// nmc: reentrant

}  // namespace fix
