// Mutable-global fixture: one namespace-scope mutable variable and one
// mutable static data member are findings; const/constexpr state and
// plain (per-object) members are not.
namespace fix {

int g_mutable_counter = 0;
const int kLimit = 8;
constexpr double kScale = 2.0;

class Box {
 public:
  static int live_count_;
  static const int kMax = 4;
  int per_object_ = 0;
};

}  // namespace fix
