#include "nmc_lint/include_graph.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <regex>
#include <sstream>
#include <tuple>

#include "nmc_lint/lexer.h"

namespace nmc::lint {

namespace {

namespace fs = std::filesystem;

std::string Normalize(const fs::path& p) {
  return p.lexically_normal().generic_string();
}

/// First existing candidate, repo-relative; empty if the include names
/// nothing inside the repo.
std::string Resolve(const std::string& repo_root, const std::string& from,
                    const std::string& inc) {
  const fs::path from_dir = fs::path(from).parent_path();
  const fs::path candidates[] = {from_dir / inc, fs::path("src") / inc,
                                 fs::path("tools") / inc, fs::path(inc)};
  for (const fs::path& rel : candidates) {
    std::error_code ec;
    if (fs::is_regular_file(fs::path(repo_root) / rel, ec)) {
      return Normalize(rel);
    }
  }
  return "";
}

bool PrefixMatches(const std::string& path, const std::string& prefix) {
  return path == prefix ||
         (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
          path[prefix.size()] == '/');
}

/// (rank, prefix) of the longest matching prefix; rank -1 if unlayered.
std::pair<int, std::string> LayerOf(const LayerSpec& spec,
                                    const std::string& path) {
  int best_rank = -1;
  std::string best_prefix;
  for (size_t rank = 0; rank < spec.layers.size(); ++rank) {
    for (const std::string& prefix : spec.layers[rank]) {
      if (PrefixMatches(path, prefix) &&
          prefix.size() > best_prefix.size()) {
        best_rank = static_cast<int>(rank);
        best_prefix = prefix;
      }
    }
  }
  return {best_rank, best_prefix};
}

void CheckLayering(const IncludeGraph& graph, const LayerSpec& spec,
                   std::vector<Finding>* findings) {
  for (const auto& [from, refs] : graph.edges) {
    const auto [from_rank, from_prefix] = LayerOf(spec, from);
    if (from_rank < 0) continue;
    for (const IncludeRef& ref : refs) {
      const auto [to_rank, to_prefix] = LayerOf(spec, ref.target);
      if (to_rank < 0 || to_prefix == from_prefix) continue;
      if (to_rank > from_rank) {
        findings->push_back(
            {from, ref.line, "LAYERING_VIOLATION",
             "#include \"" + ref.target + "\" climbs the layer DAG: '" +
                 from_prefix + "' (layer " + std::to_string(from_rank) +
                 ") may not depend on '" + to_prefix + "' (layer " +
                 std::to_string(to_rank) +
                 "); re-home the dependency or amend the spec "
                 "(tools/nmc_lint/layers.txt)"});
      } else if (to_rank == from_rank) {
        findings->push_back(
            {from, ref.line, "LAYERING_VIOLATION",
             "#include \"" + ref.target + "\" crosses between '" +
                 from_prefix + "' and '" + to_prefix +
                 "', declared side-by-side in layer " +
                 std::to_string(from_rank) +
                 "; order them in the spec or merge the modules"});
      }
    }
  }
}

void CheckCycles(const IncludeGraph& graph, std::vector<Finding>* findings) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [file, refs] : graph.edges) color[file] = Color::kWhite;

  std::vector<std::string> path;  // current DFS chain, for cycle reporting
  std::function<void(const std::string&)> dfs = [&](const std::string& file) {
    color[file] = Color::kGray;
    path.push_back(file);
    const auto it = graph.edges.find(file);
    if (it != graph.edges.end()) {
      for (const IncludeRef& ref : it->second) {
        const auto target_color = color.find(ref.target);
        if (target_color == color.end()) continue;  // outside the file set
        if (target_color->second == Color::kGray) {
          // Back edge: the cycle is the chain from ref.target to here.
          std::string cycle;
          const auto begin =
              std::find(path.begin(), path.end(), ref.target);
          for (auto p = begin; p != path.end(); ++p) cycle += *p + " -> ";
          cycle += ref.target;
          findings->push_back({file, ref.line, "NO_INCLUDE_CYCLES",
                               "include cycle: " + cycle});
          continue;
        }
        if (target_color->second == Color::kWhite) dfs(ref.target);
      }
    }
    path.pop_back();
    color[file] = Color::kBlack;
  };
  for (const auto& [file, refs] : graph.edges) {
    if (color[file] == Color::kWhite) dfs(file);
  }
}

void CheckDepth(const IncludeGraph& graph, const LayerSpec& spec,
                std::vector<Finding>* findings) {
  if (spec.depth_budget <= 0) return;
  enum class State { kUnvisited, kInProgress, kDone };
  struct Info {
    State state = State::kUnvisited;
    int depth = 0;                 // longest chain of repo includes below
    const IncludeRef* via = nullptr;  // edge achieving that depth
  };
  std::map<std::string, Info> info;
  std::function<int(const std::string&)> depth_of =
      [&](const std::string& file) -> int {
    Info& entry = info[file];
    if (entry.state == State::kDone) return entry.depth;
    if (entry.state == State::kInProgress) return 0;  // cycle: reported above
    entry.state = State::kInProgress;
    const auto it = graph.edges.find(file);
    if (it != graph.edges.end()) {
      for (const IncludeRef& ref : it->second) {
        if (graph.edges.find(ref.target) == graph.edges.end()) continue;
        const int d = 1 + depth_of(ref.target);
        Info& self = info[file];  // depth_of may have rehashed the map
        if (d > self.depth) {
          self.depth = d;
          self.via = &ref;
        }
      }
    }
    Info& self = info[file];
    self.state = State::kDone;
    return self.depth;
  };

  for (const auto& [file, refs] : graph.edges) {
    const int depth = depth_of(file);
    if (depth <= spec.depth_budget) continue;
    // Reconstruct the deepest chain for the message.
    std::string chain = file;
    const IncludeRef* via = info[file].via;
    std::string at = file;
    while (via != nullptr) {
      chain += " -> " + via->target;
      at = via->target;
      via = info[at].via;
    }
    findings->push_back(
        {file, info[file].via->line, "INCLUDE_DEPTH",
         "transitive include depth " + std::to_string(depth) +
             " exceeds budget " + std::to_string(spec.depth_budget) +
             " (tools/nmc_lint/layers.txt): " + chain});
  }
}

}  // namespace

IncludeGraph BuildIncludeGraph(const std::string& repo_root,
                               const std::vector<std::string>& files) {
  static const std::regex kIncludeRe(
      R"(^#\s*include\s*["<]([^">]+)[">])");
  IncludeGraph graph;
  for (const std::string& file : files) {
    std::ifstream in(fs::path(repo_root) / file, std::ios::binary);
    if (!in) continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::vector<IncludeRef>& refs = graph.edges[Normalize(file)];
    for (const Token& token : Lex(buffer.str())) {
      if (token.kind != TokenKind::kPpDirective) continue;
      std::smatch match;
      if (!std::regex_search(token.text, match, kIncludeRe)) continue;
      const std::string resolved = Resolve(repo_root, file, match[1].str());
      if (!resolved.empty()) refs.push_back({resolved, token.line});
    }
  }
  return graph;
}

bool ParseLayerSpec(const std::string& content, LayerSpec* spec,
                    std::string* error) {
  *spec = LayerSpec{};
  std::istringstream lines(content);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;
    if (keyword == "depth_budget") {
      if (!(words >> spec->depth_budget) || spec->depth_budget < 1) {
        *error = "line " + std::to_string(line_number) +
                 ": depth_budget needs a positive integer";
        return false;
      }
    } else if (keyword == "layer") {
      std::vector<std::string> prefixes;
      std::string prefix;
      while (words >> prefix) {
        // Normalize away a trailing slash so "src/common/" and "src/common"
        // declare the same module.
        if (prefix.size() > 1 && prefix.back() == '/') prefix.pop_back();
        prefixes.push_back(prefix);
      }
      if (prefixes.empty()) {
        *error = "line " + std::to_string(line_number) +
                 ": layer declares no path prefixes";
        return false;
      }
      spec->layers.push_back(std::move(prefixes));
    } else {
      *error = "line " + std::to_string(line_number) +
               ": unknown directive '" + keyword + "'";
      return false;
    }
  }
  if (spec->layers.empty()) {
    *error = "spec declares no layers";
    return false;
  }
  return true;
}

bool LoadLayerSpec(const std::string& path, LayerSpec* spec,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseLayerSpec(buffer.str(), spec, error);
}

std::vector<Finding> CheckIncludeGraph(const IncludeGraph& graph,
                                       const LayerSpec& spec) {
  std::vector<Finding> findings;
  CheckLayering(graph, spec, &findings);
  CheckCycles(graph, &findings);
  CheckDepth(graph, spec, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace nmc::lint
