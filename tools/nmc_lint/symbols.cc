#include "nmc_lint/symbols.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>
#include <string>

#include "nmc_lint/token_match.h"

namespace nmc::lint {

namespace {

// The symbol scanner is a single forward pass over the code token stream
// with a stack of *declaration* scopes (namespaces, classes, enum bodies).
// Function bodies never go on the stack: when a definition header is
// recognized, the body's balanced token range is recorded on the symbol,
// scanned for static locals and call sites, and skipped in one step — so
// the main loop only ever parses declaration context. Deliberately
// heuristic where C++ demands a real frontend (see DESIGN.md §11); every
// decision is deterministic in the token stream alone.

constexpr const char* kCallKeywords[] = {
    "if",      "for",         "while",    "switch",   "return",
    "sizeof",  "alignof",     "alignas",  "decltype", "noexcept",
    "catch",   "new",         "delete",   "throw",    "defined",
    "assert",  "co_return",   "co_await", "co_yield", "typeid",
    "requires"};

/// Identifiers that may directly precede a call-looking `name(` without
/// turning it into a declaration (`return foo(x)` vs `int foo(x)`).
constexpr const char* kExprKeywords[] = {"return", "throw",     "else",
                                         "do",     "co_return", "co_yield",
                                         "case",   "goto"};

constexpr const char* kDeclSkipToSemi[] = {"using", "typedef", "friend",
                                           "static_assert"};

bool LooksLikeMacro(const std::string& name) {
  if (name.size() < 2) return false;
  bool has_alpha = false;
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

bool StartsUpper(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

struct Frame {
  enum class Kind { kNamespace, kClass, kOpaque };
  Kind kind;
  std::string name;
};

class SymbolScanner {
 public:
  SymbolScanner(const std::string& path, FileSymbols* out)
      : path_(path), out_(out), code_(out->code) {}

  void Run() {
    size_t i = 0;
    while (i < code_.size()) i = DeclStep(i);
  }

 private:
  // ---- generic skips ------------------------------------------------------

  /// Advances past the next `;`, balancing (), {} and [] so an initializer
  /// (even a lambda) cannot desync the scope stack.
  size_t SkipToSemi(size_t i) {
    int paren = 0, brace = 0, bracket = 0;
    for (; i < code_.size(); ++i) {
      const Token& t = code_[i];
      paren += ParenDelta(t);
      brace += BraceDelta(t);
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "[") ++bracket;
        if (t.text == "]") --bracket;
      }
      if (paren <= 0 && brace <= 0 && bracket <= 0 && IsPunct(code_, i, ";")) {
        return i + 1;
      }
    }
    return i;
  }

  size_t SkipAngles(size_t i) {  // i at '<'
    int depth = 0;
    for (; i < code_.size(); ++i) {
      depth += AngleDelta(code_[i]);
      if (depth <= 0) return i + 1;
    }
    return i;
  }

  // ---- declaration scope --------------------------------------------------

  size_t DeclStep(size_t i) {
    if (IsPunct(code_, i, "}")) {
      if (!stack_.empty()) stack_.pop_back();
      return i + 1;
    }
    if (IsPunct(code_, i, ";")) return i + 1;
    if (IsIdent(code_, i, "namespace")) return ParseNamespace(i);
    if (IsIdent(code_, i, "template")) {
      if (IsPunct(code_, i + 1, "<")) return SkipAngles(i + 1);
      return i + 1;
    }
    if (IsIdentIn(code_, i, kDeclSkipToSemi)) return SkipToSemi(i);
    if (IsIdent(code_, i, "extern")) {
      // `extern "C" {` lexes to `extern` `{` in the code stream (the
      // literal is dropped); the block is transparent.
      if (IsPunct(code_, i + 1, "{")) {
        stack_.push_back({Frame::Kind::kNamespace, ""});
        return i + 2;
      }
      return SkipToSemi(i);
    }
    if (IsIdent(code_, i, "enum")) return ParseEnum(i);
    if (IsIdent(code_, i, "class") || IsIdent(code_, i, "struct") ||
        IsIdent(code_, i, "union")) {
      return ParseClass(i);
    }
    if ((IsIdent(code_, i, "public") || IsIdent(code_, i, "private") ||
         IsIdent(code_, i, "protected")) &&
        IsPunct(code_, i + 1, ":")) {
      return i + 2;
    }
    return ParseDeclaration(i);
  }

  size_t ParseNamespace(size_t i) {
    ++i;  // past `namespace`
    std::string name;
    while (IsIdent(code_, i)) {
      if (!name.empty()) name += "::";
      name += code_[i].text;
      if (IsPunct(code_, i + 1, "::")) {
        i += 2;
      } else {
        ++i;
        break;
      }
    }
    if (IsPunct(code_, i, "=")) return SkipToSemi(i);  // namespace alias
    if (IsPunct(code_, i, "{")) {
      stack_.push_back(
          {Frame::Kind::kNamespace, name.empty() ? "(anon)" : name});
      return i + 1;
    }
    return i + 1;
  }

  size_t ParseEnum(size_t i) {
    // `enum [class|struct] [name] [: underlying] { ... } ;` — the body is
    // opaque (enumerators, not code).
    for (; i < code_.size(); ++i) {
      if (IsPunct(code_, i, ";")) return i + 1;
      if (IsPunct(code_, i, "{")) {
        stack_.push_back({Frame::Kind::kOpaque, ""});
        return i + 1;
      }
    }
    return i;
  }

  size_t ParseClass(size_t i) {
    ++i;  // past class/struct/union
    std::string name;
    if (IsIdent(code_, i) && !IsIdent(code_, i, "final")) {
      name = code_[i].text;
    }
    // Scan to the body `{` or a `;` (forward declaration / pointer decl);
    // template arguments and base-clause parens are balanced through.
    int angle = 0, paren = 0;
    for (; i < code_.size(); ++i) {
      angle += AngleDelta(code_[i]);
      paren += ParenDelta(code_[i]);
      if (angle > 0 || paren > 0) continue;
      if (IsPunct(code_, i, ";")) return i + 1;
      if (IsPunct(code_, i, "=")) return SkipToSemi(i);  // type alias-ish
      if (IsPunct(code_, i, "{")) {
        stack_.push_back({Frame::Kind::kClass, name});
        return i + 1;
      }
    }
    return i;
  }

  // ---- the generic member / variable / function parse --------------------

  size_t ParseDeclaration(size_t i) {
    const size_t start = i;
    bool saw_const = false;
    bool saw_static = false;
    bool saw_operator = false;
    int angle = 0;
    for (; i < code_.size(); ++i) {
      const Token& t = code_[i];
      angle += AngleDelta(t);
      if (angle > 0) continue;
      if (IsIdent(code_, i, "const") || IsIdent(code_, i, "constexpr")) {
        saw_const = true;
      } else if (IsIdent(code_, i, "static")) {
        saw_static = true;
      } else if (IsIdent(code_, i, "operator")) {
        saw_operator = true;
      } else if (IsPunct(code_, i, "(") && i > start &&
                 (IsIdent(code_, i - 1) || saw_operator)) {
        return ParseCallableTail(start, i, saw_operator);
      } else if (IsPunct(code_, i, "=") && !saw_operator) {
        RecordVariable(start, i, saw_const, saw_static);
        return SkipToSemi(i);
      } else if (IsPunct(code_, i, "{")) {
        // Brace-initialized variable: `int x{3};`.
        RecordVariable(start, i, saw_const, saw_static);
        const size_t close = MatchingClose(code_, i, BraceDelta);
        return SkipToSemi(close);
      } else if (IsPunct(code_, i, ";")) {
        RecordVariable(start, i, saw_const, saw_static);
        return i + 1;
      }
    }
    return i;
  }

  /// Declarator name for a variable-shaped statement ending at `stop`:
  /// the last identifier before `stop`, skipping back over array brackets.
  void RecordVariable(size_t start, size_t stop, bool saw_const,
                      bool saw_static) {
    if (saw_const || stop <= start) return;
    size_t j = stop;
    while (j > start) {
      --j;
      if (IsPunct(code_, j, "]")) {
        while (j > start && !IsPunct(code_, j, "[")) --j;
        continue;
      }
      if (IsIdent(code_, j)) break;
      if (code_[j].kind != TokenKind::kNumber) return;  // *,& fall through
    }
    if (!IsIdent(code_, j)) return;
    const std::string& name = code_[j].text;
    // Reference bindings at namespace scope and keyword tails are not data.
    if (name == "final" || name == "override" || LooksLikeMacro(name)) return;
    const Frame* cls = InnermostClass();
    if (cls != nullptr && !saw_static) return;  // plain member: per-object
    if (InOpaque()) return;                     // enumerators
    MutableGlobal global;
    global.name = name;
    global.line = code_[j].line;
    global.is_static_member = cls != nullptr;
    global.owner = cls != nullptr ? cls->name : "";
    out_->mutable_globals.push_back(std::move(global));
  }

  /// From `open` (the '(' of a callable-looking declarator), decide
  /// declaration vs definition and record the symbol + body scan.
  size_t ParseCallableTail(size_t /*start*/, size_t open, bool is_operator) {
    const size_t close = MatchingClose(code_, open, ParenDelta);
    if (close >= code_.size()) return code_.size();
    size_t i = close + 1;
    // Trailing qualifiers / trailing return type. `= 0|default|delete ;`
    // ends a declaration; a ctor init list runs entry-wise to the body.
    while (i < code_.size()) {
      if (IsIdent(code_, i, "const") || IsIdent(code_, i, "noexcept") ||
          IsIdent(code_, i, "override") || IsIdent(code_, i, "final") ||
          IsPunct(code_, i, "&") || IsPunct(code_, i, "&&")) {
        if (IsIdent(code_, i, "noexcept") && IsPunct(code_, i + 1, "(")) {
          i = MatchingClose(code_, i + 1, ParenDelta) + 1;
        } else {
          ++i;
        }
        continue;
      }
      if (IsPunct(code_, i, "->")) {  // trailing return type
        ++i;
        while (i < code_.size() && !IsPunct(code_, i, "{") &&
               !IsPunct(code_, i, ";") && !IsPunct(code_, i, "=")) {
          if (IsPunct(code_, i, "<")) {
            i = SkipAngles(i);
          } else {
            ++i;
          }
        }
        continue;
      }
      break;
    }
    if (IsPunct(code_, i, "=")) return SkipToSemi(i);  // pure/default/delete
    if (IsPunct(code_, i, ":")) {                      // ctor init list
      ++i;
      while (i < code_.size()) {
        while (IsIdent(code_, i) || IsPunct(code_, i, "::") ||
               IsPunct(code_, i, "<") || IsPunct(code_, i, ">")) {
          if (IsPunct(code_, i, "<")) {
            i = SkipAngles(i);
          } else {
            ++i;
          }
        }
        if (IsPunct(code_, i, "(")) {
          i = MatchingClose(code_, i, ParenDelta) + 1;
        } else if (IsPunct(code_, i, "{")) {
          i = MatchingClose(code_, i, BraceDelta) + 1;
        } else {
          break;
        }
        if (IsPunct(code_, i, ",")) {
          ++i;
          continue;
        }
        break;
      }
    }
    if (!IsPunct(code_, i, "{")) return SkipToSemi(open);  // declaration
    return RecordFunction(open, i, is_operator);
  }

  size_t RecordFunction(size_t open, size_t body_open, bool is_operator) {
    FunctionSymbol sym;
    sym.file = path_;
    // Name + qualifier chain, read backwards from the '('.
    size_t j = open;  // token after the name going backwards
    std::vector<std::string> quals;
    if (is_operator) {
      sym.name = "operator";
      sym.line = code_[open].line;
    } else {
      --j;  // the name token
      sym.name = code_[j].text;
      sym.line = code_[j].line;
      if (j >= 1 && IsPunct(code_, j - 1, "~")) sym.name = "~" + sym.name;
      while (j >= 2 && IsPunct(code_, j - 1, "::") && IsIdent(code_, j - 2)) {
        quals.insert(quals.begin(), code_[j - 2].text);
        j -= 2;
      }
    }
    const Frame* cls = InnermostClass();
    if (cls != nullptr) {
      sym.class_name = cls->name;
    } else if (!quals.empty() && StartsUpper(quals.back())) {
      sym.class_name = quals.back();
      quals.pop_back();
    }
    for (const Frame& frame : stack_) {
      if (frame.kind != Frame::Kind::kNamespace || frame.name.empty()) {
        continue;
      }
      if (!sym.name_space.empty()) sym.name_space += "::";
      sym.name_space += frame.name;
    }
    for (const std::string& qual : quals) {
      if (!sym.name_space.empty()) sym.name_space += "::";
      sym.name_space += qual;
    }
    const size_t body_close = MatchingClose(code_, body_open, BraceDelta);
    sym.body_begin = body_open + 1;
    sym.body_end = body_close;
    const size_t index = out_->functions.size();
    out_->functions.push_back(std::move(sym));
    ScanBody(index, body_open + 1, body_close);
    return body_close < code_.size() ? body_close + 1 : code_.size();
  }

  // ---- function bodies ----------------------------------------------------

  void ScanBody(size_t function_index, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (IsIdent(code_, i, "static")) {
        RecordStaticLocal(function_index, i, end);
        continue;
      }
      if (!IsIdent(code_, i) || !IsPunct(code_, i + 1, "(")) continue;
      if (IsIdentIn(code_, i, kCallKeywords)) continue;
      const std::string& name = code_[i].text;
      if (LooksLikeMacro(name)) continue;
      // `Type name(args)` is a declaration, not a call — unless the
      // preceding identifier is an expression keyword (`return foo(x)`).
      if (i > begin && IsIdent(code_, i - 1) &&
          !IsIdentIn(code_, i - 1, kExprKeywords)) {
        continue;
      }
      CallSite call;
      call.caller_index = function_index;
      call.name = name;
      call.line = code_[i].line;
      size_t j = i;
      while (j >= 2 && IsPunct(code_, j - 1, "::") && IsIdent(code_, j - 2)) {
        call.quals.insert(call.quals.begin(), code_[j - 2].text);
        j -= 2;
      }
      call.member_call =
          j >= 1 && (IsPunct(code_, j - 1, ".") || IsPunct(code_, j - 1, "->"));
      out_->calls.push_back(std::move(call));
    }
  }

  void RecordStaticLocal(size_t function_index, size_t i, size_t end) {
    // `static const`/`static constexpr` locals are immutable after their
    // (thread-safe) init; `thread_local` state is per-thread. Both are
    // reentrancy-compatible and exempt.
    if (IsIdent(code_, i + 1, "const") || IsIdent(code_, i + 1, "constexpr") ||
        IsIdent(code_, i + 1, "thread_local") ||
        (i > 0 && IsIdent(code_, i - 1, "thread_local"))) {
      return;
    }
    StaticLocal local;
    local.function_index = function_index;
    local.line = code_[i].line;
    for (size_t j = i + 1; j < end && j < i + 16; ++j) {
      if (IsPunct(code_, j, ";") || IsPunct(code_, j, "=") ||
          IsPunct(code_, j, "{") || IsPunct(code_, j, "(")) {
        if (j > i + 1 && IsIdent(code_, j - 1)) local.hint = code_[j - 1].text;
        break;
      }
    }
    out_->static_locals.push_back(std::move(local));
  }

  // ---- helpers ------------------------------------------------------------

  const Frame* InnermostClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Frame::Kind::kClass) return &*it;
      if (it->kind == Frame::Kind::kOpaque) return nullptr;
    }
    return nullptr;
  }

  bool InOpaque() const {
    return !stack_.empty() && stack_.back().kind == Frame::Kind::kOpaque;
  }

  const std::string& path_;
  FileSymbols* out_;
  const std::vector<Token>& code_;
  std::vector<Frame> stack_;
};

// ---- thread markers -------------------------------------------------------

std::vector<ThreadMarker> ParseThreadMarkers(const std::string& content) {
  // `// nmc: verb` or `// nmc: verb(argument)` — note the bare `nmc:`
  // marker; `nmc-lint: allow(...)` is a different namespace and never
  // matches here.
  static const std::regex kMarkerRe(
      R"(//\s*nmc:\s*([A-Za-z0-9_-]+)\s*(?:\(([^)]*)\))?)");
  std::vector<ThreadMarker> markers;
  std::istringstream lines(content);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::smatch match;
    if (!std::regex_search(line, match, kMarkerRe)) continue;
    ThreadMarker marker;
    marker.line = line_number;
    const size_t first = line.find_first_not_of(" \t");
    const bool comment_only =
        first != std::string::npos && line.compare(first, 2, "//") == 0;
    marker.target_line = comment_only ? line_number + 1 : line_number;
    marker.verb = match[1].str();
    marker.reason = match[2].matched ? match[2].str() : "";
    // `// nmc: seq-cst(reason)` belongs to the atomics-discipline rule
    // (SEQ_CST_JUSTIFIED validates it in place), not the thread-contract
    // grammar — skip it here so it is not reported as an unknown verb.
    if (marker.verb == "seq-cst") continue;
    if (marker.verb == "reentrant") {
      marker.kind = ThreadAnnotation::kReentrant;
    } else if (marker.verb == "not-thread-safe") {
      marker.kind = ThreadAnnotation::kNotThreadSafe;
    } else {
      marker.kind = ThreadAnnotation::kNone;
    }
    markers.push_back(std::move(marker));
  }
  return markers;
}

void AttachMarkers(FileSymbols* symbols) {
  for (ThreadMarker& marker : symbols->markers) {
    if (marker.kind == ThreadAnnotation::kNone) continue;  // unknown verb
    for (FunctionSymbol& fn : symbols->functions) {
      if (fn.line >= marker.target_line && fn.line <= marker.target_line + 2) {
        fn.annotation = marker.kind;
        fn.annotation_line = marker.line;
        marker.attached = true;
        break;
      }
    }
  }
}

}  // namespace

FileSymbols BuildFileSymbols(const std::string& path,
                             const std::string& content) {
  FileSymbols symbols;
  symbols.file = path;
  for (const Token& token : Lex(content)) {
    if (IsCodeToken(token)) symbols.code.push_back(token);
  }
  symbols.markers = ParseThreadMarkers(content);
  SymbolScanner(path, &symbols).Run();
  AttachMarkers(&symbols);
  return symbols;
}

}  // namespace nmc::lint
