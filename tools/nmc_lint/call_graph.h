#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "nmc_lint/lint.h"
#include "nmc_lint/symbols.h"

namespace nmc::lint {

/// One resolved call edge: caller node → callee node, at `line` in the
/// caller's file.
struct GraphEdge {
  size_t callee = 0;
  int line = 0;
};

/// Result of a multi-source BFS over the graph: for every node, the shortest
/// hop distance from the root set and the (parent, call-line) link to walk a
/// chain back to its root. Deterministic: roots are visited in node order
/// and adjacency lists are sorted, so ties always break the same way.
struct Reachability {
  static constexpr size_t kUnreached = static_cast<size_t>(-1);
  std::vector<size_t> parent;    ///< kUnreached = root or unreached
  std::vector<int> parent_line;  ///< call-site line in the parent's file
  std::vector<int> depth;        ///< -1 = unreached, 0 = root
  bool Reached(size_t node) const { return depth[node] >= 0; }
};

/// Cross-TU call graph over every function definition the symbol pass found
/// in the given files. Name resolution is best-effort and deterministic
/// (DESIGN.md §11): `std::`-qualified calls are external, qualified calls
/// must suffix-match the definition's namespace/class path, member calls
/// prefer member functions (the caller's own class first), bare calls prefer
/// same class, then same file, then same namespace. An ambiguous call links
/// to every candidate in its best tier (overload sets collapse onto one
/// name); a call matching nothing is tallied in unresolved().
class CallGraph {
 public:
  /// `files` must be in a deterministic (sorted-by-path) order; node order,
  /// edge order, and every downstream chain inherit determinism from it.
  static CallGraph Build(const std::vector<const FileSymbols*>& files);

  const std::vector<FunctionSymbol>& nodes() const { return nodes_; }
  const std::vector<std::vector<GraphEdge>>& adjacency() const {
    return adjacency_;
  }
  /// Unresolvable callee name → number of call sites. Member calls on
  /// receivers of unknown type (std containers, mostly) dominate this map;
  /// it is reported, never a finding.
  const std::map<std::string, size_t>& unresolved() const {
    return unresolved_;
  }
  size_t edge_count() const { return edge_count_; }

  /// Hot-path roots: definitions of kHotPathEntryPoints names in protocol
  /// code (InProtocolCode).
  std::vector<size_t> HotPathRoots() const;

  /// Reentrancy-audit roots: hot-path roots plus member functions of
  /// kReentrantAuditClasses plus every `// nmc: reentrant` function.
  std::vector<size_t> ReentrancyRoots() const;

  Reachability ReachableFrom(const std::vector<size_t>& roots) const;

  /// Root → … → node as node indices (empty if unreached).
  std::vector<size_t> ChainTo(const Reachability& reach, size_t node) const;

  /// " [call chain: A (f:1) -> B (g:2)]" rendered from ChainTo output
  /// (definition coordinates).
  std::string RenderChain(const std::vector<size_t>& chain) const;

  /// Finding::flow steps for a chain ending at a hazard at (file, line):
  /// the entry definition, each call site along the chain, the hazard.
  std::vector<FlowStep> ChainFlow(const Reachability& reach,
                                  const std::vector<size_t>& chain,
                                  const std::string& hazard_file,
                                  int hazard_line,
                                  const std::string& hazard_note) const;

  /// Graphviz rendering of the resolved graph (CI artifact). Hot-path roots
  /// are drawn as boxes, annotated functions carry their contract.
  std::string ToDot() const;

 private:
  std::vector<FunctionSymbol> nodes_;
  std::vector<std::vector<GraphEdge>> adjacency_;
  std::map<std::string, size_t> unresolved_;
  size_t edge_count_ = 0;
};

/// The repo-mode interprocedural rules, appended into `findings_by_file`
/// (keyed by repo-relative path):
///   - transitive hot-path propagation: NO_HEAP_IN_HOT_PATH,
///     NO_PER_UPDATE_TRANSCENDENTALS, NO_MAP_IN_HOT_PATH,
///     NO_IOSTREAM_IN_LIB hazards in any function ≥ 1 call away from a
///     hot-path entry point, with the full chain in the message and in
///     Finding::flow;
///   - NO_STATIC_LOCAL_IN_REENTRANT: mutable function-local statics in any
///     function reachable from the reentrancy-audit roots;
///   - THREAD_COMPAT: a `// nmc: reentrant` function calling a resolved
///     callee that is not itself annotated reentrant.
/// Only src/ files participate (bench/tests own their processes). Existing
/// per-file findings with the same (file, line, rule) win over a propagated
/// duplicate.
void RunInterprocRules(const std::vector<const FileSymbols*>& files,
                       const CallGraph& graph,
                       std::map<std::string, std::vector<Finding>>*
                           findings_by_file);

}  // namespace nmc::lint
