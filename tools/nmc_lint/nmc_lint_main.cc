// nmc_lint — determinism-invariant static analysis gate for this repo.
//
// Usage:
//   nmc_lint [flags] [roots-or-files...]
//
//   --root=DIR              repo root for scope decisions (default: cwd)
//   --compile-commands=PATH CMake compile database; its translation units
//                           are unioned with the directory scan so every
//                           built TU is covered (default:
//                           <root>/build/compile_commands.json if present)
//   --layers=PATH           layer spec for the include-graph rules
//                           (default: <root>/tools/nmc_lint/layers.txt if
//                           present); --no-layers disables them
//   --baseline=PATH         baseline suppression file; baselined findings
//                           are reported but do not gate (default:
//                           <root>/tools/nmc_lint/baseline.txt if present);
//                           --no-baseline disables it
//   --format=text|sarif     output format (default: text); sarif emits a
//                           SARIF 2.1.0 log on stdout (interprocedural
//                           findings carry their call chain as codeFlows)
//   --threads=N             analysis worker threads (0 = hardware
//                           concurrency, the default); output is
//                           byte-identical for every value
//   --dot=PATH              write the resolved cross-TU call graph as
//                           Graphviz DOT (repo mode only)
//   --why RULE FILE:LINE    repo mode; print the finding at FILE:LINE for
//                           RULE and the shortest entry-point call chain
//                           that produced it, then exit (0 = found)
//   --list-rules            print rule IDs + summaries and exit
//   roots-or-files...       repo-relative directories to lint as a repo run
//                           (default: src bench tests tools), or individual
//                           files — file arguments run the single-file rules
//                           only (no include-graph pass), which is what the
//                           pre-commit hook wants
//
// Exit codes: 0 = clean (baselined findings may still be reported),
//             1 = gating findings printed, 2 = usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "nmc_lint/lint.h"
#include "nmc_lint/sarif.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = fs::current_path().string();
  std::string compile_commands;
  bool compile_commands_set = false;
  std::string layers;
  bool layers_set = false;
  bool no_layers = false;
  std::string baseline_path;
  bool baseline_set = false;
  bool no_baseline = false;
  std::string format = "text";
  unsigned threads = 0;
  std::string dot_path;
  std::string why_rule;
  std::string why_location;
  std::vector<std::string> roots;
  std::vector<std::string> file_args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const nmc::lint::RuleInfo& rule : nmc::lint::Rules()) {
        std::printf("%-36s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--compile-commands=", 0) == 0) {
      compile_commands = arg.substr(19);
      compile_commands_set = true;
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers = arg.substr(9);
      layers_set = true;
    } else if (arg == "--no-layers") {
      no_layers = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      baseline_set = true;
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "nmc_lint: --format must be text or sarif\n");
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr,
                                                   10));
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
    } else if (arg == "--why") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "nmc_lint: --why needs RULE and FILE:LINE\n");
        return 2;
      }
      why_rule = argv[++i];
      why_location = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "nmc_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (fs::is_directory(fs::path(root) / arg) ||
               fs::is_directory(arg)) {
      roots.push_back(arg);
    } else {
      file_args.push_back(arg);
    }
  }
  if (!compile_commands_set) {
    const fs::path fallback = fs::path(root) / "build/compile_commands.json";
    if (fs::exists(fallback)) compile_commands = fallback.string();
  }
  if (!layers_set && !no_layers) {
    const fs::path fallback = fs::path(root) / "tools/nmc_lint/layers.txt";
    if (fs::exists(fallback)) layers = fallback.string();
  }
  if (no_layers) layers.clear();
  if (!baseline_set && !no_baseline) {
    const fs::path fallback = fs::path(root) / "tools/nmc_lint/baseline.txt";
    if (fs::exists(fallback)) baseline_path = fallback.string();
  }
  if (no_baseline) baseline_path.clear();

  std::vector<nmc::lint::Finding> findings;
  size_t files_linted = file_args.size();
  if (!file_args.empty()) {
    // Explicit files: single-file rules only — the include-graph pass needs
    // the whole repo to mean anything.
    findings = nmc::lint::LintFiles(root, file_args);
    if (!roots.empty()) {
      std::fprintf(stderr,
                   "nmc_lint: cannot mix directory and file arguments\n");
      return 2;
    }
    if (!why_rule.empty()) {
      std::fprintf(stderr, "nmc_lint: --why needs a repo run, not files\n");
      return 2;
    }
  } else {
    if (roots.empty()) roots = {"src", "bench", "tests", "tools"};
    nmc::lint::RepoLintOptions options;
    options.repo_root = root;
    options.compile_commands = compile_commands;
    options.roots = roots;
    options.layers_path = layers;
    options.threads = threads;
    options.dot_path = dot_path;
    findings = nmc::lint::LintRepo(options, &files_linted);
    if (files_linted == 0) {
      std::fprintf(stderr, "nmc_lint: no files found under --root=%s\n",
                   root.c_str());
      return 2;
    }
  }

  if (!why_rule.empty()) {
    // --why RULE FILE:LINE — explain one finding: where it is and, for
    // interprocedural findings, the shortest entry-point chain that
    // reaches it.
    const size_t colon = why_location.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "nmc_lint: --why location must be FILE:LINE\n");
      return 2;
    }
    const std::string why_file = why_location.substr(0, colon);
    const int why_line = std::atoi(why_location.c_str() + colon + 1);
    for (const nmc::lint::Finding& finding : findings) {
      if (finding.rule != why_rule || finding.file != why_file ||
          finding.line != why_line) {
        continue;
      }
      std::printf("%s\n", nmc::lint::FormatFinding(finding).c_str());
      if (finding.flow.empty()) {
        std::printf("  direct finding; no interprocedural chain\n");
      } else {
        for (size_t j = 0; j < finding.flow.size(); ++j) {
          const nmc::lint::FlowStep& step = finding.flow[j];
          std::printf("  #%zu %s:%d: %s\n", j, step.file.c_str(), step.line,
                      step.note.c_str());
        }
      }
      return 0;
    }
    std::fprintf(stderr,
                 "nmc_lint: no %s finding at %s (suppressed findings have "
                 "no chain; check allow()/baseline)\n",
                 why_rule.c_str(), why_location.c_str());
    return 2;
  }

  nmc::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    if (!nmc::lint::LoadBaseline(baseline_path, &baseline)) {
      std::fprintf(stderr, "nmc_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    // Stale entries gate: a baseline that outlives its findings is rot.
    std::vector<nmc::lint::Finding> stale =
        nmc::lint::StaleBaselineEntries(baseline, findings);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }

  std::vector<bool> baselined(findings.size(), false);
  size_t gating = 0;
  for (size_t i = 0; i < findings.size(); ++i) {
    baselined[i] = nmc::lint::IsBaselined(baseline, findings[i]);
    if (!baselined[i]) ++gating;
  }

  if (format == "sarif") {
    std::printf("%s", nmc::lint::SarifReport(findings, baselined).c_str());
  } else {
    for (size_t i = 0; i < findings.size(); ++i) {
      std::printf("%s%s\n", nmc::lint::FormatFinding(findings[i]).c_str(),
                  baselined[i] ? " [baselined]" : "");
    }
  }
  if (gating == 0) {
    std::fprintf(stderr, "nmc_lint: %zu files clean (%zu baselined)\n",
                 files_linted, findings.size() - gating);
    return 0;
  }
  std::fprintf(stderr, "nmc_lint: %zu gating findings in %zu files\n", gating,
               files_linted);
  return 1;
}
