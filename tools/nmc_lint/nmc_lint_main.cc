// nmc_lint — determinism-invariant static analysis gate for this repo.
//
// Usage:
//   nmc_lint [--root=DIR] [--compile-commands=PATH] [--list-rules] [roots...]
//
//   --root=DIR              repo root for scope decisions (default: cwd)
//   --compile-commands=PATH CMake compile database; its translation units
//                           are unioned with the directory scan so every
//                           built TU is covered (default:
//                           <root>/build/compile_commands.json if present)
//   --list-rules            print rule IDs + summaries and exit
//   roots...                repo-relative directories to lint
//                           (default: src bench tests tools)
//
// Exit codes: 0 = clean, 1 = findings printed, 2 = usage or I/O error.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "nmc_lint/lint.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = fs::current_path().string();
  std::string compile_commands;
  bool compile_commands_set = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const nmc::lint::RuleInfo& rule : nmc::lint::Rules()) {
        std::printf("%-36s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--compile-commands=", 0) == 0) {
      compile_commands = arg.substr(19);
      compile_commands_set = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "nmc_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tests", "tools"};
  if (!compile_commands_set) {
    const fs::path fallback = fs::path(root) / "build/compile_commands.json";
    if (fs::exists(fallback)) compile_commands = fallback.string();
  }

  const std::vector<std::string> files =
      nmc::lint::CollectFiles(root, compile_commands, roots);
  if (files.empty()) {
    std::fprintf(stderr, "nmc_lint: no files found under --root=%s\n",
                 root.c_str());
    return 2;
  }
  const std::vector<nmc::lint::Finding> findings =
      nmc::lint::LintFiles(root, files);
  for (const nmc::lint::Finding& finding : findings) {
    std::printf("%s\n", nmc::lint::FormatFinding(finding).c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "nmc_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "nmc_lint: %zu findings in %zu files\n",
               findings.size(), files.size());
  return 1;
}
