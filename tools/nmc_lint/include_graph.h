#pragma once

#include <map>
#include <string>
#include <vector>

#include "nmc_lint/lint.h"

namespace nmc::lint {

/// One resolved `#include` edge. Only includes that name a file inside the
/// repo appear in the graph — system and third-party headers are invisible
/// to the layering rules by construction.
struct IncludeRef {
  std::string target;  ///< repo-relative normalized path
  int line = 0;        ///< 1-based line of the #include directive

  bool operator==(const IncludeRef&) const = default;
};

struct IncludeGraph {
  /// file (repo-relative) -> its resolved repo includes, in directive order.
  std::map<std::string, std::vector<IncludeRef>> edges;
};

/// Lexes each file and resolves its #include directives against the repo.
/// Resolution mirrors the build's include dirs: a path is tried relative to
/// the including file's directory, then under src/, then tools/, then the
/// repo root; the first existing file wins. Unreadable files are skipped
/// (LintFiles/LintRepo already report LINT_IO for them).
IncludeGraph BuildIncludeGraph(const std::string& repo_root,
                               const std::vector<std::string>& files);

/// The declared layering. `layers` is bottom-up: layers[0] holds the path
/// prefixes of the foundation, layers.back() the outermost consumers. A file
/// belongs to the longest matching prefix; files matching no prefix are
/// exempt from the layer rules (but still count for cycles and depth).
struct LayerSpec {
  std::vector<std::vector<std::string>> layers;
  int depth_budget = 0;  ///< max transitive include depth; 0 = unlimited
};

/// Spec file format, one directive per line ('#' comments, blank lines ok):
///   depth_budget N
///   layer <prefix> [<prefix>...]     # one line per layer, bottom-up
bool ParseLayerSpec(const std::string& content, LayerSpec* spec,
                    std::string* error);
bool LoadLayerSpec(const std::string& path, LayerSpec* spec,
                   std::string* error);

/// Runs the three cross-file rules over the graph:
///   LAYERING_VIOLATION — an include climbs to a higher layer, or crosses
///     between two modules declared side-by-side in the same layer;
///   NO_INCLUDE_CYCLES  — a cycle in the file-level include graph (one
///     finding per back edge, carrying the full cycle path);
///   INCLUDE_DEPTH      — a file's longest transitive include chain exceeds
///     spec.depth_budget (reported at the include starting the chain).
/// Findings are sorted by (file, line, rule).
std::vector<Finding> CheckIncludeGraph(const IncludeGraph& graph,
                                       const LayerSpec& spec);

}  // namespace nmc::lint
