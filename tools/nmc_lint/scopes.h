#pragma once

#include <string>

namespace nmc::lint {

// Path scopes and the shared name tables. Rule *scope* decisions use only
// the repo-relative path prefix, so fixture tests can lint files "as if"
// they lived anywhere; both the single-file rules (lint.cc) and the
// interprocedural pass (call_graph.cc) make the same decisions from the
// same predicates.

inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

inline bool IsHeader(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

/// src/ minus src/bench/ — the simulator + protocol library proper, where
/// wall-clock reads and console output are banned (src/bench is the timing
/// and reporting layer, which needs both).
inline bool InSimLibrary(const std::string& path) {
  return StartsWith(path, "src/") && !StartsWith(path, "src/bench/");
}

/// Directories whose code decides *what messages are sent when* — any
/// iteration-order dependence here leaks straight into message schedules.
inline bool InProtocolCode(const std::string& path) {
  return StartsWith(path, "src/core/") || StartsWith(path, "src/hyz/") ||
         StartsWith(path, "src/baselines/") || StartsWith(path, "src/sim/");
}

inline bool InHotPath(const std::string& path) {
  return StartsWith(path, "src/sim/");
}

/// Determinism scope: everything that can influence a recorded result —
/// the library, the bench drivers, the CLI tools, and (since the
/// interprocedural PR) tests/. Tests only *check* results, but an
/// unseeded RNG in a test still makes the check itself unreproducible,
/// which is how flakes are born.
inline bool InDeterminismScope(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "bench/") ||
         StartsWith(path, "tools/") || StartsWith(path, "tests/");
}

/// Scope of the library-state concurrency rules (mutable globals, thread
/// annotations): the library itself. bench/tests/tools binaries own their
/// process and may keep globals (gtest and google-benchmark registries
/// force them to).
inline bool InLibraryCode(const std::string& path) {
  return StartsWith(path, "src/");
}

inline bool InRepoCode(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "bench/") ||
         StartsWith(path, "tests/") || StartsWith(path, "tools/");
}

/// The RNG implementation itself is the one place allowed to spell engine
/// constructors — it *is* the factory the provenance rule points everyone
/// at.
inline bool IsRngFactory(const std::string& path) {
  return path == "src/common/rng.h" || path == "src/common/rng.cc";
}

/// Scope of the atomics-discipline rules (ATOMIC_ORDER_EXPLICIT,
/// SEQ_CST_JUSTIFIED): the library. Tests and tools may use defaulted
/// seq_cst atomics for scaffolding; library code states every ordering.
inline bool InAtomicsDisciplineScope(const std::string& path) {
  return StartsWith(path, "src/");
}

/// Files whose concurrency must be expressed through the atomics policy
/// shim (common/atomic_policy.h) so tools/nmc_race can model-check it:
/// the threaded runtime plus the lock-free primitives that back the
/// reentrant audit classes (SpscQueue, Seqlock). The shim itself is
/// outside this scope — it is the one place that spells std::atomic.
inline bool InModeledConcurrencyScope(const std::string& path) {
  return StartsWith(path, "src/runtime/") ||
         path == "src/common/spsc_queue.h" || path == "src/common/seqlock.h";
}

/// Per-update protocol entry points (the transcendental rule's direct
/// scope).
inline constexpr const char* kPerUpdateEntryPoints[] = {
    "OnLocalUpdate", "ProcessUpdate", "ProcessBatch", "ProcessRun",
    "ConsumeRun"};

/// The per-update entry points plus the network delivery machinery they
/// drive — everything executed once (or more) per stream update. These are
/// the roots of the transitive hot-path propagation: a heap allocation or
/// transcendental anywhere in a call chain starting here is paid O(n)
/// times per trial.
inline constexpr const char* kHotPathEntryPoints[] = {
    "OnLocalUpdate", "ProcessUpdate",        "ProcessBatch",
    "ProcessRun",    "ConsumeRun",           "DeliverAll",
    "Route",         "BeginTickSlow",        "SendToCoordinator",
    "SendToSite",    "Broadcast",            "OnSiteMessage",
    "OnCoordinatorMessage"};

/// Classes whose member functions root the reentrancy audit
/// (NO_STATIC_LOCAL_IN_REENTRANT): the seams the threaded runtime calls
/// from concurrent contexts — the protocol/network surface plus the
/// lock-free primitives (SPSC mailboxes, the seqlock estimate slot).
inline constexpr const char* kReentrantAuditClasses[] = {
    "Protocol", "Network", "BatchRng", "SpscQueue", "Seqlock"};

inline constexpr const char* kTranscendentals[] = {
    "log1p", "log2", "log10", "log", "exp2", "expm1", "exp", "pow"};

inline constexpr const char* kHeapMakers[] = {"make_unique", "make_shared"};
inline constexpr const char* kGrowthCalls[] = {"push_back", "emplace_back"};
inline constexpr const char* kMapLike[] = {"map", "multimap", "deque"};

}  // namespace nmc::lint
