#pragma once

#include <string>
#include <vector>

namespace nmc::lint {

/// One rule violation (or annotation-hygiene problem) at a specific line.
struct Finding {
  std::string file;  ///< Repo-relative path, as passed to LintContent.
  int line = 0;      ///< 1-based line number.
  std::string rule;  ///< Rule ID, e.g. "NO_UNSEEDED_RNG".
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the linter can emit, in stable order (for --list-rules and
/// for validating allow() annotations).
const std::vector<RuleInfo>& Rules();

/// Lints `content` as if it lived at repo-relative `path`. Scope decisions
/// (which rules apply) use only the path prefix, so fixture tests can lint
/// a testdata file "as if" it were in src/sim/. Findings are sorted by
/// (line, rule).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Reads and lints each file. Paths may be absolute or repo_root-relative;
/// rule scopes are decided on the repo_root-relative form. Unreadable files
/// produce a LINT_IO finding. Findings are sorted by (file, line, rule).
std::vector<Finding> LintFiles(const std::string& repo_root,
                               const std::vector<std::string>& paths);

/// Builds the file list for a repo lint run: every *.h/*.hpp/*.cc/*.cpp
/// found under `roots` (repo_root-relative directories), unioned with the
/// translation units named by `compile_commands_path` (empty string = no
/// compile database) that fall under those roots. Paths containing a
/// "testdata" component are excluded — lint fixtures are deliberately
/// pathological. Returned paths are repo_root-relative and sorted.
std::vector<std::string> CollectFiles(const std::string& repo_root,
                                      const std::string& compile_commands_path,
                                      const std::vector<std::string>& roots);

/// "path:line: RULE: message" — the stable output format.
std::string FormatFinding(const Finding& finding);

}  // namespace nmc::lint
