#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace nmc::lint {

/// One hop of an interprocedural call chain: where execution is and what
/// happens there ("calls Foo::Bar", "'log' call"). Rendered as a SARIF
/// codeFlow and by `nmc_lint --why`.
struct FlowStep {
  std::string file;
  int line = 0;
  std::string note;

  bool operator==(const FlowStep&) const = default;
};

/// One rule violation (or annotation-hygiene problem) at a specific line.
struct Finding {
  std::string file;  ///< Repo-relative path, as passed to LintContent.
  int line = 0;      ///< 1-based line number.
  std::string rule;  ///< Rule ID, e.g. "NO_UNSEEDED_RNG".
  std::string message;
  /// Entry-point → … → finding chain for findings produced by the
  /// interprocedural propagation; empty for direct findings (the default
  /// member initializer keeps four-element aggregate inits warning-free).
  std::vector<FlowStep> flow = {};

  bool operator==(const Finding&) const = default;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the linter can emit, in stable order (for --list-rules, the
/// SARIF rules table, and for validating allow() annotations).
const std::vector<RuleInfo>& Rules();

/// Lints `content` as if it lived at repo-relative `path`, running every
/// single-file rule. Scope decisions (which rules apply) use only the path
/// prefix, so fixture tests can lint a testdata file "as if" it were in
/// src/sim/. Cross-file rules (layering, cycles, depth) need the include
/// graph and run only through LintRepo. Findings are sorted by (line, rule).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Reads and lints each file (single-file rules only). Paths may be absolute
/// or repo_root-relative; rule scopes are decided on the repo_root-relative
/// form. Unreadable files produce a LINT_IO finding. Findings are sorted by
/// (file, line, rule).
std::vector<Finding> LintFiles(const std::string& repo_root,
                               const std::vector<std::string>& paths);

/// Full repo run: single-file rules over every collected file plus the
/// include-graph rules (LAYERING_VIOLATION, NO_INCLUDE_CYCLES,
/// INCLUDE_DEPTH) against the layer spec. Graph findings attach to the
/// offending #include line and are suppressible by the same inline
/// allow annotations as everything else.
struct RepoLintOptions {
  std::string repo_root;
  std::string compile_commands;     ///< empty = no compile database
  std::vector<std::string> roots;   ///< repo-relative directories
  std::string layers_path;          ///< empty = skip include-graph rules
  /// Worker threads for the per-file analysis pass. 0 = hardware
  /// concurrency. Output is byte-identical for every value — files are
  /// sharded deterministically and merged in path order.
  unsigned threads = 0;
  /// When non-empty, the resolved call graph is written here as Graphviz
  /// DOT (the CI artifact).
  std::string dot_path;
};
std::vector<Finding> LintRepo(const RepoLintOptions& options,
                              size_t* files_linted = nullptr);

/// Builds the file list for a repo lint run: every *.h/*.hpp/*.cc/*.cpp
/// found under `roots` (repo_root-relative directories), unioned with the
/// translation units named by `compile_commands_path` (empty string = no
/// compile database) that fall under those roots. Paths containing a
/// "testdata" component are excluded — lint fixtures are deliberately
/// pathological. Returned paths are repo_root-relative and sorted.
std::vector<std::string> CollectFiles(const std::string& repo_root,
                                      const std::string& compile_commands_path,
                                      const std::vector<std::string>& roots);

/// Baseline suppressions: grandfathered (file, rule) pairs that report but
/// do not gate. The file format is one `path RULE` pair per line;
/// '#' starts a comment. Line numbers are deliberately not part of the key
/// — they drift with every edit, and a baseline that needs constant
/// re-recording is a baseline nobody trusts.
struct Baseline {
  std::set<std::pair<std::string, std::string>> entries;
};
Baseline ParseBaseline(const std::string& content);
bool LoadBaseline(const std::string& path, Baseline* baseline);

/// True if the finding matches a baseline entry. BASELINE_STALE, the
/// annotation-hygiene rules, and THREAD_COMPAT are never baselinable — the
/// suppression and contract layers must stay honest.
bool IsBaselined(const Baseline& baseline, const Finding& finding);

/// Stale-entry findings (rule BASELINE_STALE) for baseline entries that no
/// current finding matches; `findings` must be the full pre-partition list.
std::vector<Finding> StaleBaselineEntries(const Baseline& baseline,
                                          const std::vector<Finding>& findings);

/// "path:line: RULE: message" — the stable output format.
std::string FormatFinding(const Finding& finding);

}  // namespace nmc::lint
