#pragma once

#include <cstddef>
#include <vector>

#include "nmc_lint/lexer.h"

namespace nmc::lint {

// Small token-sequence matchers shared by the single-file rules (lint.cc)
// and the symbol/call-graph layers. All take the "code" stream (identifiers,
// numbers, punctuation — literals and comments already dropped) and an
// index; out-of-range indices simply fail to match.

inline bool IsCodeToken(const Token& t) {
  return t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kNumber ||
         t.kind == TokenKind::kPunct;
}

inline bool Is(const std::vector<Token>& code, size_t i, TokenKind kind,
               const char* text) {
  return i < code.size() && code[i].kind == kind && code[i].text == text;
}

inline bool IsPunct(const std::vector<Token>& code, size_t i,
                    const char* text) {
  return Is(code, i, TokenKind::kPunct, text);
}

inline bool IsIdent(const std::vector<Token>& code, size_t i) {
  return i < code.size() && code[i].kind == TokenKind::kIdentifier;
}

inline bool IsIdent(const std::vector<Token>& code, size_t i,
                    const char* text) {
  return Is(code, i, TokenKind::kIdentifier, text);
}

template <typename Container>
bool IsIdentIn(const std::vector<Token>& code, size_t i,
               const Container& names) {
  if (!IsIdent(code, i)) return false;
  for (const char* name : names) {
    if (code[i].text == name) return true;
  }
  return false;
}

/// Steps a '<'-balanced scan: '<' opens, '>' closes, '>>' closes twice
/// (the lexer keeps it one token).
inline int AngleDelta(const Token& t) {
  if (t.kind != TokenKind::kPunct) return 0;
  if (t.text == "<") return 1;
  if (t.text == ">") return -1;
  if (t.text == ">>") return -2;
  return 0;
}

inline int ParenDelta(const Token& t) {
  if (t.kind != TokenKind::kPunct) return 0;
  if (t.text == "(") return 1;
  if (t.text == ")") return -1;
  return 0;
}

inline int BraceDelta(const Token& t) {
  if (t.kind != TokenKind::kPunct) return 0;
  if (t.text == "{") return 1;
  if (t.text == "}") return -1;
  return 0;
}

/// Index of the matching closer for the opener at `open` ('(' or '{'),
/// or code.size() if unbalanced.
inline size_t MatchingClose(const std::vector<Token>& code, size_t open,
                            int (*delta)(const Token&)) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    depth += delta(code[i]);
    if (depth == 0) return i;
  }
  return code.size();
}

}  // namespace nmc::lint
