#pragma once

#include <string>
#include <vector>

#include "nmc_lint/lexer.h"

namespace nmc::lint {

/// Thread-compatibility contract an author wrote on a function definition:
///   // nmc: reentrant                    — safe to call concurrently on
///                                          distinct objects; touches no
///                                          mutable shared state
///   // nmc: not-thread-safe(reason)      — documented hostile; the reason
///                                          is mandatory
/// The markers are *checked*, not decorative: a reentrant function may only
/// call reentrant functions (THREAD_COMPAT), and a marker that attaches to
/// nothing, names an unknown verb, or omits its reason is itself a finding.
enum class ThreadAnnotation {
  kNone,
  kReentrant,
  kNotThreadSafe,
};

/// One function *definition* (declarations carry no body and no symbol).
/// Built by a best-effort, deterministic scan of the code token stream:
/// namespace/class scopes are brace-tracked, out-of-class `Cls::Name(...)`
/// definitions recover their class from the qualifier, and the body is the
/// balanced token range between the definition's braces. Known imprecision
/// (templates instantiations, overload sets collapsing onto one name,
/// macro-generated bodies) is documented in DESIGN.md §11.
struct FunctionSymbol {
  std::string name;        ///< unqualified: "EnsureGap"
  std::string class_name;  ///< enclosing/qualifying class; "" = free fn
  std::string name_space;  ///< "nmc::sim"; "" = global; "(anon)" segments
  std::string file;        ///< repo-relative path
  int line = 0;            ///< 1-based line of the name token
  size_t body_begin = 0;   ///< code-token index just past the body '{'
  size_t body_end = 0;     ///< code-token index of the matching '}'
  ThreadAnnotation annotation = ThreadAnnotation::kNone;
  int annotation_line = 0;

  /// "Class::name" or "name" — the human-facing spelling in chains.
  std::string Display() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// A mutable `static` local inside some function body — per-process state
/// that every thread would share.
struct StaticLocal {
  size_t function_index = 0;  ///< into FileSymbols::functions
  int line = 0;
  std::string hint;  ///< declared name when recoverable, else ""
};

/// Non-const namespace-scope data or a non-const static data member:
/// mutable state with process lifetime, the exact thing a threaded runtime
/// cannot tolerate undeclared.
struct MutableGlobal {
  std::string name;
  std::string owner;  ///< enclosing class for static members, else ""
  int line = 0;
  bool is_static_member = false;
};

/// One call site inside a function body, pre-resolution.
struct CallSite {
  size_t caller_index = 0;  ///< into FileSymbols::functions
  std::string name;         ///< unqualified callee name
  std::vector<std::string> quals;  ///< qualifier chain: {"std"}, {"Cls"}...
  bool member_call = false;        ///< receiver.name(...) / ptr->name(...)
  int line = 0;
};

/// A raw `// nmc: ...` marker, parsed from the unstripped source lines.
/// Same attachment convention as the allow() annotations: a marker on a
/// comment-only line applies to the next line, an inline marker to its own
/// line; it attaches to the function whose name-token line starts within
/// two lines of the target (definitions wrap).
struct ThreadMarker {
  int line = 0;         ///< line the marker was written on
  int target_line = 0;  ///< first line it may attach to
  std::string verb;     ///< "reentrant", "not-thread-safe", or unknown text
  std::string reason;   ///< parenthesized argument, "" if none
  ThreadAnnotation kind = ThreadAnnotation::kNone;  ///< kNone = unknown verb
  bool attached = false;
};

/// Everything the interprocedural layers need from one file, built in a
/// single pass: the lexed code stream, every function definition with its
/// body range, raw call sites, mutable globals, static locals, and thread
/// markers (already attached to their functions where possible).
struct FileSymbols {
  std::string file;
  std::vector<Token> code;  ///< the code token stream bodies index into
  std::vector<FunctionSymbol> functions;  ///< in source order
  std::vector<CallSite> calls;            ///< in source order
  std::vector<StaticLocal> static_locals;
  std::vector<MutableGlobal> mutable_globals;
  std::vector<ThreadMarker> markers;
};

/// Parses `content` as if it lived at repo-relative `path`. Deterministic:
/// output depends only on (path, content).
FileSymbols BuildFileSymbols(const std::string& path,
                             const std::string& content);

}  // namespace nmc::lint
