#include "nmc_race/runtime.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace nmc::race {

namespace {

thread_local Runtime* t_rt = nullptr;
thread_local uint32_t t_tid = 0;

bool IsAcquireSide(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

bool IsReleaseSide(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

}  // namespace

namespace detail {

/// One DFS choice point: a scheduling decision (options = runnable thread
/// ids) or a load-visibility decision (options = admissible store
/// indices). `chosen` indexes `options` and is advanced by Backtrack().
struct ChoicePoint {
  bool is_thread = false;
  std::vector<uint32_t> options;
  size_t chosen = 0;
};

/// Exploration state persisting across the executions of one Explore()
/// call: the DFS choice stack and the token-passing thread engine. Real
/// std::threads with a mutex/condvar token (exactly one runnable at a
/// time) rather than fibers, so the model checker itself stays clean under
/// ASan/TSan — CI runs the full ctest suite under both.
struct Engine {
  // ---- DFS state --------------------------------------------------------
  std::vector<ChoicePoint> stack;
  size_t depth = 0;
  bool replaying = false;
  std::vector<std::pair<char, uint32_t>> preset;  // parsed replay tokens

  // ---- per-execution scheduling state -----------------------------------
  Runtime* rt = nullptr;
  std::array<bool, kMaxThreads> sleep{};
  int last_running = -1;
  int preemptions = 0;
  bool sleep_on = false;
  bool aborting = false;

  // ---- token-passing engine ---------------------------------------------
  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;  // 0 = main/scheduler, i >= 1 = model thread i
  bool shutdown = false;
  std::vector<std::thread> workers;                // index tid-1
  std::array<std::function<void()>, kMaxThreads> bodies;

  ~Engine() { ShutdownWorkers(); }

  void PassTo(int next) {
    {
      std::lock_guard<std::mutex> lock(mu);
      turn = next;
    }
    cv.notify_all();
  }

  void WaitFor(int who) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return turn == who; });
  }

  void BeginExecution(Runtime* runtime) {
    rt = runtime;
    depth = 0;
    sleep.fill(false);
    last_running = -1;
    preemptions = 0;
    aborting = false;
  }

  void AssignBody(uint32_t tid, std::function<void()> body) {
    NMC_CHECK_LT(tid, kMaxThreads);
    bodies[tid] = std::move(body);
    while (workers.size() < tid) {
      const uint32_t worker_tid = static_cast<uint32_t>(workers.size()) + 1;
      workers.emplace_back([this, worker_tid] { WorkerLoop(worker_tid); });
    }
  }

  void WorkerLoop(uint32_t tid) {
    t_tid = tid;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return shutdown || turn == static_cast<int>(tid); });
        if (shutdown) return;
      }
      Runtime* runtime = rt;
      t_rt = runtime;
      try {
        bodies[tid]();
      } catch (const ModelAbort&) {
      }
      runtime->threads_[tid].finished = true;
      PassTo(0);
    }
  }

  void ShutdownWorkers() {
    if (workers.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    cv.notify_all();
    for (std::thread& worker : workers) worker.join();
    workers.clear();
    shutdown = false;
  }

  /// Takes (and if new, records) the decision at the current stack depth.
  /// `options` must be non-empty and is recomputed deterministically when
  /// re-running a prefix — a mismatch against the recorded point means the
  /// test body itself is nondeterministic, which is a violation.
  uint32_t Choose(bool is_thread, std::vector<uint32_t> options) {
    if (depth == stack.size()) {
      ChoicePoint point;
      point.is_thread = is_thread;
      point.options = std::move(options);
      if (replaying && depth < preset.size()) {
        const auto& [kind, value] = preset[depth];
        const char want = is_thread ? 't' : 'v';
        bool ok = kind == want;
        if (ok && is_thread) {
          const auto it = std::find(point.options.begin(), point.options.end(),
                                    value);
          ok = it != point.options.end();
          if (ok) {
            point.chosen = static_cast<size_t>(it - point.options.begin());
          }
        } else if (ok) {
          ok = value < point.options.size();
          if (ok) point.chosen = value;
        }
        if (!ok) {
          rt->RecordViolation("replay diverged: schedule token " +
                              std::to_string(depth) +
                              " does not match an available choice");
          rt->AbortExecution();
        }
      }
      stack.push_back(std::move(point));
    } else {
      const ChoicePoint& point = stack[depth];
      if (point.is_thread != is_thread || point.options != options) {
        rt->RecordViolation(
            "internal: nondeterministic test body (prefix re-execution "
            "reached a different choice point)");
        rt->AbortExecution();
      }
    }
    ChoicePoint& point = stack[depth];
    ++depth;
    if (is_thread && sleep_on) {
      // Sleep-set rule: siblings already fully explored at this point stay
      // asleep until an op dependent with their pending op executes.
      for (size_t j = 0; j < point.chosen; ++j) sleep[point.options[j]] = true;
    }
    return point.options[point.chosen];
  }

  bool Backtrack() {
    while (!stack.empty()) {
      ChoicePoint& point = stack.back();
      if (point.chosen + 1 < point.options.size()) {
        ++point.chosen;
        return true;
      }
      stack.pop_back();
    }
    return false;
  }

  std::string RenderSchedule() const {
    std::ostringstream out;
    for (size_t i = 0; i < depth && i < stack.size(); ++i) {
      if (i > 0) out << ',';
      const ChoicePoint& point = stack[i];
      if (point.is_thread) {
        out << 't' << point.options[point.chosen];
      } else {
        out << 'v' << point.chosen;
      }
    }
    return out.str();
  }

  bool ParseReplay(const std::string& schedule) {
    preset.clear();
    std::istringstream in(schedule);
    std::string token;
    while (std::getline(in, token, ',')) {
      if (token.size() < 2 || (token[0] != 't' && token[0] != 'v')) {
        return false;
      }
      preset.emplace_back(token[0],
                          static_cast<uint32_t>(std::stoul(token.substr(1))));
    }
    replaying = true;
    return true;
  }
};

}  // namespace detail

Runtime* Runtime::Current() { return t_rt; }

uint32_t Runtime::CurrentTid() const { return t_tid; }

Runtime::Runtime(const ExploreOptions& options, detail::Engine* engine,
                 ExploreResult* result)
    : options_(options), engine_(engine), result_(result) {
  threads_.resize(1);  // thread 0: the main/setup/teardown thread
}

void Runtime::Thread(std::function<void()> body) {
  const uint32_t tid = static_cast<uint32_t>(threads_.size());
  NMC_CHECK_LT(tid, kMaxThreads);
  ThreadState state;
  // Spawn edge: everything the main thread did (including shared-state
  // construction) happens-before the child's first op; the spawn tick
  // makes the child's plain-memory accesses distinguishable from the
  // parent's pre-spawn ones.
  state.clock = threads_[0].clock;
  state.clock.c[tid] += 1;
  state.pending = {OpKind::kStart, 0};
  threads_.push_back(state);
  engine_->AssignBody(tid, std::move(body));
}

void Runtime::PauseForSchedule(OpKind kind, uint32_t loc) {
  const uint32_t tid = CurrentTid();
  if (tid == 0) return;  // setup/teardown ops run inline, unscheduled
  threads_[tid].pending = {kind, loc};
  engine_->PassTo(0);
  engine_->WaitFor(static_cast<int>(tid));
  if (engine_->aborting) throw ModelAbort{};
}

void Runtime::RecordViolation(const std::string& message) {
  if (violated_) return;
  violated_ = true;
  violation_message_ = message;
  result_->message = message;
  result_->schedule = engine_->RenderSchedule();
}

void Runtime::AbortExecution() { throw ModelAbort{}; }

void Runtime::Check(bool ok, const std::string& message) {
  if (ok || violated_) return;
  RecordViolation(message);
  AbortExecution();
}

void Runtime::Outcome(const std::string& outcome) {
  if (!violated_ && !pruned_) result_->outcomes.insert(outcome);
}

/// Conservative dependence for sleep-set wakes: ops on the same location
/// where at least one writes; fences and thread starts conflict with
/// everything (a start runs an arbitrary body prologue).
bool Runtime::OpsDependent(const PendingOp& a, const PendingOp& b) {
  using K = OpKind;
  if (a.kind == K::kStart || b.kind == K::kStart) return true;
  if (a.kind == K::kFence || b.kind == K::kFence) return true;
  if (a.kind == K::kNone || b.kind == K::kNone) return true;
  if (a.loc != b.loc) return false;
  return !(a.kind == K::kLoad && b.kind == K::kLoad);
}

void Runtime::AbortThreads() {
  detail::Engine& engine = *engine_;
  engine.aborting = true;
  for (uint32_t i = 1; i < threads_.size(); ++i) {
    if (threads_[i].finished) continue;
    if (!threads_[i].started) {
      threads_[i].finished = true;
      continue;
    }
    engine.PassTo(static_cast<int>(i));
    engine.WaitFor(0);
  }
  engine.aborting = false;
}

void Runtime::Run() { RunScheduler(); }

void Runtime::RunScheduler() {
  detail::Engine& engine = *engine_;
  for (;;) {
    std::vector<uint32_t> enabled;
    for (uint32_t i = 1; i < threads_.size(); ++i) {
      if (!threads_[i].finished) enabled.push_back(i);
    }
    if (enabled.empty()) break;

    const bool current_enabled =
        engine.last_running >= 1 &&
        !threads_[static_cast<size_t>(engine.last_running)].finished;
    std::vector<uint32_t> options;
    if (options_.preemption_bound >= 0 && current_enabled &&
        engine.preemptions >= options_.preemption_bound) {
      // Out of preemptions: the running thread must continue.
      options.push_back(static_cast<uint32_t>(engine.last_running));
    } else {
      // Continue-current-first ordering, so the DFS default is the
      // fewest-context-switch schedule and counterexamples print short.
      if (current_enabled &&
          !(engine.sleep_on && engine.sleep[engine.last_running])) {
        options.push_back(static_cast<uint32_t>(engine.last_running));
      }
      for (uint32_t tid : enabled) {
        if (static_cast<int>(tid) == engine.last_running) continue;
        if (engine.sleep_on && engine.sleep[tid]) continue;
        options.push_back(tid);
      }
    }
    if (options.empty()) {
      // Every runnable thread is asleep: this state is fully covered by
      // already-explored sibling schedules. Prune, recording nothing.
      pruned_ = true;
      AbortThreads();
      throw ModelAbort{};
    }

    const uint32_t tid = engine.Choose(true, std::move(options));
    if (static_cast<int>(tid) != engine.last_running && current_enabled) {
      ++engine.preemptions;
    }
    const PendingOp executed = threads_[tid].pending;
    threads_[tid].started = true;
    engine.PassTo(static_cast<int>(tid));
    engine.WaitFor(0);
    ++steps_;

    if (violated_) {
      AbortThreads();
      throw ModelAbort{};
    }
    if (steps_ > options_.max_steps) {
      RecordViolation("step budget exceeded (livelock or an unbounded spin "
                      "in a model thread body)");
      AbortThreads();
      throw ModelAbort{};
    }
    if (engine.sleep_on) {
      for (uint32_t i = 1; i < threads_.size(); ++i) {
        if (!engine.sleep[i] || threads_[i].finished) continue;
        if (OpsDependent(executed, threads_[i].pending)) engine.sleep[i] = false;
      }
    }
    engine.last_running = threads_[tid].finished ? -1 : static_cast<int>(tid);
  }
  // Join edge: everything every model thread did happens-before the
  // teardown code after Run() — final drains and asserts see it all.
  for (uint32_t i = 1; i < threads_.size(); ++i) {
    threads_[0].clock.Join(threads_[i].clock);
  }
}

uint32_t Runtime::NewLocation(uint64_t initial) {
  const uint32_t tid = CurrentTid();
  Tick(tid);
  Location location;
  Store store;
  store.value = initial;
  store.hb = threads_[tid].clock;
  store.sync = threads_[tid].clock;
  store.has_sync = true;
  location.stores.push_back(store);
  locations_.push_back(std::move(location));
  return static_cast<uint32_t>(locations_.size()) - 1;
}

uint64_t Runtime::AtomicLoad(uint32_t loc, std::memory_order order) {
  PauseForSchedule(OpKind::kLoad, loc);
  const uint32_t tid = CurrentTid();
  ThreadState& t = threads_[tid];
  Tick(tid);
  if (order == std::memory_order_seq_cst) t.clock.Join(sc_clock_);
  Location& location = locations_[loc];
  // Coherence + visibility floor: nothing older than the newest store this
  // thread already saw, nothing older than the newest store that
  // happened-before this load.
  uint32_t min_index = location.last_seen[tid];
  const uint32_t newest = static_cast<uint32_t>(location.stores.size()) - 1;
  for (uint32_t j = min_index + 1; j <= newest; ++j) {
    if (location.stores[j].hb.LeqThan(t.clock)) min_index = j;
  }
  uint32_t index = newest;
  if (min_index < newest) {
    std::vector<uint32_t> admissible;
    admissible.reserve(newest - min_index + 1);
    for (uint32_t j = min_index; j <= newest; ++j) admissible.push_back(j);
    index = engine_->Choose(false, std::move(admissible));
  }
  const Store& store = location.stores[index];
  location.last_seen[tid] = index;
  if (store.has_sync) {
    t.acq_pending.Join(store.sync);
    if (IsAcquireSide(order)) t.clock.Join(store.sync);
  }
  if (order == std::memory_order_seq_cst) sc_clock_.Join(t.clock);
  return store.value;
}

void Runtime::AtomicStore(uint32_t loc, uint64_t value,
                          std::memory_order order) {
  PauseForSchedule(OpKind::kStore, loc);
  const uint32_t tid = CurrentTid();
  ThreadState& t = threads_[tid];
  Tick(tid);
  if (order == std::memory_order_seq_cst) t.clock.Join(sc_clock_);
  Location& location = locations_[loc];
  Store store;
  store.value = value;
  store.hb = t.clock;
  if (IsReleaseSide(order)) {
    store.sync = t.clock;
    store.has_sync = true;
  } else if (t.has_release_fence) {
    // Boehm fence rule: a relaxed store after a release fence carries the
    // fence-time clock as its sync value.
    store.sync = t.release_fence;
    store.has_sync = true;
  }
  location.last_seen[tid] = static_cast<uint32_t>(location.stores.size());
  location.stores.push_back(std::move(store));
  if (order == std::memory_order_seq_cst) sc_clock_.Join(t.clock);
}

uint64_t Runtime::AtomicRmwAdd(uint32_t loc, uint64_t delta,
                               std::memory_order order) {
  PauseForSchedule(OpKind::kRmw, loc);
  const uint32_t tid = CurrentTid();
  ThreadState& t = threads_[tid];
  Tick(tid);
  if (order == std::memory_order_seq_cst) t.clock.Join(sc_clock_);
  Location& location = locations_[loc];
  // An RMW always reads the newest store in modification order and writes
  // immediately after it.
  const Store previous = location.stores.back();
  if (previous.has_sync) {
    t.acq_pending.Join(previous.sync);
    if (IsAcquireSide(order)) t.clock.Join(previous.sync);
  }
  Store store;
  store.value = previous.value + delta;
  store.hb = t.clock;
  if (IsReleaseSide(order)) {
    store.sync = t.clock;
    store.has_sync = true;
  } else if (t.has_release_fence) {
    store.sync = t.release_fence;
    store.has_sync = true;
  }
  if (previous.has_sync) {
    // RMWs continue the release sequence of the store they replace.
    store.sync.Join(previous.sync);
    store.has_sync = true;
  }
  location.last_seen[tid] = static_cast<uint32_t>(location.stores.size());
  location.stores.push_back(std::move(store));
  if (order == std::memory_order_seq_cst) sc_clock_.Join(t.clock);
  return previous.value;
}

void Runtime::Fence(std::memory_order order) {
  if (order == std::memory_order_relaxed) return;  // weakened fence: no-op
  PauseForSchedule(OpKind::kFence, 0);
  const uint32_t tid = CurrentTid();
  ThreadState& t = threads_[tid];
  if (order == std::memory_order_seq_cst) t.clock.Join(sc_clock_);
  if (IsAcquireSide(order)) t.clock.Join(t.acq_pending);
  if (IsReleaseSide(order)) {
    t.release_fence = t.clock;
    t.has_release_fence = true;
  }
  if (order == std::memory_order_seq_cst) sc_clock_.Join(t.clock);
}

uint32_t Runtime::NewCell() {
  cells_.emplace_back();
  return static_cast<uint32_t>(cells_.size()) - 1;
}

void Runtime::CellWrite(uint32_t cell, uint64_t value) {
  const uint32_t tid = CurrentTid();
  ThreadState& t = threads_[tid];
  Cell& c = cells_[cell];
  if (c.written && !c.write_clock.LeqThan(t.clock)) {
    RecordViolation("data race: concurrent writes to a plain slot");
    AbortExecution();
  }
  for (uint32_t u = 0; u < kMaxThreads; ++u) {
    if (u == tid || !c.has_read[u]) continue;
    if (!c.read_clocks[u].LeqThan(t.clock)) {
      RecordViolation("data race: plain-slot write concurrent with a read");
      AbortExecution();
    }
  }
  c.written = true;
  c.write_clock = t.clock;
  c.value = value;
}

uint64_t Runtime::CellRead(uint32_t cell) {
  const uint32_t tid = CurrentTid();
  ThreadState& t = threads_[tid];
  Cell& c = cells_[cell];
  if (c.written && !c.write_clock.LeqThan(t.clock)) {
    RecordViolation("data race: plain-slot read concurrent with a write");
    AbortExecution();
  }
  c.read_clocks[tid] = t.clock;
  c.has_read[tid] = true;
  return c.value;
}

std::memory_order Runtime::SiteOrder(common::OrderSite site,
                                     std::memory_order declared) const {
  return site == options_.weakened ? std::memory_order_relaxed : declared;
}

ExploreResult Explore(const ExploreOptions& options,
                      const std::function<void(Runtime&)>& test) {
  detail::Engine engine;
  const bool replaying = !options.replay.empty();
  if (replaying && !engine.ParseReplay(options.replay)) {
    ExploreResult result;
    result.violation = true;
    result.message = "unparseable replay schedule: " + options.replay;
    return result;
  }
  // Sleep sets are only sound without a preemption bound (and are
  // pointless when replaying a single schedule).
  engine.sleep_on =
      options.sleep_sets && options.preemption_bound < 0 && !replaying;

  ExploreResult result;
  for (;;) {
    Runtime rt(options, &engine, &result);
    engine.BeginExecution(&rt);
    t_rt = &rt;
    t_tid = 0;
    try {
      test(rt);
    } catch (const ModelAbort&) {
      // The abort may have unwound only the scheduler (e.g. a replay
      // divergence at a thread choice): workers still paused inside
      // PauseForSchedule must be resumed-with-abort before this Runtime
      // dies, or the engine teardown joins against a parked thread.
      rt.AbortThreads();
    }
    t_rt = nullptr;
    ++result.executions;
    if (rt.violated_) {
      result.violation = true;
      break;
    }
    if (replaying) {
      result.complete = true;
      break;
    }
    if (!engine.Backtrack()) {
      result.complete = true;
      break;
    }
    if (result.executions >= options.max_executions) {
      result.budget_exhausted = true;
      break;
    }
  }
  return result;
}

const char* SiteName(common::OrderSite site) {
  switch (site) {
    case common::OrderSite::kSpscHeadAcquire: return "spsc-head-acquire";
    case common::OrderSite::kSpscTailRelease: return "spsc-tail-release";
    case common::OrderSite::kSpscTailAcquire: return "spsc-tail-acquire";
    case common::OrderSite::kSpscHeadRelease: return "spsc-head-release";
    case common::OrderSite::kSeqlockReadAcquire: return "seqlock-read-acquire";
    case common::OrderSite::kSeqlockReadFence: return "seqlock-read-fence";
    case common::OrderSite::kSeqlockWriteFence: return "seqlock-write-fence";
    case common::OrderSite::kSeqlockWriteRelease:
      return "seqlock-write-release";
    case common::OrderSite::kCount: break;
  }
  return "none";
}

bool ParseSiteName(const std::string& name, common::OrderSite* site) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(common::OrderSite::kCount);
       ++i) {
    const auto candidate = static_cast<common::OrderSite>(i);
    if (name == SiteName(candidate)) {
      *site = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace nmc::race
