#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/atomic_policy.h"
#include "nmc_race/runtime.h"

namespace nmc::race {

/// Drop-in stand-in for std::atomic<T> under the model policy: every op is
/// announced to the Runtime scheduler (a preemption point) and executed
/// against the per-location store history, so relaxed loads can observe
/// any store the C++11 visibility rules admit — not just the newest one.
/// T must fit in the 64-bit model word.
template <typename T>
class ModelAtomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "model atomics hold at most one 64-bit word");

 public:
  ModelAtomic() : ModelAtomic(T{}) {}
  explicit ModelAtomic(T initial)
      : location_(Runtime::Current()->NewLocation(ToBits(initial))) {}

  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order order) const {
    return FromBits(Runtime::Current()->AtomicLoad(location_, order));
  }

  void store(T value, std::memory_order order) {
    Runtime::Current()->AtomicStore(location_, ToBits(value), order);
  }

  T fetch_add(T delta, std::memory_order order) {
    static_assert(std::is_integral_v<T>,
                  "fetch_add is modeled for integral T only");
    return FromBits(Runtime::Current()->AtomicRmwAdd(
        location_, ToBits(delta), order));
  }

 private:
  static uint64_t ToBits(T value) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(T));
    return bits;
  }
  static T FromBits(uint64_t bits) {
    T value;
    std::memcpy(&value, &bits, sizeof(T));
    return value;
  }

  uint32_t location_;
};

inline void ModelFence(std::memory_order order) {
  Runtime::Current()->Fence(order);
}

/// The model-checking counterpart of common::StdAtomicPolicy: instantiate
/// SpscQueue<T, ModelAtomicPolicy> / Seqlock<T, ModelAtomicPolicy> inside
/// an Explore() test body and every atomic, fence, and plain slot access
/// of the production source runs under the interleaving scheduler.
struct ModelAtomicPolicy {
  template <typename T>
  using Atomic = ModelAtomic<T>;

  /// The mutation hook: declared order, unless this site is the one the
  /// current exploration weakens to relaxed.
  static std::memory_order Order(common::OrderSite site,
                                 std::memory_order declared) {
    return Runtime::Current()->SiteOrder(site, declared);
  }

  static void Fence(common::OrderSite site, std::memory_order declared) {
    ModelFence(Order(site, declared));
  }

  /// Plain slot storage with vector-clock race detection. View() performs
  /// the model-level reads at peek time; that is sound for the SPSC
  /// protocol because the producer's next write to a peeked slot is only
  /// race-free when it happens-after the consumer's head release, which
  /// postdates the peek.
  template <typename T>
  class SlotArray {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "model slots hold at most one 64-bit word");

   public:
    explicit SlotArray(size_t size) : data_(size), cells_(size) {
      for (size_t i = 0; i < size; ++i) {
        cells_[i] = Runtime::Current()->NewCell();
      }
    }

    void Store(size_t index, const T& value) {
      uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(T));
      Runtime::Current()->CellWrite(cells_[index], bits);
      data_[index] = value;
    }

    std::span<const T> View(size_t begin, size_t count) const {
      for (size_t i = begin; i < begin + count; ++i) {
        (void)Runtime::Current()->CellRead(cells_[i]);
      }
      return {&data_[begin], count};
    }

   private:
    std::vector<T> data_;
    std::vector<uint32_t> cells_;
  };
};

}  // namespace nmc::race
