#include "nmc_race/litmus.h"

#include <array>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/seqlock.h"
#include "common/spsc_queue.h"
#include "nmc_race/model_atomic.h"

namespace nmc::race {

namespace {

using common::OrderSite;

std::string PairOutcome(uint64_t a, uint64_t b) {
  return std::to_string(a) + "/" + std::to_string(b);
}

ExploreOptions Unbounded() {
  ExploreOptions options;
  options.preemption_bound = -1;
  options.sleep_sets = true;
  return options;
}

ExploreOptions Bounded(int bound) {
  ExploreOptions options;
  options.preemption_bound = bound;
  options.sleep_sets = false;
  return options;
}

// ---- classic litmus self-tests: the model must exhibit the relaxed
// reorderings and must not under stronger orders --------------------------

std::function<void(Runtime&)> StoreBuffering(std::memory_order store_order,
                                             std::memory_order load_order) {
  return [store_order, load_order](Runtime& rt) {
    ModelAtomic<uint64_t> x(0);
    ModelAtomic<uint64_t> y(0);
    uint64_t r0 = 99;
    uint64_t r1 = 99;
    rt.Thread([&] {
      x.store(1, store_order);
      r0 = y.load(load_order);
    });
    rt.Thread([&] {
      y.store(1, store_order);
      r1 = x.load(load_order);
    });
    rt.Run();
    rt.Outcome(PairOutcome(r0, r1));
  };
}

std::function<void(Runtime&)> MessagePassing(std::memory_order flag_store,
                                             std::memory_order flag_load) {
  return [flag_store, flag_load](Runtime& rt) {
    ModelAtomic<uint64_t> data(0);
    ModelAtomic<uint64_t> flag(0);
    uint64_t seen_flag = 99;
    uint64_t seen_data = 99;
    rt.Thread([&] {
      data.store(1, std::memory_order_relaxed);
      flag.store(1, flag_store);
    });
    rt.Thread([&] {
      seen_flag = flag.load(flag_load);
      seen_data =
          seen_flag == 1 ? data.load(std::memory_order_relaxed) : 42;
    });
    rt.Run();
    rt.Outcome(PairOutcome(seen_flag, seen_data));
  };
}

void LoadBuffering(Runtime& rt) {
  ModelAtomic<uint64_t> x(0);
  ModelAtomic<uint64_t> y(0);
  uint64_t r0 = 99;
  uint64_t r1 = 99;
  rt.Thread([&] {
    r0 = y.load(std::memory_order_relaxed);
    x.store(1, std::memory_order_relaxed);
  });
  rt.Thread([&] {
    r1 = x.load(std::memory_order_relaxed);
    y.store(1, std::memory_order_relaxed);
  });
  rt.Run();
  rt.Outcome(PairOutcome(r0, r1));
}

/// Message passing where the payload is *plain* memory: with a relaxed
/// flag the unsynchronized write/read pair is a data race the model must
/// detect; with release/acquire it is race-free.
std::function<void(Runtime&)> MessagePassingPlainCell(bool synchronized) {
  const std::memory_order flag_store = synchronized
                                           ? std::memory_order_release
                                           : std::memory_order_relaxed;
  const std::memory_order flag_load = synchronized
                                          ? std::memory_order_acquire
                                          : std::memory_order_relaxed;
  return [flag_store, flag_load](Runtime& rt) {
    const uint32_t cell = rt.NewCell();
    ModelAtomic<uint64_t> flag(0);
    rt.Thread([&rt, &flag, cell, flag_store] {
      rt.CellWrite(cell, 1);
      flag.store(1, flag_store);
    });
    rt.Thread([&rt, &flag, cell, flag_load] {
      if (flag.load(flag_load) == 1) (void)rt.CellRead(cell);
    });
    rt.Run();
    rt.Outcome("race-free");
  };
}

// ---- SpscQueue litmus ---------------------------------------------------

void SpscFifo(Runtime& rt) {
  common::SpscQueue<uint64_t, ModelAtomicPolicy> queue(
      common::RingCapacity<4>{});
  std::vector<uint64_t> popped;
  rt.Thread([&] {
    for (uint64_t value = 1; value <= 3; ++value) {
      rt.Check(queue.TryPush(value), "push into a non-full ring failed");
    }
  });
  rt.Thread([&] {
    uint64_t out = 0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (queue.TryPop(&out)) popped.push_back(out);
    }
  });
  rt.Run();
  uint64_t out = 0;
  while (queue.TryPop(&out)) popped.push_back(out);
  rt.Check(popped.size() == 3, "items lost or duplicated");
  for (size_t i = 0; i < popped.size(); ++i) {
    rt.Check(popped[i] == i + 1, "FIFO order violated");
  }
  rt.Outcome("ok");
}

/// Push `kItems` through a capacity-`kCap` ring so slots are reused: the
/// head retire/refresh edge is what keeps the producer's overwrite of a
/// slot ordered after the consumer's read of its previous occupant.
template <size_t kCap, uint64_t kItems, int kTries>
void SpscWrap(Runtime& rt) {
  common::SpscQueue<uint64_t, ModelAtomicPolicy> queue(
      common::RingCapacity<kCap>{});
  uint64_t pushed = 0;
  std::vector<uint64_t> popped;
  rt.Thread([&] {
    uint64_t next = 1;
    for (int attempt = 0; attempt < kTries && next <= kItems; ++attempt) {
      if (queue.TryPush(next)) ++next;
    }
    pushed = next - 1;
  });
  rt.Thread([&] {
    uint64_t out = 0;
    for (int attempt = 0; attempt < kTries; ++attempt) {
      if (queue.TryPop(&out)) popped.push_back(out);
    }
  });
  rt.Run();
  uint64_t out = 0;
  while (queue.TryPop(&out)) popped.push_back(out);
  rt.Check(popped.size() == pushed, "items lost or duplicated across wrap");
  for (size_t i = 0; i < popped.size(); ++i) {
    rt.Check(popped[i] == i + 1, "FIFO order violated across wrap");
  }
  rt.Outcome("ok");
}

/// Batched producer/consumer across the wrap seam: TryPushSpan must split
/// its batch at the ring boundary and PeekContiguous must hand out only
/// contiguous, fully-published slots.
void SpscSpanBatch(Runtime& rt) {
  common::SpscQueue<uint64_t, ModelAtomicPolicy> queue(
      common::RingCapacity<2>{});
  // Offset head/tail so the span push wraps mid-batch.
  uint64_t setup = 0;
  rt.Check(queue.TryPush(9), "setup push failed");
  rt.Check(queue.TryPop(&setup) && setup == 9, "setup pop failed");
  const std::array<uint64_t, 3> items = {1, 2, 3};
  size_t sent = 0;
  std::vector<uint64_t> got;
  rt.Thread([&] {
    for (int attempt = 0; attempt < 5 && sent < items.size(); ++attempt) {
      sent += queue.TryPushSpan(
          std::span<const uint64_t>(items).subspan(sent));
    }
  });
  rt.Thread([&] {
    for (int attempt = 0; attempt < 5; ++attempt) {
      const std::span<const uint64_t> view = queue.PeekContiguous(2);
      for (const uint64_t value : view) got.push_back(value);
      if (!view.empty()) queue.Advance(view.size());
    }
  });
  rt.Run();
  for (;;) {
    const std::span<const uint64_t> view = queue.PeekContiguous(2);
    if (view.empty()) break;
    for (const uint64_t value : view) got.push_back(value);
    queue.Advance(view.size());
  }
  rt.Check(got.size() == sent, "batched items lost or duplicated");
  for (size_t i = 0; i < got.size(); ++i) {
    rt.Check(got[i] == i + 1, "batched FIFO order violated");
  }
  rt.Outcome("ok");
}

// ---- Seqlock litmus -----------------------------------------------------

struct PairPayload {
  uint64_t a = 0;
  uint64_t b = 0;
};

void SeqlockTorn(Runtime& rt) {
  common::Seqlock<PairPayload, ModelAtomicPolicy> slot;
  rt.Thread([&] { slot.Publish(PairPayload{1, 1}); });
  rt.Thread([&] {
    PairPayload snapshot;
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (slot.TryRead(&snapshot)) {
        rt.Check(snapshot.a == snapshot.b, "torn seqlock read");
        rt.Check(snapshot.a <= 1, "seqlock read invented a value");
      }
    }
  });
  rt.Run();
  PairPayload final_snapshot;
  rt.Check(slot.TryRead(&final_snapshot), "post-join read must succeed");
  rt.Check(final_snapshot.a == 1 && final_snapshot.b == 1,
           "final snapshot is not the published value");
  rt.Outcome("ok");
}

/// Two generations: every successful read is internally consistent and the
/// observed generation never regresses (per-location coherence).
void SeqlockMonotonic(Runtime& rt) {
  common::Seqlock<PairPayload, ModelAtomicPolicy> slot;
  rt.Thread([&] {
    slot.Publish(PairPayload{1, 1});
    slot.Publish(PairPayload{2, 2});
  });
  rt.Thread([&] {
    uint64_t last = 0;
    PairPayload snapshot;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (slot.TryRead(&snapshot)) {
        rt.Check(snapshot.a == snapshot.b, "torn seqlock read");
        rt.Check(snapshot.a >= last, "snapshot regressed");
        last = snapshot.a;
      }
    }
  });
  rt.Run();
  rt.Outcome("ok");
}

std::vector<LitmusCase> BuildSuite() {
  std::vector<LitmusCase> suite;

  LitmusCase sb_relaxed;
  sb_relaxed.name = "sb-relaxed";
  sb_relaxed.description =
      "store buffering, relaxed: the 0/0 outcome (both loads stale) must "
      "be observable";
  sb_relaxed.base = Unbounded();
  sb_relaxed.test = StoreBuffering(std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  sb_relaxed.expected_outcomes = {"0/0", "0/1", "1/0", "1/1"};
  suite.push_back(std::move(sb_relaxed));

  LitmusCase sb_acqrel;
  sb_acqrel.name = "sb-acqrel";
  sb_acqrel.description =
      "store buffering, release/acquire: acq/rel does NOT forbid 0/0 — "
      "only seq_cst does";
  sb_acqrel.base = Unbounded();
  sb_acqrel.test = StoreBuffering(std::memory_order_release,
                                  std::memory_order_acquire);
  sb_acqrel.expected_outcomes = {"0/0", "0/1", "1/0", "1/1"};
  suite.push_back(std::move(sb_acqrel));

  LitmusCase sb_seqcst;
  sb_seqcst.name = "sb-seqcst";
  sb_seqcst.description = "store buffering, seq_cst: 0/0 is forbidden";
  sb_seqcst.base = Unbounded();
  sb_seqcst.test = StoreBuffering(std::memory_order_seq_cst,
                                  std::memory_order_seq_cst);
  sb_seqcst.expected_outcomes = {"0/1", "1/0", "1/1"};
  suite.push_back(std::move(sb_seqcst));

  LitmusCase mp_relaxed;
  mp_relaxed.name = "mp-relaxed";
  mp_relaxed.description =
      "message passing, relaxed flag: the stale-data outcome 1/0 must be "
      "observable";
  mp_relaxed.base = Unbounded();
  mp_relaxed.test = MessagePassing(std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  mp_relaxed.expected_outcomes = {"0/42", "1/0", "1/1"};
  suite.push_back(std::move(mp_relaxed));

  LitmusCase mp_acqrel;
  mp_acqrel.name = "mp-acqrel";
  mp_acqrel.description =
      "message passing, release/acquire: a seen flag implies fresh data";
  mp_acqrel.base = Unbounded();
  mp_acqrel.test = MessagePassing(std::memory_order_release,
                                  std::memory_order_acquire);
  mp_acqrel.expected_outcomes = {"0/42", "1/1"};
  suite.push_back(std::move(mp_acqrel));

  LitmusCase lb_relaxed;
  lb_relaxed.name = "lb-relaxed";
  lb_relaxed.description =
      "load buffering, relaxed: 1/1 is allowed by C++11 but NOT observable "
      "in an interleaving-based model (known limitation, same as loom) — "
      "this pins the boundary";
  lb_relaxed.base = Unbounded();
  lb_relaxed.test = LoadBuffering;
  lb_relaxed.expected_outcomes = {"0/0", "0/1", "1/0"};
  suite.push_back(std::move(lb_relaxed));

  LitmusCase mp_race;
  mp_race.name = "mp-race-relaxed";
  mp_race.description =
      "plain-memory payload behind a relaxed flag: the model must detect "
      "the data race";
  mp_race.base = Unbounded();
  mp_race.test = MessagePassingPlainCell(/*synchronized=*/false);
  mp_race.expect_violation = true;
  suite.push_back(std::move(mp_race));

  LitmusCase mp_norace;
  mp_norace.name = "mp-race-acqrel";
  mp_norace.description =
      "plain-memory payload behind a release/acquire flag: race-free";
  mp_norace.base = Unbounded();
  mp_norace.test = MessagePassingPlainCell(/*synchronized=*/true);
  mp_norace.expected_outcomes = {"race-free"};
  suite.push_back(std::move(mp_norace));

  LitmusCase spsc_fifo;
  spsc_fifo.name = "spsc-fifo";
  spsc_fifo.description =
      "SPSC ring, no wrap: FIFO, no loss, no duplication; slot handoff "
      "is race-free through the tail release/acquire edge";
  spsc_fifo.base = Bounded(3);
  spsc_fifo.test = SpscFifo;
  spsc_fifo.expected_outcomes = {"ok"};
  spsc_fifo.kills = {OrderSite::kSpscTailRelease, OrderSite::kSpscTailAcquire};
  suite.push_back(std::move(spsc_fifo));

  LitmusCase wrap1;
  wrap1.name = "spsc-wrap-cap1";
  wrap1.description =
      "capacity-1 ring (strict ping-pong): slot reuse is race-free through "
      "the head release/acquire edge";
  wrap1.base = Bounded(2);
  wrap1.test = SpscWrap<1, 2, 3>;
  wrap1.expected_outcomes = {"ok"};
  wrap1.kills = {OrderSite::kSpscHeadAcquire, OrderSite::kSpscHeadRelease};
  suite.push_back(std::move(wrap1));

  LitmusCase wrap2;
  wrap2.name = "spsc-wrap-cap2";
  wrap2.description =
      "capacity-2 ring wrapping at the exact boundary: FIFO and race-free "
      "slot reuse";
  wrap2.base = Bounded(2);
  wrap2.test = SpscWrap<2, 3, 4>;
  wrap2.expected_outcomes = {"ok"};
  wrap2.kills = {OrderSite::kSpscHeadAcquire, OrderSite::kSpscHeadRelease};
  suite.push_back(std::move(wrap2));

  LitmusCase span_batch;
  span_batch.name = "spsc-span-batch";
  span_batch.description =
      "TryPushSpan/PeekContiguous batches across the wrap seam: split "
      "batches stay contiguous, ordered, and race-free";
  span_batch.base = Bounded(2);
  span_batch.test = SpscSpanBatch;
  span_batch.expected_outcomes = {"ok"};
  span_batch.kills = {OrderSite::kSpscTailRelease,
                      OrderSite::kSpscTailAcquire};
  suite.push_back(std::move(span_batch));

  LitmusCase seqlock_torn;
  seqlock_torn.name = "seqlock-torn";
  seqlock_torn.description =
      "seqlock single publish vs reader: TryRead never returns a torn "
      "snapshot (guards all four seqlock ordering edges)";
  seqlock_torn.base = Bounded(2);
  seqlock_torn.test = SeqlockTorn;
  seqlock_torn.expected_outcomes = {"ok"};
  seqlock_torn.kills = {
      OrderSite::kSeqlockReadAcquire, OrderSite::kSeqlockReadFence,
      OrderSite::kSeqlockWriteFence, OrderSite::kSeqlockWriteRelease};
  suite.push_back(std::move(seqlock_torn));

  LitmusCase seqlock_mono;
  seqlock_mono.name = "seqlock-monotonic";
  seqlock_mono.description =
      "seqlock across two generations: snapshots are consistent and never "
      "regress";
  seqlock_mono.base = Bounded(2);
  seqlock_mono.test = SeqlockMonotonic;
  seqlock_mono.expected_outcomes = {"ok"};
  suite.push_back(std::move(seqlock_mono));

  return suite;
}

}  // namespace

const std::vector<LitmusCase>& LitmusSuite() {
  static const std::vector<LitmusCase>* suite =
      new std::vector<LitmusCase>(BuildSuite());
  return *suite;
}

const LitmusCase* FindLitmus(const std::string& name) {
  for (const LitmusCase& litmus : LitmusSuite()) {
    if (litmus.name == name) return &litmus;
  }
  return nullptr;
}

LitmusVerdict RunLitmus(const LitmusCase& litmus, common::OrderSite weakened,
                        const std::string& replay) {
  ExploreOptions options = litmus.base;
  options.weakened = weakened;
  options.replay = replay;
  LitmusVerdict verdict;
  verdict.result = Explore(options, litmus.test);
  const ExploreResult& result = verdict.result;

  if (litmus.expect_violation) {
    verdict.passed = result.violation;
    if (!verdict.passed) {
      verdict.detail = "expected the model to detect a violation, but the "
                       "exploration came back clean";
    }
    return verdict;
  }
  if (result.violation) {
    verdict.detail = result.message + " [schedule: " + result.schedule + "]";
    return verdict;
  }
  if (result.budget_exhausted) {
    verdict.detail = "execution budget exhausted before full exploration";
    return verdict;
  }
  if (!litmus.expected_outcomes.empty() && replay.empty()) {
    const std::set<std::string> want(litmus.expected_outcomes.begin(),
                                     litmus.expected_outcomes.end());
    if (want != result.outcomes) {
      std::string got;
      for (const std::string& outcome : result.outcomes) {
        got += (got.empty() ? "" : ", ") + outcome;
      }
      std::string expected;
      for (const std::string& outcome : want) {
        expected += (expected.empty() ? "" : ", ") + outcome;
      }
      verdict.detail =
          "outcome set mismatch: explored {" + got + "}, pinned {" +
          expected + "}";
      return verdict;
    }
  }
  verdict.passed = true;
  return verdict;
}

std::vector<MutationOutcome> RunMutationMatrix() {
  std::vector<MutationOutcome> outcomes;
  for (uint32_t i = 0; i < static_cast<uint32_t>(OrderSite::kCount); ++i) {
    const auto site = static_cast<OrderSite>(i);
    const LitmusCase* killer = nullptr;
    for (const LitmusCase& litmus : LitmusSuite()) {
      for (const OrderSite kill : litmus.kills) {
        if (kill == site) {
          killer = &litmus;
          break;
        }
      }
      if (killer != nullptr) break;
    }
    NMC_CHECK(killer != nullptr);  // every site must have a killing litmus
    MutationOutcome outcome;
    outcome.site = site;
    outcome.litmus = killer->name;
    ExploreOptions options = killer->base;
    options.weakened = site;
    const ExploreResult weakened_run = Explore(options, killer->test);
    outcome.killed = weakened_run.violation;
    outcome.schedule = weakened_run.schedule;
    outcome.message = weakened_run.message;
    if (outcome.killed) {
      options.replay = weakened_run.schedule;
      const ExploreResult replayed = Explore(options, killer->test);
      outcome.replay_confirmed = replayed.violation &&
                                 replayed.message == weakened_run.message &&
                                 replayed.schedule == weakened_run.schedule;
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace nmc::race
