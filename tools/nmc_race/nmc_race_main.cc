// nmc_race — deterministic interleaving model checker for the repo's
// lock-free primitives (SpscQueue, Seqlock) and the C++11 memory model
// they rely on.
//
// Usage:
//   nmc_race --list
//   nmc_race [--test=NAME|all] [--preemption-bound=N] [--max-executions=N]
//   nmc_race --test=NAME --replay=SCHEDULE [--weaken=SITE]
//   nmc_race --mutate=SITE|all
//
// Exit codes:
//   0  clean: every requested exploration completed with zero violations
//      (for --mutate: every mutant was killed and replay-confirmed)
//   1  violation found (the minimal failing schedule is printed)
//   2  usage error (unknown flag, unknown test/site name)
//   3  execution budget exhausted before the schedule space was covered
//   4  a mutant survived: weakening the site produced no violation
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/atomic_policy.h"
#include "nmc_race/litmus.h"
#include "nmc_race/runtime.h"

namespace {

using nmc::race::ExploreResult;
using nmc::race::FindLitmus;
using nmc::race::LitmusCase;
using nmc::race::LitmusSuite;
using nmc::race::LitmusVerdict;
using nmc::race::MutationOutcome;
using nmc::race::ParseSiteName;
using nmc::race::RunLitmus;
using nmc::race::RunMutationMatrix;
using nmc::race::SiteName;
using nmc::common::OrderSite;

constexpr int kExitClean = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBudget = 3;
constexpr int kExitMutantSurvived = 4;

void PrintUsage(FILE* out) {
  std::fprintf(out,
               "usage: nmc_race [--list] [--test=NAME|all] [--mutate=SITE|all]\n"
               "                [--replay=SCHEDULE] [--weaken=SITE]\n"
               "                [--preemption-bound=N] [--max-executions=N]\n"
               "exit codes: 0 clean, 1 violation, 2 usage, 3 budget "
               "exhausted, 4 mutant survived\n");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int ListCommand() {
  std::printf("litmus cases:\n");
  for (const LitmusCase& litmus : LitmusSuite()) {
    std::printf("  %-18s %s\n", litmus.name.c_str(),
                litmus.description.c_str());
  }
  std::printf("order sites (for --mutate / --weaken):\n");
  for (uint32_t i = 0; i < static_cast<uint32_t>(OrderSite::kCount); ++i) {
    std::printf("  %s\n", SiteName(static_cast<OrderSite>(i)));
  }
  return kExitClean;
}

/// Runs one litmus case and prints the verdict; returns its exit code.
int RunOne(const LitmusCase& litmus, OrderSite weakened,
           const std::string& replay, int preemption_override,
           uint64_t max_executions_override) {
  LitmusCase effective = litmus;
  if (preemption_override != -2) {
    effective.base.preemption_bound = preemption_override;
    effective.base.sleep_sets = preemption_override < 0;
  }
  if (max_executions_override != 0) {
    effective.base.max_executions = max_executions_override;
  }
  const LitmusVerdict verdict = RunLitmus(effective, weakened, replay);
  const ExploreResult& result = verdict.result;
  if (verdict.passed) {
    std::printf("PASS %-18s executions=%llu outcomes=%zu%s\n",
                litmus.name.c_str(),
                static_cast<unsigned long long>(result.executions),
                result.outcomes.size(),
                weakened != OrderSite::kCount ? " (weakened, violation as expected)"
                                              : "");
    return kExitClean;
  }
  std::printf("FAIL %-18s %s\n", litmus.name.c_str(), verdict.detail.c_str());
  if (result.violation && !result.schedule.empty()) {
    std::printf("     repro: nmc_race --test=%s --replay=%s%s%s\n",
                litmus.name.c_str(), result.schedule.c_str(),
                weakened != OrderSite::kCount ? " --weaken=" : "",
                weakened != OrderSite::kCount ? SiteName(weakened) : "");
  }
  if (!result.violation && result.budget_exhausted) return kExitBudget;
  return kExitViolation;
}

int MutateCommand(const std::string& which) {
  std::vector<MutationOutcome> outcomes;
  if (which == "all") {
    outcomes = RunMutationMatrix();
  } else {
    OrderSite site = OrderSite::kCount;
    if (!ParseSiteName(which, &site)) {
      std::fprintf(stderr, "nmc_race: unknown order site '%s'\n",
                   which.c_str());
      return kExitUsage;
    }
    for (MutationOutcome& outcome : RunMutationMatrix()) {
      if (outcome.site == site) outcomes.push_back(std::move(outcome));
    }
  }
  int exit_code = kExitClean;
  for (const MutationOutcome& outcome : outcomes) {
    if (outcome.killed && outcome.replay_confirmed) {
      std::printf("KILLED   %-22s by %-16s schedule=%s\n",
                  SiteName(outcome.site), outcome.litmus.c_str(),
                  outcome.schedule.c_str());
    } else if (outcome.killed) {
      std::printf("UNSTABLE %-22s by %-16s violation found but replay "
                  "diverged\n",
                  SiteName(outcome.site), outcome.litmus.c_str());
      exit_code = kExitMutantSurvived;
    } else {
      std::printf("SURVIVED %-22s (%s explored clean with the site "
                  "weakened to relaxed)\n",
                  SiteName(outcome.site), outcome.litmus.c_str());
      exit_code = kExitMutantSurvived;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  std::string test_name;
  std::string mutate;
  std::string replay;
  std::string weaken;
  int preemption_override = -2;  // -2 = keep the case's tuned bound
  uint64_t max_executions_override = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return kExitClean;
    } else if (ParseFlag(arg, "test", &value)) {
      test_name = value;
    } else if (ParseFlag(arg, "mutate", &value)) {
      mutate = value;
    } else if (ParseFlag(arg, "replay", &value)) {
      replay = value;
    } else if (ParseFlag(arg, "weaken", &value)) {
      weaken = value;
    } else if (ParseFlag(arg, "preemption-bound", &value)) {
      preemption_override = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "max-executions", &value)) {
      max_executions_override = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "nmc_race: unknown argument '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return kExitUsage;
    }
  }

  if (list) return ListCommand();
  if (!mutate.empty()) return MutateCommand(mutate);

  OrderSite weakened = OrderSite::kCount;
  if (!weaken.empty() && !ParseSiteName(weaken, &weakened)) {
    std::fprintf(stderr, "nmc_race: unknown order site '%s'\n",
                 weaken.c_str());
    return kExitUsage;
  }
  if (!replay.empty() && (test_name.empty() || test_name == "all")) {
    std::fprintf(stderr, "nmc_race: --replay requires --test=NAME\n");
    return kExitUsage;
  }

  if (test_name.empty()) test_name = "all";
  if (test_name == "all") {
    int exit_code = kExitClean;
    for (const LitmusCase& litmus : LitmusSuite()) {
      const int code = RunOne(litmus, weakened, replay, preemption_override,
                              max_executions_override);
      if (code != kExitClean && exit_code == kExitClean) exit_code = code;
    }
    return exit_code;
  }
  const LitmusCase* litmus = FindLitmus(test_name);
  if (litmus == nullptr) {
    std::fprintf(stderr, "nmc_race: unknown test '%s' (see --list)\n",
                 test_name.c_str());
    return kExitUsage;
  }
  return RunOne(*litmus, weakened, replay, preemption_override,
                max_executions_override);
}
