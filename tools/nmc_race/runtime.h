#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_policy.h"

namespace nmc::race {

/// Hard cap on model threads per execution (thread 0 is the main/setup
/// thread; litmus tests use 2-3 workers). Vector clocks are fixed-size
/// arrays indexed by thread id.
constexpr uint32_t kMaxThreads = 8;

/// A happens-before vector clock over the model threads.
struct VClock {
  std::array<uint32_t, kMaxThreads> c{};

  void Join(const VClock& other) {
    for (uint32_t i = 0; i < kMaxThreads; ++i) {
      if (other.c[i] > c[i]) c[i] = other.c[i];
    }
  }
  /// True when every component of *this is <= the corresponding component
  /// of `other` — i.e. the event stamped *this happened-before (or equals)
  /// the state stamped `other`.
  bool LeqThan(const VClock& other) const {
    for (uint32_t i = 0; i < kMaxThreads; ++i) {
      if (c[i] > other.c[i]) return false;
    }
    return true;
  }
};

/// Thrown to unwind a model thread (or the test body) once a violation is
/// recorded or the execution is pruned; never escapes Explore().
struct ModelAbort {};

struct ExploreOptions {
  /// Max context switches away from a still-runnable thread; -1 =
  /// unbounded. CHESS's observation: almost all concurrency bugs manifest
  /// within 2-3 preemptions, so bounded runs are the fast default for the
  /// larger litmus tests.
  int preemption_bound = -1;
  /// Sleep-set pruning (Godefroid). Only applied on unbounded runs: the
  /// sleep-set + preemption-bound combination is known to prune unsoundly.
  bool sleep_sets = true;
  uint64_t max_executions = 2'000'000;
  /// Per-execution step budget; exceeding it is reported as a violation
  /// (livelock or an unbounded spin in a model thread body).
  uint64_t max_steps = 20'000;
  /// When != kCount: the single OrderSite whose declared order the model
  /// policy weakens to relaxed — the mutation harness.
  common::OrderSite weakened = common::OrderSite::kCount;
  /// When non-empty: run exactly one execution following this schedule
  /// string (as printed by Result::schedule); choices beyond the string's
  /// end take the DFS default.
  std::string replay;
};

struct ExploreResult {
  uint64_t executions = 0;
  /// DFS exhausted the (possibly bounded) schedule space without running
  /// into max_executions.
  bool complete = false;
  bool budget_exhausted = false;
  bool violation = false;
  /// Replayable schedule of the violating execution ("t1,t1,v0,t2,...").
  std::string schedule;
  std::string message;
  /// Every distinct string passed to Runtime::Outcome() across all
  /// non-pruned, non-violating executions — the litmus outcome set.
  std::set<std::string> outcomes;
};

namespace detail {
struct Engine;
}

/// One execution's model state plus the test-facing API. A fresh Runtime
/// is constructed per execution; the persistent worker threads and the DFS
/// choice stack live in the Engine owned by Explore().
class Runtime {
 public:
  /// The runtime serving model ops on the calling thread (set for the
  /// duration of Explore()).
  static Runtime* Current();

  // ---- test-facing API --------------------------------------------------

  /// Registers a model thread; bodies start only once Run() is called.
  void Thread(std::function<void()> body);
  /// Runs the scheduler until every model thread finished. Throws
  /// ModelAbort when the execution records a violation or is pruned.
  void Run();
  /// Records a violation (with the failing schedule) unless `ok`.
  void Check(bool ok, const std::string& message);
  /// Records a litmus outcome for this execution (main thread, after Run).
  void Outcome(const std::string& outcome);
  bool Violated() const { return violated_; }

  // ---- ops called by ModelAtomic / ModelAtomicPolicy --------------------

  uint32_t NewLocation(uint64_t initial);
  uint64_t AtomicLoad(uint32_t loc, std::memory_order order);
  void AtomicStore(uint32_t loc, uint64_t value, std::memory_order order);
  /// fetch_add; returns the previous value.
  uint64_t AtomicRmwAdd(uint32_t loc, uint64_t delta, std::memory_order order);
  void Fence(std::memory_order order);

  /// Plain (non-atomic) shared memory with vector-clock data-race
  /// detection: the slot arrays of the policy-generic ring buffers. Cell
  /// accesses are not scheduling points — a racing pair is flagged by its
  /// missing happens-before edge in whichever interleaving of the *atomic*
  /// ops exposes it, so interleaving cell ops adds states but no coverage.
  uint32_t NewCell();
  void CellWrite(uint32_t cell, uint64_t value);
  uint64_t CellRead(uint32_t cell);

  /// The mutation hook: `declared` unless `site` is the weakened one.
  std::memory_order SiteOrder(common::OrderSite site,
                              std::memory_order declared) const;

 private:
  friend ExploreResult Explore(const ExploreOptions& options,
                               const std::function<void(Runtime&)>& test);
  friend struct detail::Engine;

  struct Store {
    uint64_t value = 0;
    /// Writer's full clock at the store: used both to hide older stores
    /// from threads this store happened-before, and for coherence.
    VClock hb;
    /// What an acquire load of this store joins (writer clock for release
    /// stores, the writer's last release-fence snapshot for relaxed ones).
    VClock sync;
    bool has_sync = false;
  };
  struct Location {
    std::vector<Store> stores;  // modification order
    /// Per-thread coherence floor: index of the newest store this thread
    /// has read or written; older stores are no longer admissible.
    std::array<uint32_t, kMaxThreads> last_seen{};
  };
  struct Cell {
    uint64_t value = 0;
    VClock write_clock;
    bool written = false;
    std::array<VClock, kMaxThreads> read_clocks;
    std::array<bool, kMaxThreads> has_read{};
  };
  enum class OpKind : uint8_t { kNone, kStart, kLoad, kStore, kRmw, kFence };
  struct PendingOp {
    OpKind kind = OpKind::kNone;
    uint32_t loc = 0;
  };
  struct ThreadState {
    VClock clock;
    VClock release_fence;
    bool has_release_fence = false;
    /// Join of the sync clocks of every store read so far — what the next
    /// acquire fence promotes into the thread clock (Boehm fence rule).
    VClock acq_pending;
    PendingOp pending;
    bool started = false;
    bool finished = false;
  };

  explicit Runtime(const ExploreOptions& options, detail::Engine* engine,
                   ExploreResult* result);

  uint32_t CurrentTid() const;
  static bool OpsDependent(const PendingOp& a, const PendingOp& b);
  void Tick(uint32_t tid) { threads_[tid].clock.c[tid] += 1; }
  /// Worker-side: announce the op and hand the token to the scheduler;
  /// returns once rescheduled (throws ModelAbort when aborting).
  void PauseForSchedule(OpKind kind, uint32_t loc);
  void RecordViolation(const std::string& message);
  [[noreturn]] void AbortExecution();
  /// Unwinds every unfinished model thread (resume-with-abort handshake).
  void AbortThreads();
  /// The scheduler loop body of Run().
  void RunScheduler();

  const ExploreOptions& options_;
  detail::Engine* engine_;
  ExploreResult* result_;

  std::vector<Location> locations_;
  std::vector<Cell> cells_;
  std::vector<ThreadState> threads_;  // [0] is the main/setup thread
  VClock sc_clock_;                   // simplified seq_cst total-order clock

  bool violated_ = false;
  bool pruned_ = false;
  std::string violation_message_;
  uint64_t steps_ = 0;
};

/// Runs `test` under every schedule the options admit. `test` is invoked
/// once per execution: it builds the shared state, registers thread
/// bodies, calls rt.Run(), and asserts/records outcomes afterwards.
ExploreResult Explore(const ExploreOptions& options,
                      const std::function<void(Runtime&)>& test);

/// Stable lowercase identifier for an order site ("spsc-head-acquire"...).
const char* SiteName(common::OrderSite site);
/// Inverse of SiteName; false when `name` matches no site.
bool ParseSiteName(const std::string& name, common::OrderSite* site);

}  // namespace nmc::race
