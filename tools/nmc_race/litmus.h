#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/atomic_policy.h"
#include "nmc_race/runtime.h"

namespace nmc::race {

/// One litmus test: a model-checked scenario plus the exploration config
/// it is tuned for and the contract it pins.
struct LitmusCase {
  std::string name;
  std::string description;
  /// Tuned exploration config (preemption bound, sleep sets, budgets).
  /// Weakened site / replay string are layered on top by the runner.
  ExploreOptions base;
  /// The body handed to Explore(): builds state, registers threads, runs,
  /// asserts, records outcomes.
  std::function<void(Runtime&)> test;
  /// When non-empty: the exact outcome set the memory model must produce
  /// (sorted); a mismatch fails the case even with zero violations.
  std::vector<std::string> expected_outcomes;
  /// True for negative self-tests that must *detect* a seeded defect (the
  /// case passes iff the exploration reports a violation).
  bool expect_violation = false;
  /// Sites whose release→relaxed weakening this case refutes — the
  /// mutation matrix picks its killing case from here.
  std::vector<common::OrderSite> kills;
};

const std::vector<LitmusCase>& LitmusSuite();

/// nullptr when no case has that name.
const LitmusCase* FindLitmus(const std::string& name);

struct LitmusVerdict {
  bool passed = false;
  ExploreResult result;
  /// Human-readable failure reason (outcome-set diff, violation text...).
  std::string detail;
};

/// Runs one case: `weakened` (kCount = none) and `replay` are layered onto
/// the case's tuned base options.
LitmusVerdict RunLitmus(const LitmusCase& litmus, common::OrderSite weakened,
                        const std::string& replay);

struct MutationOutcome {
  common::OrderSite site = common::OrderSite::kCount;
  /// Which litmus case was run with the site weakened.
  std::string litmus;
  /// The mutant is killed when the run reports a violation AND replaying
  /// the printed schedule deterministically reproduces it.
  bool killed = false;
  bool replay_confirmed = false;
  std::string schedule;
  std::string message;
};

/// Weakens every OrderSite in turn and demands its killing litmus case
/// fail with a replay-confirmed schedule.
std::vector<MutationOutcome> RunMutationMatrix();

}  // namespace nmc::race
