#include "analysis/first_passage.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace nmc::analysis {
namespace {

TEST(ExitTimeTest, DistributionSumsToOne) {
  // For b = 5 the exit time is a.s. finite; 4000 steps capture all but a
  // negligible tail.
  const auto dist = ExitTimeDistribution(5, 0.0, 4000);
  const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExitTimeTest, ParityStructure) {
  // From 0, reaching ±b requires r ≡ b (mod 2): odd b exits only at odd r.
  const auto dist = ExitTimeDistribution(3, 0.0, 100);
  for (int64_t r = 1; r <= 100; ++r) {
    if ((r % 2) != 1) {
      EXPECT_EQ(dist[static_cast<size_t>(r - 1)], 0.0) << "r=" << r;
    }
  }
  EXPECT_GT(dist[2], 0.0);  // earliest exit at r = 3
  EXPECT_EQ(dist[0], 0.0);  // can't exit ±3 in 1 step
}

TEST(ExitTimeTest, MeanIsBSquaredForSymmetricWalk) {
  // Optional stopping: E[T] = b^2 exactly for the two-sided symmetric
  // exit.
  for (int64_t b : {2, 5, 10}) {
    EXPECT_NEAR(ExitTimeMean(b, 0.0, 40 * b * b), static_cast<double>(b * b),
                0.01 * static_cast<double>(b * b))
        << "b=" << b;
  }
}

TEST(ExitTimeTest, DriftShortensTheExit) {
  // With drift mu the walk exits in ~b/mu steps << b^2.
  const double symmetric = ExitTimeMean(20, 0.0, 40000);
  const double drifted = ExitTimeMean(20, 0.5, 40000);
  EXPECT_NEAR(symmetric, 400.0, 5.0);
  EXPECT_LT(drifted, 60.0);   // ~ b/mu = 40
  EXPECT_GT(drifted, 30.0);
}

TEST(SyncFailureTest, ClosedFormMatchesExactDp) {
  for (int64_t b : {5, 20, 60}) {
    for (double p : {0.001, 0.01, 0.1}) {
      const double closed = SyncFailureClosedForm(b, p);
      const double dp = SyncFailureFromDp(b, 0.0, p, 400000);
      EXPECT_NEAR(dp, closed, 1e-6 + 0.01 * closed)
          << "b=" << b << " p=" << p;
    }
  }
}

TEST(SyncFailureTest, MonteCarloMatchesClosedForm) {
  for (int64_t b : {10, 30}) {
    const double p = 4.0 / static_cast<double>(b * b);  // failure ~ 6%
    const double closed = SyncFailureClosedForm(b, p);
    const double mc = SyncFailureMonteCarlo(b, 0.0, p, 200000, 7);
    EXPECT_NEAR(mc, closed, 4.0 * std::sqrt(closed / 200000.0) + 0.002)
        << "b=" << b;
  }
}

TEST(SyncFailureTest, ExponentialInSqrtPbSquared) {
  // failure = 1/cosh(b*acosh(1/(1-p))) ~ 2 exp(-b sqrt(2p)): quadrupling
  // A = p*b^2 doubles the exponent.
  const int64_t b = 50;
  const double a1 = 4.0, a2 = 16.0;
  const double f1 = SyncFailureClosedForm(b, a1 / (b * b));
  const double f2 = SyncFailureClosedForm(b, a2 / (b * b));
  const double exponent_ratio = std::log(f2 / 2.0) / std::log(f1 / 2.0);
  EXPECT_NEAR(exponent_ratio, 2.0, 0.1);
}

TEST(SyncFailureTest, DriftMakesFailureWorseAtFixedRate) {
  // A drifting walk escapes sooner, so the same sampling rate fails more
  // often — the quantitative reason the drift guard exists.
  const int64_t b = 30;
  const double p = 4.0 / (30.0 * 30.0);
  const double symmetric = SyncFailureFromDp(b, 0.0, p, 200000);
  const double drifted = SyncFailureFromDp(b, 0.4, p, 200000);
  EXPECT_GT(drifted, 5.0 * symmetric);
}

TEST(Eq1FailureTest, DefaultsGiveRoughlyNMinusSqrt2Alpha) {
  // At the paper-faithful beta = 2, failure ~ 2 n^{-sqrt(2 alpha)}: for
  // alpha = 2 that is ~2/n^2.
  for (int64_t n : {1 << 12, 1 << 16, 1 << 20}) {
    // Radius where the rate is well below 1 (the interesting regime).
    const double log_n = std::log(static_cast<double>(n));
    const int64_t b = static_cast<int64_t>(4.0 * log_n);
    const double failure = Eq1FailureAtRadius(b, 2.0, 2.0, n);
    const double predicted =
        2.0 * std::pow(static_cast<double>(n), -2.0);  // 2 n^{-sqrt(4)}
    EXPECT_GT(failure, predicted / 30.0) << "n=" << n;
    EXPECT_LT(failure, predicted * 30.0) << "n=" << n;
  }
}

TEST(Eq1FailureTest, RateClampedToOneIsExact) {
  // Small radius: the law samples every update, so failure is 0.
  EXPECT_EQ(Eq1FailureAtRadius(3, 2.0, 2.0, 1 << 16), 0.0);
}

TEST(Eq1FailureTest, SmallerBetaFailsMore) {
  const int64_t n = 1 << 16;
  const int64_t b = 60;
  EXPECT_GT(Eq1FailureAtRadius(b, 2.0, 1.0, n),
            10.0 * Eq1FailureAtRadius(b, 2.0, 2.0, n));
}

}  // namespace
}  // namespace nmc::analysis
