#include "common/status.h"

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  const Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::OutOfRange("y").ToString(), "OutOfRange: y");
  EXPECT_EQ(Status::Internal("z").ToString(), "Internal: z");
}

TEST(StatusTest, EmptyMessageOmitsColon) {
  const Status s(StatusCode::kInternal, "");
  EXPECT_EQ(s.ToString(), "Internal");
}

TEST(StatusTest, CopyPreservesState) {
  const Status s = Status::OutOfRange("index 9");
  const Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(copy.message(), "index 9");
}

}  // namespace
}  // namespace nmc::common
