// Large-n stress tests: the asymptotic claims only become visible past
// the finite-size bands, and multi-million-update runs also shake out
// accumulation bugs (drift in floating-point sums, counter overflow,
// estimator staleness) that short tests cannot. Kept to a few seconds by
// the ~17M updates/s hot path.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"
#include "streams/permutation.h"
#include "test_util.h"

namespace nmc {
namespace {

using nmc::testing::DefaultOptions;
using nmc::testing::RunCounter;

TEST(StressTest, FourMillionUpdatesSingleSite) {
  const int64_t n = 1 << 22;
  const auto stream = streams::BernoulliStream(n, 0.0, 1);
  const auto result = RunCounter(stream, 1, DefaultOptions(n, 0.25, 2));
  EXPECT_EQ(result.violation_steps, 0);
  // Deep in the sqrt(n) regime: the cost must be well below n/4.
  EXPECT_LT(result.messages, n / 4);
  EXPECT_NEAR(result.final_estimate, result.final_sum,
              0.25 * std::fabs(result.final_sum) + 1e-6);
}

TEST(StressTest, SublinearityImprovesWithScale) {
  // messages/n must strictly decrease across decades — the defining
  // signature of a sublinear protocol, measurable only at scale.
  double previous_per_update = 10.0;
  for (int64_t n : {1LL << 16, 1LL << 19, 1LL << 22}) {
    const auto stream = streams::BernoulliStream(n, 0.0, 3);
    const auto result = RunCounter(stream, 1, DefaultOptions(n, 0.25, 4));
    EXPECT_EQ(result.violation_steps, 0);
    const double per_update =
        static_cast<double>(result.messages) / static_cast<double>(n);
    EXPECT_LT(per_update, previous_per_update) << "n=" << n;
    previous_per_update = per_update;
  }
  EXPECT_LT(previous_per_update, 0.2);
}

TEST(StressTest, MillionUpdateDriftRunStaysAccurate) {
  const int64_t n = 1 << 20;
  const auto stream = streams::BernoulliStream(n, 0.1, 5);
  core::CounterOptions options = DefaultOptions(n, 0.1, 6);
  options.drift_mode = core::DriftMode::kUnknownUnitDrift;
  core::NonMonotonicCounter counter(8, options);
  sim::RoundRobinAssignment psi(8);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_TRUE(counter.diagnostics().phase2_active);
  EXPECT_NEAR(counter.diagnostics().mu_hat, 0.1, 0.04);
  EXPECT_LT(result.messages, n / 4);
}

TEST(StressTest, MillionUpdatePermutedMultisetAcrossSites) {
  const int64_t n = 1 << 20;
  const auto stream = streams::RandomlyPermuted(
      streams::SignMultiset(n, 0.5), 7);
  const auto result = RunCounter(stream, 8, DefaultOptions(n, 0.25, 8));
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_LT(result.messages, 2 * n);  // below the StraightSync ceiling
}

TEST(StressTest, FractionalMillionRunFloatAccumulationBounded) {
  // Fractional values accumulate floating-point error in both the harness
  // and the protocol; over 2^20 updates the two sums must still agree to
  // absolute 1e-6 at every sync (covered by zero violations with the
  // harness's tiny absolute slack).
  const int64_t n = 1 << 20;
  const auto stream = streams::FractionalIidStream(n, 0.0, 1.0, 9);
  const auto result = RunCounter(stream, 4, DefaultOptions(n, 0.25, 10));
  EXPECT_EQ(result.violation_steps, 0);
}

}  // namespace
}  // namespace nmc
