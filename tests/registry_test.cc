// ProtocolRegistry tests: registration semantics, traits lookup, and the
// acceptance criterion that a factory-built protocol is bit-identical to
// the same protocol constructed directly.

#include "sim/registry.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "baselines/periodic_sync.h"
#include "baselines/two_monotonic.h"
#include "common/rng.h"
#include "core/horizon_free.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "registry/builtin.h"

namespace nmc::sim {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

const char* const kBuiltinNames[] = {
    "counter",      "counter_drift",     "exact_sync",    "horizon_free",
    "hyz",          "hyz_deterministic", "periodic_sync", "two_monotonic",
};

ProtocolRegistry& Registry() {
  registry::RegisterBuiltinProtocols();
  return ProtocolRegistry::Global();
}

TEST(RegistryTest, BuiltinNamesAreRegisteredAndSorted) {
  ProtocolRegistry& registry = Registry();
  const std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name : kBuiltinNames) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_FALSE(registry.Contains("definitely_not_registered"));
}

TEST(RegistryTest, DuplicateRegistrationIsRejected) {
  ProtocolRegistry& registry = Registry();
  const size_t before = registry.Names().size();
  const bool inserted = registry.Register(
      "counter", ProtocolTraits{},
      [](int num_sites, const ProtocolParams& /*params*/) {
        return std::unique_ptr<Protocol>(
            new core::NonMonotonicCounter(num_sites, core::CounterOptions{}));
      });
  EXPECT_FALSE(inserted);
  EXPECT_EQ(registry.Names().size(), before);
}

TEST(RegistryTest, TraitsDriveStreamSelection) {
  ProtocolRegistry& registry = Registry();
  ASSERT_NE(registry.Traits("counter"), nullptr);
  EXPECT_TRUE(registry.Traits("counter")->general_values);
  EXPECT_FALSE(registry.Traits("counter")->monotonic_only);
  ASSERT_NE(registry.Traits("hyz"), nullptr);
  EXPECT_TRUE(registry.Traits("hyz")->monotonic_only);
  ASSERT_NE(registry.Traits("two_monotonic"), nullptr);
  EXPECT_FALSE(registry.Traits("two_monotonic")->general_values);
  EXPECT_EQ(registry.Traits("no_such_protocol"), nullptr);
}

TEST(RegistryTest, CreateReportsTheRequestedTopology) {
  ProtocolRegistry& registry = Registry();
  ProtocolParams params;
  for (const char* name : kBuiltinNames) {
    std::unique_ptr<Protocol> protocol = registry.Create(name, 3, params);
    ASSERT_NE(protocol, nullptr) << name;
    EXPECT_EQ(protocol->num_sites(), 3) << name;
    EXPECT_GE(protocol->Estimate(), -1e18) << name;  // callable before data
  }
}

// ---- Factory vs direct construction bit-identity ------------------------

/// Drives `protocol` with the trait-appropriate deterministic stream and
/// returns the estimate after every update plus the final message count.
std::pair<std::vector<double>, int64_t> Trace(Protocol* protocol,
                                              const ProtocolTraits& traits) {
  common::Rng rng = MakeRng(71);
  std::vector<double> estimates;
  const int k = protocol->num_sites();
  for (int i = 0; i < 1200; ++i) {
    double value = 1.0;
    if (!traits.monotonic_only) {
      value = traits.general_values ? rng.UniformDouble() * 1.8 - 0.9
                                    : static_cast<double>(rng.Sign(0.5));
    }
    protocol->ProcessUpdate(i % k, value);
    estimates.push_back(protocol->Estimate());
  }
  return {std::move(estimates), protocol->stats().total()};
}

/// The exact option translation the builtin builders perform, duplicated
/// here on purpose: the test pins the factory to the documented mapping.
core::CounterOptions DirectCounterOptions(const ProtocolParams& params) {
  core::CounterOptions options;
  options.epsilon = params.epsilon;
  options.horizon_n = params.horizon_n;
  options.channel = params.channel;
  options.seed = params.seed;
  return options;
}

hyz::HyzOptions DirectHyzOptions(const ProtocolParams& params) {
  hyz::HyzOptions options;
  options.epsilon = params.epsilon;
  options.delta = params.delta;
  options.channel = params.channel;
  options.seed = params.seed;
  return options;
}

TEST(RegistryTest, FactoryBuiltProtocolsMatchDirectConstruction) {
  ProtocolRegistry& registry = Registry();
  ProtocolParams params;
  params.epsilon = 0.2;
  params.horizon_n = 4096;
  params.delta = 1e-5;
  params.period = 8;
  params.seed = 21;

  using DirectBuilder = std::function<std::unique_ptr<Protocol>(int)>;
  struct Case {
    const char* name;
    DirectBuilder direct;
  };
  const Case cases[] = {
      {"counter",
       [&](int k) -> std::unique_ptr<Protocol> {
         return std::make_unique<core::NonMonotonicCounter>(
             k, DirectCounterOptions(params));
       }},
      {"counter_drift",
       [&](int k) -> std::unique_ptr<Protocol> {
         core::CounterOptions options = DirectCounterOptions(params);
         options.drift_mode = core::DriftMode::kUnknownUnitDrift;
         return std::make_unique<core::NonMonotonicCounter>(k, options);
       }},
      {"horizon_free",
       [&](int k) -> std::unique_ptr<Protocol> {
         core::HorizonFreeOptions options;
         options.counter = DirectCounterOptions(params);
         options.initial_horizon = 512;
         return std::make_unique<core::HorizonFreeCounter>(k, options);
       }},
      {"hyz",
       [&](int k) -> std::unique_ptr<Protocol> {
         return std::make_unique<hyz::HyzProtocol>(k, DirectHyzOptions(params));
       }},
      {"hyz_deterministic",
       [&](int k) -> std::unique_ptr<Protocol> {
         hyz::HyzOptions options = DirectHyzOptions(params);
         options.mode = hyz::HyzMode::kDeterministic;
         return std::make_unique<hyz::HyzProtocol>(k, options);
       }},
      {"exact_sync",
       [&](int k) -> std::unique_ptr<Protocol> {
         return std::make_unique<baselines::ExactSyncProtocol>(k,
                                                               params.channel);
       }},
      {"periodic_sync",
       [&](int k) -> std::unique_ptr<Protocol> {
         return std::make_unique<baselines::PeriodicSyncProtocol>(
             k, params.period, params.channel);
       }},
      {"two_monotonic",
       [&](int k) -> std::unique_ptr<Protocol> {
         return std::make_unique<baselines::TwoMonotonicProtocol>(
             k, params.epsilon, params.delta, params.seed, params.channel);
       }},
  };

  for (const Case& c : cases) {
    const ProtocolTraits* traits = registry.Traits(c.name);
    ASSERT_NE(traits, nullptr) << c.name;
    std::unique_ptr<Protocol> from_factory = registry.Create(c.name, 4, params);
    std::unique_ptr<Protocol> from_direct = c.direct(4);
    const auto factory_trace = Trace(from_factory.get(), *traits);
    const auto direct_trace = Trace(from_direct.get(), *traits);
    EXPECT_EQ(factory_trace.first, direct_trace.first)
        << c.name << ": estimate traces diverge";
    EXPECT_EQ(factory_trace.second, direct_trace.second)
        << c.name << ": message counts diverge";
  }
}

}  // namespace
}  // namespace nmc::sim
