#include "bench/runner.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "streams/bernoulli.h"

namespace nmc::bench {
namespace {

RepeatSpec CounterSpec(int trials, int num_sites, int64_t n) {
  RepeatSpec spec;
  spec.trials = trials;
  spec.num_sites = num_sites;
  spec.epsilon = 0.25;
  spec.make_stream = [n](int trial) {
    return streams::BernoulliStream(n, 0.0, 300 + static_cast<uint64_t>(trial));
  };
  spec.make_protocol = [num_sites, n](int trial) {
    core::CounterOptions options;
    options.epsilon = 0.25;
    options.horizon_n = n;
    options.seed = 17 + static_cast<uint64_t>(trial) * 7919;
    return std::make_unique<core::NonMonotonicCounter>(num_sites, options);
  };
  return spec;
}

// The statistical fields must agree bit-for-bit, not just approximately:
// parallel execution only reorders *scheduling*, never arithmetic.
void ExpectBitIdentical(const RunSummary& a, const RunSummary& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.mean_messages, b.mean_messages);
  EXPECT_EQ(a.stderr_messages, b.stderr_messages);
  EXPECT_EQ(a.violation_fraction, b.violation_fraction);
  EXPECT_EQ(a.trials_with_violation, b.trials_with_violation);
  EXPECT_EQ(a.max_rel_error, b.max_rel_error);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.messages_stat.count(), b.messages_stat.count());
  EXPECT_EQ(a.messages_stat.mean(), b.messages_stat.mean());
  EXPECT_EQ(a.messages_stat.variance(), b.messages_stat.variance());
  EXPECT_EQ(a.messages_stat.min(), b.messages_stat.min());
  EXPECT_EQ(a.messages_stat.max(), b.messages_stat.max());
}

TEST(RunnerTest, SerialMatchesParallelBitForBit) {
  const RepeatSpec spec = CounterSpec(/*trials=*/8, /*num_sites=*/4,
                                      /*n=*/1 << 12);
  const RunSummary serial = RunRepeated(spec, 1);
  const RunSummary parallel = RunRepeated(spec, 4);
  ExpectBitIdentical(serial, parallel);
  EXPECT_GT(serial.mean_messages, 0.0);
  EXPECT_EQ(serial.total_updates, 8 * (1 << 12));
}

TEST(RunnerTest, ParallelMatchesWithMoreWorkersThanTrials) {
  const RepeatSpec spec = CounterSpec(/*trials=*/3, /*num_sites=*/2,
                                      /*n=*/1 << 10);
  ExpectBitIdentical(RunRepeated(spec, 1), RunRepeated(spec, 16));
}

TEST(RunnerTest, RepeatedInvocationIsDeterministic) {
  const RepeatSpec spec = CounterSpec(/*trials=*/4, /*num_sites=*/4,
                                      /*n=*/1 << 10);
  ExpectBitIdentical(RunRepeated(spec, 2), RunRepeated(spec, 2));
}

TEST(RunnerTest, SingleTrialRunsInline) {
  const RepeatSpec spec = CounterSpec(/*trials=*/1, /*num_sites=*/1,
                                      /*n=*/1 << 10);
  const RunSummary summary = RunRepeated(spec, 8);
  EXPECT_EQ(summary.trials, 1);
  EXPECT_EQ(summary.stderr_messages, 0.0);
  EXPECT_GT(summary.mean_messages, 0.0);
}

TEST(RunnerTest, SummaryMatchesLegacySingleLoopSemantics) {
  // mean/stderr come straight from the per-trial messages_stat, and the
  // violation fraction is the mean of per-trial fractions.
  const RepeatSpec spec = CounterSpec(/*trials=*/5, /*num_sites=*/2,
                                      /*n=*/1 << 11);
  const RunSummary summary = RunRepeated(spec, 1);
  EXPECT_EQ(summary.mean_messages, summary.messages_stat.mean());
  EXPECT_EQ(summary.stderr_messages, summary.messages_stat.stderr_mean());
  EXPECT_EQ(summary.messages_stat.count(), 5);
  EXPECT_GE(summary.violation_fraction, 0.0);
  EXPECT_LE(summary.violation_fraction, 1.0);
}

#ifdef NDEBUG
TEST(RunnerTest, EmptyStreamTrialReportsZeroViolationFraction) {
  // Release builds: an empty stream must contribute an explicit 0.0, not
  // the 1-step division the old Repeat loop silently fell back to. (Debug
  // builds assert instead — an empty stream is a harness bug.)
  RepeatSpec spec = CounterSpec(/*trials=*/2, /*num_sites=*/1, /*n=*/16);
  spec.make_stream = [](int trial) {
    return trial == 0 ? std::vector<double>()
                      : streams::BernoulliStream(16, 0.0, 5);
  };
  const RunSummary summary = RunRepeated(spec, 1);
  EXPECT_EQ(summary.trials, 2);
  EXPECT_GE(summary.violation_fraction, 0.0);
  EXPECT_EQ(summary.total_updates, 16);
}
#endif

}  // namespace
}  // namespace nmc::bench
