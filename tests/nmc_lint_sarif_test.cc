// SARIF output tests: the emitted log is parsed with a small recursive
// JSON reader (no external deps) and validated structurally —
// runs[0].tool.driver.rules carries the full registry,
// results[] carry ruleId / message.text / physicalLocation with the right
// uri and startLine, and baselined results carry suppressions.
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "nmc_lint/lint.h"
#include "nmc_lint/sarif.h"

namespace nmc::lint {
namespace {

// ---- Minimal JSON reader (objects, arrays, strings, numbers, literals) ----

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    static const Json kNullValue;
    const auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
  const Json& at(size_t i) const {
    static const Json kNullValue;
    return i < array.size() ? array[i] : kNullValue;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool Read(Json* out) { return Value(out) && (Ws(), pos_ == s_.size()); }

 private:
  void Ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool Eat(char c) {
    Ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool String(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        ++pos_;
        switch (s_[pos_]) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u': pos_ += 4; *out += '?'; break;
          default: *out += s_[pos_];
        }
      } else {
        *out += s_[pos_];
      }
      ++pos_;
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool Value(Json* out) {
    Ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Json::Kind::kObject;
      if (Eat('}')) return true;
      do {
        std::string key;
        Ws();
        if (!String(&key) || !Eat(':')) return false;
        if (!Value(&out->object[key])) return false;
      } while (Eat(','));
      return Eat('}');
    }
    if (c == '[') {
      ++pos_;
      out->kind = Json::Kind::kArray;
      if (Eat(']')) return true;
      do {
        out->array.emplace_back();
        if (!Value(&out->array.back())) return false;
      } while (Eat(','));
      return Eat(']');
    }
    if (c == '"') {
      out->kind = Json::Kind::kString;
      return String(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = Json::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = Json::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    out->kind = Json::Kind::kNumber;
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' ||
            s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::vector<Finding> SampleFindings() {
  return {
      {"src/sim/network.cc", 42, "NO_MAP_IN_HOT_PATH", "node-based container",
       {}},
      {"src/core/counter.cc", 7, "NO_UNSEEDED_RNG",
       "hard-coded seed with a \"quoted\" excuse", {}},
      {"bench/bench_util.h", 3, "LAYERING_VIOLATION", "climbs the DAG", {}},
  };
}

TEST(NmcLintSarifTest, TopLevelEnvelope) {
  Json doc;
  ASSERT_TRUE(JsonReader(SarifReport({}, {})).Read(&doc));
  EXPECT_EQ(doc.at("version").str, "2.1.0");
  EXPECT_NE(doc.at("$schema").str.find("sarif-2.1.0"), std::string::npos);
  ASSERT_EQ(doc.at("runs").array.size(), 1u);
  EXPECT_EQ(doc.at("runs").at(0).at("tool").at("driver").at("name").str,
            "nmc_lint");
  EXPECT_TRUE(doc.at("runs").at(0).at("results").array.empty());
}

TEST(NmcLintSarifTest, DriverRulesCarryTheFullRegistry) {
  Json doc;
  ASSERT_TRUE(JsonReader(SarifReport({}, {})).Read(&doc));
  const Json& rules =
      doc.at("runs").at(0).at("tool").at("driver").at("rules");
  ASSERT_EQ(rules.array.size(), Rules().size());
  for (size_t i = 0; i < Rules().size(); ++i) {
    EXPECT_EQ(rules.at(i).at("id").str, Rules()[i].id);
    EXPECT_EQ(rules.at(i).at("shortDescription").at("text").str,
              Rules()[i].summary);
  }
}

TEST(NmcLintSarifTest, ResultsCarryRuleIdMessageAndLocation) {
  const std::vector<Finding> findings = SampleFindings();
  Json doc;
  ASSERT_TRUE(
      JsonReader(SarifReport(findings, std::vector<bool>(findings.size())))
          .Read(&doc));
  const Json& results = doc.at("runs").at(0).at("results");
  ASSERT_EQ(results.array.size(), findings.size());
  for (size_t i = 0; i < findings.size(); ++i) {
    const Json& r = results.at(i);
    EXPECT_EQ(r.at("ruleId").str, findings[i].rule);
    EXPECT_EQ(r.at("level").str, "error");
    EXPECT_EQ(r.at("message").at("text").str, findings[i].message);
    const Json& loc = r.at("locations").at(0).at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uri").str, findings[i].file);
    EXPECT_EQ(static_cast<int>(loc.at("region").at("startLine").number),
              findings[i].line);
    EXPECT_EQ(r.at("suppressions").kind, Json::Kind::kNull);
  }
}

TEST(NmcLintSarifTest, BaselinedResultsAreSuppressedNotes) {
  const std::vector<Finding> findings = SampleFindings();
  std::vector<bool> baselined = {false, true, false};
  Json doc;
  ASSERT_TRUE(JsonReader(SarifReport(findings, baselined)).Read(&doc));
  const Json& results = doc.at("runs").at(0).at("results");
  ASSERT_EQ(results.array.size(), 3u);
  EXPECT_EQ(results.at(0).at("level").str, "error");
  EXPECT_EQ(results.at(1).at("level").str, "note");
  ASSERT_EQ(results.at(1).at("suppressions").array.size(), 1u);
  EXPECT_EQ(results.at(1).at("suppressions").at(0).at("kind").str,
            "external");
  EXPECT_EQ(results.at(2).at("suppressions").kind, Json::Kind::kNull);
}

TEST(NmcLintSarifTest, PropagatedFindingsCarryCodeFlows) {
  Finding finding{"src/common/helpers.cc", 19, "NO_HEAP_IN_HOT_PATH",
                  "'new' reachable from an entry point"};
  finding.flow = {
      {"src/core/pump.cc", 18, "Pump::ProcessUpdate() is an entry point"},
      {"src/core/pump.cc", 20, "calls Pump::StageOne()"},
      {"src/common/helpers.cc", 19, "'new' reachable from an entry point"},
  };
  Json doc;
  ASSERT_TRUE(JsonReader(SarifReport({finding}, {false})).Read(&doc));
  const Json& r = doc.at("runs").at(0).at("results").at(0);
  const Json& steps =
      r.at("codeFlows").at(0).at("threadFlows").at(0).at("locations");
  ASSERT_EQ(steps.array.size(), finding.flow.size());
  for (size_t i = 0; i < finding.flow.size(); ++i) {
    const Json& loc = steps.at(i).at("location");
    EXPECT_EQ(loc.at("physicalLocation")
                  .at("artifactLocation")
                  .at("uri")
                  .str,
              finding.flow[i].file);
    EXPECT_EQ(static_cast<int>(loc.at("physicalLocation")
                                   .at("region")
                                   .at("startLine")
                                   .number),
              finding.flow[i].line);
    EXPECT_EQ(loc.at("message").at("text").str, finding.flow[i].note);
  }
  // Direct findings (empty flow) emit no codeFlows property at all.
  finding.flow.clear();
  Json direct;
  ASSERT_TRUE(JsonReader(SarifReport({finding}, {false})).Read(&direct));
  EXPECT_EQ(direct.at("runs").at(0).at("results").at(0).at("codeFlows").kind,
            Json::Kind::kNull);
}

TEST(NmcLintSarifTest, OutputIsDeterministic) {
  const std::vector<Finding> findings = SampleFindings();
  const std::vector<bool> baselined = {true, false, false};
  EXPECT_EQ(SarifReport(findings, baselined), SarifReport(findings, baselined));
}

}  // namespace
}  // namespace nmc::lint
