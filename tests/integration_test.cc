// End-to-end comparisons across protocols and input models: the
// cross-module behaviors the benches rely on.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "core/lower_bound.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/adversarial.h"
#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/permutation.h"
#include "test_util.h"

namespace nmc {
namespace {

using nmc::testing::DefaultOptions;
using nmc::testing::RunCounter;

TEST(IntegrationTest, CounterBeatsExactSyncOnDriftingInput) {
  // On a drifting stream the counter leaves the error-sensitive region
  // early and Phase 2 makes the tail nearly free; ExactSync stays Theta(n).
  const int64_t n = 1 << 16;
  const auto stream = streams::BernoulliStream(n, 0.5, 1);

  core::CounterOptions options = DefaultOptions(n, 0.25, 2);
  options.drift_mode = core::DriftMode::kUnknownUnitDrift;
  const auto counter_result = RunCounter(stream, 4, options);
  baselines::ExactSyncProtocol exact(4);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.25;
  const auto exact_result = sim::RunTracking(stream, &psi, &exact, tracking);

  EXPECT_EQ(counter_result.violation_steps, 0);
  EXPECT_EQ(exact_result.messages, n);
  EXPECT_LT(counter_result.messages, exact_result.messages / 2);
}

TEST(IntegrationTest, SameMultisetOrderedVsPermuted) {
  // The alternating worst case forces ~1 message per update for ANY
  // correct protocol (the count oscillates 0,1,0,1 and every miss is an
  // unbounded relative error); the SAME multiset randomly permuted is a
  // driftless random walk and is tracked sublinearly.
  const int64_t n = 1 << 20;
  const auto ordered = streams::AlternatingStream(n);
  const auto permuted = streams::RandomlyPermuted(ordered, 7);

  const auto r_ordered = RunCounter(ordered, 1, DefaultOptions(n, 0.25, 8));
  const auto r_permuted = RunCounter(permuted, 1, DefaultOptions(n, 0.25, 8));

  EXPECT_EQ(r_ordered.violation_steps, 0);
  EXPECT_EQ(r_permuted.violation_steps, 0);
  EXPECT_EQ(r_ordered.messages, n);  // |S| <= 1: sampling rate pinned to 1
  EXPECT_LT(r_permuted.messages, r_ordered.messages / 2);
}

TEST(IntegrationTest, MessageCostGrowsSublinearlyInN) {
  // Doubling n should multiply messages by clearly less than 2 once the
  // sqrt(n) regime is reached.
  const double epsilon = 0.25;
  // Per-trial message cost has heavy variance (the walk's time near zero
  // dominates it): 3-trial means produce ratio samples as extreme as ~3.5
  // for some seed blocks even though the ratio of means sits near 2.7, so
  // average enough trials for the comparison to test growth, not luck.
  auto cost_at = [&](int64_t n) {
    double total = 0.0;
    const int trials = 16;
    for (int trial = 0; trial < trials; ++trial) {
      const auto stream =
          streams::BernoulliStream(n, 0.0, 100 + static_cast<uint64_t>(trial));
      const auto result =
          RunCounter(stream, 1, DefaultOptions(n, epsilon,
                                               200 + static_cast<uint64_t>(trial)));
      EXPECT_EQ(result.violation_steps, 0);
      total += static_cast<double>(result.messages);
    }
    return total / trials;
  };
  const double cost_small = cost_at(1 << 16);
  const double cost_large = cost_at(1 << 18);
  EXPECT_LT(cost_large / cost_small, 3.0);
  EXPECT_GT(cost_large / cost_small, 1.2);
}

TEST(IntegrationTest, CounterCostExceedsOccupancyLowerBound) {
  // Theorem 4.1's sample-path bound: any correct tracker sends Omega(1)
  // messages per visit to E = {|s| <= 1/eps}; our counter's cost must
  // dominate the measured occupancy (it syncs with rate ~1 there) and stay
  // within a polylog factor of it on driftless input.
  const int64_t n = 1 << 16;
  const double epsilon = 0.25;
  const auto stream = streams::BernoulliStream(n, 0.0, 31);
  const int64_t occupancy = core::CountOccupancy(stream, 1.0 / epsilon);
  const auto result = RunCounter(stream, 1, DefaultOptions(n, epsilon, 32));
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_GE(result.messages, occupancy / 4);
}

TEST(IntegrationTest, HigherHurstCostsLessInFbmMode) {
  // Cor 3.6: cost ~ n^{1-H}; H = 0.9 should be markedly cheaper than
  // H = 0.5 at the same n.
  const int64_t n = 1 << 15;
  auto run_fbm = [&](double hurst) {
    double total = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      const auto stream =
          streams::FgnDaviesHarte(n, hurst, 500 + static_cast<uint64_t>(trial));
      core::CounterOptions options = DefaultOptions(n, 0.1, 600);
      options.fbm_delta = 1.0 / hurst;
      const auto result = RunCounter(stream, 1, options);
      EXPECT_EQ(result.violation_steps, 0) << "H=" << hurst;
      total += static_cast<double>(result.messages);
    }
    return total / trials;
  };
  EXPECT_LT(run_fbm(0.9), 0.75 * run_fbm(0.5));
}

TEST(IntegrationTest, CounterMatchesHyzOnMonotonicInput) {
  // mu = 1 special case: our counter (drift mode) should be within a small
  // factor of the native HYZ counter's cost.
  const int64_t n = 1 << 15;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);
  core::CounterOptions options = DefaultOptions(n, 0.1, 41);
  options.drift_mode = core::DriftMode::kUnknownUnitDrift;
  const auto counter_result = RunCounter(stream, 4, options);

  hyz::HyzOptions hyz_options;
  hyz_options.epsilon = 0.1;
  hyz_options.delta = 1e-6;
  hyz_options.seed = 42;
  hyz::HyzProtocol hyz_counter(4, hyz_options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto hyz_result = sim::RunTracking(stream, &psi, &hyz_counter, tracking);

  EXPECT_EQ(counter_result.violation_steps, 0);
  EXPECT_EQ(hyz_result.violation_steps, 0);
  EXPECT_LT(counter_result.messages, 60 * hyz_result.messages);
}

TEST(IntegrationTest, SignSplitAdversaryDoesNotInflateViolations) {
  // A value-adaptive psi (positives and negatives at disjoint sites) is
  // exactly the adversary the model allows; correctness must hold.
  const int64_t n = 1 << 14;
  const auto stream =
      streams::RandomlyPermuted(streams::SignMultiset(n, 0.5), 51);
  core::NonMonotonicCounter counter(6, DefaultOptions(n, 0.1, 52));
  sim::SignSplitAssignment psi(6);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
}

}  // namespace
}  // namespace nmc
