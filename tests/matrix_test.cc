#include "regression/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmc::regression {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  const Matrix id = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, PlusEquals) {
  Matrix a = Matrix::Identity(2);
  Matrix b(2, 2);
  b.At(0, 1) = 3.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 3.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a(2, 3);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  a.At(0, 2) = 3.0;
  a.At(1, 0) = 4.0;
  a.At(1, 1) = 5.0;
  a.At(1, 2) = 6.0;
  Matrix b(3, 2);
  b.At(0, 0) = 7.0;
  b.At(1, 0) = 8.0;
  b.At(2, 0) = 9.0;
  b.At(0, 1) = 1.0;
  b.At(1, 1) = 2.0;
  b.At(2, 1) = 3.0;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.At(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 122.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 32.0);
}

TEST(MatrixTest, AddOuterProduct) {
  Matrix a(2, 2);
  a.AddOuterProduct({2.0, -1.0}, 3.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), -6.0);
  EXPECT_DOUBLE_EQ(a.At(1, 0), -6.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 3.0);
}

TEST(MatrixTest, MatVec) {
  Matrix a = Matrix::Identity(2);
  a.At(0, 1) = 2.0;
  const Vector out = a.MatVec({3.0, 4.0});
  EXPECT_DOUBLE_EQ(out[0], 11.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = Matrix::Identity(2);
  Matrix b = Matrix::Identity(2);
  b.At(1, 0) = 0.5;
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, b), 0.5);
}

Matrix SpdExample() {
  // A = [[4, 2, 0.6], [2, 5, 1], [0.6, 1, 3]] is diagonally dominant ->
  // positive definite.
  Matrix a(3, 3);
  a.At(0, 0) = 4.0;
  a.At(0, 1) = 2.0;
  a.At(0, 2) = 0.6;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 5.0;
  a.At(1, 2) = 1.0;
  a.At(2, 0) = 0.6;
  a.At(2, 1) = 1.0;
  a.At(2, 2) = 3.0;
  return a;
}

TEST(CholeskyTest, FactorReconstructs) {
  const Matrix a = SpdExample();
  Matrix lower;
  ASSERT_TRUE(CholeskyFactor(a, &lower));
  // L * L^T == A.
  Matrix lt(3, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) lt.At(i, j) = lower.At(j, i);
  }
  const Matrix product = lower * lt;
  EXPECT_LT(Matrix::MaxAbsDiff(product, a), 1e-12);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  const Matrix a = SpdExample();
  const Vector x_true{1.0, -2.0, 3.0};
  const Vector b = a.MatVec(x_true);
  Vector x;
  ASSERT_TRUE(SolveSpd(a, b, &x));
  EXPECT_LT(NormDiff(x, x_true), 1e-10);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a = Matrix::Identity(2);
  a.At(1, 1) = -1.0;
  Matrix lower;
  EXPECT_FALSE(CholeskyFactor(a, &lower));
}

TEST(CholeskyTest, RejectsSingularMatrix) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 1.0;  // rank 1
  Matrix lower;
  EXPECT_FALSE(CholeskyFactor(a, &lower));
}

TEST(CholeskyTest, IdentitySolveIsIdentityMap) {
  Vector x;
  ASSERT_TRUE(SolveSpd(Matrix::Identity(4), {1.0, 2.0, 3.0, 4.0}, &x));
  EXPECT_LT(NormDiff(x, {1.0, 2.0, 3.0, 4.0}), 1e-14);
}

TEST(VectorTest, Norms) {
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(NormDiff({1.0, 1.0}, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(NormDiff({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

}  // namespace
}  // namespace nmc::regression
