// Interprocedural-pass tests over the miniature trees in
// tools/nmc_lint/testdata/interproc/: each tree is linted end-to-end
// through LintRepo (repo_root = the tree, roots = {"src"}), so the tests
// cover file collection, symbol extraction, call-graph construction, the
// reachability walk, and the merge into per-file findings — exactly the
// production path. Findings are asserted as file:line:rule keys plus the
// load-bearing parts of the message and the codeFlows chain.
#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "nmc_lint/call_graph.h"
#include "nmc_lint/lint.h"
#include "nmc_lint/symbols.h"

namespace nmc::lint {
namespace {

const char* kFixtureRoot = NMC_LINT_FIXTURE_DIR "/interproc";

std::vector<Finding> LintTree(const std::string& tree, unsigned threads = 0) {
  RepoLintOptions options;
  options.repo_root = std::string(kFixtureRoot) + "/" + tree;
  options.roots = {"src"};
  options.threads = threads;
  return LintRepo(options);
}

std::vector<std::string> Keys(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  for (const Finding& f : findings) {
    keys.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  return keys;
}

const Finding* FindByKey(const std::vector<Finding>& findings,
                         const std::string& key) {
  for (const Finding& f : findings) {
    if (f.file + ":" + std::to_string(f.line) + ":" + f.rule == key) return &f;
  }
  return nullptr;
}

// ---- chain/: hazards three calls below a hot-path entry point ----------

TEST(NmcLintInterprocTest, PropagatesHotPathRulesAcrossTranslationUnits) {
  const std::vector<Finding> findings = LintTree("chain");
  EXPECT_EQ(Keys(findings),
            (std::vector<std::string>{
                "src/common/helpers.cc:19:NO_HEAP_IN_HOT_PATH",
                "src/common/helpers.cc:20:NO_PER_UPDATE_TRANSCENDENTALS",
            }));
}

TEST(NmcLintInterprocTest, ChainMessageNamesEveryHop) {
  const std::vector<Finding> findings = LintTree("chain");
  const Finding* heap =
      FindByKey(findings, "src/common/helpers.cc:19:NO_HEAP_IN_HOT_PATH");
  ASSERT_NE(heap, nullptr);
  // The full entry-point → hazard chain rides in the message, with the
  // definition coordinates of each hop.
  EXPECT_NE(heap->message.find(
                "[call chain: Pump::ProcessUpdate (src/core/pump.cc:18) -> "
                "Pump::StageOne (src/core/pump.cc:23) -> "
                "StageTwo (src/common/helpers.cc:13) -> "
                "StageThree (src/common/helpers.cc:18)]"),
            std::string::npos)
      << heap->message;
}

TEST(NmcLintInterprocTest, ChainFlowStartsAtEntryPointAndEndsAtHazard) {
  const std::vector<Finding> findings = LintTree("chain");
  const Finding* heap =
      FindByKey(findings, "src/common/helpers.cc:19:NO_HEAP_IN_HOT_PATH");
  ASSERT_NE(heap, nullptr);
  // Entry step + one step per call edge + the hazard line itself.
  ASSERT_EQ(heap->flow.size(), 5u);
  EXPECT_EQ(heap->flow.front().file, "src/core/pump.cc");
  EXPECT_NE(heap->flow.front().note.find("entry point"), std::string::npos);
  EXPECT_EQ(heap->flow.back().file, "src/common/helpers.cc");
  EXPECT_EQ(heap->flow.back().line, 19);
  // Interior steps are the call sites, in caller order.
  EXPECT_NE(heap->flow[1].note.find("calls"), std::string::npos);
  // Direct findings carry no flow (the fixture has none, so check on a
  // synthetic finding instead).
  EXPECT_TRUE((Finding{"f.cc", 1, "R", "m"}).flow.empty());
}

// The fixture closes a cross-TU cycle (StageTwo -> CycleBack -> StageTwo);
// completing at all proves the reachability walk terminates on cycles, and
// the chain test above proves the cycle does not distort shortest paths.

TEST(NmcLintInterprocTest, OutputIsIdenticalForEveryThreadCount) {
  const std::vector<Finding> one = LintTree("chain", 1);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(one, LintTree("chain", threads)) << threads << " threads";
  }
}

// ---- globals/: namespace-scope and static-member mutable state ---------

TEST(NmcLintInterprocTest, FlagsMutableGlobalsButNotConstOrPerObject) {
  const std::vector<Finding> findings = LintTree("globals");
  EXPECT_EQ(Keys(findings),
            (std::vector<std::string>{
                "src/common/state.cc:6:NO_MUTABLE_GLOBAL_STATE",
                "src/common/state.cc:12:NO_MUTABLE_GLOBAL_STATE",
            }));
  EXPECT_NE(findings[0].message.find("'g_mutable_counter'"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("'Box::live_count_'"), std::string::npos);
}

// ---- static_local/: mutable static on a reentrant path -----------------

TEST(NmcLintInterprocTest, FlagsStaticLocalsReachableFromAuditClasses) {
  const std::vector<Finding> findings = LintTree("static_local");
  EXPECT_EQ(Keys(findings),
            (std::vector<std::string>{
                "src/sim/net.cc:19:NO_STATIC_LOCAL_IN_REENTRANT",
            }));
  // Every Network member is a reentrancy root, so the shortest chain
  // starts at Dispatch, not Route; const and thread_local statics in the
  // same body are not findings.
  EXPECT_NE(findings[0].message.find(
                "[call chain: Network::Dispatch (src/sim/net.cc:16) -> "
                "CountCall (src/sim/net.cc:18)]"),
            std::string::npos)
      << findings[0].message;
  EXPECT_FALSE(findings[0].flow.empty());
}

// ---- thread_compat/: contract edges and annotation grammar -------------

TEST(NmcLintInterprocTest, EnforcesReentrantContractsAndGrammar) {
  const std::vector<Finding> findings = LintTree("thread_compat");
  EXPECT_EQ(Keys(findings),
            (std::vector<std::string>{
                "src/common/workers.cc:17:THREAD_COMPAT",
                "src/common/workers.cc:18:THREAD_COMPAT",
                "src/common/workers.cc:27:THREAD_COMPAT",
                "src/common/workers.cc:30:THREAD_COMPAT",
                "src/common/workers.cc:33:THREAD_COMPAT",
            }));
  // Call-edge findings name both sides of the broken contract.
  EXPECT_NE(findings[0].message.find("unannotated Unmarked()"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("not-thread-safe Hostile()"),
            std::string::npos);
  // Grammar findings: missing reason, unknown verb, unattached marker.
  EXPECT_NE(findings[2].message.find("no reason"), std::string::npos);
  EXPECT_NE(findings[3].message.find("'frobnicates'"), std::string::npos);
  EXPECT_NE(findings[4].message.find("attaches to no function"),
            std::string::npos);
}

TEST(NmcLintInterprocTest, ThreadCompatIsNeverBaselinable) {
  Baseline baseline;
  baseline.entries.insert({"src/common/workers.cc", "THREAD_COMPAT"});
  const std::vector<Finding> findings = LintTree("thread_compat");
  for (const Finding& f : findings) {
    EXPECT_FALSE(IsBaselined(baseline, f)) << f.file << ":" << f.line;
  }
}

// ---- call-graph surface used by the CI artifact ------------------------

TEST(NmcLintInterprocTest, DotExportNamesNodesAndContracts) {
  FileSymbols workers = BuildFileSymbols(
      "src/common/workers.cc",
      "namespace fix {\n"
      "// nmc: reentrant\n"
      "int Safe(int x) { return x; }\n"
      "// nmc: not-thread-safe(test)\n"
      "int Hostile(int x) { return Safe(x); }\n"
      "}\n");
  const CallGraph graph = CallGraph::Build({&workers});
  const std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("[reentrant]"), std::string::npos);
  EXPECT_NE(dot.find("[not-thread-safe]"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace nmc::lint
