// Tests for the library's extensions beyond the paper's literal algorithm:
// the horizon-free doubling wrapper, variance-adaptive sampling, and the
// deterministic HYZ variant.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/horizon_free.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"
#include "streams/permutation.h"
#include "test_util.h"

namespace nmc {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

using nmc::testing::DefaultOptions;

// ---------------------------------------------------------------------------
// HorizonFreeCounter
// ---------------------------------------------------------------------------

sim::TrackingResult RunHorizonFree(const std::vector<double>& stream, int k,
                                   double epsilon, uint64_t seed,
                                   core::HorizonFreeCounter* out_counter_state
                                   [[maybe_unused]] = nullptr) {
  core::HorizonFreeOptions options;
  options.counter.epsilon = epsilon;
  options.counter.seed = seed;
  core::HorizonFreeCounter counter(k, options);
  sim::RoundRobinAssignment psi(k);
  sim::TrackingOptions tracking;
  tracking.epsilon = epsilon;
  return sim::RunTracking(stream, &psi, &counter, tracking);
}

TEST(HorizonFreeTest, TracksWithoutKnowingN) {
  const int64_t n = 100000;  // not a power of the growth factor
  const auto stream = streams::BernoulliStream(n, 0.0, 1);
  for (int k : {1, 4}) {
    const auto result = RunHorizonFree(stream, k, 0.1, 2);
    EXPECT_EQ(result.violation_steps, 0) << "k=" << k;
    EXPECT_NEAR(result.final_estimate, result.final_sum,
                0.1 * std::fabs(result.final_sum) + 1e-9);
  }
}

TEST(HorizonFreeTest, EpochsGrowGeometrically) {
  const int64_t n = 1 << 17;
  const auto stream = streams::BernoulliStream(n, 0.0, 3);
  core::HorizonFreeOptions options;
  options.counter.epsilon = 0.2;
  options.counter.seed = 4;
  options.initial_horizon = 1024;
  options.growth_factor = 4;
  core::HorizonFreeCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.2;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  // 1024 * 4^e >= 2^17 -> e = 4 restarts; horizon now covers the stream.
  EXPECT_EQ(counter.epochs(), 4);
  EXPECT_GE(counter.current_horizon(), n);
}

TEST(HorizonFreeTest, EstimateContinuousAcrossRestarts) {
  // The estimate must not jump at a restart boundary: feed a monotone-ish
  // stream and check the estimate right before/after the first restart.
  core::HorizonFreeOptions options;
  options.counter.epsilon = 0.1;
  options.counter.seed = 5;
  options.initial_horizon = 256;
  core::HorizonFreeCounter counter(2, options);
  double sum = 0.0;
  common::Rng rng = MakeRng(6);
  for (int64_t t = 0; t < 1000; ++t) {
    const double v = rng.Sign(0.7);
    counter.ProcessUpdate(static_cast<int>(t % 2), v);
    sum += v;
    ASSERT_NEAR(counter.Estimate(), sum, 0.1 * std::fabs(sum) + 1e-9)
        << "t=" << t;
  }
  EXPECT_GE(counter.epochs(), 1);
}

TEST(HorizonFreeTest, CostComparableToKnownHorizon) {
  const int64_t n = 1 << 17;
  const auto stream = streams::RandomlyPermuted(
      streams::SignMultiset(n, 0.5), 7);
  const auto hf = RunHorizonFree(stream, 1, 0.25, 8);
  const auto known =
      nmc::testing::RunCounter(stream, 1, DefaultOptions(n, 0.25, 8));
  EXPECT_EQ(hf.violation_steps, 0);
  EXPECT_EQ(known.violation_steps, 0);
  // The doubling trick costs a constant factor, not an order of magnitude.
  EXPECT_LT(hf.messages, 4 * known.messages + 1000);
}

TEST(HorizonFreeDeathTest, RejectsDriftMode) {
  core::HorizonFreeOptions options;
  options.counter.drift_mode = core::DriftMode::kUnknownUnitDrift;
  EXPECT_DEATH(core::HorizonFreeCounter(2, options), "NMC_CHECK");
}

// ---------------------------------------------------------------------------
// ForceSync
// ---------------------------------------------------------------------------

TEST(ForceSyncTest, MakesCoordinatorExactInSbcStage) {
  const int64_t n = 4096;
  core::CounterOptions options = DefaultOptions(n, 0.25, 9);
  core::NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  // Drive |S| up so the counter enters SBC (estimate goes stale).
  double sum = 0.0;
  common::Rng rng = MakeRng(10);
  for (int64_t t = 0; t < n; ++t) {
    const double v = rng.Sign(0.9);
    counter.ProcessUpdate(psi.NextSite(t, v), v);
    sum += v;
  }
  ASSERT_TRUE(counter.diagnostics().in_sbc_stage);
  counter.ForceSync();
  EXPECT_DOUBLE_EQ(counter.Estimate(), sum);
  EXPECT_EQ(counter.SyncedUpdates(), n);
}

TEST(ForceSyncTest, FreeInStraightStage) {
  core::CounterOptions options = DefaultOptions(1000, 0.1, 11);
  core::NonMonotonicCounter counter(4, options);
  counter.ProcessUpdate(0, 1.0);
  counter.ProcessUpdate(1, -1.0);
  const int64_t before = counter.stats().total();
  counter.ForceSync();  // StraightSync keeps the coordinator exact already
  EXPECT_EQ(counter.stats().total(), before);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 0.0);
}

// ---------------------------------------------------------------------------
// Variance-adaptive sampling
// ---------------------------------------------------------------------------

TEST(VarianceAdaptiveTest, NoEffectOnUnitStreams) {
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.0, 13);
  core::CounterOptions plain = DefaultOptions(n, 0.1, 14);
  core::CounterOptions adaptive = plain;
  adaptive.variance_adaptive = true;
  const auto r_plain = nmc::testing::RunCounter(stream, 2, plain);
  const auto r_adaptive = nmc::testing::RunCounter(stream, 2, adaptive);
  EXPECT_EQ(r_plain.violation_steps, 0);
  EXPECT_EQ(r_adaptive.violation_steps, 0);
  // Mean square is 1, the 2x margin clamps to 1: identical behavior.
  EXPECT_EQ(r_plain.messages, r_adaptive.messages);
}

TEST(VarianceAdaptiveTest, RestoresSublinearityOnSmallValues) {
  // The E4 finding: a permuted multiset of tiny ±0.05 values pins the
  // unscaled law at rate ~1 (Theta(n) cost); the adaptive law prices the
  // slower diffusion correctly.
  const int64_t n = 1 << 16;
  std::vector<double> multiset(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    multiset[static_cast<size_t>(i)] = (i % 2 == 0) ? 0.05 : -0.05;
  }
  const auto stream = streams::RandomlyPermuted(multiset, 15);
  core::CounterOptions plain = DefaultOptions(n, 0.25, 16);
  core::CounterOptions adaptive = plain;
  adaptive.variance_adaptive = true;
  const auto r_plain = nmc::testing::RunCounter(stream, 1, plain);
  const auto r_adaptive = nmc::testing::RunCounter(stream, 1, adaptive);
  EXPECT_EQ(r_plain.violation_steps, 0);
  EXPECT_EQ(r_adaptive.violation_steps, 0);
  // The plain law is pinned at 1 msg/update; the adaptive law prices the
  // 400x-slower diffusion and escapes the rate-1 band (the 2x safety
  // margin in the scale keeps the savings below the ideal factor).
  EXPECT_EQ(r_plain.messages, n);
  EXPECT_LT(static_cast<double>(r_adaptive.messages),
            0.6 * static_cast<double>(r_plain.messages));
}

TEST(VarianceAdaptiveTest, CorrectAcrossScales) {
  const int64_t n = 1 << 14;
  for (double scale : {1.0, 0.3, 0.05}) {
    std::vector<double> multiset(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      multiset[static_cast<size_t>(i)] = (i % 2 == 0) ? scale : -scale;
    }
    const auto stream = streams::RandomlyPermuted(multiset, 17);
    core::CounterOptions options = DefaultOptions(n, 0.1, 18);
    options.variance_adaptive = true;
    for (int k : {1, 4}) {
      const auto result = nmc::testing::RunCounter(stream, k, options);
      EXPECT_EQ(result.violation_steps, 0)
          << "scale=" << scale << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic HYZ
// ---------------------------------------------------------------------------

hyz::HyzOptions DeterministicOptions(double epsilon, uint64_t seed) {
  hyz::HyzOptions options;
  options.mode = hyz::HyzMode::kDeterministic;
  options.epsilon = epsilon;
  options.seed = seed;
  return options;
}

TEST(HyzDeterministicTest, NeverViolates) {
  // The deterministic residual bound is a certainty, not a probability:
  // zero violations for every k and seed.
  const int64_t n = 30000;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);
  for (int k : {1, 4, 16}) {
    hyz::HyzProtocol counter(k, DeterministicOptions(0.1, 19));
    sim::RoundRobinAssignment psi(k);
    sim::TrackingOptions tracking;
    tracking.epsilon = 0.1;
    const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
    EXPECT_EQ(result.violation_steps, 0) << "k=" << k;
  }
}

TEST(HyzDeterministicTest, EstimateNeverOvershoots) {
  // Residuals are one-sided: the estimate can lag but never exceed the
  // true count.
  hyz::HyzProtocol counter(4, DeterministicOptions(0.2, 21));
  sim::RoundRobinAssignment psi(4);
  for (int64_t t = 0; t < 20000; ++t) {
    counter.ProcessUpdate(psi.NextSite(t, 1.0), 1.0);
    ASSERT_LE(counter.Estimate(), static_cast<double>(t + 1) + 1e-9);
  }
}

TEST(HyzDeterministicTest, CheaperThanSampledAtSmallK) {
  // Per round: deterministic ~2k/eps vs sampled ~(sqrt(kL)+L)/eps with
  // L ~ 24; for k << L the deterministic variant wins.
  const int64_t n = 60000;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);
  const int k = 2;
  hyz::HyzProtocol det(k, DeterministicOptions(0.1, 23));
  hyz::HyzOptions sampled_options;
  sampled_options.epsilon = 0.1;
  sampled_options.seed = 23;
  hyz::HyzProtocol sampled(k, sampled_options);
  sim::RoundRobinAssignment psi_a(k), psi_b(k);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto r_det = sim::RunTracking(stream, &psi_a, &det, tracking);
  const auto r_sampled = sim::RunTracking(stream, &psi_b, &sampled, tracking);
  EXPECT_EQ(r_det.violation_steps, 0);
  EXPECT_EQ(r_sampled.violation_steps, 0);
  EXPECT_LT(r_det.messages, r_sampled.messages);
}

TEST(HyzDeterministicTest, Phase2AutoModePicksCheaperVariantAndTracks) {
  // At k = 4 << L ~ 25 the auto mode selects deterministic HYZ, cutting
  // Phase-2 cost without touching correctness.
  const int64_t n = 1 << 15;
  const auto stream = streams::BernoulliStream(n, 0.5, 31);
  core::CounterOptions auto_mode = DefaultOptions(n, 0.25, 32);
  auto_mode.drift_mode = core::DriftMode::kUnknownUnitDrift;
  core::CounterOptions sampled_only = auto_mode;
  sampled_only.phase2_auto_hyz_mode = false;

  auto run = [&](const core::CounterOptions& options) {
    core::NonMonotonicCounter counter(4, options);
    sim::RoundRobinAssignment psi(4);
    sim::TrackingOptions tracking;
    tracking.epsilon = 0.25;
    const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
    EXPECT_EQ(result.violation_steps, 0);
    EXPECT_TRUE(counter.diagnostics().phase2_active);
    return result.messages;
  };
  EXPECT_LT(run(auto_mode), run(sampled_only));
}

TEST(HyzDeterministicTest, WorksAsPhase2BuildingBlock) {
  // Small exactness check with an initial offset (the Phase-2 usage).
  hyz::HyzOptions options = DeterministicOptions(0.05, 25);
  options.initial_total = 1000;
  hyz::HyzProtocol counter(2, options);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 1000.0);
  for (int t = 0; t < 5000; ++t) {
    counter.ProcessUpdate(t % 2, 1.0);
    const double truth = 1000.0 + t + 1;
    ASSERT_GE(counter.Estimate(), truth * (1.0 - 0.05) - 1e-9);
    ASSERT_LE(counter.Estimate(), truth + 1e-9);
  }
}

}  // namespace
}  // namespace nmc
