#include "streams/adversarial.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmc::streams {
namespace {

TEST(AlternatingStreamTest, PrefixSumOscillatesBetweenZeroAndOne) {
  const auto stream = AlternatingStream(100);
  double sum = 0.0;
  for (size_t t = 0; t < stream.size(); ++t) {
    sum += stream[t];
    EXPECT_EQ(sum, t % 2 == 0 ? 1.0 : 0.0);
  }
}

TEST(AlternatingStreamTest, StartsPositive) {
  const auto stream = AlternatingStream(4);
  EXPECT_EQ(stream[0], 1.0);
  EXPECT_EQ(stream[1], -1.0);
}

TEST(SawtoothStreamTest, StaysWithinPeak) {
  const auto stream = SawtoothStream(1000, 20);
  double sum = 0.0;
  for (double v : stream) {
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    sum += v;
    EXPECT_LE(std::fabs(sum), 20.0);
  }
}

TEST(SawtoothStreamTest, CrossesZeroRepeatedly) {
  const auto stream = SawtoothStream(1000, 10);
  double sum = 0.0;
  int crossings = 0;
  double prev = 0.0;
  for (double v : stream) {
    sum += v;
    if ((prev > 0 && sum <= 0) || (prev < 0 && sum >= 0)) ++crossings;
    prev = sum;
  }
  EXPECT_GT(crossings, 10);
}

}  // namespace
}  // namespace nmc::streams
