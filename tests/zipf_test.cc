#include "streams/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::streams {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (int64_t i = 0; i < 100; ++i) total += zipf.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilitiesDecreasing) {
  ZipfSampler zipf(50, 1.0);
  for (int64_t i = 1; i < 50; ++i) {
    EXPECT_LE(zipf.Probability(i), zipf.Probability(i - 1) + 1e-15);
  }
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 0.1, 1e-9);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatch) {
  ZipfSampler zipf(20, 1.2);
  common::Rng rng = MakeRng(55);
  std::vector<int64_t> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int64_t item = zipf.Sample(&rng);
    ASSERT_GE(item, 0);
    ASSERT_LT(item, 20);
    ++counts[static_cast<size_t>(item)];
  }
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(i)]) / n,
                zipf.Probability(i), 0.005)
        << "item " << i;
  }
}

TEST(ZipfTest, SingletonUniverse) {
  ZipfSampler zipf(1, 2.0);
  common::Rng rng = MakeRng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0);
  EXPECT_DOUBLE_EQ(zipf.Probability(0), 1.0);
}

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  ZipfSampler zipf(1000, 2.0);
  common::Rng rng = MakeRng(77);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 3) ++head;
  }
  EXPECT_GT(static_cast<double>(head) / n, 0.8);
}

}  // namespace
}  // namespace nmc::streams
