#include "common/table.h"

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table({"n", "messages"});
  table.AddRow({"1024", "312"});
  table.AddRow({"65536", "2891"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("    n  messages\n"), std::string::npos);
  EXPECT_NE(out.find("-----  --------\n"), std::string::npos);
  EXPECT_NE(out.find(" 1024       312\n"), std::string::npos);
  EXPECT_NE(out.find("65536      2891\n"), std::string::npos);
}

TEST(TableTest, HeaderWiderThanCells) {
  Table table({"quite_long_header"});
  table.AddRow({"x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("quite_long_header\n"), std::string::npos);
  EXPECT_NE(out.find("                x\n"), std::string::npos);
}

TEST(TableTest, CountsRows) {
  Table table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"x", "y"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table table({"name"});
  table.AddRow({"has,comma"});
  table.AddRow({"has\"quote"});
  table.AddRow({"plain"});
  EXPECT_EQ(table.ToCsv(),
            "name\n\"has,comma\"\n\"has\"\"quote\"\nplain\n");
}

TEST(FormatTest, FixedPrecision) {
  EXPECT_EQ(Format(3.14159, 2), "3.14");
  EXPECT_EQ(Format(3.14159, 0), "3");
  EXPECT_EQ(Format(-0.5, 1), "-0.5");
}

TEST(FormatTest, Scientific) {
  EXPECT_EQ(FormatSci(12345.0), "1.23e+04");
  EXPECT_EQ(FormatSci(0.00123), "1.23e-03");
}

TEST(FormatTest, Integer) {
  EXPECT_EQ(Format(static_cast<int64_t>(0)), "0");
  EXPECT_EQ(Format(static_cast<int64_t>(-42)), "-42");
  EXPECT_EQ(Format(static_cast<int64_t>(1234567890123LL)), "1234567890123");
}

}  // namespace
}  // namespace nmc::common
