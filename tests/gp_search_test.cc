#include "core/gp_search.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "streams/bernoulli.h"

namespace nmc::core {
namespace {

GpSearchOptions Options(int64_t n, double epsilon0) {
  GpSearchOptions options;
  options.epsilon0 = epsilon0;
  options.horizon_n = n;
  return options;
}

// Feeds the exact running count of a Bernoulli(mu) stream to GPSearch and
// returns it after the full stream.
GpSearch RunOnStream(int64_t n, double mu, double epsilon0, uint64_t seed) {
  GpSearch gp(Options(n, epsilon0));
  const auto stream = streams::BernoulliStream(n, mu, seed);
  double sum = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    sum += stream[static_cast<size_t>(t)];
    gp.Observe(t + 1, sum);
  }
  return gp;
}

TEST(GpSearchTest, ResolvesPositiveDriftAccurately) {
  for (double mu : {0.2, 0.5, 1.0}) {
    const auto gp = RunOnStream(1 << 16, mu, 0.25, 42);
    ASSERT_TRUE(gp.resolved()) << "mu=" << mu;
    EXPECT_NEAR(gp.mu_hat(), mu, 0.25 * mu + 0.02) << "mu=" << mu;
  }
}

TEST(GpSearchTest, ResolvesNegativeDrift) {
  const auto gp = RunOnStream(1 << 16, -0.5, 0.25, 43);
  ASSERT_TRUE(gp.resolved());
  EXPECT_NEAR(gp.mu_hat(), -0.5, 0.15);
}

TEST(GpSearchTest, DoesNotResolveZeroDrift) {
  // For mu = 0 the count stays near sqrt(t) << Hoeffding width; across
  // many seeds it must never (falsely) report.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto gp = RunOnStream(1 << 14, 0.0, 0.25, 100 + seed);
    EXPECT_FALSE(gp.resolved()) << "seed=" << seed;
  }
}

TEST(GpSearchTest, ResolutionTimeScalesAsInverseMuSquared) {
  // t* ~ log(n)/ (mu eps0)^2: halving mu should roughly quadruple t*.
  const auto gp_fast = RunOnStream(1 << 18, 0.8, 0.25, 7);
  const auto gp_slow = RunOnStream(1 << 18, 0.2, 0.25, 7);
  ASSERT_TRUE(gp_fast.resolved());
  ASSERT_TRUE(gp_slow.resolved());
  const double ratio = static_cast<double>(gp_slow.resolution_time()) /
                       static_cast<double>(gp_fast.resolution_time());
  // Expect ~16x; allow a broad band for the geometric checkpoint grid.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 80.0);
}

TEST(GpSearchTest, ResolutionBeforeTheoreticalDeadline) {
  const double mu = 0.5, eps0 = 0.25;
  const int64_t n = 1 << 18;
  const auto gp = RunOnStream(n, mu, eps0, 11);
  ASSERT_TRUE(gp.resolved());
  // Theta(log n / (mu eps0)^2) with a generous constant.
  const double deadline =
      64.0 * std::log(static_cast<double>(n)) / ((mu * eps0) * (mu * eps0));
  EXPECT_LT(static_cast<double>(gp.resolution_time()), deadline);
}

TEST(GpSearchTest, ObservationEpsilonDelaysResolution) {
  GpSearchOptions exact = Options(1 << 16, 0.25);
  GpSearchOptions noisy = exact;
  noisy.observation_epsilon = 0.5;
  GpSearch gp_exact(exact);
  GpSearch gp_noisy(noisy);
  // Deterministic drift-1 counts.
  for (int64_t t = 1; t <= (1 << 14); ++t) {
    gp_exact.Observe(t, static_cast<double>(t));
    gp_noisy.Observe(t, static_cast<double>(t));
  }
  ASSERT_TRUE(gp_exact.resolved());
  ASSERT_TRUE(gp_noisy.resolved());
  EXPECT_LE(gp_exact.resolution_time(), gp_noisy.resolution_time());
}

TEST(GpSearchTest, GeometricCheckpointsSkipIntermediateTimes) {
  GpSearchOptions options = Options(1 << 16, 0.25);
  GpSearch gp(options);
  // A huge count at a non-checkpoint time right after a checkpoint must
  // wait for the next power of two.
  gp.Observe(4, 4.0);     // checkpoint, not yet confident
  gp.Observe(5, 1e9);     // between checkpoints: ignored
  EXPECT_FALSE(gp.resolved());
  gp.Observe(8, 8.0e9);   // next checkpoint: evaluated
  EXPECT_TRUE(gp.resolved());
}

TEST(GpSearchTest, ContinuousCheckpointsEvaluateEveryObservation) {
  GpSearchOptions options = Options(1 << 16, 0.25);
  options.geometric_checkpoints = false;
  GpSearch gp(options);
  gp.Observe(4, 4.0);
  gp.Observe(5, 1e9);
  EXPECT_TRUE(gp.resolved());
}

TEST(GpSearchTest, NoOpAfterResolution) {
  GpSearch gp(Options(1 << 10, 0.25));
  gp.Observe(1024, 1e12);
  ASSERT_TRUE(gp.resolved());
  const double mu = gp.mu_hat();
  gp.Observe(2048, 0.0);  // would contradict; must be ignored
  EXPECT_TRUE(gp.resolved());
  EXPECT_DOUBLE_EQ(gp.mu_hat(), mu);
}

}  // namespace
}  // namespace nmc::core
