#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"
#include "streams/permutation.h"
#include "test_util.h"

namespace nmc::core {
namespace {

using nmc::testing::DefaultOptions;

std::vector<double> MakeStream(const std::string& model, int64_t n,
                               uint64_t seed) {
  if (model == "iid_zero") return streams::BernoulliStream(n, 0.0, seed);
  if (model == "iid_drift") return streams::BernoulliStream(n, 0.3, seed);
  if (model == "perm_balanced") {
    return streams::RandomlyPermuted(streams::SignMultiset(n, 0.5), seed);
  }
  if (model == "perm_oscillating") {
    return streams::RandomlyPermuted(streams::OscillatingMultiset(n), seed);
  }
  ADD_FAILURE() << "unknown model " << model;
  return {};
}

// (model, k, epsilon, seed).
using TrackingParam = std::tuple<std::string, int, double, uint64_t>;

class TrackingInvariantTest : public ::testing::TestWithParam<TrackingParam> {
};

// The central property of the paper: the tracking guarantee holds at every
// step, for every input model, site count, accuracy, and seed — while the
// communication stays within the trivial per-update bound.
TEST_P(TrackingInvariantTest, HoldsEverywhere) {
  const auto& [model, k, epsilon, seed] = GetParam();
  const int64_t n = 4096;
  const auto stream = MakeStream(model, n, seed);
  CounterOptions options = DefaultOptions(n, epsilon, seed + 1000);
  NonMonotonicCounter counter(k, options);
  sim::RoundRobinAssignment psi(k);
  sim::TrackingOptions tracking;
  tracking.epsilon = epsilon;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);

  EXPECT_EQ(result.violation_steps, 0)
      << "model=" << model << " k=" << k << " eps=" << epsilon
      << " seed=" << seed;
  EXPECT_LE(result.max_rel_error, epsilon + 1e-9);
  // Never more expensive than a full SBC sync plus a straight exchange per
  // update.
  EXPECT_LE(result.messages, (3 * static_cast<int64_t>(k) + 3) * n);
  EXPECT_NEAR(result.final_estimate, result.final_sum,
              epsilon * std::fabs(result.final_sum) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrackingInvariantTest,
    ::testing::Combine(
        ::testing::Values("iid_zero", "iid_drift", "perm_balanced",
                          "perm_oscillating"),
        ::testing::Values(1, 3, 8),
        ::testing::Values(0.05, 0.1, 0.2),
        ::testing::Values<uint64_t>(1, 2)),
    [](const ::testing::TestParamInfo<TrackingParam>& param_info) {
      return std::get<0>(param_info.param) + "_k" +
             std::to_string(std::get<1>(param_info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 100)) +
             "_s" + std::to_string(std::get<3>(param_info.param));
    });

// (policy, k).
using PolicyParam = std::tuple<std::string, int>;

class AssignmentInvariantTest : public ::testing::TestWithParam<PolicyParam> {
};

// The adversary's partition psi must not affect correctness (the paper's
// model lets psi be adaptive; the guarantee is over the protocol's coins).
TEST_P(AssignmentInvariantTest, TrackingHoldsUnderAllPolicies) {
  const auto& [policy, k] = GetParam();
  const int64_t n = 4096;
  const auto stream = streams::RandomlyPermuted(streams::SignMultiset(n, 0.6),
                                                /*seed=*/77);
  CounterOptions options = DefaultOptions(n, 0.1, 88);
  NonMonotonicCounter counter(k, options);
  auto psi = sim::MakeAssignment(policy, k, 99);
  ASSERT_NE(psi, nullptr);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, psi.get(), &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0) << policy << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AssignmentInvariantTest,
    ::testing::Combine(::testing::Values("round_robin", "random", "single",
                                         "block", "sign_split"),
                       ::testing::Values(2, 5)),
    [](const ::testing::TestParamInfo<PolicyParam>& param_info) {
      return std::get<0>(param_info.param) + "_k" +
             std::to_string(std::get<1>(param_info.param));
    });

// Drift-mode property sweep: Phase 2 must engage for every constant drift
// and the estimate must stay correct through and after the switch.
class DriftSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DriftSweepTest, PhaseTwoEngagesAndTracks) {
  const double mu = GetParam();
  const int64_t n = 1 << 15;
  const auto stream = streams::BernoulliStream(n, mu, 7);
  CounterOptions options = DefaultOptions(n, 0.1, 8);
  options.drift_mode = DriftMode::kUnknownUnitDrift;
  NonMonotonicCounter counter(4, options);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0) << "mu=" << mu;
  const auto diag = counter.diagnostics();
  EXPECT_TRUE(diag.phase2_active) << "mu=" << mu;
  EXPECT_NEAR(diag.mu_hat, mu, 0.3 * std::fabs(mu) + 0.02) << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(Drifts, DriftSweepTest,
                         ::testing::Values(-1.0, -0.7, -0.4, 0.4, 0.7, 1.0),
                         [](const ::testing::TestParamInfo<double>& param_info) {
                           const int code =
                               static_cast<int>(std::lround(param_info.param * 10));
                           return std::string(code < 0 ? "neg" : "pos") +
                                  std::to_string(std::abs(code));
                         });

}  // namespace
}  // namespace nmc::core
