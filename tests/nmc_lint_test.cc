// Fixture tests for tools/nmc_lint: every rule must (a) fire on the seeded
// violations at exactly the expected line, and (b) stay silent on the
// documented near-misses sharing the file. Expectations are embedded in
// the fixtures themselves as `EXPECT: RULE` (this line) and
// `EXPECT-NEXT: RULE` (next line) markers, so the fixture and its
// assertions cannot drift apart.
#include <algorithm>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "nmc_lint/lint.h"

namespace nmc {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(NMC_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

using LineRule = std::pair<int, std::string>;

/// Extracts (line, rule) expectations from EXPECT / EXPECT-NEXT markers.
std::vector<LineRule> ParseExpectations(const std::string& content) {
  static const std::regex kMarker(R"(EXPECT(-NEXT)?:\s*([A-Z_]+(?:\s*,\s*[A-Z_]+)*))");
  std::vector<LineRule> expected;
  std::istringstream lines(content);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::smatch match;
    if (!std::regex_search(line, match, kMarker)) continue;
    const int target = match[1].matched ? line_number + 1 : line_number;
    std::stringstream rule_list(match[2].str());
    std::string rule;
    while (std::getline(rule_list, rule, ',')) {
      const size_t begin = rule.find_first_not_of(" \t");
      const size_t end = rule.find_last_not_of(" \t");
      expected.emplace_back(target, rule.substr(begin, end - begin + 1));
    }
  }
  std::sort(expected.begin(), expected.end());
  return expected;
}

std::vector<LineRule> Actual(const std::vector<lint::Finding>& findings) {
  std::vector<LineRule> actual;
  for (const lint::Finding& finding : findings) {
    EXPECT_FALSE(finding.message.empty())
        << finding.rule << " finding carries no message";
    actual.emplace_back(finding.line, finding.rule);
  }
  std::sort(actual.begin(), actual.end());
  return actual;
}

std::string Describe(const std::vector<LineRule>& pairs) {
  std::string out;
  for (const auto& [line, rule] : pairs) {
    out += "  line " + std::to_string(line) + ": " + rule + "\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

/// Lints `fixture` as if it lived at `pretend_path` and requires the
/// findings to match the fixture's embedded EXPECT markers exactly.
void CheckFixture(const std::string& fixture,
                  const std::string& pretend_path) {
  const std::string content = ReadFixture(fixture);
  const std::vector<LineRule> expected = ParseExpectations(content);
  const std::vector<LineRule> actual =
      Actual(lint::LintContent(pretend_path, content));
  EXPECT_EQ(expected, actual)
      << fixture << " as " << pretend_path << "\nexpected:\n"
      << Describe(expected) << "actual:\n"
      << Describe(actual);
}

TEST(NmcLintTest, NoUnseededRng) {
  CheckFixture("no_unseeded_rng.cc", "src/core/fixture.cc");
}

TEST(NmcLintTest, NoWallclockInSim) {
  CheckFixture("no_wallclock_in_sim.cc", "src/sim/fixture.cc");
}

TEST(NmcLintTest, WallclockAllowedInBenchLayer) {
  // The same file at src/bench/ is entirely legal: that layer owns timing.
  const std::string content = ReadFixture("no_wallclock_in_sim.cc");
  const auto findings = lint::LintContent("src/bench/fixture.cc", content);
  EXPECT_TRUE(findings.empty()) << Describe(Actual(findings));
}

TEST(NmcLintTest, NoUnorderedIterationInProtocol) {
  CheckFixture("no_unordered_iteration.cc", "src/hyz/fixture.cc");
}

TEST(NmcLintTest, UnorderedIterationAllowedOutsideProtocolDirs) {
  // src/common is not protocol code — iteration order there cannot reach a
  // message schedule, so the same content is clean.
  const std::string content = ReadFixture("no_unordered_iteration.cc");
  const auto findings = lint::LintContent("src/common/fixture.cc", content);
  EXPECT_TRUE(findings.empty()) << Describe(Actual(findings));
}

TEST(NmcLintTest, NoMapInHotPath) {
  CheckFixture("no_map_in_hot_path.cc", "src/sim/fixture.cc");
}

TEST(NmcLintTest, NoIostreamInLib) {
  CheckFixture("no_iostream_in_lib.cc", "src/core/fixture.cc");
}

TEST(NmcLintTest, IncludeHygiene) {
  CheckFixture("include_hygiene.cc", "src/streams/fixture.cc");
}

TEST(NmcLintTest, MissingPragmaOnce) {
  CheckFixture("missing_pragma_once.h", "src/sim/missing_pragma_once.h");
}

TEST(NmcLintTest, CompliantHeaderIsSilent) {
  CheckFixture("pragma_once_ok.h", "src/sim/pragma_once_ok.h");
}

TEST(NmcLintTest, AllowAnnotationHygiene) {
  CheckFixture("allow_annotations.cc", "src/core/fixture.cc");
}

TEST(NmcLintTest, RawStringLiteralsAreInvisible) {
  // Regression for the pre-lexer scanner, which closed R"x(...)x" at the
  // first ')"' and mis-counted lines across multi-line raw strings.
  CheckFixture("raw_string_literals.cc", "src/sim/fixture.cc");
}

TEST(NmcLintTest, RngSeedProvenance) {
  CheckFixture("rng_provenance.cc", "src/core/fixture.cc");
}

TEST(NmcLintTest, RngFactoryFileIsExemptFromProvenance) {
  // src/common/rng.{h,cc} implement the factory the rule points at; engine
  // constructions there are the one sanctioned spelling. The banned-source
  // half (random_device etc.) still applies — the fixture has none.
  const std::string content = ReadFixture("rng_provenance.cc");
  for (const lint::Finding& finding :
       lint::LintContent("src/common/rng.cc", content)) {
    EXPECT_EQ(finding.rule, "ALLOW_UNUSED") << lint::FormatFinding(finding);
  }
}

TEST(NmcLintTest, NoPerUpdateTranscendentals) {
  CheckFixture("no_per_update_transcendentals.cc", "src/core/fixture.cc");
}

TEST(NmcLintTest, PerUpdateTranscendentalsScopedToProtocolCode) {
  // src/streams is not protocol code — nothing there runs once per update
  // through the pump's entry points. The fixture's allow annotation then
  // correctly surfaces as stale.
  const std::string content = ReadFixture("no_per_update_transcendentals.cc");
  for (const lint::Finding& finding :
       lint::LintContent("src/streams/fixture.cc", content)) {
    EXPECT_EQ(finding.rule, "ALLOW_UNUSED") << lint::FormatFinding(finding);
  }
}

TEST(NmcLintTest, NoHeapInHotPath) {
  CheckFixture("no_heap_in_hot_path.cc", "src/sim/fixture.cc");
}

TEST(NmcLintTest, HeapRuleScopedToProtocolCode) {
  // src/streams builds whole streams up front — per-update allocation
  // pressure cannot arise there, so the same content is clean. (The
  // fixture's allow annotation then correctly surfaces as stale.)
  const std::string content = ReadFixture("no_heap_in_hot_path.cc");
  for (const lint::Finding& finding :
       lint::LintContent("src/streams/fixture.cc", content)) {
    EXPECT_EQ(finding.rule, "ALLOW_UNUSED") << lint::FormatFinding(finding);
  }
}

TEST(NmcLintTest, AtomicsDiscipline) {
  // Outside the modeled-concurrency scope only the ordering rules apply;
  // the EXPECT-RUNTIME markers (raw-atomic findings) are invisible to the
  // expectation parser here.
  CheckFixture("atomics_discipline.cc", "src/core/fixture.cc");
}

TEST(NmcLintTest, RawAtomicsFlaggedInModeledConcurrencyScope) {
  // At src/runtime/ the raw std::atomic / bare-fence findings join in:
  // promote the fixture's EXPECT-RUNTIME markers to EXPECT and demand an
  // exact match again.
  std::string content = ReadFixture("atomics_discipline.cc");
  const std::string from = "EXPECT-RUNTIME:";
  for (size_t pos = content.find(from); pos != std::string::npos;
       pos = content.find(from, pos)) {
    content.replace(pos, from.size(), "EXPECT:");
  }
  const std::vector<LineRule> expected = ParseExpectations(content);
  const std::vector<LineRule> actual =
      Actual(lint::LintContent("src/runtime/fixture.cc", content));
  EXPECT_EQ(expected, actual) << "expected:\n"
                              << Describe(expected) << "actual:\n"
                              << Describe(actual);
}

TEST(NmcLintTest, RawAtomicsAllowedOutsideRuntime) {
  // src/common at large (the shim itself, simd dispatch) may spell
  // std::atomic — only the modeled files and src/runtime/ are restricted.
  const std::string content = ReadFixture("atomics_discipline.cc");
  for (const lint::Finding& finding :
       lint::LintContent("src/common/fixture.cc", content)) {
    EXPECT_NE(finding.rule, "NO_RAW_ATOMIC_IN_RUNTIME")
        << lint::FormatFinding(finding);
  }
}

TEST(NmcLintTest, AtomicOrderRulesScopedToLibrary) {
  // tests/ and tools/ scaffolding may use defaulted seq_cst atomics.
  const std::string content = ReadFixture("atomics_discipline.cc");
  EXPECT_TRUE(lint::LintContent("tests/fixture.cc", content).empty());
  EXPECT_TRUE(lint::LintContent("tools/fixture.cc", content).empty());
}

TEST(NmcLintTest, RngRuleAppliesToTests) {
  // tests/ joined the determinism scope when repo-mode linting was
  // extended there: an unseeded RNG in a test makes the *check* itself
  // unreproducible. The fixture lints identically under tests/ and src/.
  CheckFixture("no_unseeded_rng.cc", "tests/fixture.cc");
}

TEST(NmcLintTest, PathsOutsideRepoCodeAreIgnored) {
  const std::string content = ReadFixture("no_unseeded_rng.cc");
  EXPECT_TRUE(lint::LintContent("examples/fixture.cc", content).empty());
  EXPECT_TRUE(lint::LintContent("build/generated.cc", content).empty());
}

TEST(NmcLintTest, EveryEmittedRuleIsRegistered) {
  // The --list-rules registry and annotation validation depend on Rules()
  // covering everything LintContent can emit.
  const char* fixtures[] = {
      "no_unseeded_rng.cc",    "no_wallclock_in_sim.cc",
      "no_unordered_iteration.cc", "no_map_in_hot_path.cc",
      "no_iostream_in_lib.cc", "include_hygiene.cc",
      "missing_pragma_once.h", "allow_annotations.cc",
      "no_per_update_transcendentals.cc",
      "no_heap_in_hot_path.cc",  "atomics_discipline.cc",
  };
  std::vector<std::string> registered;
  for (const lint::RuleInfo& rule : lint::Rules()) {
    registered.push_back(rule.id);
  }
  for (const char* fixture : fixtures) {
    for (const lint::Finding& finding :
         lint::LintContent("src/sim/f.cc", ReadFixture(fixture))) {
      EXPECT_NE(std::find(registered.begin(), registered.end(), finding.rule),
                registered.end())
          << finding.rule << " is not in Rules()";
    }
  }
}

TEST(NmcLintTest, FormatFindingIsStable) {
  const lint::Finding finding{"src/sim/network.cc", 42, "NO_MAP_IN_HOT_PATH",
                              "node-based container",
                              {}};
  EXPECT_EQ(lint::FormatFinding(finding),
            "src/sim/network.cc:42: NO_MAP_IN_HOT_PATH: node-based container");
}

}  // namespace
}  // namespace nmc
