#include "streams/permutation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace nmc::streams {
namespace {

TEST(RandomlyPermutedTest, PreservesMultiset) {
  std::vector<double> values{1.0, 2.0, 2.0, -3.0, 5.0};
  auto permuted = RandomlyPermuted(values, 99);
  std::sort(values.begin(), values.end());
  std::sort(permuted.begin(), permuted.end());
  EXPECT_EQ(values, permuted);
}

TEST(RandomlyPermutedTest, ActuallyPermutes) {
  std::vector<double> values(100);
  std::iota(values.begin(), values.end(), 0.0);
  const auto permuted = RandomlyPermuted(values, 5);
  EXPECT_NE(values, permuted);
}

TEST(RandomlyPermutedTest, DeterministicInSeed) {
  std::vector<double> values(50);
  std::iota(values.begin(), values.end(), 0.0);
  EXPECT_EQ(RandomlyPermuted(values, 1), RandomlyPermuted(values, 1));
  EXPECT_NE(RandomlyPermuted(values, 1), RandomlyPermuted(values, 2));
}

TEST(SignMultisetTest, BalancedSumsToZero) {
  const auto values = SignMultiset(1000, 0.5);
  EXPECT_DOUBLE_EQ(std::accumulate(values.begin(), values.end(), 0.0), 0.0);
}

TEST(SignMultisetTest, FractionControlsSum) {
  const auto values = SignMultiset(1000, 0.7);
  // 700 positives, 300 negatives -> sum 400.
  EXPECT_DOUBLE_EQ(std::accumulate(values.begin(), values.end(), 0.0), 400.0);
}

TEST(SignMultisetTest, AllPositive) {
  for (double v : SignMultiset(100, 1.0)) EXPECT_EQ(v, 1.0);
}

TEST(OscillatingMultisetTest, BoundedByOne) {
  for (double v : OscillatingMultiset(5000)) {
    EXPECT_LE(std::fabs(v), 1.0);
  }
}

TEST(OscillatingMultisetTest, NotConstantAndFractional) {
  const auto values = OscillatingMultiset(100);
  int distinct_signs = 0;
  bool any_fractional = false;
  for (double v : values) {
    if (v > 0) distinct_signs |= 1;
    if (v < 0) distinct_signs |= 2;
    if (v != std::floor(v)) any_fractional = true;
  }
  EXPECT_EQ(distinct_signs, 3);
  EXPECT_TRUE(any_fractional);
}

TEST(SkewedMultisetTest, HeavyAndLightMix) {
  const auto values = SkewedMultiset(1000, 10, 0.01);
  int heavy = 0;
  for (double v : values) {
    const double mag = std::fabs(v);
    EXPECT_TRUE(std::fabs(mag - 1.0) < 1e-12 || std::fabs(mag - 0.01) < 1e-12);
    if (mag > 0.5) ++heavy;
  }
  EXPECT_EQ(heavy, 10);
}

TEST(BlockMultisetTest, HalfPositiveHalfNegative) {
  const auto values = BlockMultiset(10);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(values[static_cast<size_t>(i)], 1.0);
  for (int i = 5; i < 10; ++i) EXPECT_EQ(values[static_cast<size_t>(i)], -1.0);
}

TEST(MakeAdversaryMultisetTest, AllNamesBoundedAndSized) {
  for (const char* name :
       {"balanced", "biased", "oscillating", "skewed", "blocks"}) {
    const auto values = MakeAdversaryMultiset(name, 256);
    EXPECT_EQ(values.size(), 256u) << name;
    for (double v : values) {
      EXPECT_LE(std::fabs(v), 1.0) << name;
    }
  }
}

}  // namespace
}  // namespace nmc::streams
