#include "sim/network.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/message.h"
#include "sim/node.h"

namespace nmc::sim {
namespace {

// Records everything it receives; can be told to reply.
class RecordingSite : public SiteNode {
 public:
  RecordingSite(int id, Network* network) : id_(id), network_(network) {}

  void OnLocalUpdate(double value) override { updates_.push_back(value); }

  void OnCoordinatorMessage(const Message& message) override {
    received_.push_back(message);
    if (reply_on_receive_) {
      Message reply;
      reply.type = 99;
      reply.u = id_;
      network_->SendToCoordinator(id_, reply);
    }
  }

  void set_reply_on_receive(bool v) { reply_on_receive_ = v; }
  const std::vector<Message>& received() const { return received_; }

 private:
  int id_;
  Network* network_;
  bool reply_on_receive_ = false;
  std::vector<double> updates_;
  std::vector<Message> received_;
};

class RecordingCoordinator : public CoordinatorNode {
 public:
  void OnSiteMessage(int site_id, const Message& message) override {
    from_.push_back(site_id);
    received_.push_back(message);
  }

  const std::vector<int>& from() const { return from_; }
  const std::vector<Message>& received() const { return received_; }

 private:
  std::vector<int> from_;
  std::vector<Message> received_;
};

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(3);
    network_->AttachCoordinator(&coordinator_);
    for (int s = 0; s < 3; ++s) {
      sites_.push_back(std::make_unique<RecordingSite>(s, network_.get()));
      network_->AttachSite(s, sites_.back().get());
    }
  }

  std::unique_ptr<Network> network_;
  RecordingCoordinator coordinator_;
  std::vector<std::unique_ptr<RecordingSite>> sites_;
};

TEST_F(NetworkTest, UnicastToCoordinatorCostsOne) {
  Message m;
  m.type = 1;
  m.u = 77;
  network_->SendToCoordinator(2, m);
  network_->DeliverAll();
  EXPECT_EQ(network_->stats().site_to_coordinator, 1);
  EXPECT_EQ(network_->stats().coordinator_to_site, 0);
  ASSERT_EQ(coordinator_.received().size(), 1u);
  EXPECT_EQ(coordinator_.from()[0], 2);
  EXPECT_EQ(coordinator_.received()[0].u, 77);
}

TEST_F(NetworkTest, UnicastToSiteCostsOne) {
  Message m;
  m.type = 2;
  network_->SendToSite(1, m);
  network_->DeliverAll();
  EXPECT_EQ(network_->stats().coordinator_to_site, 1);
  EXPECT_EQ(sites_[1]->received().size(), 1u);
  EXPECT_EQ(sites_[0]->received().size(), 0u);
  EXPECT_EQ(sites_[2]->received().size(), 0u);
}

TEST_F(NetworkTest, BroadcastCostsK) {
  Message m;
  m.type = 3;
  network_->Broadcast(m);
  network_->DeliverAll();
  EXPECT_EQ(network_->stats().coordinator_to_site, 3);
  EXPECT_EQ(network_->stats().broadcasts, 1);
  for (const auto& site : sites_) {
    EXPECT_EQ(site->received().size(), 1u);
  }
  EXPECT_EQ(network_->total_messages(), 3);
}

TEST_F(NetworkTest, ChainedHandlersRunToQuiescence) {
  // Broadcast triggers replies from all 3 sites within one DeliverAll.
  for (auto& site : sites_) site->set_reply_on_receive(true);
  Message m;
  m.type = 4;
  network_->Broadcast(m);
  network_->DeliverAll();
  EXPECT_EQ(coordinator_.received().size(), 3u);
  EXPECT_EQ(network_->stats().site_to_coordinator, 3);
  EXPECT_EQ(network_->total_messages(), 6);
}

TEST_F(NetworkTest, DeliveryIsFifo) {
  Message a;
  a.type = 1;
  a.u = 1;
  Message b;
  b.type = 1;
  b.u = 2;
  network_->SendToCoordinator(0, a);
  network_->SendToCoordinator(1, b);
  network_->DeliverAll();
  ASSERT_EQ(coordinator_.received().size(), 2u);
  EXPECT_EQ(coordinator_.received()[0].u, 1);
  EXPECT_EQ(coordinator_.received()[1].u, 2);
}

TEST_F(NetworkTest, StatsAccumulateAcrossOperations) {
  Message m;
  network_->SendToCoordinator(0, m);
  network_->Broadcast(m);
  network_->SendToSite(0, m);
  network_->DeliverAll();
  EXPECT_EQ(network_->stats().site_to_coordinator, 1);
  EXPECT_EQ(network_->stats().coordinator_to_site, 4);
  EXPECT_EQ(network_->total_messages(), 5);
}

TEST_F(NetworkTest, TypeBreakdownTracksDirections) {
  Message report;
  report.type = 5;
  Message state;
  state.type = 9;
  network_->SendToCoordinator(0, report);
  network_->SendToCoordinator(1, report);
  network_->SendToSite(2, state);
  network_->Broadcast(state);
  network_->DeliverAll();
  const std::vector<Network::TypeCount> breakdown =
      network_->type_breakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  // The view is sorted by type, so the rows are addressable by position.
  EXPECT_EQ(breakdown[0].type, 5);
  EXPECT_EQ(breakdown[0].to_coordinator, 2);
  EXPECT_EQ(breakdown[0].to_sites, 0);
  EXPECT_EQ(breakdown[1].type, 9);
  EXPECT_EQ(breakdown[1].to_coordinator, 0);
  EXPECT_EQ(breakdown[1].to_sites, 1 + 3);  // unicast + broadcast(k=3)
}

TEST_F(NetworkTest, TypeBreakdownSumMatchesStats) {
  Message m;
  for (int i = 0; i < 5; ++i) {
    m.type = i % 2;
    network_->SendToCoordinator(i % 3, m);
    network_->Broadcast(m);
  }
  network_->DeliverAll();
  int64_t up = 0, down = 0;
  for (const Network::TypeCount& row : network_->type_breakdown()) {
    up += row.to_coordinator;
    down += row.to_sites;
  }
  EXPECT_EQ(up, network_->stats().site_to_coordinator);
  EXPECT_EQ(down, network_->stats().coordinator_to_site);
}

TEST_F(NetworkTest, NestedSendsDuringDeliveryCountedAndDeliveredOnce) {
  // Regression: a handler that sends from *within* delivery (the reply is
  // enqueued while DeliverAll is pumping) must have its message charged
  // and delivered exactly once, and the queue must be fully drained
  // afterwards so a later pump does not redeliver anything.
  sites_[1]->set_reply_on_receive(true);
  Message m;
  m.type = 4;
  network_->SendToSite(1, m);
  network_->DeliverAll();
  ASSERT_EQ(coordinator_.received().size(), 1u);
  EXPECT_EQ(coordinator_.received()[0].type, 99);
  EXPECT_EQ(coordinator_.from()[0], 1);
  EXPECT_EQ(network_->stats().site_to_coordinator, 1);
  EXPECT_EQ(network_->stats().coordinator_to_site, 1);

  // An empty re-pump must be a no-op: nothing redelivered, nothing
  // recharged.
  network_->DeliverAll();
  EXPECT_EQ(coordinator_.received().size(), 1u);
  EXPECT_EQ(sites_[1]->received().size(), 1u);
  EXPECT_EQ(network_->total_messages(), 2);
}

TEST_F(NetworkTest, ReentrantDeliverAllFromHandlerIsIgnored) {
  // A handler calling DeliverAll() re-entrantly must not double-deliver:
  // the outer pump owns the queue.
  class ReentrantCoordinator : public CoordinatorNode {
   public:
    ReentrantCoordinator(Network* network, const RecordingSite* site)
        : network_(network), site_(site) {}
    void OnSiteMessage(int, const Message& message) override {
      ++received_;
      if (message.type == 1) {
        // Send a follow-up, then try to pump from inside delivery; the
        // nested call must return immediately without delivering it.
        Message follow_up;
        follow_up.type = 2;
        network_->SendToSite(0, follow_up);
        network_->DeliverAll();
        EXPECT_TRUE(site_->received().empty());
      }
    }
    int received_ = 0;

   private:
    Network* network_;
    const RecordingSite* site_;
  };

  Network network(1);
  RecordingSite site(0, &network);
  ReentrantCoordinator coordinator(&network, &site);
  network.AttachCoordinator(&coordinator);
  network.AttachSite(0, &site);
  Message m;
  m.type = 1;
  network.SendToCoordinator(0, m);
  network.DeliverAll();
  EXPECT_EQ(coordinator.received_, 1);
  // The follow-up sent mid-delivery arrived exactly once, via the outer
  // pump, not the nested call.
  ASSERT_EQ(site.received().size(), 1u);
  EXPECT_EQ(site.received()[0].type, 2);
  EXPECT_EQ(network.total_messages(), 2);
}

TEST_F(NetworkTest, DeepNestedChainsDrainInFifoOrder) {
  // Each delivered broadcast triggers replies; interleave with fresh sends
  // to exercise queue storage reuse across pumps.
  for (auto& site : sites_) site->set_reply_on_receive(true);
  Message m;
  for (int round = 0; round < 50; ++round) {
    m.type = 4;
    network_->Broadcast(m);
    network_->DeliverAll();
  }
  // Per round: 3 broadcast deliveries + 3 replies.
  EXPECT_EQ(coordinator_.received().size(), 150u);
  EXPECT_EQ(network_->stats().site_to_coordinator, 150);
  EXPECT_EQ(network_->stats().coordinator_to_site, 150);
}

TEST(MessageStatsTest, PlusEqualsAggregates) {
  MessageStats a;
  a.site_to_coordinator = 3;
  a.coordinator_to_site = 5;
  a.broadcasts = 1;
  MessageStats b;
  b.site_to_coordinator = 10;
  b.coordinator_to_site = 20;
  b.broadcasts = 2;
  a += b;
  EXPECT_EQ(a.site_to_coordinator, 13);
  EXPECT_EQ(a.coordinator_to_site, 25);
  EXPECT_EQ(a.broadcasts, 3);
  EXPECT_EQ(a.total(), 38);
}

}  // namespace
}  // namespace nmc::sim
