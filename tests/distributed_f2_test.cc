#include "sketch/distributed_f2.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/assignment.h"
#include "common/rng.h"
#include "streams/items.h"

namespace nmc::sketch {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

DistributedF2Options Options(int64_t n) {
  DistributedF2Options options;
  options.rows = 5;
  options.cols = 128;
  options.counter_epsilon = 0.1;
  options.horizon_n = n;
  options.seed = 13;
  return options;
}

TEST(DistributedF2Test, TracksF2WithinToleranceThroughout) {
  const int64_t n = 6000;
  const int64_t universe = 64;
  const auto updates = streams::PermutedItemStream(
      streams::ZipfTurnstileStream(n, universe, 1.0, 0.2, 1), 2);
  const auto exact_prefix = streams::ExactF2Prefix(updates, universe);

  const int k = 4;
  DistributedF2Tracker tracker(k, Options(n));
  sim::RoundRobinAssignment psi(k);
  int64_t checked = 0, violations = 0;
  for (int64_t t = 0; t < n; ++t) {
    const auto& u = updates[static_cast<size_t>(t)];
    tracker.ProcessUpdate(psi.NextSite(t, u.sign), u);
    const double exact = static_cast<double>(exact_prefix[static_cast<size_t>(t)]);
    if (exact >= 100.0) {  // relative error meaningful
      ++checked;
      const double est = tracker.EstimateF2();
      // Cell-tracking error (~2*eps) plus sketch error (~sqrt(2/cols),
      // boosted by the row median). 0.45 is a loose end-to-end budget.
      if (std::fabs(est - exact) > 0.45 * exact) ++violations;
    }
  }
  EXPECT_GT(checked, n / 2);
  EXPECT_EQ(violations, 0);
}

TEST(DistributedF2Test, FinalEstimateCloseToExact) {
  const int64_t n = 8000;
  const int64_t universe = 128;
  const auto updates = streams::PermutedItemStream(
      streams::ZipfTurnstileStream(n, universe, 1.2, 0.15, 3), 4);
  const int64_t exact = streams::ExactF2(updates, universe);

  DistributedF2Tracker tracker(2, Options(n));
  sim::RoundRobinAssignment psi(2);
  for (int64_t t = 0; t < n; ++t) {
    const auto& u = updates[static_cast<size_t>(t)];
    tracker.ProcessUpdate(psi.NextSite(t, u.sign), u);
  }
  EXPECT_NEAR(tracker.EstimateF2(), static_cast<double>(exact),
              0.3 * static_cast<double>(exact));
  EXPECT_EQ(tracker.updates_processed(), n);
}

TEST(DistributedF2Test, CommunicationIsAccounted) {
  const int64_t n = 2000;
  const auto updates = streams::ZipfInsertStream(n, 32, 1.0, 5);
  DistributedF2Tracker tracker(2, Options(n));
  sim::RoundRobinAssignment psi(2);
  for (int64_t t = 0; t < n; ++t) {
    tracker.ProcessUpdate(psi.NextSite(t, 1.0),
                          updates[static_cast<size_t>(t)]);
  }
  const auto stats = tracker.stats();
  EXPECT_GT(stats.total(), 0);
  // Each update touches `rows` cell counters; the straight stage costs at
  // most 2 messages per touch, plus stage/guard sync overheads.
  EXPECT_LE(stats.total(), 5 * 2 * n + 6000);
}

TEST(DistributedF2Test, EmptyTrackerEstimatesZero) {
  DistributedF2Tracker tracker(2, Options(100));
  EXPECT_DOUBLE_EQ(tracker.EstimateF2(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.EstimateFrequency(7), 0.0);
}

TEST(DistributedF2Test, FrequencyPointQueriesTrackHeavyItems) {
  // A few heavy items among Zipf noise: their tracked frequencies must be
  // within CountSketch noise (~sqrt(F2/cols)) of the truth.
  const int64_t n = 6000;
  const int64_t universe = 128;
  auto updates = streams::ZipfTurnstileStream(n, universe, 1.0, 0.15, 21);
  const int k = 2;
  DistributedF2Tracker tracker(k, Options(n));
  sim::RoundRobinAssignment psi(k);
  std::vector<int64_t> counts(static_cast<size_t>(universe), 0);
  for (int64_t t = 0; t < n; ++t) {
    const auto& u = updates[static_cast<size_t>(t)];
    tracker.ProcessUpdate(psi.NextSite(t, u.sign), u);
    counts[static_cast<size_t>(u.item)] += u.sign;
  }
  const double f2 = static_cast<double>(streams::ExactF2(updates, universe));
  const double noise = 4.0 * std::sqrt(f2 / 128.0);  // cols = 128
  for (int64_t item = 0; item < 5; ++item) {  // Zipf head = heavy items
    const double truth = static_cast<double>(counts[static_cast<size_t>(item)]);
    EXPECT_NEAR(tracker.EstimateFrequency(item), truth,
                noise + 0.25 * truth)
        << "item " << item;
  }
}

TEST(DistributedF2Test, HeavyItemsFindsThePlantedHead) {
  // Plant three very heavy items among uniform noise; HeavyItems at a
  // threshold above the CountSketch noise must return exactly those.
  const int64_t universe = 64;
  DistributedF2Tracker tracker(2, Options(20000));
  sim::RoundRobinAssignment psi(2);
  common::Rng rng = MakeRng(31);
  int64_t t = 0;
  for (int64_t i = 0; i < 3000; ++i, ++t) {
    tracker.ProcessUpdate(psi.NextSite(t, 1),
                          streams::ItemUpdate{i % 3, 1});  // heavy: 0, 1, 2
  }
  for (int64_t i = 0; i < 2000; ++i, ++t) {  // noise: ~36 each on 3..58
    tracker.ProcessUpdate(psi.NextSite(t, 1),
                          streams::ItemUpdate{3 + rng.UniformInt(0, 55), 1});
  }
  const auto heavy = tracker.HeavyItems(universe, 500.0);
  ASSERT_EQ(heavy.size(), 3u);
  EXPECT_EQ(heavy[0], 0);
  EXPECT_EQ(heavy[1], 1);
  EXPECT_EQ(heavy[2], 2);
}

TEST(DistributedF2Test, HeavyItemsEmptyWhenThresholdTooHigh) {
  DistributedF2Tracker tracker(2, Options(1000));
  tracker.ProcessUpdate(0, streams::ItemUpdate{5, 1});
  EXPECT_TRUE(tracker.HeavyItems(64, 100.0).empty());
}

TEST(DistributedF2Test, FrequencyOfFullyDeletedItemNearZero) {
  const int64_t n = 1000;
  DistributedF2Tracker tracker(2, Options(4 * n));
  sim::RoundRobinAssignment psi(2);
  int64_t t = 0;
  // Insert item 3 n times at mixed sites, then delete all of them.
  for (int64_t i = 0; i < n; ++i, ++t) {
    tracker.ProcessUpdate(psi.NextSite(t, 1), streams::ItemUpdate{3, 1});
  }
  EXPECT_NEAR(tracker.EstimateFrequency(3), static_cast<double>(n),
              0.15 * static_cast<double>(n));
  for (int64_t i = 0; i < n; ++i, ++t) {
    tracker.ProcessUpdate(psi.NextSite(t, -1), streams::ItemUpdate{3, -1});
  }
  // Only item 3 ever touched the sketch, so its cells return to ~0 (up to
  // the cell counters' tracking slack near the end).
  EXPECT_NEAR(tracker.EstimateFrequency(3), 0.0, 5.0);
}

}  // namespace
}  // namespace nmc::sketch
