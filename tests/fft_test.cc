#include "streams/fft.h"

#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nmc::streams {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> RandomVector(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.Gaussian(), rng.Gaussian());
  return v;
}

double MaxError(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double err = 0.0;
  for (size_t i = 0; i < a.size(); ++i) err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

TEST(FftTest, MatchesNaiveDftAcrossSizes) {
  for (size_t n : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    auto data = RandomVector(n, 100 + n);
    const auto expected = NaiveDft(data);
    Fft(&data);
    EXPECT_LT(MaxError(data, expected), 1e-8) << "n=" << n;
  }
}

TEST(FftTest, InverseRoundTrip) {
  for (size_t n : {2u, 8u, 128u, 1024u}) {
    const auto original = RandomVector(n, 200 + n);
    auto data = original;
    Fft(&data);
    InverseFft(&data);
    EXPECT_LT(MaxError(data, original), 1e-9) << "n=" << n;
  }
}

TEST(FftTest, DeltaTransformsToOnes) {
  std::vector<Complex> data(8, Complex(0.0, 0.0));
  data[0] = Complex(1.0, 0.0);
  Fft(&data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantTransformsToScaledDelta) {
  std::vector<Complex> data(16, Complex(1.0, 0.0));
  Fft(&data);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-10);
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-10);
  }
}

TEST(FftTest, ParsevalHolds) {
  auto data = RandomVector(512, 7);
  double time_energy = 0.0;
  for (const auto& x : data) time_energy += std::norm(x);
  Fft(&data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 512.0, time_energy, 1e-6 * time_energy);
}

TEST(NextPowerOfTwoTest, Values) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

}  // namespace
}  // namespace nmc::streams
