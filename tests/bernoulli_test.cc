#include "streams/bernoulli.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmc::streams {
namespace {

TEST(BernoulliStreamTest, ValuesArePlusMinusOne) {
  const auto stream = BernoulliStream(1000, 0.3, 1);
  ASSERT_EQ(stream.size(), 1000u);
  for (double v : stream) EXPECT_TRUE(v == 1.0 || v == -1.0);
}

TEST(BernoulliStreamTest, EmpiricalDriftMatches) {
  for (double mu : {-0.8, -0.2, 0.0, 0.2, 0.8}) {
    const auto stream = BernoulliStream(100000, mu, 7);
    double sum = 0.0;
    for (double v : stream) sum += v;
    EXPECT_NEAR(sum / static_cast<double>(stream.size()), mu, 0.02)
        << "mu=" << mu;
  }
}

TEST(BernoulliStreamTest, ExtremeDriftsAreConstant) {
  for (double v : BernoulliStream(100, 1.0, 3)) EXPECT_EQ(v, 1.0);
  for (double v : BernoulliStream(100, -1.0, 3)) EXPECT_EQ(v, -1.0);
}

TEST(BernoulliStreamTest, DeterministicInSeed) {
  EXPECT_EQ(BernoulliStream(500, 0.1, 42), BernoulliStream(500, 0.1, 42));
  EXPECT_NE(BernoulliStream(500, 0.1, 42), BernoulliStream(500, 0.1, 43));
}

TEST(BernoulliStreamTest, EmptyStream) {
  EXPECT_TRUE(BernoulliStream(0, 0.0, 1).empty());
}

TEST(FractionalIidStreamTest, BoundedByOne) {
  const auto stream = FractionalIidStream(10000, 0.5, 1.0, 11);
  for (double v : stream) {
    EXPECT_LE(std::fabs(v), 1.0);
  }
}

TEST(FractionalIidStreamTest, MeanMatchesDrift) {
  const auto stream = FractionalIidStream(200000, 0.3, 0.5, 13);
  double sum = 0.0;
  for (double v : stream) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(stream.size()), 0.3, 0.01);
}

TEST(FractionalIidStreamTest, AmplitudeClampedNearDriftBound) {
  // mu = 0.9 leaves amplitude at most 0.1 even if 0.8 was requested.
  const auto stream = FractionalIidStream(10000, 0.9, 0.8, 17);
  for (double v : stream) {
    EXPECT_GE(v, 0.8 - 1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(FractionalIidStreamTest, ValuesAreActuallyFractional) {
  const auto stream = FractionalIidStream(100, 0.0, 0.5, 19);
  int non_integral = 0;
  for (double v : stream) {
    if (v != std::floor(v)) ++non_integral;
  }
  EXPECT_GT(non_integral, 90);
}

}  // namespace
}  // namespace nmc::streams
