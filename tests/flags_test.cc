#include "common/flags.h"

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

Flags ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  Flags flags;
  const Status status =
      Flags::Parse(static_cast<int>(argv.size()), argv.data(), &flags);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return flags;
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  const Flags flags = ParseOk({"--n=1024", "--eps=0.25", "--model=iid"});
  EXPECT_EQ(flags.GetInt("n", 0), 1024);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("model", ""), "iid");
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags flags = ParseOk({"--csv"});
  EXPECT_TRUE(flags.Has("csv"));
  EXPECT_TRUE(flags.GetBool("csv", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = ParseOk({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.5), 0.5);
  EXPECT_EQ(flags.GetString("model", "iid"), "iid");
  EXPECT_FALSE(flags.GetBool("csv", false));
  EXPECT_FALSE(flags.Has("n"));
}

TEST(FlagsTest, BoolAcceptsNumericForms) {
  const Flags flags = ParseOk({"--a=1", "--b=0", "--c=true", "--d=false"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagsTest, NegativeNumbers) {
  const Flags flags = ParseOk({"--x=-42", "--y=-0.5"});
  EXPECT_EQ(flags.GetInt("x", 0), -42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("y", 0.0), -0.5);
}

TEST(FlagsTest, MalformedNumericRecorded) {
  const Flags flags = ParseOk({"--n=abc", "--eps=1.2.3", "--b=maybe"});
  EXPECT_EQ(flags.GetInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.1), 0.1);
  EXPECT_FALSE(flags.GetBool("b", false));
  EXPECT_EQ(flags.Malformed().size(), 3u);
}

TEST(FlagsTest, RejectsNonFlagTokens) {
  const char* argv[] = {"prog", "positional"};
  Flags flags;
  EXPECT_FALSE(Flags::Parse(2, argv, &flags).ok());
}

TEST(FlagsTest, RejectsEmptyKey) {
  const char* argv[] = {"prog", "--=5"};
  Flags flags;
  EXPECT_FALSE(Flags::Parse(2, argv, &flags).ok());
}

TEST(FlagsTest, UnusedKeysDetectTypos) {
  const Flags flags = ParseOk({"--n=10", "--typo=3"});
  (void)flags.GetInt("n", 0);
  const auto unused = flags.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, LastValueWins) {
  const Flags flags = ParseOk({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

TEST(FlagsTest, ValueMayContainEquals) {
  const Flags flags = ParseOk({"--expr=a=b"});
  EXPECT_EQ(flags.GetString("expr", ""), "a=b");
}

}  // namespace
}  // namespace nmc::common
