#include <cmath>
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regression/bayes_linreg.h"
#include "regression/distributed_linreg.h"
#include "sim/assignment.h"
#include "streams/regression_data.h"

namespace nmc::regression {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

BayesLinRegOptions ModelOptions(int dim) {
  BayesLinRegOptions options;
  options.dim = dim;
  options.prior_variance = 10.0;
  options.noise_precision = 25.0;
  return options;
}

TEST(ExactBayesTest, PrecisionMatchesClosedForm) {
  ExactBayesLinReg model(ModelOptions(2));
  model.Update({1.0, 2.0}, 0.5);
  model.Update({-1.0, 0.5}, -0.2);
  // Lambda = I/10 + 25 * (x1 x1^T + x2 x2^T).
  Matrix expected(2, 2);
  expected.At(0, 0) = 0.1;
  expected.At(1, 1) = 0.1;
  expected.AddOuterProduct({1.0, 2.0}, 25.0);
  expected.AddOuterProduct({-1.0, 0.5}, 25.0);
  EXPECT_LT(Matrix::MaxAbsDiff(model.precision(), expected), 1e-12);
  // b = 25 * (0.5*x1 - 0.2*x2).
  EXPECT_NEAR(model.moment()[0], 25.0 * (0.5 * 1.0 - 0.2 * -1.0), 1e-12);
  EXPECT_NEAR(model.moment()[1], 25.0 * (0.5 * 2.0 - 0.2 * 0.5), 1e-12);
  EXPECT_EQ(model.updates(), 2);
}

TEST(ExactBayesTest, PosteriorMeanConvergesToTrueWeights) {
  streams::RegressionDataOptions data_options;
  data_options.dim = 4;
  data_options.noise_precision = 25.0;
  data_options.seed = 3;
  const auto data = streams::GenerateRegressionData(20000, data_options);

  ExactBayesLinReg model(ModelOptions(4));
  for (const auto& s : data.samples) model.Update(s.x, s.y);
  Vector mean;
  ASSERT_TRUE(model.PosteriorMean(&mean));
  EXPECT_LT(NormDiff(mean, data.true_weights),
            0.05 * Norm(data.true_weights) + 0.05);
}

TEST(ExactBayesTest, PriorDominatesWithNoData) {
  ExactBayesLinReg model(ModelOptions(3));
  Vector mean;
  ASSERT_TRUE(model.PosteriorMean(&mean));
  EXPECT_DOUBLE_EQ(Norm(mean), 0.0);  // m0 = 0
}

DistributedLinRegOptions TrackerOptions(int dim, int64_t n) {
  DistributedLinRegOptions options;
  options.model = ModelOptions(dim);
  options.counter_epsilon = 0.05;
  options.horizon_n = n;
  options.feature_bound = 1.0;
  options.response_bound = 16.0;
  options.seed = 7;
  return options;
}

TEST(DistributedLinRegTest, TrackedPrecisionCloseToExact) {
  const int64_t n = 4000;
  const int dim = 3;
  streams::RegressionDataOptions data_options;
  data_options.dim = dim;
  data_options.seed = 11;
  const auto data = streams::GenerateRegressionData(n, data_options);

  ExactBayesLinReg exact(ModelOptions(dim));
  DistributedLinRegTracker tracker(4, TrackerOptions(dim, n));
  sim::RoundRobinAssignment psi(4);
  for (int64_t t = 0; t < n; ++t) {
    const auto& s = data.samples[static_cast<size_t>(t)];
    exact.Update(s.x, s.y);
    tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
  }

  // Every diagonal precision entry is a positive-sum counter; off-diagonals
  // and moments are non-monotonic. All must be within the counter accuracy
  // relative to their own magnitude (plus slack for near-zero entries).
  const Matrix tracked = tracker.TrackedPrecision();
  const Matrix reference = exact.precision();
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      const double truth = reference.At(i, j);
      EXPECT_NEAR(tracked.At(i, j), truth,
                  0.05 * std::fabs(truth) + 0.05 * n / 100.0)
          << i << "," << j;
    }
  }
}

TEST(DistributedLinRegTest, PosteriorMeanCloseToExactAndTruth) {
  const int64_t n = 6000;
  const int dim = 4;
  streams::RegressionDataOptions data_options;
  data_options.dim = dim;
  data_options.seed = 13;
  const auto data = streams::GenerateRegressionData(n, data_options);

  ExactBayesLinReg exact(ModelOptions(dim));
  DistributedLinRegTracker tracker(2, TrackerOptions(dim, n));
  sim::RoundRobinAssignment psi(2);
  for (int64_t t = 0; t < n; ++t) {
    const auto& s = data.samples[static_cast<size_t>(t)];
    exact.Update(s.x, s.y);
    tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
  }

  Vector exact_mean, tracked_mean;
  ASSERT_TRUE(exact.PosteriorMean(&exact_mean));
  ASSERT_TRUE(tracker.PosteriorMean(&tracked_mean));
  // Tracked posterior mean close to the exact posterior mean...
  EXPECT_LT(NormDiff(tracked_mean, exact_mean), 0.15 * Norm(exact_mean) + 0.1);
  // ...and both close to the generating weights.
  EXPECT_LT(NormDiff(tracked_mean, data.true_weights),
            0.2 * Norm(data.true_weights) + 0.1);
}

TEST(DistributedLinRegTest, CommunicationSublinearInEntryStreams) {
  const int64_t n = 4000;
  const int dim = 2;
  streams::RegressionDataOptions data_options;
  data_options.dim = dim;
  data_options.seed = 17;
  const auto data = streams::GenerateRegressionData(n, data_options);
  DistributedLinRegTracker tracker(2, TrackerOptions(dim, n));
  sim::RoundRobinAssignment psi(2);
  for (int64_t t = 0; t < n; ++t) {
    const auto& s = data.samples[static_cast<size_t>(t)];
    tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
  }
  // 5 counters (3 xx + 2 xy), each at most 2 messages per update in the
  // straight stage; diagonal entries drift upward and go SBC, so the total
  // should be well below the ceiling.
  const auto stats = tracker.stats();
  EXPECT_GT(stats.total(), 0);
  EXPECT_LT(stats.total(), 5 * 2 * n);
  EXPECT_EQ(tracker.updates_processed(), n);
}

// The paper's caveat ("the actual error of our estimate for m_t ... also
// depends on how sensitive the precision matrix's inverse is when it is
// perturbed"): with nearly collinear features the precision matrix is
// ill-conditioned and the same per-entry tracking error inflates in the
// recovered mean.
TEST(ConditioningTest, CollinearFeaturesAmplifyTrackedMeanError) {
  const int64_t n = 4000;
  const int dim = 2;
  common::Rng rng = MakeRng(29);

  auto run_with_collinearity = [&](double collinearity_noise) {
    // x2 = x1 + noise: smaller noise -> worse conditioning.
    std::vector<streams::RegressionSample> samples(static_cast<size_t>(n));
    const Vector w{1.0, -0.5};
    for (auto& s : samples) {
      const double x1 = 0.9 * (2.0 * rng.UniformDouble() - 1.0);
      const double x2 =
          std::clamp(x1 + collinearity_noise * rng.Gaussian(), -1.0, 1.0);
      s.x = {x1, x2};
      s.y = w[0] * x1 + w[1] * x2 + rng.Gaussian(0.0, 0.2);
    }
    rng.Shuffle(&samples);

    ExactBayesLinReg exact(ModelOptions(dim));
    DistributedLinRegTracker tracker(2, TrackerOptions(dim, n));
    sim::RoundRobinAssignment psi(2);
    for (int64_t t = 0; t < n; ++t) {
      const auto& s = samples[static_cast<size_t>(t)];
      exact.Update(s.x, s.y);
      tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
    }
    Vector exact_mean, tracked_mean;
    EXPECT_TRUE(exact.PosteriorMean(&exact_mean));
    // Near-singular precision can be perturbed clean out of the PD cone
    // by the per-entry tracking error (it happens for a sizable fraction
    // of data seeds) — the extreme form of the very sensitivity this test
    // demonstrates, reported as unbounded amplification.
    if (!tracker.PosteriorMean(&tracked_mean)) {
      return std::numeric_limits<double>::infinity();
    }
    return NormDiff(tracked_mean, exact_mean);
  };

  const double well_conditioned = run_with_collinearity(0.5);
  const double ill_conditioned = run_with_collinearity(0.02);
  // The well-conditioned recovery must succeed outright; the same
  // per-entry accuracy then shows visibly worse recovered-mean error when
  // the precision matrix is near-singular.
  ASSERT_TRUE(std::isfinite(well_conditioned));
  EXPECT_GT(ill_conditioned, 2.0 * well_conditioned);
}

TEST(PredictiveTest, MatchesClosedFormOnIdentityPrecision) {
  // Lambda = I, b = (2, 0): mean = (2, 0); for x = (1, 1):
  // predictive mean 2, variance 1/beta + x^T x = 1/25 + 2.
  Matrix precision = Matrix::Identity(2);
  PredictiveDistribution pred;
  ASSERT_TRUE(Predict(precision, {2.0, 0.0}, 25.0, {1.0, 1.0}, &pred));
  EXPECT_DOUBLE_EQ(pred.mean, 2.0);
  EXPECT_DOUBLE_EQ(pred.variance, 0.04 + 2.0);
}

TEST(PredictiveTest, VarianceShrinksWithData) {
  // More data -> larger precision -> smaller predictive variance, floored
  // at the irreducible noise 1/beta.
  streams::RegressionDataOptions data_options;
  data_options.dim = 3;
  data_options.seed = 21;
  const auto data = streams::GenerateRegressionData(5000, data_options);
  ExactBayesLinReg model(ModelOptions(3));
  const Vector query{0.5, -0.5, 0.25};
  PredictiveDistribution before, mid, after;
  ASSERT_TRUE(Predict(model.precision(), model.moment(), 25.0, query, &before));
  for (int64_t t = 0; t < 100; ++t) {
    model.Update(data.samples[static_cast<size_t>(t)].x,
                 data.samples[static_cast<size_t>(t)].y);
  }
  ASSERT_TRUE(Predict(model.precision(), model.moment(), 25.0, query, &mid));
  for (int64_t t = 100; t < 5000; ++t) {
    model.Update(data.samples[static_cast<size_t>(t)].x,
                 data.samples[static_cast<size_t>(t)].y);
  }
  ASSERT_TRUE(Predict(model.precision(), model.moment(), 25.0, query, &after));
  EXPECT_GT(before.variance, mid.variance);
  EXPECT_GT(mid.variance, after.variance);
  EXPECT_GT(after.variance, 1.0 / 25.0);
}

TEST(PredictiveTest, TrackedPredictionsMatchExact) {
  const int64_t n = 5000;
  const int dim = 3;
  streams::RegressionDataOptions data_options;
  data_options.dim = dim;
  data_options.seed = 23;
  const auto data = streams::GenerateRegressionData(n, data_options);
  ExactBayesLinReg exact(ModelOptions(dim));
  DistributedLinRegTracker tracker(4, TrackerOptions(dim, n));
  sim::RoundRobinAssignment psi(4);
  for (int64_t t = 0; t < n; ++t) {
    const auto& s = data.samples[static_cast<size_t>(t)];
    exact.Update(s.x, s.y);
    tracker.ProcessUpdate(psi.NextSite(t, s.y), s.x, s.y);
  }
  const Vector query{0.3, -0.7, 0.1};
  PredictiveDistribution exact_pred, tracked_pred;
  ASSERT_TRUE(
      Predict(exact.precision(), exact.moment(), 25.0, query, &exact_pred));
  ASSERT_TRUE(tracker.Predict(query, &tracked_pred));
  EXPECT_NEAR(tracked_pred.mean, exact_pred.mean,
              0.1 * std::fabs(exact_pred.mean) + 0.05);
  EXPECT_NEAR(tracked_pred.variance, exact_pred.variance,
              0.15 * exact_pred.variance);
}

TEST(PredictiveTest, RejectsIndefinitePrecision) {
  Matrix bad(2, 2);
  bad.At(0, 0) = 1.0;
  bad.At(1, 1) = -1.0;
  PredictiveDistribution pred;
  EXPECT_FALSE(Predict(bad, {0.0, 0.0}, 25.0, {1.0, 0.0}, &pred));
}

TEST(DistributedLinRegDeathTest, RejectsOutOfBoundData) {
  DistributedLinRegTracker tracker(2, TrackerOptions(2, 100));
  EXPECT_DEATH(tracker.ProcessUpdate(0, {5.0, 0.0}, 1.0), "NMC_CHECK");
  EXPECT_DEATH(tracker.ProcessUpdate(0, {0.5, 0.0}, 100.0), "NMC_CHECK");
}

}  // namespace
}  // namespace nmc::regression
