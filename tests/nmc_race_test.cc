// Tests for the nmc_race model checker itself: the litmus suite's pinned
// outcome sets, the replayability of failing schedules, the soundness of
// sleep-set pruning, and the mutation matrix that proves every non-relaxed
// memory order in spsc_queue.h / seqlock.h is load-bearing.
#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/atomic_policy.h"
#include "nmc_race/litmus.h"
#include "nmc_race/model_atomic.h"
#include "nmc_race/runtime.h"

namespace nmc::race {
namespace {

using common::OrderSite;

ExploreOptions Unbounded() {
  ExploreOptions options;
  options.preemption_bound = -1;
  options.sleep_sets = true;
  return options;
}

// ---- memory-model self-tests: the model must produce exactly the C++11
// outcome sets (minus the LB reordering an interleaving model cannot
// exhibit) ----------------------------------------------------------------

struct OutcomeCase {
  const char* litmus;
  std::set<std::string> want;
};

class LitmusOutcomeTest : public ::testing::TestWithParam<OutcomeCase> {};

TEST_P(LitmusOutcomeTest, PinsOutcomeSet) {
  const OutcomeCase& param = GetParam();
  const LitmusCase* litmus = FindLitmus(param.litmus);
  ASSERT_NE(litmus, nullptr) << param.litmus;
  const ExploreResult result = Explore(litmus->base, litmus->test);
  EXPECT_TRUE(result.complete) << "exploration must cover the full space";
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_EQ(result.outcomes, param.want);
}

INSTANTIATE_TEST_SUITE_P(
    MemoryModel, LitmusOutcomeTest,
    ::testing::Values(
        // Store buffering: 0/0 (both loads stale) is allowed by relaxed
        // AND release/acquire; only seq_cst forbids it.
        OutcomeCase{"sb-relaxed", {"0/0", "0/1", "1/0", "1/1"}},
        OutcomeCase{"sb-acqrel", {"0/0", "0/1", "1/0", "1/1"}},
        OutcomeCase{"sb-seqcst", {"0/1", "1/0", "1/1"}},
        // Message passing: a relaxed flag admits the stale-data read 1/0;
        // release/acquire forbids it.
        OutcomeCase{"mp-relaxed", {"0/42", "1/0", "1/1"}},
        OutcomeCase{"mp-acqrel", {"0/42", "1/1"}},
        // Load buffering: C++11 allows 1/1 but no interleaving-based model
        // (loom included) can exhibit it — this pins that boundary so a
        // future model change that silently *starts* claiming 1/1 (or
        // stops exploring the others) is caught.
        OutcomeCase{"lb-relaxed", {"0/0", "0/1", "1/0"}}),
    [](const ::testing::TestParamInfo<OutcomeCase>& param_info) {
      std::string name = param_info.param.litmus;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(NmcRaceModelTest, DetectsPlainMemoryRaceBehindRelaxedFlag) {
  const LitmusCase* litmus = FindLitmus("mp-race-relaxed");
  ASSERT_NE(litmus, nullptr);
  const ExploreResult result = Explore(litmus->base, litmus->test);
  EXPECT_TRUE(result.violation);
  EXPECT_NE(result.message.find("data race"), std::string::npos)
      << result.message;
  EXPECT_FALSE(result.schedule.empty());
}

TEST(NmcRaceModelTest, AcquireReleaseFlagMakesThePayloadRaceFree) {
  const LitmusCase* litmus = FindLitmus("mp-race-acqrel");
  ASSERT_NE(litmus, nullptr);
  const ExploreResult result = Explore(litmus->base, litmus->test);
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
}

// Sleep-set pruning must be sound: the pruned exploration of a litmus test
// must produce the same outcome set as the exhaustive one.
TEST(NmcRaceModelTest, SleepSetPruningPreservesOutcomes) {
  const LitmusCase* litmus = FindLitmus("sb-relaxed");
  ASSERT_NE(litmus, nullptr);
  ExploreOptions pruned = Unbounded();
  ExploreOptions exhaustive = Unbounded();
  exhaustive.sleep_sets = false;
  const ExploreResult with_sleep = Explore(pruned, litmus->test);
  const ExploreResult without_sleep = Explore(exhaustive, litmus->test);
  EXPECT_EQ(with_sleep.outcomes, without_sleep.outcomes);
  EXPECT_LE(with_sleep.executions, without_sleep.executions)
      << "sleep sets may only prune, never add, executions";
}

// ---- replay determinism -------------------------------------------------

// The schedule string printed for a violation must re-run to the identical
// failure: same message, same rendered schedule. This is the golden
// "minimal deterministic repro" contract of the tool.
TEST(NmcRaceReplayTest, FailingScheduleReplaysToIdenticalState) {
  const LitmusCase* litmus = FindLitmus("seqlock-torn");
  ASSERT_NE(litmus, nullptr);
  ExploreOptions options = litmus->base;
  options.weakened = OrderSite::kSeqlockWriteFence;
  const ExploreResult first = Explore(options, litmus->test);
  ASSERT_TRUE(first.violation)
      << "weakening the write fence must produce a torn read";
  ASSERT_FALSE(first.schedule.empty());

  options.replay = first.schedule;
  const ExploreResult replayed = Explore(options, litmus->test);
  EXPECT_TRUE(replayed.violation);
  EXPECT_EQ(replayed.executions, 1u) << "replay runs exactly one execution";
  EXPECT_EQ(replayed.message, first.message);
  EXPECT_EQ(replayed.schedule, first.schedule);
}

// Replaying a mutant's schedule WITHOUT the weakening must not reproduce
// the mutant's failure: either the execution is clean, or the replay
// reports a divergence (the weakening changed which stale stores were
// admissible, so the visibility tokens no longer apply). Either way the
// original torn-read/race message must not come back — the failure is
// caused by the mutation, not by the schedule.
TEST(NmcRaceReplayTest, MutantFailureDoesNotReproduceOnCleanSources) {
  const LitmusCase* litmus = FindLitmus("seqlock-torn");
  ASSERT_NE(litmus, nullptr);
  ExploreOptions options = litmus->base;
  options.weakened = OrderSite::kSeqlockWriteRelease;
  const ExploreResult weakened = Explore(options, litmus->test);
  ASSERT_TRUE(weakened.violation);

  ExploreOptions clean = litmus->base;
  clean.replay = weakened.schedule;
  const ExploreResult replayed = Explore(clean, litmus->test);
  if (replayed.violation) {
    EXPECT_NE(replayed.message.find("replay diverged"), std::string::npos)
        << "clean sources reproduced the mutant's failure: "
        << replayed.message;
  }
}

TEST(NmcRaceReplayTest, MalformedScheduleIsReportedNotCrashed) {
  const LitmusCase* litmus = FindLitmus("sb-relaxed");
  ASSERT_NE(litmus, nullptr);
  ExploreOptions options = litmus->base;
  options.replay = "t1,zz,v0";
  const ExploreResult result = Explore(options, litmus->test);
  EXPECT_TRUE(result.violation);
  EXPECT_NE(result.message.find("schedule"), std::string::npos)
      << result.message;
}

// ---- the litmus suite as shipped ---------------------------------------

TEST(NmcRaceSuiteTest, EveryCaseHasADescriptionAndUniqueName) {
  std::set<std::string> names;
  for (const LitmusCase& litmus : LitmusSuite()) {
    EXPECT_TRUE(names.insert(litmus.name).second)
        << "duplicate litmus name " << litmus.name;
    EXPECT_FALSE(litmus.description.empty()) << litmus.name;
  }
  EXPECT_GE(names.size(), 14u);
}

TEST(NmcRaceSuiteTest, UnmodifiedSourcesExploreCleanEverywhere) {
  for (const LitmusCase& litmus : LitmusSuite()) {
    const LitmusVerdict verdict =
        RunLitmus(litmus, OrderSite::kCount, /*replay=*/"");
    EXPECT_TRUE(verdict.passed)
        << litmus.name << ": " << verdict.detail;
    if (!litmus.expect_violation) {
      EXPECT_TRUE(verdict.result.complete)
          << litmus.name << " did not cover its schedule space";
    }
  }
}

TEST(NmcRaceSuiteTest, SiteNamesRoundTrip) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(OrderSite::kCount); ++i) {
    const auto site = static_cast<OrderSite>(i);
    OrderSite parsed = OrderSite::kCount;
    ASSERT_TRUE(ParseSiteName(SiteName(site), &parsed)) << SiteName(site);
    EXPECT_EQ(parsed, site);
  }
  OrderSite ignored;
  EXPECT_FALSE(ParseSiteName("not-a-site", &ignored));
}

// ---- mutation validation ------------------------------------------------

// The acceptance gate of the whole tool: weakening ANY release/acquire/
// fence order in spsc_queue.h or seqlock.h to relaxed must make a litmus
// test fail, and the printed schedule must deterministically reproduce
// that failure. A surviving mutant means a memory order is not actually
// guarded by the suite.
TEST(NmcRaceMutationTest, EveryOrderSiteIsKilledWithAReplayableSchedule) {
  const std::vector<MutationOutcome> outcomes = RunMutationMatrix();
  ASSERT_EQ(outcomes.size(),
            static_cast<size_t>(OrderSite::kCount));
  for (const MutationOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.killed)
        << SiteName(outcome.site) << " weakened to relaxed survived "
        << outcome.litmus;
    EXPECT_TRUE(outcome.replay_confirmed)
        << SiteName(outcome.site) << ": schedule " << outcome.schedule
        << " did not replay to the same violation";
    EXPECT_FALSE(outcome.schedule.empty()) << SiteName(outcome.site);
  }
}

}  // namespace
}  // namespace nmc::race
