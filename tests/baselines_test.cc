#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "baselines/periodic_sync.h"
#include "baselines/two_monotonic.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"
#include "streams/permutation.h"

namespace nmc::baselines {
namespace {

TEST(ExactSyncTest, ZeroErrorAtLinearCost) {
  const int64_t n = 5000;
  const auto stream = streams::BernoulliStream(n, 0.0, 1);
  ExactSyncProtocol protocol(4);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.01;
  const auto result = sim::RunTracking(stream, &psi, &protocol, tracking);
  EXPECT_EQ(result.violation_steps, 0);
  EXPECT_EQ(result.max_rel_error, 0.0);
  EXPECT_EQ(result.messages, n);
}

TEST(ExactSyncTest, HandlesFractionalValues) {
  ExactSyncProtocol protocol(2);
  protocol.ProcessUpdate(0, 0.25);
  protocol.ProcessUpdate(1, -0.75);
  EXPECT_DOUBLE_EQ(protocol.Estimate(), -0.5);
}

TEST(PeriodicSyncTest, MessageCountIsNOverPeriod) {
  const int64_t n = 10000;
  const int64_t period = 10;
  const auto stream = streams::BernoulliStream(n, 0.0, 3);
  PeriodicSyncProtocol protocol(1, period);
  sim::RoundRobinAssignment psi(1);
  sim::TrackingOptions tracking;
  const auto result = sim::RunTracking(stream, &psi, &protocol, tracking);
  EXPECT_EQ(result.messages, n / period);
}

TEST(PeriodicSyncTest, ViolatesRelativeAccuracyNearZeroCrossings) {
  // A drifting-up-then-down stream crosses zero while the estimate is
  // stale: a fixed period cannot give relative accuracy.
  std::vector<double> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(1.0);
  for (int i = 0; i < 499; ++i) stream.push_back(-1.0);
  // S ends at 1; at the end the estimate is stale by up to period updates.
  PeriodicSyncProtocol protocol(1, 100);
  sim::RoundRobinAssignment psi(1);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &protocol, tracking);
  EXPECT_GT(result.violation_steps, 0);
}

TEST(PeriodicSyncTest, ExactAtSyncBoundariesSingleSite) {
  PeriodicSyncProtocol protocol(1, 5);
  double sum = 0.0;
  for (int t = 0; t < 25; ++t) {
    const double v = (t % 3 == 0) ? 1.0 : -0.5;
    protocol.ProcessUpdate(0, v);
    sum += v;
    if ((t + 1) % 5 == 0) {
      EXPECT_DOUBLE_EQ(protocol.Estimate(), sum) << "t=" << t;
    }
  }
}

TEST(TwoMonotonicTest, TracksEachSideButFailsTheDifference) {
  // Balanced ±1 permuted stream: P and N are each ~n/2, S wanders near 0.
  // Individually accurate counters leave an absolute error up to
  // eps*(P+N), so the difference has unbounded relative error.
  const int64_t n = 1 << 14;
  const auto stream =
      streams::RandomlyPermuted(streams::SignMultiset(n, 0.5), 7);
  TwoMonotonicProtocol protocol(4, 0.1, 1e-6, 11);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &protocol, tracking);
  EXPECT_GT(result.violation_steps, 0);
}

TEST(TwoMonotonicTest, FineOnStronglyBiasedStream) {
  // With mu close to 1, eps*(P+N) ~ eps*S: the naive difference happens to
  // be acceptable — the failure is specific to small |S|.
  const int64_t n = 1 << 14;
  const auto stream = streams::BernoulliStream(n, 0.95, 13);
  TwoMonotonicProtocol protocol(4, 0.02, 1e-6, 17);
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(stream, &psi, &protocol, tracking);
  EXPECT_EQ(result.violation_steps, 0);
}

TEST(TwoMonotonicDeathTest, RejectsFractionalValues) {
  TwoMonotonicProtocol protocol(2, 0.1, 1e-6, 19);
  EXPECT_DEATH(protocol.ProcessUpdate(0, 0.5), "NMC_CHECK");
}

}  // namespace
}  // namespace nmc::baselines
