#include "hyz/hyz_counter.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::hyz {
namespace {

HyzOptions Options(double epsilon, uint64_t seed) {
  HyzOptions options;
  options.epsilon = epsilon;
  options.delta = 1e-6;
  options.seed = seed;
  return options;
}

std::vector<double> Ones(int64_t n) {
  return std::vector<double>(static_cast<size_t>(n), 1.0);
}

TEST(HyzTest, TracksSmallCountsExactly) {
  // Early rounds have sampling probability 1, so tiny counts are exact.
  HyzProtocol counter(2, Options(0.1, 1));
  sim::RoundRobinAssignment psi(2);
  for (int t = 0; t < 8; ++t) {
    counter.ProcessUpdate(psi.NextSite(t, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(counter.Estimate(), static_cast<double>(t + 1));
  }
}

TEST(HyzTest, ContinuousTrackingWithinEpsilon) {
  const int64_t n = 20000;
  for (int k : {1, 4, 16}) {
    HyzProtocol counter(k, Options(0.1, 7));
    sim::RoundRobinAssignment psi(k);
    sim::TrackingOptions tracking;
    tracking.epsilon = 0.1;
    const auto result = sim::RunTracking(Ones(n), &psi, &counter, tracking);
    EXPECT_EQ(result.violation_steps, 0) << "k=" << k;
    EXPECT_DOUBLE_EQ(result.final_sum, static_cast<double>(n));
  }
}

TEST(HyzTest, CommunicationSublinear) {
  const int64_t n = 50000;
  HyzProtocol counter(8, Options(0.1, 3));
  sim::RoundRobinAssignment psi(8);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  const auto result = sim::RunTracking(Ones(n), &psi, &counter, tracking);
  EXPECT_LT(result.messages, n / 4);
  EXPECT_GT(result.messages, 0);
}

TEST(HyzTest, RoundsGrowLogarithmically) {
  const int64_t n = 1 << 14;
  HyzProtocol counter(4, Options(0.2, 5));
  sim::RoundRobinAssignment psi(4);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.2;
  (void)sim::RunTracking(Ones(n), &psi, &counter, tracking);
  // The estimate doubles each round: ~log2(n) rounds, with slack for the
  // randomized trigger.
  EXPECT_GE(counter.rounds(), 8);
  EXPECT_LE(counter.rounds(), 24);
}

TEST(HyzTest, RateDecreasesAsCountGrows) {
  HyzProtocol counter(4, Options(0.1, 9));
  sim::RoundRobinAssignment psi(4);
  const double initial_rate = counter.current_rate();
  EXPECT_DOUBLE_EQ(initial_rate, 1.0);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  (void)sim::RunTracking(Ones(20000), &psi, &counter, tracking);
  EXPECT_LT(counter.current_rate(), 0.2);
}

TEST(HyzTest, InitialTotalOffsetsEstimate) {
  HyzOptions options = Options(0.1, 11);
  options.initial_total = 5000;
  HyzProtocol counter(2, options);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 5000.0);
  counter.ProcessUpdate(0, 1.0);
  counter.ProcessUpdate(1, 1.0);
  // With a large base the rate may be < 1, so the estimate stays within
  // epsilon of 5002 rather than exactly equal.
  EXPECT_NEAR(counter.Estimate(), 5002.0, 0.1 * 5002.0);
}

TEST(HyzTest, InitialTotalTrackingStaysAccurate) {
  HyzOptions options = Options(0.05, 13);
  options.initial_total = 10000;
  const int64_t n = 30000;
  HyzProtocol counter(4, options);
  sim::RoundRobinAssignment psi(4);
  double true_count = 10000.0;
  for (int64_t t = 0; t < n; ++t) {
    counter.ProcessUpdate(psi.NextSite(t, 1.0), 1.0);
    true_count += 1.0;
    const double err = std::fabs(counter.Estimate() - true_count);
    ASSERT_LE(err, 0.05 * true_count + 1e-9) << "t=" << t;
  }
}

// Unbiasedness of the per-round estimator: averaged over many independent
// runs, the estimate at a fixed time should match the true count.
TEST(HyzTest, EstimatorIsApproximatelyUnbiased) {
  const int64_t n = 4000;
  common::RunningStat stat;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    HyzProtocol counter(4, Options(0.2, 1000 + seed));
    sim::RoundRobinAssignment psi(4);
    for (int64_t t = 0; t < n; ++t) {
      counter.ProcessUpdate(psi.NextSite(t, 1.0), 1.0);
    }
    stat.Add(counter.Estimate());
  }
  // Bias should be well inside the standard error band.
  EXPECT_NEAR(stat.mean(), static_cast<double>(n), 3.0 * stat.stderr_mean() + 1.0);
}

TEST(HyzTest, SmallerEpsilonCostsMore) {
  const int64_t n = 30000;
  int64_t messages_loose = 0;
  int64_t messages_tight = 0;
  {
    HyzProtocol counter(4, Options(0.2, 21));
    sim::RoundRobinAssignment psi(4);
    sim::TrackingOptions tracking;
    const auto r = sim::RunTracking(Ones(n), &psi, &counter, tracking);
    messages_loose = r.messages;
  }
  {
    HyzProtocol counter(4, Options(0.02, 21));
    sim::RoundRobinAssignment psi(4);
    sim::TrackingOptions tracking;
    const auto r = sim::RunTracking(Ones(n), &psi, &counter, tracking);
    messages_tight = r.messages;
  }
  EXPECT_GT(messages_tight, messages_loose);
}

TEST(HyzTest, AssignmentPolicyDoesNotBreakCorrectness) {
  const int64_t n = 20000;
  for (const char* name : {"round_robin", "random", "single", "block"}) {
    auto psi = sim::MakeAssignment(name, 8, 99);
    HyzProtocol counter(8, Options(0.1, 33));
    sim::TrackingOptions tracking;
    tracking.epsilon = 0.1;
    const auto result = sim::RunTracking(Ones(n), psi.get(), &counter, tracking);
    EXPECT_EQ(result.violation_steps, 0) << name;
  }
}

TEST(HyzDeathTest, RejectsNonUnitUpdates) {
  HyzProtocol counter(2, Options(0.1, 1));
  EXPECT_DEATH(counter.ProcessUpdate(0, -1.0), "NMC_CHECK");
  EXPECT_DEATH(counter.ProcessUpdate(0, 0.5), "NMC_CHECK");
}

}  // namespace
}  // namespace nmc::hyz
