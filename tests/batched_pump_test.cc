// The ProcessBatch contract in one suite: for any stream slicing the
// batched pump must reproduce the per-update pump bit for bit — same
// messages, same violations, same curve — in both sampler modes, and the
// chunked stream sources must emit exactly the value sequences of their
// vector counterparts.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "common/simd_dispatch.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "sim/stream_source.h"
#include "streams/adversarial.h"
#include "streams/bernoulli.h"
#include "streams/chunked.h"
#include "test_util.h"

namespace nmc {
namespace {

void ExpectSameResult(const sim::TrackingResult& a,
                      const sim::TrackingResult& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.violation_steps, b.violation_steps);
  EXPECT_EQ(a.max_rel_error, b.max_rel_error);  // bitwise, not approximate
  EXPECT_EQ(a.final_sum, b.final_sum);
  EXPECT_EQ(a.final_estimate, b.final_estimate);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].t, b.curve[i].t);
    EXPECT_EQ(a.curve[i].messages, b.curve[i].messages);
    EXPECT_EQ(a.curve[i].sum, b.curve[i].sum);
    EXPECT_EQ(a.curve[i].estimate, b.curve[i].estimate);
  }
}

sim::TrackingResult RunCounterBatched(const std::vector<double>& stream,
                                      int num_sites,
                                      const core::CounterOptions& options,
                                      int batch_size) {
  core::NonMonotonicCounter counter(num_sites, options);
  sim::RoundRobinAssignment psi(num_sites);
  sim::TrackingOptions tracking;
  tracking.epsilon = options.epsilon;
  tracking.curve_points = 16;
  tracking.batch_size = batch_size;
  return sim::RunTracking(stream, &psi, &counter, tracking);
}

// ---- Counter: batch size is unobservable ---------------------------------

TEST(BatchedPumpTest, CounterBitIdenticalAcrossBatchSizes) {
  const int64_t n = 1 << 13;
  for (int num_sites : {1, 4}) {
    for (const auto sampler :
         {common::SamplerMode::kGeometricSkip, common::SamplerMode::kLegacyCoins}) {
      core::CounterOptions options = testing::DefaultOptions(n, 0.2, 404);
      options.sampler = sampler;
      const auto stream = streams::BernoulliStream(n, 0.5, 91);
      const auto reference = RunCounterBatched(stream, num_sites, options, 1);
      for (int batch : {7, 256, 1 << 14}) {
        SCOPED_TRACE(::testing::Message()
                     << "sites=" << num_sites << " batch=" << batch
                     << " sampler=" << static_cast<int>(sampler));
        ExpectSameResult(reference,
                         RunCounterBatched(stream, num_sites, options, batch));
      }
    }
  }
}

TEST(BatchedPumpTest, CounterBitIdenticalOnAdversarialStream) {
  // Sawtooth keeps |S| crossing zero, so the batched invariant check runs
  // in the regime where the estimate matters most and chunks restart
  // constantly.
  const int64_t n = 1 << 12;
  core::CounterOptions options = testing::DefaultOptions(n, 0.25, 77);
  const auto stream = streams::SawtoothStream(n, 100);
  const auto reference = RunCounterBatched(stream, 2, options, 1);
  ExpectSameResult(reference, RunCounterBatched(stream, 2, options, 64));
}

TEST(BatchedPumpTest, CounterPhase2BatchMatchesPerUpdate) {
  const int64_t n = 1 << 13;
  core::CounterOptions options = testing::DefaultOptions(n, 0.2, 505);
  options.drift_mode = core::DriftMode::kUnknownUnitDrift;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);  // mu = 1
  const auto reference = RunCounterBatched(stream, 4, options, 1);
  const auto batched = RunCounterBatched(stream, 4, options, 512);
  ExpectSameResult(reference, batched);
}

// ---- SIMD dispatch is unobservable in results ----------------------------

TEST(BatchedPumpTest, CounterBitIdenticalAcrossSimdLevels) {
  // The vector kernels are bit-identical to the scalar oracle, so a full
  // tracking run — stream generation, sampler feed, pump fast paths — must
  // produce identical TrackingResults whichever level dispatch picks, in
  // both sampler modes and both stream generation modes.
  const int64_t n = 1 << 13;
  for (const auto sampler : {common::SamplerMode::kGeometricSkip,
                             common::SamplerMode::kLegacyCoins}) {
    for (const auto gen_mode :
         {streams::GenMode::kBatch, streams::GenMode::kLegacyScalar}) {
      core::CounterOptions options = testing::DefaultOptions(n, 0.2, 909);
      options.sampler = sampler;
      ASSERT_TRUE(common::ForceSimdLevel(common::SimdLevel::kScalar));
      const auto stream = streams::BernoulliStream(n, 0.5, 92, gen_mode);
      const auto reference = RunCounterBatched(stream, 4, options, 64);
      common::ResetSimdLevel();
      for (const auto level :
           {common::SimdLevel::kAvx2, common::SimdLevel::kNeon}) {
        if (!common::SimdLevelAvailable(level)) continue;
        SCOPED_TRACE(::testing::Message()
                     << "level=" << common::SimdLevelName(level)
                     << " sampler=" << static_cast<int>(sampler)
                     << " gen_mode=" << static_cast<int>(gen_mode));
        ASSERT_TRUE(common::ForceSimdLevel(level));
        const auto vec_stream = streams::BernoulliStream(n, 0.5, 92, gen_mode);
        EXPECT_EQ(vec_stream, stream);  // generator itself is level-blind
        ExpectSameResult(reference,
                         RunCounterBatched(vec_stream, 4, options, 64));
        common::ResetSimdLevel();
      }
    }
  }
}

// ---- HYZ: batch and run forms --------------------------------------------

TEST(BatchedPumpTest, HyzBitIdenticalAcrossBatchSizes) {
  const int64_t n = 1 << 13;
  const std::vector<double> stream(static_cast<size_t>(n), 1.0);
  for (const auto mode : {hyz::HyzMode::kSampled, hyz::HyzMode::kDeterministic}) {
    for (const auto sampler :
         {common::SamplerMode::kGeometricSkip, common::SamplerMode::kLegacyCoins}) {
      hyz::HyzOptions options;
      options.mode = mode;
      options.epsilon = 0.1;
      options.delta = 1e-6;
      options.seed = 606;
      options.sampler = sampler;
      sim::TrackingOptions tracking;
      tracking.epsilon = 1.0;  // HYZ promises eps only per round; be lax
      sim::RoundRobinAssignment psi1(3), psi2(3);
      hyz::HyzProtocol per_update(3, options);
      hyz::HyzProtocol batched(3, options);
      tracking.batch_size = 1;
      const auto a = sim::RunTracking(stream, &psi1, &per_update, tracking);
      tracking.batch_size = 97;
      const auto b = sim::RunTracking(stream, &psi2, &batched, tracking);
      SCOPED_TRACE(::testing::Message()
                   << "mode=" << static_cast<int>(mode)
                   << " sampler=" << static_cast<int>(sampler));
      ExpectSameResult(a, b);
    }
  }
}

// ---- Default ProcessBatch (protocols without a fast path) ----------------

TEST(BatchedPumpTest, DefaultProcessBatchConsumesOneUpdate) {
  const auto stream = streams::BernoulliStream(1 << 12, 0.0, 17);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.1;
  sim::RoundRobinAssignment psi1(3), psi2(3);
  baselines::ExactSyncProtocol per_update(3);
  baselines::ExactSyncProtocol batched(3);
  tracking.batch_size = 1;
  const auto a = sim::RunTracking(stream, &psi1, &per_update, tracking);
  tracking.batch_size = 256;
  const auto b = sim::RunTracking(stream, &psi2, &batched, tracking);
  ExpectSameResult(a, b);
  EXPECT_EQ(a.messages, a.n);  // ExactSync really saw every update
}

// ---- StreamSource overload ----------------------------------------------

TEST(BatchedPumpTest, SourceOverloadMatchesVectorOverload) {
  const int64_t n = 1 << 13;
  core::CounterOptions options = testing::DefaultOptions(n, 0.2, 808);
  const auto stream = streams::BernoulliStream(n, 0.5, 33);

  core::NonMonotonicCounter vec_counter(2, options);
  core::NonMonotonicCounter src_counter(2, options);
  sim::RoundRobinAssignment psi1(2), psi2(2);
  sim::TrackingOptions tracking;
  tracking.epsilon = options.epsilon;
  tracking.curve_points = 16;
  tracking.batch_size = 50;  // n not divisible by 50: ragged final chunk
  const auto a = sim::RunTracking(stream, &psi1, &vec_counter, tracking);
  streams::BernoulliSource source(n, 0.5, 33);
  const auto b = sim::RunTracking(&source, &psi2, &src_counter, tracking);
  ExpectSameResult(a, b);
}

// ---- Chunked sources ≡ vector generators ---------------------------------

TEST(BatchedPumpTest, ChunkedSourcesMatchVectorGenerators) {
  const int64_t n = 4097;  // odd length: ragged last chunk everywhere
  {
    streams::BernoulliSource source(n, 0.3, 55);
    EXPECT_EQ(streams::Materialize(&source), streams::BernoulliStream(n, 0.3, 55));
  }
  {
    streams::FractionalIidSource source(n, 0.1, 0.5, 56);
    EXPECT_EQ(streams::Materialize(&source),
              streams::FractionalIidStream(n, 0.1, 0.5, 56));
  }
  {
    streams::AlternatingSource source(n);
    EXPECT_EQ(streams::Materialize(&source), streams::AlternatingStream(n));
  }
  {
    streams::SawtoothSource source(n, 37);
    EXPECT_EQ(streams::Materialize(&source), streams::SawtoothStream(n, 37));
  }
}

TEST(BatchedPumpTest, ChunkedSourcesSurviveOddChunkBoundaries) {
  // Chunk size 7 forces every source to carry generator state (RNG,
  // sawtooth level/direction, parity) across FillChunk calls.
  const int64_t n = 1000;
  const auto reference = streams::SawtoothStream(n, 13);
  streams::SawtoothSource source(n, 13);
  std::vector<double> buffer(7);
  std::vector<double> collected;
  int64_t filled;
  while ((filled = source.FillChunk(buffer)) > 0) {
    collected.insert(collected.end(), buffer.begin(), buffer.begin() + filled);
  }
  EXPECT_EQ(collected, reference);
  EXPECT_EQ(source.FillChunk(buffer), 0);  // stays exhausted
}

TEST(BatchedPumpTest, MaterializedSourceRoundTrips) {
  const auto stream = streams::BernoulliStream(513, 0.0, 3);
  streams::MaterializedSource source(stream);
  EXPECT_EQ(source.length(), 513);
  EXPECT_EQ(streams::Materialize(&source), stream);
}

}  // namespace
}  // namespace nmc
