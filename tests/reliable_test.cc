// ReliableProtocol tests: the coordinator-driven resync wrapper must
// detect every loss event, restore an exact coordinator estimate within
// its backoff deadline (the E14 acceptance bound), survive crash windows,
// and degrade gracefully around protocols that cannot resync.

#include "sim/reliable.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/exact_sync.h"
#include "common/rng.h"
#include "core/nonmonotonic_counter.h"
#include "hyz/hyz_counter.h"
#include "sim/channel.h"

namespace nmc::sim {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

std::unique_ptr<core::NonMonotonicCounter> MakeCounter(
    int num_sites, const ChannelConfig& channel, uint64_t seed) {
  core::CounterOptions options;
  options.epsilon = 0.2;
  options.horizon_n = 4096;
  options.seed = seed;
  options.channel = channel;
  return std::make_unique<core::NonMonotonicCounter>(num_sites, options);
}

ChannelConfig LossChannel(double loss, uint64_t seed) {
  ChannelConfig config;
  config.kind = ChannelConfig::Kind::kLoss;
  config.loss = loss;
  config.seed = seed;
  return config;
}

TEST(ReliableProtocolTest, DeadlineIsTheSumOfTheBackoffSchedule) {
  ReliableOptions options;
  options.backoff_base = 1;
  options.backoff_cap = 8;
  options.max_retries = 5;
  ReliableProtocol protocol(MakeCounter(2, ChannelConfig{}, 1), options);
  // Backoffs 1, 2, 4, 8, 8 (capped) = 23 ticks.
  EXPECT_EQ(protocol.RecoveryDeadlineTicks(), 23);
}

TEST(ReliableProtocolTest, ProcessBatchConsumesOneUpdatePerCall) {
  ReliableProtocol protocol(MakeCounter(2, LossChannel(0.1, 5), 1),
                            ReliableOptions{});
  const std::vector<double> values{1.0, -1.0, 1.0, 1.0};
  EXPECT_EQ(protocol.ProcessBatch(0, values), 1);
  EXPECT_EQ(protocol.num_sites(), 2);
}

TEST(ReliableProtocolTest, PerfectChannelNeverTriggersRecovery) {
  ReliableProtocol protocol(MakeCounter(3, ChannelConfig{}, 7),
                            ReliableOptions{});
  common::Rng rng = MakeRng(3);
  for (int i = 0; i < 2000; ++i) {
    protocol.ProcessUpdate(i % 3, rng.Sign(0.5));
  }
  EXPECT_EQ(protocol.diagnostics().loss_events, 0);
  EXPECT_EQ(protocol.diagnostics().resyncs, 0);
  EXPECT_EQ(protocol.stats().dropped, 0);
}

/// The headline acceptance bound: under Bernoulli loss at 10%, every loss
/// event must be resolved (recovered, in practice) within
/// RecoveryDeadlineTicks, and each recovery must leave the coordinator's
/// estimate exactly equal to the true running sum.
TEST(ReliableProtocolTest, CounterRecoversExactlyWithinDeadlineUnderLoss) {
  ReliableProtocol protocol(MakeCounter(4, LossChannel(0.1, 11), 13),
                            ReliableOptions{});
  const int64_t deadline = protocol.RecoveryDeadlineTicks();
  common::Rng rng = MakeRng(99);
  int64_t true_sum = 0;
  int64_t pending_since = -1;
  int64_t seen_recoveries = 0;
  for (int i = 0; i < 4000; ++i) {
    const int value = rng.Sign(0.5);
    true_sum += value;
    protocol.ProcessUpdate(i % 4, static_cast<double>(value));
    const ReliableDiagnostics& d = protocol.diagnostics();
    ASSERT_FALSE(d.unsupported);
    if (d.recoveries > seen_recoveries) {
      seen_recoveries = d.recoveries;
      // A clean resync round just completed: the coordinator is exact.
      EXPECT_EQ(protocol.Estimate(), static_cast<double>(true_sum))
          << "after recovery at update " << i;
    }
    if (d.loss_events > d.recoveries + d.abandoned) {
      // A loss event is in flight; it must resolve within the deadline.
      if (pending_since < 0) pending_since = i;
      ASSERT_LE(i - pending_since, deadline) << "recovery overdue at " << i;
    } else {
      pending_since = -1;
    }
  }
  const ReliableDiagnostics& d = protocol.diagnostics();
  EXPECT_GT(d.loss_events, 0) << "the loss model never engaged";
  EXPECT_GT(d.recoveries, 0);
  // Abandonment (all 17 attempts dirty) is the documented escape hatch,
  // not the norm: the overwhelming majority of events must recover.
  EXPECT_LE(d.abandoned, d.loss_events / 10);
}

/// Same bound for the HYZ monotonic counter: collect replies carry
/// lifetime totals, so a clean resync restores the exact count no matter
/// what was lost before.
TEST(ReliableProtocolTest, HyzRecoversExactlyUnderLoss) {
  hyz::HyzOptions options;
  options.epsilon = 0.2;
  options.delta = 1e-4;
  options.seed = 5;
  options.channel = LossChannel(0.1, 29);
  ReliableProtocol protocol(std::make_unique<hyz::HyzProtocol>(3, options),
                            ReliableOptions{});
  int64_t total = 0;
  int64_t seen_recoveries = 0;
  for (int i = 0; i < 3000; ++i) {
    ++total;
    protocol.ProcessUpdate(i % 3, 1.0);
    const ReliableDiagnostics& d = protocol.diagnostics();
    ASSERT_FALSE(d.unsupported);
    if (d.recoveries > seen_recoveries) {
      seen_recoveries = d.recoveries;
      EXPECT_EQ(protocol.Estimate(), static_cast<double>(total))
          << "after recovery at update " << i;
    }
  }
  EXPECT_GT(protocol.diagnostics().loss_events, 0);
  EXPECT_GT(protocol.diagnostics().recoveries, 0);
}

/// A crashed site silences a window of traffic; once it comes back, the
/// wrapper's retries land a clean collect round and the coordinator is
/// exact again (the crashed site kept counting locally).
TEST(ReliableProtocolTest, RecoversAfterCrashWindow) {
  ChannelConfig config;
  config.kind = ChannelConfig::Kind::kCrash;
  config.crashes = {CrashInterval{0, 100, 200}};
  ReliableProtocol protocol(MakeCounter(3, config, 23), ReliableOptions{});
  // Default schedule sums to 767 ticks >> the 100-tick crash window, so
  // retries are still pending when the site returns.
  ASSERT_GT(protocol.RecoveryDeadlineTicks(), 200);
  common::Rng rng = MakeRng(7);
  int64_t true_sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const int value = rng.Sign(0.5);
    true_sum += value;
    protocol.ProcessUpdate(i % 3, static_cast<double>(value));
  }
  const ReliableDiagnostics& d = protocol.diagnostics();
  EXPECT_GT(d.loss_events, 0);
  EXPECT_GT(d.recoveries, 0);
  EXPECT_EQ(d.abandoned, 0);
  // Long after the crash window, one more clean resync pins the estimate
  // to the exact sum (including everything site 0 counted while severed).
  EXPECT_TRUE(protocol.Resync());
  EXPECT_EQ(protocol.Estimate(), static_cast<double>(true_sum));
}

/// Wrapping a protocol without resync support must not spin: one attempt,
/// the unsupported flag latches, and later losses stop triggering events.
TEST(ReliableProtocolTest, UnsupportedInnerLatchesAfterOneAttempt) {
  auto inner =
      std::make_unique<baselines::ExactSyncProtocol>(2, LossChannel(0.2, 31));
  ReliableProtocol protocol(std::move(inner), ReliableOptions{});
  common::Rng rng = MakeRng(17);
  for (int i = 0; i < 500; ++i) {
    protocol.ProcessUpdate(i % 2, rng.Sign(0.5));
  }
  const ReliableDiagnostics& d = protocol.diagnostics();
  EXPECT_TRUE(d.unsupported);
  EXPECT_EQ(d.loss_events, 1);
  EXPECT_EQ(d.resyncs, 1);
  EXPECT_EQ(d.recoveries, 0);
  EXPECT_GT(protocol.stats().dropped, 1);  // losses kept happening quietly
}

}  // namespace
}  // namespace nmc::sim
