#include "sim/assignment.h"

#include <vector>

#include <gtest/gtest.h>

namespace nmc::sim {
namespace {

TEST(RoundRobinTest, Cycles) {
  RoundRobinAssignment psi(3);
  EXPECT_EQ(psi.NextSite(0, 1.0), 0);
  EXPECT_EQ(psi.NextSite(1, 1.0), 1);
  EXPECT_EQ(psi.NextSite(2, 1.0), 2);
  EXPECT_EQ(psi.NextSite(3, 1.0), 0);
  EXPECT_EQ(psi.NextSite(301, -1.0), 1);
}

TEST(SingleSiteTest, AlwaysTarget) {
  SingleSiteAssignment psi(4, 2);
  for (int64_t t = 0; t < 20; ++t) EXPECT_EQ(psi.NextSite(t, 1.0), 2);
}

TEST(UniformRandomTest, InRangeAndRoughlyBalanced) {
  UniformRandomAssignment psi(4, 123);
  std::vector<int64_t> counts(4, 0);
  const int n = 40000;
  for (int64_t t = 0; t < n; ++t) {
    const int s = psi.NextSite(t, 1.0);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++counts[static_cast<size_t>(s)];
  }
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.01);
  }
}

TEST(BlockCyclicTest, BlocksThenCycles) {
  BlockCyclicAssignment psi(2, 3);
  std::vector<int> expected{0, 0, 0, 1, 1, 1, 0, 0, 0};
  for (size_t t = 0; t < expected.size(); ++t) {
    EXPECT_EQ(psi.NextSite(static_cast<int64_t>(t), 1.0), expected[t]);
  }
}

TEST(SignSplitTest, RoutesByValueSign) {
  SignSplitAssignment psi(4);
  // Positives cycle over {0, 1}; negatives over {2, 3}.
  EXPECT_EQ(psi.NextSite(0, 1.0), 0);
  EXPECT_EQ(psi.NextSite(1, -1.0), 2);
  EXPECT_EQ(psi.NextSite(2, 1.0), 1);
  EXPECT_EQ(psi.NextSite(3, 1.0), 0);
  EXPECT_EQ(psi.NextSite(4, -1.0), 3);
  EXPECT_EQ(psi.NextSite(5, -1.0), 2);
}

TEST(SignSplitTest, SingleSiteDegenerates) {
  SignSplitAssignment psi(1);
  EXPECT_EQ(psi.NextSite(0, 1.0), 0);
  EXPECT_EQ(psi.NextSite(1, -1.0), 0);
}

TEST(SignSplitTest, OddSiteCountSplits) {
  SignSplitAssignment psi(3);  // half = 1: positives -> {0}, negatives -> {1, 2}
  EXPECT_EQ(psi.NextSite(0, 1.0), 0);
  EXPECT_EQ(psi.NextSite(1, 1.0), 0);
  EXPECT_EQ(psi.NextSite(2, -1.0), 1);
  EXPECT_EQ(psi.NextSite(3, -1.0), 2);
  EXPECT_EQ(psi.NextSite(4, -1.0), 1);
}

TEST(ZeroCrossingTest, HopsExactlyAtCrossings) {
  ZeroCrossingAssignment psi(3);
  // Prefix sums: 1, 0*, 1, 2, 1, 0*, -1, -2, -1, 0* — hops at the *.
  const std::vector<double> values{1, -1, 1, 1, -1, -1, -1, -1, 1, 1};
  const std::vector<int> expected{0, 1, 1, 1, 1, 2, 2, 2, 2, 0};
  for (size_t t = 0; t < values.size(); ++t) {
    EXPECT_EQ(psi.NextSite(static_cast<int64_t>(t), values[t]), expected[t])
        << "t=" << t;
  }
}

TEST(ZeroCrossingTest, NoCrossingNoHop) {
  ZeroCrossingAssignment psi(4);
  for (int t = 0; t < 50; ++t) EXPECT_EQ(psi.NextSite(t, 1.0), 0);
}

TEST(MakeAssignmentTest, KnownNames) {
  for (const char* name : {"round_robin", "random", "single", "block",
                           "sign_split", "zero_crossing"}) {
    auto psi = MakeAssignment(name, 4, 7);
    ASSERT_NE(psi, nullptr) << name;
    const int s = psi->NextSite(0, 1.0);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
}

TEST(MakeAssignmentTest, UnknownNameIsNull) {
  EXPECT_EQ(MakeAssignment("nope", 4, 7), nullptr);
}

}  // namespace
}  // namespace nmc::sim
