// The wire contract's pin: frame layout byte for byte, decode validation
// order, and the incremental reassembler's behavior on arbitrary chunk
// boundaries and on garbage. If any of these tests changes meaning, that
// is a wire-format change and kVersion must bump with it.

#include "runtime/wire.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/message.h"
#include "sim/message_wire.h"

namespace nmc::runtime::wire {
namespace {

sim::Message TestMessage() {
  sim::Message message;
  message.type = 2;
  message.a = -0.0;  // signed zero must survive bit for bit
  message.b = 1.5;
  message.u = 0x0123456789ABCDEF;
  message.v = -2;
  return message;
}

TEST(WireTest, GoldenFrameLayout) {
  const sim::Message message = TestMessage();
  uint8_t frame[kFrameBytes];
  EncodeFrame(message, frame);

  // Header: magic "NCM1" little-endian, version 1, length 36.
  EXPECT_EQ(frame[0], 'N');
  EXPECT_EQ(frame[1], 'C');
  EXPECT_EQ(frame[2], 'M');
  EXPECT_EQ(frame[3], '1');
  EXPECT_EQ(frame[4], 1);
  EXPECT_EQ(frame[5], 0);
  EXPECT_EQ(frame[6], 36);
  EXPECT_EQ(frame[7], 0);

  // Payload: type at 8, a at 12, b at 20, u at 28, v at 36 — the
  // PackMessage image verbatim.
  EXPECT_EQ(frame[8], 2);
  EXPECT_EQ(frame[9], 0);
  EXPECT_EQ(frame[10], 0);
  EXPECT_EQ(frame[11], 0);
  // -0.0 is the sign bit alone: 63 zero bits then 0x80 in the top byte.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(frame[12 + i], 0);
  EXPECT_EQ(frame[19], 0x80);
  // 1.5 = 0x3FF8000000000000.
  EXPECT_EQ(frame[26], 0xF8);
  EXPECT_EQ(frame[27], 0x3F);
  // u little-endian: low byte first.
  EXPECT_EQ(frame[28], 0xEF);
  EXPECT_EQ(frame[35], 0x01);
  // v = -2 two's complement.
  EXPECT_EQ(frame[36], 0xFE);
  for (int i = 37; i < 44; ++i) EXPECT_EQ(frame[i], 0xFF);
}

TEST(WireTest, RoundTripPreservesEveryBit) {
  sim::Message message = TestMessage();
  message.a = std::numeric_limits<double>::quiet_NaN();
  message.b = -std::numeric_limits<double>::infinity();
  uint8_t frame[kFrameBytes];
  EncodeFrame(message, frame);
  const Decoded decoded =
      DecodeFrame(std::span<const uint8_t>(frame, kFrameBytes));
  ASSERT_EQ(decoded.status, DecodeStatus::kOk);
  EXPECT_EQ(decoded.consumed, kFrameBytes);
  EXPECT_TRUE(sim::MessageBitsEqual(decoded.message, message));
  EXPECT_TRUE(std::isnan(decoded.message.a));
}

TEST(WireTest, TruncationAtEveryLengthNeedsMore) {
  uint8_t frame[kFrameBytes];
  EncodeFrame(TestMessage(), frame);
  for (size_t len = 0; len < kFrameBytes; ++len) {
    const Decoded decoded = DecodeFrame(std::span<const uint8_t>(frame, len));
    EXPECT_EQ(decoded.status, DecodeStatus::kNeedMore) << "len=" << len;
    EXPECT_EQ(decoded.consumed, 0u) << "len=" << len;
  }
}

TEST(WireTest, BadMagicVersionLengthRejectedInOrder) {
  uint8_t frame[kFrameBytes];
  EncodeFrame(TestMessage(), frame);

  uint8_t bad[kFrameBytes];
  std::copy(frame, frame + kFrameBytes, bad);
  bad[0] ^= 0xFF;
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(bad, kFrameBytes)).status,
            DecodeStatus::kBadMagic);

  std::copy(frame, frame + kFrameBytes, bad);
  bad[4] = 99;
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(bad, kFrameBytes)).status,
            DecodeStatus::kBadVersion);
  // Validation order: a wrong version is reported even when the frame is
  // truncated past the header.
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(bad, kHeaderBytes)).status,
            DecodeStatus::kBadVersion);

  std::copy(frame, frame + kFrameBytes, bad);
  bad[6] = 35;
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(bad, kFrameBytes)).status,
            DecodeStatus::kBadLength);

  // Nothing malformed is ever silently skipped.
  std::copy(frame, frame + kFrameBytes, bad);
  bad[1] ^= 0x01;
  const Decoded decoded = DecodeFrame(std::span<const uint8_t>(bad, 4));
  EXPECT_EQ(decoded.status, DecodeStatus::kBadMagic);
  EXPECT_EQ(decoded.consumed, 0u);
}

TEST(WireTest, ReassemblerHandlesArbitraryChunkBoundaries) {
  std::vector<uint8_t> stream;
  std::vector<sim::Message> sent;
  for (int i = 0; i < 17; ++i) {
    sim::Message message = TestMessage();
    message.u = i;
    message.a = static_cast<double>(i) * 0.5 - 3.0;
    sent.push_back(message);
    AppendFrame(message, &stream);
  }

  // Byte-by-byte is the worst chunking a socket can produce.
  FrameReassembler reassembler;
  std::vector<sim::Message> got;
  sim::Message out;
  for (const uint8_t byte : stream) {
    reassembler.Feed(std::span<const uint8_t>(&byte, 1));
    while (reassembler.Next(&out) == DecodeStatus::kOk) got.push_back(out);
  }
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_TRUE(sim::MessageBitsEqual(got[i], sent[i])) << "i=" << i;
  }
  EXPECT_FALSE(reassembler.corrupt());
  EXPECT_EQ(reassembler.buffered_bytes(), 0u);

  // Odd-sized chunks that never align with frame boundaries.
  FrameReassembler chunked;
  got.clear();
  for (size_t pos = 0; pos < stream.size();) {
    const size_t len = std::min<size_t>(13, stream.size() - pos);
    chunked.Feed(std::span<const uint8_t>(stream.data() + pos, len));
    pos += len;
    while (chunked.Next(&out) == DecodeStatus::kOk) got.push_back(out);
  }
  EXPECT_EQ(got.size(), sent.size());
}

TEST(WireTest, ReassemblerCorruptionIsSticky) {
  FrameReassembler reassembler;
  std::vector<uint8_t> stream;
  AppendFrame(TestMessage(), &stream);
  stream.push_back('X');  // not 'N': desynchronizes after the good frame
  stream.push_back('X');
  reassembler.Feed(stream);

  sim::Message out;
  ASSERT_EQ(reassembler.Next(&out), DecodeStatus::kOk);
  // Even a short stray prefix is rejected the moment it is inconsistent
  // with the magic — garbage never sits in kNeedMore.
  EXPECT_EQ(reassembler.Next(&out), DecodeStatus::kBadMagic);
  EXPECT_TRUE(reassembler.corrupt());

  // Sticky: even a valid frame fed afterwards cannot resynchronize.
  std::vector<uint8_t> good;
  AppendFrame(TestMessage(), &good);
  reassembler.Feed(good);
  EXPECT_EQ(reassembler.Next(&out), DecodeStatus::kBadMagic);
  EXPECT_TRUE(reassembler.corrupt());
}

TEST(WireTest, DecodeStatusNamesAreStable) {
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kOk), "ok");
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kNeedMore), "need-more");
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kBadMagic), "bad-magic");
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kBadVersion), "bad-version");
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kBadLength), "bad-length");
}

}  // namespace
}  // namespace nmc::runtime::wire
