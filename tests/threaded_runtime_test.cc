#include "runtime/threaded.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "registry/builtin.h"
#include "runtime/transport.h"
#include "sim/registry.h"
#include "streams/bernoulli.h"

namespace nmc::runtime {
namespace {

sim::ProtocolParams TestParams(int64_t n) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = n;
  params.seed = 41;
  return params;
}

std::unique_ptr<sim::Protocol> MakeCounter(int num_sites, int64_t n) {
  registry::RegisterBuiltinProtocols();
  return sim::ProtocolRegistry::Global().Create("counter", num_sites,
                                                TestParams(n));
}

TEST(TransportKindTest, ParseAndName) {
  TransportKind kind = TransportKind::kThreads;
  EXPECT_TRUE(ParseTransportKind("sim", &kind));
  EXPECT_EQ(kind, TransportKind::kSim);
  EXPECT_TRUE(ParseTransportKind("threads", &kind));
  EXPECT_EQ(kind, TransportKind::kThreads);
  EXPECT_FALSE(ParseTransportKind("simulate", &kind));
  EXPECT_EQ(kind, TransportKind::kThreads) << "failed parse must not write";
  EXPECT_STREQ(TransportKindName(TransportKind::kSim), "sim");
  EXPECT_STREQ(TransportKindName(TransportKind::kThreads), "threads");
}

TEST(ShardingTest, RoundRobinAndInterleaveAreInverse) {
  std::vector<double> stream;
  for (int i = 0; i < 23; ++i) stream.push_back(static_cast<double>(i));
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0].size(), 6u);
  EXPECT_EQ(shards[3].size(), 5u);
  EXPECT_EQ(shards[1][2], 9.0);  // t = 2*4 + 1
  EXPECT_EQ(InterleaveShards(shards), stream);
}

TEST(ThreadedRuntimeTest, ConsumesEveryUpdateAndPublishesFinalGeneration) {
  const int64_t n = 20000;
  const int k = 4;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.0, 77);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, k);
  const std::unique_ptr<sim::Protocol> protocol = MakeCounter(k, n);
  ThreadedRunOptions options;
  options.num_readers = 4;
  const ThreadedRunResult result =
      RunThreaded(protocol.get(), shards, options);
  EXPECT_EQ(result.updates, n);
  EXPECT_EQ(result.final_published.generation, n);
  EXPECT_GE(result.publishes, 1);
  EXPECT_EQ(result.generation_regressions, 0);
  EXPECT_GT(result.total_reads, 0);
}

// The tentpole's correctness claim: with k site threads and m concurrent
// readers, a captured run replays bit-identically through the
// deterministic simulator — every published estimate and every reader
// snapshot is the oracle's value at its generation.
TEST(ThreadedRuntimeTest, CapturedRunIsLinearizableAgainstSimOracle) {
  const int64_t n = 16384;
  const int k = 4;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.0, 91);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, k);
  const std::unique_ptr<sim::Protocol> protocol = MakeCounter(k, n);
  ThreadedRunOptions options;
  options.num_readers = 4;
  options.capture = true;
  const ThreadedRunResult result =
      RunThreaded(protocol.get(), shards, options);
  ASSERT_EQ(static_cast<int64_t>(result.transcript.size()), n);

  const std::unique_ptr<sim::Protocol> oracle = MakeCounter(k, n);
  const LinearizabilityReport report =
      CheckLinearizable(result, oracle.get());
  EXPECT_TRUE(report.linearizable) << report.failure;
  EXPECT_GE(report.publishes_checked, 1);
}

// A corrupted transcript (one update flipped) must be caught: the replayed
// trajectory diverges from some published estimate. Guards against the
// check silently accepting everything.
TEST(ThreadedRuntimeTest, LinearizabilityCheckDetectsCorruption) {
  const int64_t n = 4096;
  const int k = 2;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.0, 13);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, k);
  const std::unique_ptr<sim::Protocol> protocol = MakeCounter(k, n);
  ThreadedRunOptions options;
  options.capture = true;
  ThreadedRunResult result = RunThreaded(protocol.get(), shards, options);
  // Flip the sign of an early consumed update: the oracle's trajectory
  // diverges by 2 from there on, so some later publish must mismatch.
  ASSERT_GT(result.transcript.size(), 16u);
  result.transcript[7].value = -result.transcript[7].value;
  const std::unique_ptr<sim::Protocol> oracle = MakeCounter(k, n);
  const LinearizabilityReport report =
      CheckLinearizable(result, oracle.get());
  EXPECT_FALSE(report.linearizable);
  EXPECT_FALSE(report.failure.empty());
}

// Tiny mailboxes force constant producer backpressure (every push path
// hits the full-queue branch); the run must still consume everything.
TEST(ThreadedRuntimeTest, SurvivesTinyMailboxBackpressure) {
  const int64_t n = 8192;
  const int k = 3;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.0, 29);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, k);
  const std::unique_ptr<sim::Protocol> protocol = MakeCounter(k, n);
  ThreadedRunOptions options;
  options.mailbox_capacity = 4;
  options.max_pull = 2;
  options.capture = true;
  const ThreadedRunResult result =
      RunThreaded(protocol.get(), shards, options);
  EXPECT_EQ(result.updates, n);
  const std::unique_ptr<sim::Protocol> oracle = MakeCounter(k, n);
  EXPECT_TRUE(CheckLinearizable(result, oracle.get()).linearizable);
}

TEST(ThreadedRuntimeTest, EchoesFlowBackToSites) {
  const int64_t n = 32768;
  const int k = 2;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.0, 57);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, k);
  const std::unique_ptr<sim::Protocol> protocol = MakeCounter(k, n);
  ThreadedRunOptions options;
  options.echo_period = 512;
  const ThreadedRunResult result =
      RunThreaded(protocol.get(), shards, options);
  EXPECT_GT(result.echoes_sent, 0);
  EXPECT_LE(result.echoes_received, result.echoes_sent);
}

TEST(ThreadedRuntimeTest, SingleSiteNoReadersDegeneratesToSequentialFeed) {
  const int64_t n = 4096;
  const std::vector<double> stream = streams::BernoulliStream(n, 0.0, 3);
  const std::vector<std::vector<double>> shards = ShardRoundRobin(stream, 1);
  const std::unique_ptr<sim::Protocol> protocol = MakeCounter(1, n);
  ThreadedRunOptions options;
  options.capture = true;
  const ThreadedRunResult result =
      RunThreaded(protocol.get(), shards, options);
  EXPECT_EQ(result.updates, n);
  // With one site the consumption order IS the stream order.
  for (size_t t = 0; t < result.transcript.size(); ++t) {
    ASSERT_EQ(result.transcript[t].site, 0);
    ASSERT_EQ(result.transcript[t].value, stream[t]);
  }
}

class TrivialSumProtocol : public sim::Protocol {
 public:
  explicit TrivialSumProtocol(int num_sites) : num_sites_(num_sites) {}
  int num_sites() const override { return num_sites_; }
  void ProcessUpdate(int, double value) override { sum_ += value; }
  double Estimate() const override { return sum_; }
  const sim::MessageStats& stats() const override { return stats_; }

 private:
  int num_sites_;
  double sum_ = 0.0;
  sim::MessageStats stats_;
};

TEST(TransportSupportsTest, ThreadSafeTraitGatesTheThreadedBackend) {
  registry::RegisterBuiltinProtocols();
  sim::ProtocolRegistry& registry = sim::ProtocolRegistry::Global();

  // Builtins default to thread_safe and run on both backends.
  EXPECT_TRUE(TransportSupports(TransportKind::kSim, "counter"));
  EXPECT_TRUE(TransportSupports(TransportKind::kThreads, "counter"));
  EXPECT_FALSE(TransportSupports(TransportKind::kSim, "no_such_protocol"));
  EXPECT_FALSE(TransportSupports(TransportKind::kThreads, "no_such_protocol"));

  // A protocol that declares itself sim-only is quarantined from threads.
  sim::ProtocolTraits hostile;
  hostile.thread_safe = false;
  registry.Register(
      "test_sim_only_protocol", hostile,
      [](int num_sites, const sim::ProtocolParams&) {
        return std::make_unique<TrivialSumProtocol>(num_sites);
      });
  EXPECT_TRUE(TransportSupports(TransportKind::kSim, "test_sim_only_protocol"));
  EXPECT_FALSE(
      TransportSupports(TransportKind::kThreads, "test_sim_only_protocol"));

  // CreateForTransport builds it for the sim backend.
  const std::unique_ptr<sim::Protocol> protocol = CreateForTransport(
      TransportKind::kSim, "test_sim_only_protocol", 2, TestParams(128));
  EXPECT_EQ(protocol->num_sites(), 2);
}

TEST(CreateForTransportTest, BuildsRegisteredProtocolForThreads) {
  registry::RegisterBuiltinProtocols();
  const std::unique_ptr<sim::Protocol> protocol = CreateForTransport(
      TransportKind::kThreads, "counter", 3, TestParams(1024));
  ASSERT_NE(protocol, nullptr);
  EXPECT_EQ(protocol->num_sites(), 3);
}

}  // namespace
}  // namespace nmc::runtime
