// BatchRng contract tests: the lane decomposition onto scalar common::Rng
// streams, bit-identity of every available SIMD dispatch level against the
// scalar oracle, slicing invariance of the logical stream, distributional
// sanity (chi-square) of the bulk Bernoulli/uniform/geometric fills, and
// child-stream independence.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/batch_rng.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"

namespace nmc {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

using common::BatchRng;
using common::kBatchRngLanes;
using common::SimdLevel;

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (common::SimdLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

/// Restores auto-detection even when an assertion fails mid-test.
struct ForcedLevel {
  explicit ForcedLevel(SimdLevel level) {
    EXPECT_TRUE(common::ForceSimdLevel(level))
        << "level " << common::SimdLevelName(level) << " unavailable";
  }
  ~ForcedLevel() { common::ResetSimdLevel(); }
};

TEST(BatchRngTest, LaneDecomposition) {
  // The logical stream is the round-robin interleave of four scalar Rng
  // streams seeded with LaneSeed(seed, lane) — checked against common::Rng
  // itself, which pins the whole generator to the scalar implementation.
  const uint64_t seed = 12345;
  BatchRng batch(seed);
  std::vector<uint64_t> got(kBatchRngLanes * 64);
  batch.FillU64(std::span<uint64_t>(got));
  for (int lane = 0; lane < kBatchRngLanes; ++lane) {
    common::Rng rng = MakeRng(BatchRng::LaneSeed(seed, lane));
    for (size_t i = static_cast<size_t>(lane); i < got.size();
         i += kBatchRngLanes) {
      ASSERT_EQ(got[i], rng.NextU64()) << "lane " << lane << " element " << i;
    }
  }
}

TEST(BatchRngTest, NextU64MatchesFill) {
  BatchRng a(9);
  BatchRng b(9);
  std::vector<uint64_t> bulk(37);
  a.FillU64(std::span<uint64_t>(bulk));
  for (const uint64_t expected : bulk) {
    EXPECT_EQ(b.NextU64(), expected);
  }
}

TEST(BatchRngTest, EveryLevelBitIdenticalToScalar) {
  // The scalar kernel is the oracle; every compiled-and-runnable vector
  // level must reproduce it bit for bit on every fill type, including
  // ragged lengths that exercise the carry buffer and vector tails.
  const size_t kLen = 981;  // deliberately not a multiple of 4
  std::vector<uint64_t> u64_want(kLen);
  std::vector<double> uni_want(kLen), sign_want(kLen);
  std::vector<int64_t> gap_want(kLen);
  {
    ForcedLevel forced(SimdLevel::kScalar);
    BatchRng rng(77);
    rng.FillU64(std::span<uint64_t>(u64_want));
    rng.FillUniform(std::span<double>(uni_want));
    rng.FillSigns(std::span<double>(sign_want), 0.3);
    rng.FillGeometricGaps(std::span<int64_t>(gap_want), 1.0 / 16.0);
  }
  for (const SimdLevel level : AvailableLevels()) {
    SCOPED_TRACE(common::SimdLevelName(level));
    ForcedLevel forced(level);
    std::vector<uint64_t> u64_got(kLen);
    std::vector<double> uni_got(kLen), sign_got(kLen);
    std::vector<int64_t> gap_got(kLen);
    BatchRng rng(77);
    rng.FillU64(std::span<uint64_t>(u64_got));
    rng.FillUniform(std::span<double>(uni_got));
    rng.FillSigns(std::span<double>(sign_got), 0.3);
    rng.FillGeometricGaps(std::span<int64_t>(gap_got), 1.0 / 16.0);
    EXPECT_EQ(u64_got, u64_want);
    for (size_t i = 0; i < kLen; ++i) {
      ASSERT_EQ(uni_got[i], uni_want[i]) << i;   // bitwise, not approximate
      ASSERT_EQ(sign_got[i], sign_want[i]) << i;
      ASSERT_EQ(gap_got[i], gap_want[i]) << i;
    }
  }
}

TEST(BatchRngTest, SlicingInvariance) {
  // Filling in arbitrary chunk sizes consumes the same logical stream as
  // one bulk fill — on every dispatch level.
  const size_t kTotal = 2048;
  std::vector<double> want(kTotal);
  {
    ForcedLevel forced(SimdLevel::kScalar);
    BatchRng rng(31);
    rng.FillUniform(std::span<double>(want));
  }
  const size_t kChunks[] = {1, 2, 3, 4, 5, 7, 981};
  for (const SimdLevel level : AvailableLevels()) {
    SCOPED_TRACE(common::SimdLevelName(level));
    ForcedLevel forced(level);
    BatchRng rng(31);
    std::vector<double> got(kTotal);
    size_t pos = 0, chunk_index = 0;
    while (pos < kTotal) {
      const size_t len =
          std::min(kChunks[chunk_index++ % std::size(kChunks)], kTotal - pos);
      rng.FillUniform(std::span<double>(got).subspan(pos, len));
      pos += len;
    }
    for (size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(got[i], want[i]) << "element " << i;
    }
  }
}

TEST(BatchRngTest, UniformChiSquareAndRange) {
  const size_t kN = 1 << 16;
  const int kBuckets = 64;
  BatchRng rng(2024);
  std::vector<double> u(kN);
  rng.FillUniform(std::span<double>(u));
  std::vector<int64_t> counts(kBuckets, 0);
  for (const double x : u) {
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    counts[static_cast<size_t>(x * kBuckets)] += 1;
  }
  const double expected = static_cast<double>(kN) / kBuckets;
  double chi2 = 0.0;
  for (const int64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom: mean 63, std ~11.2; 120 is ~5 sigma.
  EXPECT_LT(chi2, 120.0) << "uniform fill badly non-uniform";
}

TEST(BatchRngTest, SignsMatchBernoulliProbability) {
  const size_t kN = 1 << 16;
  const double p_plus = 0.3;
  BatchRng rng(55);
  std::vector<double> s(kN);
  rng.FillSigns(std::span<double>(s), p_plus);
  int64_t plus = 0;
  for (const double x : s) {
    ASSERT_TRUE(x == 1.0 || x == -1.0);
    if (x == 1.0) ++plus;
  }
  // Binomial(kN, 0.3): std ~ sqrt(kN * .3 * .7) ~ 117; allow ~5 sigma.
  const double got_p = static_cast<double>(plus) / kN;
  EXPECT_NEAR(got_p, p_plus, 5.0 * std::sqrt(p_plus * (1 - p_plus) / kN));
}

TEST(BatchRngTest, GeometricGapsChiSquare) {
  // Gap g has P[g] = p (1-p)^g. Chi-square over the first few cells plus a
  // tail cell, and a mean check (E[g] = (1-p)/p).
  const size_t kN = 1 << 16;
  const double p = 1.0 / 16.0;
  BatchRng rng(808);
  std::vector<int64_t> gaps(kN);
  rng.FillGeometricGaps(std::span<int64_t>(gaps), p);
  const int kCells = 32;
  std::vector<int64_t> counts(kCells + 1, 0);
  double sum = 0.0;
  for (const int64_t g : gaps) {
    ASSERT_GE(g, 0);
    counts[static_cast<size_t>(std::min<int64_t>(g, kCells))] += 1;
    sum += static_cast<double>(g);
  }
  double chi2 = 0.0;
  double tail_p = 1.0;
  for (int c = 0; c < kCells; ++c) {
    const double cell_p = p * std::pow(1.0 - p, c);
    tail_p -= cell_p;
    const double expected = cell_p * static_cast<double>(kN);
    const double d = static_cast<double>(counts[static_cast<size_t>(c)]) -
                     expected;
    chi2 += d * d / expected;
  }
  const double tail_expected = tail_p * static_cast<double>(kN);
  const double tail_d =
      static_cast<double>(counts[kCells]) - tail_expected;
  chi2 += tail_d * tail_d / tail_expected;
  // 32 degrees of freedom: mean 32, std 8; 75 is ~5 sigma.
  EXPECT_LT(chi2, 75.0) << "geometric gaps badly non-geometric";
  const double mean = sum / static_cast<double>(kN);
  const double want_mean = (1.0 - p) / p;  // 15
  EXPECT_NEAR(mean, want_mean, 0.5);
}

TEST(BatchRngTest, GeometricClampsConsumeNoRandomness) {
  BatchRng a(4);
  BatchRng b(4);
  std::vector<int64_t> gaps(17);
  a.FillGeometricGaps(std::span<int64_t>(gaps), 0.0);
  for (const int64_t g : gaps) EXPECT_EQ(g, common::kBatchRngInfiniteGap);
  a.FillGeometricGaps(std::span<int64_t>(gaps), 1.5);
  for (const int64_t g : gaps) EXPECT_EQ(g, 0);
  // The stream position is untouched: a and b still agree.
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(BatchRngTest, ChildStreamsAreIndependent) {
  // A child must neither replay the parent stream nor correlate with it.
  BatchRng parent(99);
  BatchRng child = parent.Child();
  const size_t kN = 1 << 14;
  std::vector<double> pu(kN), cu(kN);
  parent.FillUniform(std::span<double>(pu));
  child.FillUniform(std::span<double>(cu));
  double corr = 0.0;
  int64_t equal = 0;
  for (size_t i = 0; i < kN; ++i) {
    corr += (pu[i] - 0.5) * (cu[i] - 0.5);
    if (pu[i] == cu[i]) ++equal;
  }
  corr /= static_cast<double>(kN) / 12.0;  // normalize by Var[U(0,1)]
  EXPECT_EQ(equal, 0) << "child replays parent elements";
  // Correlation of kN iid pairs: std ~ 1/sqrt(kN) ~ 0.008; allow 5 sigma.
  EXPECT_LT(std::abs(corr), 0.04);
  // Distinct seeds give distinct children.
  BatchRng other(100);
  EXPECT_NE(other.Child().NextU64(), BatchRng(99).Child().NextU64());
}

TEST(BatchRngTest, ActiveLevelIsAvailable) {
  EXPECT_TRUE(common::SimdLevelAvailable(common::ActiveSimdLevel()));
  EXPECT_TRUE(common::SimdLevelAvailable(SimdLevel::kScalar));
}

}  // namespace
}  // namespace nmc
