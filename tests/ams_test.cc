#include "sketch/ams_sketch.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "streams/items.h"

namespace nmc::sketch {
namespace {

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(AmsSketchTest, SingleItemF2IsCountSquared) {
  AmsSketch sketch(5, 32, 1);
  for (int i = 0; i < 10; ++i) sketch.Update(42, 1);
  // One item of count 10: F2 = 100 exactly (no collisions possible).
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 100.0);
}

TEST(AmsSketchTest, DeletionsCancelExactly) {
  AmsSketch sketch(3, 16, 2);
  for (uint64_t item = 0; item < 20; ++item) sketch.Update(item, 1);
  for (uint64_t item = 0; item < 20; ++item) sketch.Update(item, -1);
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 0.0);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 16; ++c) EXPECT_DOUBLE_EQ(sketch.Cell(r, c), 0.0);
  }
}

TEST(AmsSketchTest, EstimatesF2OnTurnstileStream) {
  const int64_t universe = 128;
  const auto updates = streams::ZipfTurnstileStream(20000, universe, 1.1,
                                                    0.25, 3);
  const int64_t exact = streams::ExactF2(updates, universe);
  AmsSketch sketch(7, 256, 4);
  for (const auto& u : updates) {
    sketch.Update(static_cast<uint64_t>(u.item), u.sign);
  }
  EXPECT_NEAR(sketch.EstimateF2(), static_cast<double>(exact),
              0.25 * static_cast<double>(exact));
}

TEST(AmsSketchTest, RowEstimateIsUnbiased) {
  // Average the single-row estimate over independent sketches; it should
  // match exact F2 within the standard error.
  const int64_t universe = 64;
  const auto updates = streams::ZipfInsertStream(3000, universe, 1.0, 5);
  const int64_t exact = streams::ExactF2(updates, universe);
  common::RunningStat stat;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    AmsSketch sketch(1, 64, 100 + seed);
    for (const auto& u : updates) {
      sketch.Update(static_cast<uint64_t>(u.item), u.sign);
    }
    stat.Add(sketch.EstimateF2());
  }
  EXPECT_NEAR(stat.mean(), static_cast<double>(exact),
              4.0 * stat.stderr_mean());
}

TEST(AmsSketchTest, MoreColumnsTightenTheEstimate) {
  const int64_t universe = 256;
  const auto updates = streams::ZipfInsertStream(10000, universe, 1.0, 7);
  const double exact = static_cast<double>(streams::ExactF2(updates, universe));
  auto spread = [&](int cols) {
    common::RunningStat stat;
    for (uint64_t seed = 0; seed < 30; ++seed) {
      AmsSketch sketch(1, cols, 1000 + seed);
      for (const auto& u : updates) {
        sketch.Update(static_cast<uint64_t>(u.item), u.sign);
      }
      stat.Add(std::fabs(sketch.EstimateF2() - exact) / exact);
    }
    return stat.mean();
  };
  EXPECT_LT(spread(512), spread(8));
}

TEST(AmsSketchTest, UpdateTouchesOneCellPerRow) {
  AmsSketch sketch(4, 8, 9);
  sketch.Update(7, 1);
  for (int r = 0; r < 4; ++r) {
    int nonzero = 0;
    for (int c = 0; c < 8; ++c) {
      if (sketch.Cell(r, c) != 0.0) ++nonzero;
    }
    EXPECT_EQ(nonzero, 1) << "row " << r;
  }
}

TEST(AmsSketchTest, HashAccessorsConsistentWithUpdates) {
  AmsSketch sketch(2, 16, 11);
  sketch.Update(99, 1);
  for (int r = 0; r < 2; ++r) {
    const int64_t c = sketch.BucketOf(r, 99);
    EXPECT_DOUBLE_EQ(sketch.Cell(r, static_cast<int>(c)),
                     static_cast<double>(sketch.SignOf(r, 99)));
  }
}

}  // namespace
}  // namespace nmc::sketch
