#include "sketch/hash.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::sketch {
namespace {

TEST(KWiseHashTest, DeterministicInSeed) {
  KWiseHash a(4, 7);
  KWiseHash b(4, 7);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(a.Hash(x), b.Hash(x));
}

TEST(KWiseHashTest, DifferentSeedsDiffer) {
  KWiseHash a(4, 1);
  KWiseHash b(4, 2);
  int differing = 0;
  for (uint64_t x = 0; x < 100; ++x) {
    if (a.Hash(x) != b.Hash(x)) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(KWiseHashTest, HashBelowPrime) {
  KWiseHash h(4, 3);
  const uint64_t prime = (1ULL << 61) - 1;
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Hash(x * 1234567), prime);
}

TEST(KWiseHashTest, BucketInRange) {
  KWiseHash h(4, 5);
  for (uint64_t x = 0; x < 1000; ++x) {
    const int64_t b = h.Bucket(x, 17);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 17);
  }
}

TEST(KWiseHashTest, BucketsApproximatelyUniform) {
  KWiseHash h(4, 11);
  const int64_t range = 16;
  std::vector<int64_t> counts(static_cast<size_t>(range), 0);
  const int n = 64000;
  for (uint64_t x = 0; x < static_cast<uint64_t>(n); ++x) {
    ++counts[static_cast<size_t>(h.Bucket(x, range))];
  }
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 16.0, 0.01);
  }
}

TEST(KWiseHashTest, SignsBalanced) {
  KWiseHash h(4, 13);
  int64_t sum = 0;
  const int n = 100000;
  for (uint64_t x = 0; x < static_cast<uint64_t>(n); ++x) {
    const int s = h.Sign(x);
    ASSERT_TRUE(s == 1 || s == -1);
    sum += s;
  }
  EXPECT_LT(std::fabs(static_cast<double>(sum)) / n, 0.02);
}

TEST(KWiseHashTest, PairwiseSignProductsBalanced) {
  // 4-wise independence implies E[g(x) g(y)] = 0 for x != y; averaged over
  // many hash draws, sign products should vanish.
  double acc = 0.0;
  const int draws = 2000;
  for (int d = 0; d < draws; ++d) {
    KWiseHash h(4, 100 + static_cast<uint64_t>(d));
    acc += static_cast<double>(h.Sign(12345) * h.Sign(67890));
  }
  EXPECT_LT(std::fabs(acc) / draws, 0.06);
}

TEST(KWiseHashTest, FourWiseSignProductsBalanced) {
  // E[g(a) g(b) g(c) g(d)] = 0 for distinct items under 4-wise
  // independence — the exact moment the F2 variance bound needs.
  double acc = 0.0;
  const int draws = 2000;
  for (int d = 0; d < draws; ++d) {
    KWiseHash h(4, 5000 + static_cast<uint64_t>(d));
    acc += static_cast<double>(h.Sign(1) * h.Sign(2) * h.Sign(3) * h.Sign(4));
  }
  EXPECT_LT(std::fabs(acc) / draws, 0.06);
}

TEST(KWiseHashTest, IndependenceReported) {
  EXPECT_EQ(KWiseHash(2, 1).independence(), 2);
  EXPECT_EQ(KWiseHash(4, 1).independence(), 4);
}

}  // namespace
}  // namespace nmc::sketch
