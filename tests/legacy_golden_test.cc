// Legacy-mode compatibility gate: with the legacy scalar stream generators
// (GenMode::kLegacyScalar) and per-coin samplers (SamplerMode::kLegacyCoins)
// the counter must reproduce the pre-vectorization TrackingResult fields
// bit for bit. The hex-float constants below were captured from the
// scalar implementation before BatchRng existed; any drift in them means a
// supposedly-compatible code path changed an RNG draw, an FP operation, or
// a message schedule. Timing is deliberately not pinned — only results.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"

namespace nmc {
namespace {

struct Golden {
  double mu = 0.0;
  int k = 1;
  int64_t messages = 0;
  int64_t broadcasts = 0;
  double max_rel_error = 0.0;
  double final_sum = 0.0;
  double final_estimate = 0.0;
};

// Captured with: n = 1<<15, BernoulliStream(n, mu, /*seed=*/21,
// kLegacyScalar), CounterOptions{epsilon=0.25, horizon_n=n, seed=11,
// sampler=kLegacyCoins}, RoundRobinAssignment(k), TrackingOptions{
// epsilon=0.25, batch_size=1}.
const Golden kGolden[] = {
    {0.0, 1, 25604, 0, 0x1.7dd49c34115b2p-4, -0x1p+2, -0x1p+2},
    {0.0, 8, 65536, 0, 0x0p+0, -0x1p+2, -0x1p+2},
    {0.75, 1, 583, 0, 0x1.09691c8cffd73p-4, 0x1.7ee8p+14, 0x1.7cb8p+14},
    {0.75, 8, 10426, 791, 0x1.a854bc5fd111cp-4, 0x1.7ee8p+14, 0x1.7af4p+14},
};

sim::TrackingResult RunLegacy(double mu, int k, int batch_size) {
  const int64_t n = 1 << 15;
  const auto stream =
      streams::BernoulliStream(n, mu, 21, streams::GenMode::kLegacyScalar);
  core::CounterOptions options;
  options.epsilon = 0.25;
  options.horizon_n = n;
  options.seed = 11;
  options.sampler = common::SamplerMode::kLegacyCoins;
  core::NonMonotonicCounter counter(k, options);
  sim::RoundRobinAssignment psi(k);
  sim::TrackingOptions tracking;
  tracking.epsilon = 0.25;
  tracking.batch_size = batch_size;
  return sim::RunTracking(stream, &psi, &counter, tracking);
}

TEST(LegacyGoldenTest, LegacyModeReproducesPreVectorizationResults) {
  for (const Golden& want : kGolden) {
    SCOPED_TRACE(::testing::Message() << "mu=" << want.mu << " k=" << want.k);
    const auto got = RunLegacy(want.mu, want.k, /*batch_size=*/1);
    EXPECT_EQ(got.messages, want.messages);
    EXPECT_EQ(got.broadcasts, want.broadcasts);
    EXPECT_EQ(got.violation_steps, 0);
    EXPECT_EQ(got.max_rel_error, want.max_rel_error);  // bitwise
    EXPECT_EQ(got.final_sum, want.final_sum);
    EXPECT_EQ(got.final_estimate, want.final_estimate);
  }
}

TEST(LegacyGoldenTest, LegacyModeBatchSizeInvariant) {
  // The batched pump must not change legacy-mode results either — batching
  // groups calls, it does not alter any draw or message.
  for (const Golden& want : kGolden) {
    SCOPED_TRACE(::testing::Message() << "mu=" << want.mu << " k=" << want.k);
    const auto got = RunLegacy(want.mu, want.k, /*batch_size=*/256);
    EXPECT_EQ(got.messages, want.messages);
    EXPECT_EQ(got.broadcasts, want.broadcasts);
    EXPECT_EQ(got.max_rel_error, want.max_rel_error);
    EXPECT_EQ(got.final_sum, want.final_sum);
    EXPECT_EQ(got.final_estimate, want.final_estimate);
  }
}

}  // namespace
}  // namespace nmc
