// Parameterized property sweeps for the HYZ monotonic counter: the
// tracking invariant must hold over the full (mode, k, eps, seed) grid,
// and cost must order sensibly in eps.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "hyz/hyz_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"

namespace nmc::hyz {
namespace {

std::vector<double> Ones(int64_t n) {
  return std::vector<double>(static_cast<size_t>(n), 1.0);
}

// (mode, k, eps, seed).
using HyzParam = std::tuple<int, int, double, uint64_t>;

class HyzInvariantTest : public ::testing::TestWithParam<HyzParam> {};

TEST_P(HyzInvariantTest, TrackingHoldsEverywhere) {
  const auto& [mode_int, k, epsilon, seed] = GetParam();
  const int64_t n = 16384;
  HyzOptions options;
  options.mode = mode_int == 0 ? HyzMode::kSampled : HyzMode::kDeterministic;
  options.epsilon = epsilon;
  options.delta = 1e-6;
  options.seed = seed;
  HyzProtocol counter(k, options);
  sim::RoundRobinAssignment psi(k);
  sim::TrackingOptions tracking;
  tracking.epsilon = epsilon;
  const auto result = sim::RunTracking(Ones(n), &psi, &counter, tracking);
  EXPECT_EQ(result.violation_steps, 0)
      << "mode=" << mode_int << " k=" << k << " eps=" << epsilon
      << " seed=" << seed;
  EXPECT_DOUBLE_EQ(result.final_sum, static_cast<double>(n));
  // Sanity: never more than one message per update plus round overheads.
  EXPECT_LE(result.messages, 2 * n + 100 * (3 * k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HyzInvariantTest,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(1, 3, 8, 32),
                       ::testing::Values(0.02, 0.1, 0.3),
                       ::testing::Values<uint64_t>(1, 2)),
    [](const ::testing::TestParamInfo<HyzParam>& param_info) {
      return std::string(std::get<0>(param_info.param) == 0 ? "sampled" : "det") +
             "_k" + std::to_string(std::get<1>(param_info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 100)) +
             "_s" + std::to_string(std::get<3>(param_info.param));
    });

TEST(HyzOrderingTest, CostMonotoneInEpsilonBothModes) {
  const int64_t n = 40000;
  for (HyzMode mode : {HyzMode::kSampled, HyzMode::kDeterministic}) {
    int64_t previous = 1LL << 60;
    for (double epsilon : {0.02, 0.08, 0.32}) {
      HyzOptions options;
      options.mode = mode;
      options.epsilon = epsilon;
      options.seed = 7;
      HyzProtocol counter(4, options);
      sim::RoundRobinAssignment psi(4);
      sim::TrackingOptions tracking;
      const auto result = sim::RunTracking(Ones(n), &psi, &counter, tracking);
      EXPECT_LE(result.messages, previous)
          << "mode=" << static_cast<int>(mode) << " eps=" << epsilon;
      previous = result.messages;
    }
  }
}

TEST(HyzOrderingTest, LooseningDeltaReducesSampledCost) {
  const int64_t n = 40000;
  auto cost_at = [&](double delta) {
    HyzOptions options;
    options.epsilon = 0.1;
    options.delta = delta;
    options.seed = 9;
    HyzProtocol counter(4, options);
    sim::RoundRobinAssignment psi(4);
    sim::TrackingOptions tracking;
    return sim::RunTracking(Ones(n), &psi, &counter, tracking).messages;
  };
  EXPECT_LT(cost_at(1e-2), cost_at(1e-12));
}

}  // namespace
}  // namespace nmc::hyz
