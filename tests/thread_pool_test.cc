#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nmc::common {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  auto future = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ResultsIndependentOfCompletionOrder) {
  // Tasks finish in an order unrelated to submission (earlier tasks sleep
  // longer), but each future still yields its own task's value.
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([i]() {
      std::this_thread::sleep_for(std::chrono::microseconds((16 - i) * 50));
      return i * i;
    }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 1; });
  auto boom = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(
      {
        try {
          boom.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotKillWorker) {
  ThreadPool pool(1);
  auto boom = pool.Submit([]() { throw std::runtime_error("first"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The single worker must survive to run the next task.
  auto after = pool.Submit([]() { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPoolTest, TeardownDrainsPendingWork) {
  // Submit far more tasks than workers and destroy the pool immediately:
  // every future must still become ready with its result (the destructor
  // drains the queue rather than dropping it).
  std::atomic<int> executed{0};
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([i, &executed]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1, std::memory_order_relaxed);
        return i;
      }));
    }
  }  // ~ThreadPool with most tasks still queued
  EXPECT_EQ(executed.load(), 64);
  for (int i = 0; i < 64; ++i) {
    auto& future = futures[static_cast<size_t>(i)];
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get(), i);
  }
}

TEST(ThreadPoolTest, ManyConcurrentSubmitters) {
  // Submit from several threads at once; all results must arrive intact.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &total, s]() {
      std::vector<std::future<int>> futures;
      for (int i = 0; i < 32; ++i) {
        futures.push_back(pool.Submit([s, i]() { return s * 100 + i; }));
      }
      for (auto& future : futures) total.fetch_add(future.get());
    });
  }
  for (auto& submitter : submitters) submitter.join();
  int64_t expected = 0;
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 32; ++i) expected += s * 100 + i;
  }
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace nmc::common
