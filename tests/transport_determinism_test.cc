// Determinism pin for the sim transport: with --transport=sim nothing in
// this PR's concurrent runtime touches the deterministic simulator, and
// these goldens prove it stays bit-identical. One config per tracked bench
// family (e2 multisite / e8 adversarial / e11 monotonic / e14 faulty
// channel), built through the registry exactly as the benches build them,
// pinned to the message count and the hex-float final state produced
// before the threaded backend existed. A mismatch means the sim oracle
// moved — which invalidates both the perf trajectory and the
// linearizability check's ground truth.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "registry/builtin.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "sim/registry.h"
#include "streams/adversarial.h"
#include "streams/bernoulli.h"
#include "streams/permutation.h"

namespace nmc {
namespace {

struct Golden {
  int64_t messages = 0;
  int64_t violation_steps = 0;
  double final_sum = 0.0;
  double final_estimate = 0.0;
};

sim::TrackingResult RunCase(const std::string& protocol_name,
                            const sim::ProtocolParams& params, int num_sites,
                            const std::vector<double>& stream) {
  registry::RegisterBuiltinProtocols();
  std::unique_ptr<sim::Protocol> protocol =
      sim::ProtocolRegistry::Global().Create(protocol_name, num_sites,
                                             params);
  sim::RoundRobinAssignment psi(num_sites);
  sim::TrackingOptions tracking;
  tracking.epsilon = params.epsilon;
  return sim::RunTracking(stream, &psi, protocol.get(), tracking);
}

void ExpectGolden(const sim::TrackingResult& result, const Golden& golden) {
  EXPECT_EQ(result.messages, golden.messages);
  EXPECT_EQ(result.violation_steps, golden.violation_steps);
  // Bitwise, not approximate: the sim transport is the oracle and must not
  // drift by an ulp. (%a below prints the goldens for re-pinning if a
  // *deliberate* protocol change moves them.)
  EXPECT_EQ(result.final_sum, golden.final_sum);
  EXPECT_EQ(result.final_estimate, golden.final_estimate);
  if (result.final_estimate != golden.final_estimate ||
      result.messages != golden.messages) {
    std::printf("golden update: {%lld, %lld, %a, %a}\n",
                static_cast<long long>(result.messages),
                static_cast<long long>(result.violation_steps),
                result.final_sum, result.final_estimate);
  }
}

// E2-shaped: 8-site counter, zero-drift Bernoulli walk.
TEST(TransportDeterminismTest, MultisiteCounterPinned) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = 1 << 15;
  params.seed = 17;
  const std::vector<double> stream =
      streams::BernoulliStream(1 << 15, 0.0, 300);
  const sim::TrackingResult result = RunCase("counter", params, 8, stream);
  ExpectGolden(result, Golden{61472, 0, 0x1.2cp+7, 0x1.2cp+7});
}

// E8-shaped: adversarial alternating stream, randomly permuted.
TEST(TransportDeterminismTest, AdversarialPermutedPinned) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = 1 << 14;
  params.seed = 31;
  const std::vector<double> stream =
      streams::RandomlyPermuted(streams::AlternatingStream(1 << 14), 1100);
  const sim::TrackingResult result = RunCase("counter", params, 4, stream);
  ExpectGolden(result, Golden{32768, 0, 0x0p+0, 0x0p+0});
}

// E11-shaped: the monotonic special case on the HYZ counter.
TEST(TransportDeterminismTest, MonotonicHyzPinned) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = 1 << 14;
  params.seed = 4500;
  const std::vector<double> stream(1 << 14, 1.0);
  const sim::TrackingResult result = RunCase("hyz", params, 4, stream);
  ExpectGolden(result, Golden{903, 0, 0x1p+14, 0x1.fap+13});
}

// E14-shaped: counter over a lossy duplicating channel.
TEST(TransportDeterminismTest, FaultyChannelPinned) {
  sim::ProtocolParams params;
  params.epsilon = 0.25;
  params.horizon_n = 1 << 14;
  params.seed = 1400;
  params.channel.kind = sim::ChannelConfig::Kind::kLoss;
  params.channel.loss = 0.05;
  params.channel.duplicate = 0.02;
  params.channel.seed = 9;
  const std::vector<double> stream =
      streams::BernoulliStream(1 << 14, 0.3, 1500);
  // The lossy channel (no resync wrapper) deliberately breaks tracking —
  // 15888 violation steps is the *pinned deterministic outcome* of this
  // seed, not a quality claim; E14 proper layers ReliableProtocol on top.
  const sim::TrackingResult result = RunCase("counter", params, 4, stream);
  ExpectGolden(result, Golden{3244, 15888, 0x1.24cp+12, 0x1.22p+7});
}

}  // namespace
}  // namespace nmc
