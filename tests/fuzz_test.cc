// Deterministic configuration fuzzing: pseudo-random (but fixed-seed)
// combinations of stream model, k, epsilon, options, and assignment
// policy, each checked against the tracking invariant. Catches parameter
// interactions no hand-written grid covers.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nonmonotonic_counter.h"
#include "sim/assignment.h"
#include "sim/harness.h"
#include "streams/bernoulli.h"
#include "streams/fbm.h"
#include "streams/permutation.h"

namespace nmc {
namespace {

/// Every seed in this file routes through a test-local factory whose
/// construction site takes the seed as a traceable parameter; a
/// statistical flake is then fixed by varying one literal at the call.
common::Rng MakeRng(uint64_t seed) { return common::Rng(seed); }

struct FuzzConfig {
  std::string model;
  int k = 1;
  double epsilon = 0.1;
  double mu = 0.0;
  double hurst = 0.75;
  std::string psi;
  bool variance_adaptive = false;
  bool drift_mode = false;
  core::StagePolicy stage_policy = core::StagePolicy::kAuto;
  uint64_t seed = 0;

  std::string ToString() const {
    return model + " k=" + std::to_string(k) +
           " eps=" + std::to_string(epsilon) + " mu=" + std::to_string(mu) +
           " psi=" + psi + " va=" + std::to_string(variance_adaptive) +
           " dm=" + std::to_string(drift_mode) +
           " sp=" + std::to_string(static_cast<int>(stage_policy)) +
           " seed=" + std::to_string(seed);
  }
};

FuzzConfig DrawConfig(common::Rng* rng) {
  FuzzConfig config;
  const std::vector<std::string> models{"iid", "fractional", "permuted",
                                        "fbm"};
  config.model = models[static_cast<size_t>(rng->UniformInt(0, 3))];
  config.k = static_cast<int>(rng->UniformInt(1, 12));
  config.epsilon = 0.05 + 0.3 * rng->UniformDouble();
  config.mu = (config.model == "iid") ? rng->UniformDouble() * 0.8 : 0.0;
  config.hurst = 0.55 + 0.35 * rng->UniformDouble();
  const std::vector<std::string> psis{"round_robin", "random", "single",
                                      "block", "sign_split", "zero_crossing"};
  config.psi = psis[static_cast<size_t>(rng->UniformInt(0, 5))];
  config.variance_adaptive = rng->Bernoulli(0.3);
  // Drift mode requires ±1 updates.
  config.drift_mode = config.model == "iid" && rng->Bernoulli(0.5);
  const std::vector<core::StagePolicy> policies{
      core::StagePolicy::kAuto, core::StagePolicy::kPaperBoundary,
      core::StagePolicy::kSbcOnly, core::StagePolicy::kStraightOnly};
  config.stage_policy =
      policies[static_cast<size_t>(rng->UniformInt(0, 3))];
  config.seed = rng->NextU64();
  return config;
}

std::vector<double> MakeStream(const FuzzConfig& config, int64_t n) {
  if (config.model == "iid") {
    return streams::BernoulliStream(n, config.mu, config.seed);
  }
  if (config.model == "fractional") {
    return streams::FractionalIidStream(n, 0.0, 1.0, config.seed);
  }
  if (config.model == "permuted") {
    const double bias =
        0.3 + 0.4 * static_cast<double>(config.seed % 5) / 4.0;
    return streams::RandomlyPermuted(streams::SignMultiset(n, bias),
                                     config.seed);
  }
  return streams::FgnDaviesHarte(n, config.hurst, config.seed);
}

TEST(FuzzTest, RandomConfigurationsAllTrack) {
  common::Rng rng = MakeRng(20260705);
  const int64_t n = 4096;
  for (int iteration = 0; iteration < 60; ++iteration) {
    const FuzzConfig config = DrawConfig(&rng);
    core::CounterOptions options;
    options.epsilon = config.epsilon;
    options.horizon_n = n;
    options.variance_adaptive = config.variance_adaptive;
    options.stage_policy = config.stage_policy;
    if (config.model == "fbm") options.fbm_delta = 1.0 / config.hurst;
    if (config.drift_mode) {
      options.drift_mode = core::DriftMode::kUnknownUnitDrift;
    }
    options.seed = config.seed + 1;

    core::NonMonotonicCounter counter(config.k, options);
    auto psi = sim::MakeAssignment(config.psi, config.k, config.seed + 2);
    ASSERT_NE(psi, nullptr);
    sim::TrackingOptions tracking;
    tracking.epsilon = config.epsilon;
    const auto stream = MakeStream(config, n);
    const auto result =
        sim::RunTracking(stream, psi.get(), &counter, tracking);
    EXPECT_EQ(result.violation_steps, 0) << config.ToString();
    EXPECT_LE(result.messages,
              (3 * static_cast<int64_t>(config.k) + 3) * n)
        << config.ToString();
  }
}

}  // namespace
}  // namespace nmc
